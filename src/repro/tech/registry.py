"""Pluggable memory-technology registry.

CACTI-D's core contribution was generalizing one cell technology to
three (SRAM, LP-DRAM, COMM-DRAM) on a shared modeling foundation.  This
module opens that axis: a memory technology is a *declarative*
:class:`CellTraits` bundle -- sensing scheme, destructive-readout and
write-back behavior, refresh requirement, column-mux legality, sense
strip geometry, bitline limits, wire planes, default periphery -- plus
a cell-parameter builder, registered under a name.  The array,
circuit, and timing models consult traits only; they never name a
technology.  Adding a technology is therefore a pure data exercise: one
module that builds a :class:`MemoryTechnology` and calls
:func:`register` (see ``repro.tech.stt_ram`` for the worked example).

:class:`CellTech` is the interned per-technology handle the rest of the
codebase passes around.  It replaces the former closed enum while
keeping its API: ``CellTech("sram")`` looks a registered technology up
by name (raising a :class:`ValueError` that lists the registered names
otherwise), ``CellTech.SRAM`` attribute access works for every
registered technology, ``.value`` is the registry name, iteration
yields every registered handle, and identity comparison is safe because
handles are interned (one object per name, re-interned on unpickle).
"""

from __future__ import annotations

import dataclasses
import re
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.tech.cells import CellParams


class SensingScheme(Enum):
    """How a technology's bitline signal is developed and detected.

    CURRENT_LATCH
        The selected cell actively drives a read current onto a
        precharged bitline until a required differential develops, then
        a latch fires.  Non-destructive; the cell's state is the signal
        source (SRAM's 6T cell, STT-RAM's resistive divider).

    CHARGE_SHARE
        Passive charge redistribution between a storage capacitor and
        the bitline seeds a regenerative latch that must restore the
        full bitline swing.  The read is destructive and the restore is
        the write-back (1T1C DRAM).
    """

    CURRENT_LATCH = "current-latch"
    CHARGE_SHARE = "charge-share"


@dataclass(frozen=True)
class CellTraits:
    """Declarative behavior of one memory-cell technology.

    Everything the array-organization and timing layers formerly decided
    by ``is_dram`` branches, expressed as data.  The triad's values
    reproduce the paper's Table 1 distinctions exactly; a new technology
    states its own behavior without touching any model code.
    """

    #: Bitline sensing scheme (selects the signal-development and
    #: sense-amplifier delay/energy models).
    sensing: SensingScheme
    #: Readout erases the cell; the sense amplifier must regenerate the
    #: full bitline swing, which is also the write-back into the cell.
    destructive_read: bool
    #: Twin (folded) bitline layout: only every other cell contacts a
    #: given bitline, halving junction loading but not wire loading.
    folded_bitline: bool
    #: Access gates one wordline drives per cell (2 for a 6T pair).
    wordline_gates_per_cell: float
    #: Sense-amplifier strip height at the subarray edge, in F.
    sense_strip_height_f: float
    #: Column muxing before the sense amps (ndcm > 1) is legal.  False
    #: for charge-share technologies: every bitline must be sensed --
    #: that *is* the page.
    column_mux_allowed: bool
    #: The main-memory page-size constraint (``page_bits``) applies.
    supports_page_mode: bool
    #: Maximum cells per bitline the sensing scheme can tolerate
    #: (signal-margin limit), or None for no technology limit.
    max_bitline_cells: int | None
    #: Cells leak their stored state and must be periodically refreshed
    #: (``retention_time`` on the cell parameters is then required).
    needs_refresh: bool
    #: Static supply-leakage paths per cell, as a multiplier on the
    #: access-device subthreshold current (2.0 for a 6T cell's two
    #: inverters; 0.0 when cell leakage drains a storage node, costing
    #: refresh energy rather than static power).
    cell_leak_paths: float
    #: Fraction of VDD the precharge circuit must erase per bitline.
    precharge_swing_fraction: float
    #: Bitlines must settle to reference precision at precharge (their
    #: level is the comparison reference for the next charge share).
    precise_precharge: bool
    #: Fraction of written bitline pairs swinging full rail on a write.
    write_swing_fraction: float
    #: Extra wordline hold time a write requires beyond the read path
    #: (s); models slow asymmetric writes (e.g. an MTJ switching pulse).
    #: Extends the row cycle, not the access time.  Zero when writes
    #: are no slower than reads.
    write_pulse_time: float
    #: Array bitline wire plane: "local" (copper) or "local-tungsten".
    bitline_wire: str
    #: Bank-routing wire plane: "global" (fast top metal of a logic
    #: process) or "semi-global" (the intermediate plane commodity DRAM
    #: processes are limited to).
    htree_wire: str
    #: Default peripheral/global device family (paper Table 1).
    default_periphery: str
    #: Idle-subarray sleep transistors meaningfully cut leakage (true
    #: when the cells themselves hold static supply-leakage paths).
    sleep_transistors_effective: bool

    def __post_init__(self) -> None:
        if self.needs_refresh and not self.destructive_read:
            # Not a physical law, but the refresh model refreshes by row
            # activation, which the array model costs as a destructive
            # row cycle; nothing else is modeled.
            raise ValueError(
                "needs_refresh requires destructive (activate-restore) "
                "readout in this model"
            )
        if self.bitline_wire not in ("local", "local-tungsten"):
            raise ValueError(f"unknown bitline wire {self.bitline_wire!r}")
        if self.htree_wire not in ("global", "semi-global"):
            raise ValueError(f"unknown htree wire {self.htree_wire!r}")

    @property
    def write_back_required(self) -> bool:
        """Sensing must restore the cell after every read."""
        return self.destructive_read

    def as_dict(self) -> dict:
        """JSON-safe view of the traits (for reports and tooling)."""
        d = dataclasses.asdict(self)
        d["sensing"] = self.sensing.value
        return d


_NAME_RE = re.compile(r"^[a-z][a-z0-9-]*$")


class _CellTechMeta(type):
    """Metaclass making ``CellTech`` iterable over registered handles."""

    def __iter__(cls) -> Iterator["CellTech"]:
        return iter(tuple(_HANDLES.values()))

    def __len__(cls) -> int:
        return len(_HANDLES)


class CellTech(metaclass=_CellTechMeta):
    """Interned handle for one registered memory-cell technology.

    ``CellTech(name)`` resolves a registry name (or passes an existing
    handle through); unknown names raise a ``ValueError`` listing the
    registered technologies.  Handles are interned -- one object per
    name, also after unpickling -- so identity comparison works, but
    model code should consult ``.traits`` instead of comparing
    technologies (enforced by ``tools/lint_tech_branches.py``).
    """

    __slots__ = ("_name",)

    def __new__(cls, name: "str | CellTech") -> "CellTech":
        if isinstance(name, CellTech):
            return name
        key = str(name).strip().lower()
        try:
            return _HANDLES[key]
        except KeyError:
            raise ValueError(
                f"unknown cell technology {name!r}; registered "
                f"technologies: {', '.join(registered_names())}"
            ) from None

    @classmethod
    def _intern(cls, name: str) -> "CellTech":
        handle = _HANDLES.get(name)
        if handle is None:
            handle = object.__new__(cls)
            object.__setattr__(handle, "_name", name)
            _HANDLES[name] = handle
        return handle

    @property
    def value(self) -> str:
        """The registry name (enum-compatible spelling)."""
        return self._name

    @property
    def name(self) -> str:
        return self._name

    @property
    def traits(self) -> CellTraits:
        return _TECHNOLOGIES[self._name].traits

    @property
    def is_dram(self) -> bool:
        """Legacy alias: destructive charge-share (DRAM-style) readout.

        Kept for the ``repro.tech`` layer and tests; model code outside
        ``repro/tech/`` must consult ``.traits`` instead (linted).
        """
        return self.traits.sensing is SensingScheme.CHARGE_SHARE

    def __repr__(self) -> str:
        return f"CellTech({self._name!r})"

    def __str__(self) -> str:
        return self._name

    def __reduce__(self):
        # Unpickle by name so worker processes re-intern to the one
        # registered handle (registration happens at repro.tech import).
        return (CellTech, (self._name,))

    def __setattr__(self, attr, value):  # pragma: no cover - guard
        raise AttributeError("CellTech handles are immutable")


@dataclass(frozen=True)
class MemoryTechnology:
    """One registered technology: name, declarative traits, cell data.

    ``cell_builder(node_nm, periph_vdd)`` returns the
    :class:`~repro.tech.cells.CellParams` electricals at a node;
    ``periph_vdd`` is the peripheral supply, which technologies whose
    cells share the logic supply (SRAM, STT-RAM) adopt and technologies
    with their own core supply ignore.
    """

    name: str
    traits: CellTraits
    cell_builder: Callable[[float, float], "CellParams"] = field(
        compare=False
    )

    def build_cell(self, node_nm: float, periph_vdd: float) -> "CellParams":
        return self.cell_builder(node_nm, periph_vdd)


_TECHNOLOGIES: dict[str, MemoryTechnology] = {}
_HANDLES: dict[str, CellTech] = {}


def register(tech: MemoryTechnology, *, replace: bool = False) -> CellTech:
    """Register ``tech``, returning its interned :class:`CellTech` handle.

    The handle also becomes a class attribute (``CellTech.STT_RAM`` for
    ``"stt-ram"``).  Registration must happen at import time of a module
    the worker processes also import (the built-in technologies register
    from ``repro.tech``), so handles resolve identically everywhere.
    """
    if not _NAME_RE.match(tech.name):
        raise ValueError(
            f"technology name {tech.name!r} must be lowercase "
            "letters/digits/dashes"
        )
    if tech.name in _TECHNOLOGIES and not replace:
        raise ValueError(f"technology {tech.name!r} is already registered")
    _TECHNOLOGIES[tech.name] = tech
    handle = CellTech._intern(tech.name)
    setattr(_CellTechMeta, "__getattr__", _missing_technology_attr)
    type.__setattr__(CellTech, _attr_name(tech.name), handle)
    return handle


def unregister(name: str) -> None:
    """Remove a registered technology (test support)."""
    name = str(name).strip().lower()
    _TECHNOLOGIES.pop(name, None)
    _HANDLES.pop(name, None)
    try:
        type.__delattr__(CellTech, _attr_name(name))
    except AttributeError:
        pass


def _attr_name(name: str) -> str:
    return name.upper().replace("-", "_")


def _missing_technology_attr(cls, attr):
    raise AttributeError(
        f"no registered technology for CellTech.{attr}; registered "
        f"technologies: {', '.join(registered_names())}"
    )


def get(name: "str | CellTech") -> MemoryTechnology:
    """Look a technology up by name or handle (ValueError if unknown)."""
    return _TECHNOLOGIES[CellTech(name).value]


def registered_names() -> tuple[str, ...]:
    """Registered technology names, in registration order."""
    return tuple(_TECHNOLOGIES)


def traits(name: "str | CellTech") -> CellTraits:
    """The :class:`CellTraits` of a registered technology."""
    return get(name).traits
