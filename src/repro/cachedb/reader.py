"""Query a cachedb artifact: exact hits, interpolation, fallbacks.

The reader answers three kinds of queries:

* **on-grid** -- the coordinates name a stored grid cell; the answer is
  the stored record, bit-identical to what a live solve returns
  (``interpolated=False``, ``source="exact"``), in microseconds.
* **off-grid, in-bounds** -- capacity and/or node fall between grid
  values (associativity, block size, and technology must be grid
  members); the headline metrics are log-linearly interpolated between
  the bracketing cells -- the same geometric idiom
  :func:`repro.tech.nodes.technology` uses for intermediate ITRS nodes
  -- and the result is flagged ``interpolated=True``.
* **everything else** (out of bounds, off-grid on a discrete axis, or
  a grid hole) -- the ``fallback`` policy decides: ``"solve"`` runs a
  live solve, ``"error"`` raises :class:`CacheDBMiss`, ``"nearest"``
  snaps to the closest stored cell (log distance) and flags the result
  ``source="nearest"``.

Every query lands in exactly one of the reader's counters (``hits``,
``interpolated``, ``fallbacks``) and, when an
:class:`~repro.obs.Obs` is attached, the matching ``cachedb.*``
metrics.
"""

from __future__ import annotations

import bisect
import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.results import Solution
from repro.core.solvecache import CACHE_VERSION, _normalize_numbers
from repro.obs import Obs
from repro.tech.cells import CellTech
from repro.cachedb.schema import (
    DB_FORMAT_VERSION,
    DB_METRICS,
    GridSpec,
    grid_key,
    grid_spec_for,
    memory_spec_to_dict,
    normalized_target,
    solution_from_record,
)

#: Off-grid fallback policies.
FALLBACKS = ("solve", "error", "nearest")


class CacheDBError(ValueError):
    """Malformed, unreadable, or incompatible cachedb artifact."""


class CacheDBMiss(CacheDBError):
    """A query the artifact cannot answer under ``fallback="error"``."""


@dataclass(frozen=True)
class CacheDBResult:
    """One answered query.

    ``metrics`` holds the headline quantities in SI units (see
    :data:`~repro.cachedb.schema.DB_METRICS` for the key names).
    ``interpolated`` is True exactly when the numbers were derived by
    interpolation rather than read from (or solved as) a real design
    point; ``source`` records how the answer was produced: ``"exact"``,
    ``"interpolated"``, ``"solve"``, or ``"nearest"``.  ``solution`` is
    the full design point when one exists (exact hits with
    ``materialize=True``, solve fallbacks, nearest snaps); interpolated
    results have none -- there is no discrete organization between two
    grid cells.
    """

    capacity_bytes: int
    block_bytes: int
    associativity: int
    node_nm: float
    cell_tech: str
    metrics: dict[str, float]
    interpolated: bool
    source: str
    solution: Solution | None = field(default=None, compare=False)

    def metric(self, name: str) -> float:
        return self.metrics[name]

    def summary(self) -> str:
        m = self.metrics
        lines = [
            f"capacity        : {self.capacity_bytes / 1024:.0f} KB",
            f"cell technology : {self.cell_tech}",
            f"node            : {self.node_nm:g} nm",
            f"assoc / block   : {self.associativity} / "
            f"{self.block_bytes} B",
            f"source          : {self.source}",
            f"interpolated    : {'yes' if self.interpolated else 'no'}",
            f"access time     : {m['access_time_s'] * 1e9:.3f} ns",
            f"random cycle    : {m['random_cycle_s'] * 1e9:.3f} ns",
            f"read energy     : {m['e_read_j'] * 1e9:.3f} nJ",
            f"write energy    : {m['e_write_j'] * 1e9:.3f} nJ",
            f"leakage power   : {m['p_leakage_w'] * 1e3:.2f} mW",
            f"refresh power   : {m['p_refresh_w'] * 1e3:.3f} mW",
            f"area            : {m['area_m2'] * 1e6:.2f} mm^2 "
            f"({m['area_efficiency'] * 100:.0f}% efficient)",
        ]
        return "\n".join(lines)


def _log_frac(lo: float, hi: float, x: float) -> float:
    """Position of ``x`` between ``lo`` and ``hi`` in log space."""
    if hi == lo:
        return 0.0
    return (math.log(x) - math.log(lo)) / (math.log(hi) - math.log(lo))


def _lerp_metric(lo_val: float, hi_val: float, frac: float) -> float:
    """Log-linear interpolation, degrading to linear at zero/negative.

    Metrics are physical positives almost everywhere, where geometric
    interpolation matches the scaling trends; ``p_refresh_w`` is
    exactly 0.0 for non-refreshing technologies, where log space is
    undefined and linear interpolation (0 between 0s) is right.  Both
    forms stay within the closed interval of their endpoints -- the
    monotonicity contract the golden tests assert -- enforced by a
    final clamp, since the exp/log round trip can otherwise overshoot
    an endpoint by one ulp.
    """
    if frac == 0.0 or lo_val == hi_val:
        return lo_val
    if frac == 1.0:
        return hi_val
    if lo_val > 0.0 and hi_val > 0.0:
        value = math.exp(
            (1.0 - frac) * math.log(lo_val) + frac * math.log(hi_val)
        )
    else:
        value = (1.0 - frac) * lo_val + frac * hi_val
    low, high = sorted((lo_val, hi_val))
    return min(max(value, low), high)


def _bracket(axis: tuple, x) -> tuple | None:
    """The grid neighbors ``(lo, hi)`` around ``x``; ``lo == hi`` on an
    exact member; None outside the axis range."""
    if not axis or x < axis[0] or x > axis[-1]:
        return None
    i = bisect.bisect_left(axis, x)
    if axis[i] == x:
        return axis[i], axis[i]
    return axis[i - 1], axis[i]


def _nearest(axis: tuple, x) -> float:
    """The log-nearest axis member (axes are positive and sorted)."""
    if x <= 0:
        return axis[0]
    return min(axis, key=lambda v: abs(math.log(v) - math.log(x)))


class CacheDB:
    """Reader over one cachedb artifact.

    Loads the JSON once; every query after that is dictionary work.
    Refuses artifacts with a foreign ``format`` outright, and -- unless
    ``check_model=False`` (used by ``cachedb info``) -- artifacts built
    by a different model version, whose numbers would silently be
    stale.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        check_model: bool = True,
        obs: Obs | None = None,
    ):
        self.path = Path(path)
        self.obs = obs
        self.hits = 0
        self.interpolated = 0
        self.fallbacks = 0
        self.misses = 0
        try:
            payload = json.loads(self.path.read_text())
        except OSError as exc:
            raise CacheDBError(f"cannot read cachedb {path}: {exc}") from exc
        except ValueError as exc:
            raise CacheDBError(
                f"cachedb {path} is not valid JSON: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != DB_FORMAT_VERSION
        ):
            raise CacheDBError(
                f"cachedb {path} has format "
                f"{payload.get('format') if isinstance(payload, dict) else None!r}; "
                f"this reader expects {DB_FORMAT_VERSION!r}"
            )
        self.model_version = payload.get("model_version")
        self.stale = self.model_version != CACHE_VERSION
        if check_model and self.stale:
            raise CacheDBError(
                f"cachedb {path} was built by model "
                f"{self.model_version!r}, but this build is "
                f"{CACHE_VERSION!r}; rebuild the artifact "
                "(cachedb build) before serving from it"
            )
        self.grid = GridSpec.from_dict(payload["grid"])
        self.target_dict = payload["target"]
        self._points: dict[str, dict] = payload.get("points", {})
        self._holes: dict[str, str] = payload.get("holes", {})

    def __len__(self) -> int:
        return len(self._points)

    @property
    def target(self) -> OptimizationTarget:
        return OptimizationTarget(**self.target_dict)

    def info(self) -> dict:
        """Machine-readable artifact summary (``cachedb info``)."""
        return {
            "path": os.fspath(self.path),
            "format": DB_FORMAT_VERSION,
            "model_version": self.model_version,
            "stale": self.stale,
            "target": dict(self.target_dict),
            "grid": self.grid.as_dict(),
            "points": len(self._points),
            "holes": len(self._holes),
        }

    def stats(self) -> dict:
        """Query counters since this reader was opened."""
        return {
            "hits": self.hits,
            "interpolated": self.interpolated,
            "fallbacks": self.fallbacks,
            "misses": self.misses,
        }

    # ------------------------------------------------------------------ #
    # Exact lookup (the CactiD / solve() consult path)

    def lookup_exact(
        self,
        spec: MemorySpec,
        target: OptimizationTarget | None = None,
        obs: Obs | None = None,
    ) -> Solution | None:
        """The stored Solution for exactly this solve request, or None.

        A hit requires the artifact's optimization target to match,
        the coordinates to name a stored cell, and the *full* stored
        spec to equal the request (so a spec using any off-grid knob
        -- banks, ECC, sleep transistors, sequential access -- can
        never be served a subtly different design).  Hits are
        bit-identical to a live solve.
        """
        obs = obs or self.obs
        if normalized_target(target) == self.target_dict:
            key = grid_key(
                spec.cell_tech.value,
                spec.node_nm,
                spec.capacity_bytes,
                spec.block_bytes,
                spec.associativity or 0,
            )
            record = self._points.get(key)
            if record is not None and _normalize_numbers(
                memory_spec_to_dict(spec)
            ) == _normalize_numbers(record["spec"]):
                self.hits += 1
                if obs is not None:
                    obs.inc("cachedb.hits")
                return solution_from_record(record)
        self.misses += 1
        if obs is not None:
            obs.inc("cachedb.misses")
        return None

    # ------------------------------------------------------------------ #
    # Full query (exact -> interpolated -> fallback)

    def query(
        self,
        capacity_bytes: int,
        *,
        associativity: int = 8,
        block_bytes: int = 64,
        node_nm: float = 32.0,
        cell_tech: str | CellTech = "sram",
        fallback: str = "solve",
        materialize: bool = False,
    ) -> CacheDBResult:
        """Answer one design-space query from the artifact.

        ``fallback`` governs queries the grid cannot answer (see the
        module docstring); ``materialize`` additionally reconstructs
        the full :class:`Solution` on exact hits (a few extra tens of
        microseconds; metrics-only answers skip it).
        """
        if fallback not in FALLBACKS:
            raise CacheDBError(
                f"unknown fallback {fallback!r}; expected one of {FALLBACKS}"
            )
        tech = CellTech(cell_tech).value
        node_nm = float(node_nm)
        grid = self.grid
        assoc_key = associativity or 0

        reason = None
        if tech not in grid.technologies:
            reason = f"technology {tech!r} not in grid {grid.technologies}"
        elif assoc_key not in grid.associativities:
            reason = (
                f"associativity {assoc_key} not in grid "
                f"{grid.associativities}"
            )
        elif block_bytes not in grid.block_bytes:
            reason = (
                f"block size {block_bytes} not in grid {grid.block_bytes}"
            )
        else:
            cap_pair = _bracket(grid.capacities_bytes, capacity_bytes)
            node_pair = _bracket(grid.nodes_nm, node_nm)
            if cap_pair is None:
                reason = (
                    f"capacity {capacity_bytes} outside grid range "
                    f"{grid.capacities_bytes[0]}-{grid.capacities_bytes[-1]}"
                )
            elif node_pair is None:
                reason = (
                    f"node {node_nm:g} nm outside grid range "
                    f"{grid.nodes_nm[0]:g}-{grid.nodes_nm[-1]:g} nm"
                )
            else:
                answer = self._grid_answer(
                    tech,
                    node_nm,
                    node_pair,
                    capacity_bytes,
                    cap_pair,
                    block_bytes,
                    assoc_key,
                    materialize,
                )
                if isinstance(answer, CacheDBResult):
                    return answer
                reason = answer  # a hole's key, reported below

        return self._fall_back(
            reason,
            fallback,
            tech,
            node_nm,
            capacity_bytes,
            block_bytes,
            assoc_key,
        )

    def _grid_answer(
        self,
        tech,
        node_nm,
        node_pair,
        capacity,
        cap_pair,
        block,
        assoc,
        materialize,
    ):
        """An exact or interpolated result, or a miss-reason string."""
        cap_lo, cap_hi = cap_pair
        node_lo, node_hi = node_pair
        corners = {}
        for cap in {cap_lo, cap_hi}:
            for node in {node_lo, node_hi}:
                key = grid_key(tech, node, cap, block, assoc)
                record = self._points.get(key)
                if record is None:
                    return (
                        f"grid hole at {key}"
                        + (
                            f" ({self._holes[key]})"
                            if key in self._holes
                            else ""
                        )
                    )
                corners[(cap, node)] = record

        if cap_lo == cap_hi and node_lo == node_hi:
            record = corners[(cap_lo, node_lo)]
            self.hits += 1
            if self.obs is not None:
                self.obs.inc("cachedb.hits")
            return CacheDBResult(
                capacity_bytes=capacity,
                block_bytes=block,
                associativity=assoc,
                node_nm=node_nm,
                cell_tech=tech,
                metrics=dict(record["metrics"]),
                interpolated=False,
                source="exact",
                solution=(
                    solution_from_record(record) if materialize else None
                ),
            )

        cap_frac = _log_frac(cap_lo, cap_hi, capacity)
        node_frac = _log_frac(node_lo, node_hi, node_nm)
        metrics = {}
        for name in DB_METRICS:
            at_node = []
            for node in (node_lo, node_hi):
                at_node.append(
                    _lerp_metric(
                        corners[(cap_lo, node)]["metrics"][name],
                        corners[(cap_hi, node)]["metrics"][name],
                        cap_frac,
                    )
                )
            metrics[name] = _lerp_metric(at_node[0], at_node[1], node_frac)
        self.interpolated += 1
        if self.obs is not None:
            self.obs.inc("cachedb.interpolated")
        return CacheDBResult(
            capacity_bytes=capacity,
            block_bytes=block,
            associativity=assoc,
            node_nm=node_nm,
            cell_tech=tech,
            metrics=metrics,
            interpolated=True,
            source="interpolated",
        )

    def _fall_back(
        self, reason, fallback, tech, node_nm, capacity, block, assoc
    ) -> CacheDBResult:
        if fallback == "error":
            raise CacheDBMiss(
                f"cachedb cannot answer the query ({reason}) and "
                "fallback='error'"
            )
        self.fallbacks += 1
        if self.obs is not None:
            self.obs.inc("cachedb.fallbacks")

        if fallback == "nearest":
            grid = self.grid
            if tech not in grid.technologies:
                raise CacheDBMiss(
                    f"no nearest grid point: technology {tech!r} is not "
                    f"in the grid {grid.technologies}"
                )
            snapped = (
                tech,
                _nearest(grid.nodes_nm, node_nm),
                int(_nearest(grid.capacities_bytes, capacity)),
                int(_nearest(grid.block_bytes, block)),
                (
                    assoc
                    if assoc in grid.associativities
                    else min(
                        grid.associativities,
                        key=lambda a: abs(a - assoc),
                    )
                ),
            )
            record = self._points.get(grid_key(*snapped))
            if record is None:
                raise CacheDBMiss(
                    f"no nearest grid point: {grid_key(*snapped)} is a "
                    "hole"
                )
            return CacheDBResult(
                capacity_bytes=snapped[2],
                block_bytes=snapped[3],
                associativity=snapped[4],
                node_nm=snapped[1],
                cell_tech=tech,
                metrics=dict(record["metrics"]),
                interpolated=False,
                source="nearest",
                solution=solution_from_record(record),
            )

        # fallback == "solve": a live solve of exactly what was asked.
        from repro.core.cacti import solve as _solve
        from repro.cachedb.schema import DB_METRICS as _metrics

        spec = grid_spec_for(tech, node_nm, capacity, block, assoc)
        solution = _solve(spec, self.target, obs=self.obs)
        return CacheDBResult(
            capacity_bytes=capacity,
            block_bytes=block,
            associativity=assoc,
            node_nm=node_nm,
            cell_tech=tech,
            metrics={
                name: extract(solution)
                for name, extract in _metrics.items()
            },
            interpolated=False,
            source="solve",
            solution=solution,
        )


#: Per-process readers keyed by path, so study/sweep worker processes
#: parse each artifact once, not once per task (the
#: ``worker_solve_cache`` idiom).
_OPEN_DBS: dict[str, CacheDB] = {}


def open_cachedb(path: str | os.PathLike) -> CacheDB:
    """A memoized :class:`CacheDB` for ``path`` (one parse per process)."""
    key = os.fspath(path)
    db = _OPEN_DBS.get(key)
    if db is None:
        db = _OPEN_DBS[key] = CacheDB(key)
    return db
