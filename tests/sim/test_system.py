"""Integration tests for the full-system simulator."""

import pytest

from repro.sim.cache import CacheConfig
from repro.sim.dram_channel import MemoryTimingCycles
from repro.sim.system import L3Config, System, SystemConfig, run_workload

MEM = MemoryTimingCycles(
    t_rcd=30, t_cas=31, t_rp=28, t_ras=70, t_rc=98, t_rrd=15, t_burst=5
)


def config(l3=True, cores=2, threads=2):
    return SystemConfig(
        name="test",
        l1=CacheConfig(capacity_bytes=1024, block_bytes=64, associativity=2,
                       access_cycles=2),
        l2=CacheConfig(capacity_bytes=4096, block_bytes=64, associativity=4,
                       access_cycles=3),
        l3=L3Config(capacity_bytes=64 << 10, associativity=8,
                    access_cycles=5, bank_cycle=1) if l3 else None,
        memory=MEM,
        num_cores=cores,
        threads_per_core=threads,
    )


def compute(n=10, cycles=40.0):
    return ("compute", n, cycles)


class TestExecution:
    def test_pure_compute(self):
        stats = run_workload(
            config(), lambda tid: iter([compute(100, 400.0)])
        )
        assert stats.instructions == 400  # 4 threads x 100
        assert stats.cycles == pytest.approx(400.0)
        assert stats.breakdown.instruction == pytest.approx(1600.0)

    def test_stream_count_mismatch(self):
        system = System(config())
        with pytest.raises(ValueError, match="streams"):
            system.run([iter([])])

    def test_memory_stall_attribution(self):
        events = [compute(), ("mem", 0x10000, False)]
        stats = run_workload(config(), lambda tid: iter(events))
        # Cold miss goes all the way to memory.
        assert stats.breakdown.memory > 0
        assert stats.counters.mem_reads > 0

    def test_l1_hit_is_free(self):
        events = [("mem", 0x40, False), ("mem", 0x40, False)]
        stats = run_workload(config(cores=1, threads=1),
                             lambda tid: iter(events))
        assert stats.counters.l1_reads == 2
        assert stats.counters.l2_reads == 1  # only the cold miss

    def test_l3_filters_memory(self):
        """Second thread on another core reuses data via the L3."""
        events = [("mem", i * 64, False) for i in range(64)]
        cfg = config(l3=True, cores=2, threads=1)
        system = System(cfg)
        stats = system.run([iter(events), iter(list(events))])
        assert stats.counters.l3_reads > 0
        # Far fewer memory reads than total L3 traffic.
        assert stats.counters.mem_reads <= 80

    def test_no_l3_goes_straight_to_memory(self):
        events = [("mem", i * 64, False) for i in range(64)]
        stats = run_workload(config(l3=False, cores=1, threads=1),
                             lambda tid: iter(events))
        assert stats.counters.l3_reads == 0
        assert stats.counters.mem_reads == 64

    def test_unknown_event_raises(self):
        with pytest.raises(ValueError, match="unknown workload event"):
            run_workload(config(), lambda tid: iter([("jump", 1)]))


class TestSynchronization:
    def test_barrier_aligns_threads(self):
        def stream(tid):
            work = 100.0 if tid == 0 else 10.0
            return iter([compute(10, work), ("barrier",),
                         compute(10, 10.0)])

        stats = run_workload(config(cores=1, threads=2), stream)
        assert stats.breakdown.barrier > 0
        assert stats.cycles == pytest.approx(110.0)

    def test_lock_serializes(self):
        events = [("lock", 1, 50)]
        stats = run_workload(config(cores=1, threads=2),
                             lambda tid: iter(list(events)))
        # The second thread waits for the first's critical section.
        assert stats.breakdown.lock == pytest.approx(50.0)
        assert stats.cycles == pytest.approx(100.0)

    def test_done_threads_release_barrier(self):
        """A barrier must release even if some threads already finished."""
        def stream(tid):
            if tid == 0:
                return iter([compute(1, 5.0)])
            return iter([compute(1, 1.0), ("barrier",), compute(1, 1.0)])

        stats = run_workload(config(cores=1, threads=2), stream)
        assert stats.cycles >= 2.0


class TestCoherenceTraffic:
    def test_write_sharing_invalidates(self):
        def stream(tid):
            if tid == 0:
                return iter([("mem", 0x1000, False),
                             compute(10, 40.0),
                             ("mem", 0x1000, False)])
            return iter([compute(5, 20.0), ("mem", 0x1000, True)])

        cfg = config(cores=2, threads=1)
        system = System(cfg)
        stats = system.run([stream(0), stream(1)])
        assert stats.counters.coherence_invalidations >= 1

    def test_ipc_definition(self):
        stats = run_workload(config(), lambda tid: iter([compute(100, 50.0)]))
        assert stats.ipc == pytest.approx(400 / 50.0)
