"""Store-backend throughput and flush-cost scaling.

Times both :class:`~repro.store.KVStore` backends on the operations the
solve pipeline actually issues -- bulk puts, random gets, and the
hot-path case of flushing ONE dirty record into an already-populated
store -- and writes the numbers to ``BENCH_store.json`` at the repo
root.

The asserted claim is the architectural one from the issue: the sqlite
backend's flush cost is O(dirty records), not O(total records).  The
JSON backend rewrites the whole file per flush, so its one-dirty-record
flush grows linearly from 1k to 10k resident records; sqlite's upserts
only the staged row, so its flush must NOT grow proportionally.
"""

import json
import os
import time

from repro.store import JsonFileStore, SqliteStore

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_store.json"
)

VERSION = "bench-v1"

#: Resident-store sizes for the flush-cost scaling measurement.
SIZES = (1_000, 10_000)

#: Records in the put/get throughput measurement.
THROUGHPUT_RECORDS = 2_000

#: Repeats for the one-dirty-record flush timing (each repeat stages a
#: fresh record so every flush is genuinely dirty).
FLUSH_REPEATS = 20

#: A solve-record-shaped payload, so serialized sizes are realistic.
def _record(i: int) -> dict:
    return {
        "spec": {"capacity_bits": float(i << 10), "assoc": 8.0},
        "org": {"ndwl": 4, "ndbl": 8, "nspd": 1.0},
        "access_time": i * 1.1e-9,
        "e_read": i * 0.7e-10,
    }


def _make(backend, tmp_path, name):
    if backend == "json":
        return JsonFileStore(tmp_path / f"{name}.json", version=VERSION)
    return SqliteStore(tmp_path / f"{name}.db", version=VERSION)


def _fill(store, n):
    with store:
        for i in range(n):
            store.put(f"key-{i:08d}", _record(i))


def _time_one_dirty_flush(store, n_resident) -> float:
    """Mean seconds to flush one staged record into a resident store."""
    t0 = time.perf_counter()
    for r in range(FLUSH_REPEATS):
        store.put(f"fresh-{r:08d}", _record(r))
        store.flush()
    return (time.perf_counter() - t0) / FLUSH_REPEATS


def test_bench_store_backends(tmp_path):
    payload = {
        "description": (
            "KVStore backend throughput (puts/gets per second) and the "
            "cost of flushing ONE dirty record into a store already "
            "holding N records: the JSON backend rewrites the whole "
            "file (O(total)), the sqlite backend upserts one row "
            "(O(dirty))"
        ),
        "throughput_records": THROUGHPUT_RECORDS,
        "backends": {},
        "one_dirty_record_flush_ms": {},
    }

    for backend in ("json", "sqlite"):
        store = _make(backend, tmp_path, "throughput")
        t0 = time.perf_counter()
        _fill(store, THROUGHPUT_RECORDS)
        put_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        for i in range(THROUGHPUT_RECORDS):
            assert store.get(f"key-{i:08d}") is not None
        get_wall = time.perf_counter() - t0
        store.close()

        payload["backends"][backend] = {
            "puts_per_s": THROUGHPUT_RECORDS / put_wall,
            "gets_per_s": THROUGHPUT_RECORDS / get_wall,
        }

    flush_ms = {}
    for backend in ("json", "sqlite"):
        flush_ms[backend] = {}
        for size in SIZES:
            store = _make(backend, tmp_path, f"flush-{size}")
            _fill(store, size)
            flush_ms[backend][str(size)] = (
                _time_one_dirty_flush(store, size) * 1e3
            )
            store.close()
    payload["one_dirty_record_flush_ms"] = flush_ms

    json_growth = flush_ms["json"]["10000"] / flush_ms["json"]["1000"]
    sqlite_growth = (
        flush_ms["sqlite"]["10000"] / flush_ms["sqlite"]["1000"]
    )
    payload["flush_growth_1k_to_10k"] = {
        "json": json_growth,
        "sqlite": sqlite_growth,
    }

    with open(BENCH_FILE, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(
        f"\n1-dirty-record flush at 10k resident: "
        f"json {flush_ms['json']['10000']:.2f} ms  "
        f"sqlite {flush_ms['sqlite']['10000']:.2f} ms  "
        f"(growth 1k->10k: json {json_growth:.1f}x, "
        f"sqlite {sqlite_growth:.1f}x)"
    )

    # The acceptance claim.  The 10x resident-size jump must show up in
    # the JSON backend's whole-file rewrite (comfortably super-linear
    # vs sqlite's) while the sqlite flush stays O(dirty): allow noise,
    # but nothing like proportional-to-total growth.
    assert sqlite_growth < 3.0, (
        f"sqlite one-dirty-record flush grew {sqlite_growth:.1f}x when "
        "the resident store grew 10x -- flushes are not O(dirty)"
    )
    assert (
        flush_ms["sqlite"]["10000"] < flush_ms["json"]["10000"]
    ), "sqlite flush at 10k records should beat the JSON whole-file rewrite"
