"""Tests for the bottom-die floorplan derivation (paper section 3.1)."""

import pytest

from repro.study.floorplan import (
    PAPER_BANK_BUDGET,
    derive_floorplan,
)


class TestFloorplan:
    @pytest.fixture(scope="class")
    def fp(self):
        return derive_floorplan()

    def test_bank_budget_matches_paper(self, fp):
        """1/8th of the scaled bottom die must land near 6.2 mm^2."""
        assert fp.llc_bank_budget == pytest.approx(PAPER_BANK_BUDGET,
                                                   rel=0.15)

    def test_die_is_eight_bank_budgets(self, fp):
        assert fp.bottom_die_area == pytest.approx(8 * fp.llc_bank_budget)

    def test_per_core_sums_components(self, fp):
        total = (fp.core_logic_area + fp.fpu_area + fp.l1_area
                 + fp.l2_area + fp.glue_area)
        assert fp.per_core == pytest.approx(total)

    def test_l2_is_largest_cache_component(self, fp):
        assert fp.l2_area > fp.l1_area

    def test_report_renders(self, fp):
        text = fp.report()
        assert "LLC bank budget" in text and "mm^2" in text

    def test_scaling_with_node(self):
        """A 45 nm bottom die is larger, so banks get more area."""
        fp45 = derive_floorplan(node_nm=45.0)
        fp32 = derive_floorplan(node_nm=32.0)
        assert fp45.core_logic_area > fp32.core_logic_area
