"""ITRS device models.

CACTI-D replaced the legacy linear-scaled 0.8 um technology base of older
CACTI versions with device data projected from the ITRS roadmap.  Three ITRS
device types are modeled -- High Performance (HP), Low Standby Power (LSTP),
and Low Operating Power (LOP) -- plus a long-channel variant of HP that
trades speed for a ~10x leakage reduction (used for SRAM cells and
SRAM/LP-DRAM peripheral circuitry, following the 65 nm Xeon L3 design).

Parameter values are projections regenerated from the scaling rules the
paper cites rather than copied from any CACTI source release:

* HP CV/I improves 17 %/year; LSTP and LOP improve ~14 %/year.  ITRS nodes
  are two years apart (90 nm = 2004 ... 32 nm = 2013 window), so HP delay
  scales by 0.83**2 per node.
* LSTP subthreshold leakage is held constant at 10 pA/um across nodes.
* LSTP gate lengths lag HP by four years (two nodes); LOP lags by two years.
* Supply voltages follow the ITRS tables (HP reaches 0.9 V at 32 nm, which
  is the SRAM cell VDD in paper Table 1; LSTP reaches 1.0 V, the COMM-DRAM
  peripheral VDD).

All quantities are SI and normalized per metre of transistor width where
applicable (1 uA/um == 1 A/m, 1 fF/um == 1e-9 F/m).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


#: Weight of an FO4 inverter delay attributed to the RC switching model,
#: ln(2) for a first-order exponential settling to VDD/2.
_LN2 = math.log(2.0)

#: Fanout used to define the reference inverter delay.
_FO4_FANOUT = 4.0

#: Subthreshold leakage multiplier at the ~360 K operating temperature of a
#: server die relative to the 25 C datasheet values stored in ``i_off``.
#: Subthreshold current grows exponentially with temperature; a 5-7x
#: increase from 300 K to 360 K is typical, and CACTI evaluates leakage at
#: operating temperature.
TEMPERATURE_LEAKAGE_FACTOR = 4.0


@dataclass(frozen=True)
class DeviceParams:
    """Electrical parameters of one ITRS device type at one node.

    Width-normalized quantities let circuit models size transistors freely:
    a transistor of width ``w`` has gate capacitance ``c_gate * w``, drain
    capacitance ``c_drain * w``, on-current ``i_on * w``, subthreshold
    leakage ``i_off * w``, and effective switching resistance ``r_eff / w``.
    """

    name: str
    vdd: float  #: supply voltage (V)
    vth: float  #: saturation threshold voltage (V)
    l_phy: float  #: physical gate length (m)
    t_ox: float  #: equivalent oxide thickness (m)
    c_gate: float  #: gate capacitance per width, incl. fringe/overlap (F/m)
    c_drain: float  #: drain junction + overlap capacitance per width (F/m)
    i_on: float  #: saturation drive current per width (A/m)
    i_off: float  #: subthreshold leakage per width at 25C (A/m)
    i_gate: float  #: gate leakage per width (A/m)
    r_eff: float  #: switching resistance x NMOS width, PMOS matched (ohm*m)
    n_to_p_ratio: float = 2.0  #: PMOS/NMOS width ratio for equal drive

    @property
    def fo4(self) -> float:
        """Delay of a fanout-of-4 inverter in this technology (s)."""
        return (
            _LN2
            * self.r_eff
            * (1.0 + self.n_to_p_ratio)
            * (self.c_drain + _FO4_FANOUT * self.c_gate)
        )

    @property
    def tau(self) -> float:
        """Intrinsic time constant r_eff * c_gate (s), the logical-effort tau."""
        return self.r_eff * self.c_gate

    def leakage_power(self, width: float) -> float:
        """Subthreshold + gate leakage power of one device of ``width`` (W),
        at operating temperature.

        CACTI assumes half the devices in a static CMOS gate leak at a time;
        callers apply stacking/duty factors themselves.
        """
        i_off_hot = self.i_off * TEMPERATURE_LEAKAGE_FACTOR
        return (i_off_hot + self.i_gate) * width * self.vdd


def _device(
    name: str,
    vdd: float,
    vth: float,
    l_phy_nm: float,
    t_ox_nm: float,
    c_gate_ff_um: float,
    c_drain_ff_um: float,
    i_on_ua_um: float,
    i_off_na_um: float,
    i_gate_na_um: float,
    fo4_ps: float,
) -> DeviceParams:
    """Build a DeviceParams from datasheet-style units, deriving r_eff.

    The effective switching resistance is calibrated so that the resulting
    FO4 inverter delay matches the projected ``fo4_ps`` for the device type,
    keeping every downstream delay consistent with the ITRS CV/I trend.
    """
    c_gate = c_gate_ff_um * 1e-9
    c_drain = c_drain_ff_um * 1e-9
    # r_eff is normalized to NMOS width with the PMOS upsized for equal
    # drive; the FO4 load therefore carries (1 + n_to_p_ratio) x the NMOS
    # width in capacitance, which the calibration must divide out.
    n_to_p = 2.0
    r_eff = (fo4_ps * 1e-12) / (
        _LN2 * (1.0 + n_to_p) * (c_drain + _FO4_FANOUT * c_gate)
    )
    return DeviceParams(
        name=name,
        vdd=vdd,
        vth=vth,
        l_phy=l_phy_nm * 1e-9,
        t_ox=t_ox_nm * 1e-9,
        c_gate=c_gate,
        c_drain=c_drain,
        i_on=i_on_ua_um,
        i_off=i_off_na_um * 1e-3,
        i_gate=i_gate_na_um * 1e-3,
        r_eff=r_eff,
    )


#: ITRS nodes covered by CACTI-D (paper section 2.2), keyed by feature size
#: in nanometres.  Node order: 90 (2004), 65 (2007), 45 (2010), 32 (2013).
NODES_NM = (90, 65, 45, 32)

#: FO4 delay projections (ps) for HP devices, following the 17 %/yr CV/I
#: improvement (x0.69 per two-year node step) anchored at ~32 ps for 90 nm.
_HP_FO4_PS = {90: 32.0, 65: 22.1, 45: 15.3, 32: 10.6}

#: Delay derating of the slower device families relative to HP.  LSTP pays
#: ~2.6x for its thick oxide and high Vth; LOP ~1.7x; the long-channel HP
#: variant ~1.3x for its relaxed gate length.
_LSTP_FO4_FACTOR = 2.6
_LOP_FO4_FACTOR = 1.7
_HP_LONG_FO4_FACTOR = 1.3

#: Leakage reduction of long-channel HP relative to nominal HP.
_HP_LONG_IOFF_FACTOR = 0.1
_HP_LONG_ION_FACTOR = 0.8


def _hp(node: int) -> DeviceParams:
    data = {
        90: dict(vdd=1.2, vth=0.23, l_phy_nm=37, t_ox_nm=1.20,
                 c_gate_ff_um=0.95, c_drain_ff_um=0.60,
                 i_on_ua_um=1100, i_off_na_um=200, i_gate_na_um=100),
        65: dict(vdd=1.1, vth=0.20, l_phy_nm=25, t_ox_nm=1.10,
                 c_gate_ff_um=0.80, c_drain_ff_um=0.50,
                 i_on_ua_um=1300, i_off_na_um=280, i_gate_na_um=180),
        45: dict(vdd=1.0, vth=0.18, l_phy_nm=18, t_ox_nm=0.65,
                 c_gate_ff_um=0.70, c_drain_ff_um=0.44,
                 i_on_ua_um=1550, i_off_na_um=360, i_gate_na_um=250),
        32: dict(vdd=0.9, vth=0.17, l_phy_nm=13, t_ox_nm=0.50,
                 c_gate_ff_um=0.60, c_drain_ff_um=0.38,
                 i_on_ua_um=1850, i_off_na_um=450, i_gate_na_um=300),
    }[node]
    return _device(name="itrs-hp", fo4_ps=_HP_FO4_PS[node], **data)


def _hp_long_channel(node: int) -> DeviceParams:
    base = _hp(node)
    return _device(
        name="itrs-hp-long-channel",
        vdd=base.vdd,
        vth=base.vth + 0.06,
        l_phy_nm=base.l_phy * 1e9 * 1.35,
        t_ox_nm=base.t_ox * 1e9,
        c_gate_ff_um=base.c_gate * 1e9 * 1.15,
        c_drain_ff_um=base.c_drain * 1e9 * 1.05,
        i_on_ua_um=base.i_on * _HP_LONG_ION_FACTOR,
        i_off_na_um=base.i_off * 1e3 * _HP_LONG_IOFF_FACTOR,
        i_gate_na_um=base.i_gate * 1e3 * 0.5,
        fo4_ps=_HP_FO4_PS[node] * _HP_LONG_FO4_FACTOR,
    )


def _lstp(node: int) -> DeviceParams:
    data = {
        90: dict(vdd=1.2, vth=0.48, l_phy_nm=75, t_ox_nm=2.20,
                 c_gate_ff_um=1.10, c_drain_ff_um=0.66,
                 i_on_ua_um=440, i_off_na_um=0.01, i_gate_na_um=0.005),
        65: dict(vdd=1.2, vth=0.45, l_phy_nm=45, t_ox_nm=1.90,
                 c_gate_ff_um=0.92, c_drain_ff_um=0.56,
                 i_on_ua_um=465, i_off_na_um=0.01, i_gate_na_um=0.005),
        45: dict(vdd=1.1, vth=0.42, l_phy_nm=28, t_ox_nm=1.40,
                 c_gate_ff_um=0.80, c_drain_ff_um=0.49,
                 i_on_ua_um=520, i_off_na_um=0.01, i_gate_na_um=0.005),
        32: dict(vdd=1.0, vth=0.40, l_phy_nm=20, t_ox_nm=1.10,
                 c_gate_ff_um=0.68, c_drain_ff_um=0.42,
                 i_on_ua_um=570, i_off_na_um=0.01, i_gate_na_um=0.005),
    }[node]
    return _device(name="itrs-lstp", fo4_ps=_HP_FO4_PS[node] * _LSTP_FO4_FACTOR,
                   **data)


def _lop(node: int) -> DeviceParams:
    data = {
        90: dict(vdd=0.9, vth=0.30, l_phy_nm=53, t_ox_nm=1.50,
                 c_gate_ff_um=1.00, c_drain_ff_um=0.62,
                 i_on_ua_um=550, i_off_na_um=3, i_gate_na_um=2),
        65: dict(vdd=0.8, vth=0.28, l_phy_nm=32, t_ox_nm=1.20,
                 c_gate_ff_um=0.85, c_drain_ff_um=0.53,
                 i_on_ua_um=640, i_off_na_um=5, i_gate_na_um=3),
        45: dict(vdd=0.7, vth=0.25, l_phy_nm=22, t_ox_nm=0.90,
                 c_gate_ff_um=0.74, c_drain_ff_um=0.46,
                 i_on_ua_um=740, i_off_na_um=7, i_gate_na_um=5),
        32: dict(vdd=0.6, vth=0.24, l_phy_nm=16, t_ox_nm=0.80,
                 c_gate_ff_um=0.63, c_drain_ff_um=0.40,
                 i_on_ua_um=840, i_off_na_um=10, i_gate_na_um=7),
    }[node]
    return _device(name="itrs-lop", fo4_ps=_HP_FO4_PS[node] * _LOP_FO4_FACTOR,
                   **data)


#: Registry of builder functions keyed by the public device-type name.
DEVICE_BUILDERS = {
    "hp": _hp,
    "hp-long-channel": _hp_long_channel,
    "lstp": _lstp,
    "lop": _lop,
}

DEVICE_TYPES = tuple(DEVICE_BUILDERS)


def device(device_type: str, node_nm: int) -> DeviceParams:
    """Return the :class:`DeviceParams` for ``device_type`` at an ITRS node.

    ``node_nm`` must be one of :data:`NODES_NM`; use
    :func:`repro.tech.nodes.technology` for interpolated nodes.
    """
    if device_type not in DEVICE_BUILDERS:
        raise ValueError(
            f"unknown device type {device_type!r}; expected one of {DEVICE_TYPES}"
        )
    if node_nm not in NODES_NM:
        raise ValueError(f"unknown ITRS node {node_nm}; expected one of {NODES_NM}")
    return DEVICE_BUILDERS[device_type](node_nm)


def interpolate_devices(
    a: DeviceParams, b: DeviceParams, fraction: float
) -> DeviceParams:
    """Log-linearly interpolate between two nodes of the same device type.

    ``fraction`` is 0 at ``a`` and 1 at ``b``.  Geometric interpolation is
    used for every strictly positive parameter, which matches the roughly
    exponential trajectory of scaling trends (and is exact for quantities
    like FO4 that improve by a constant factor per node).
    """
    if a.name != b.name:
        raise ValueError(f"cannot interpolate {a.name!r} with {b.name!r}")

    def geo(x: float, y: float) -> float:
        return math.exp((1 - fraction) * math.log(x) + fraction * math.log(y))

    return DeviceParams(
        name=a.name,
        vdd=geo(a.vdd, b.vdd),
        vth=geo(a.vth, b.vth),
        l_phy=geo(a.l_phy, b.l_phy),
        t_ox=geo(a.t_ox, b.t_ox),
        c_gate=geo(a.c_gate, b.c_gate),
        c_drain=geo(a.c_drain, b.c_drain),
        i_on=geo(a.i_on, b.i_on),
        i_off=geo(a.i_off, b.i_off),
        i_gate=geo(a.i_gate, b.i_gate),
        r_eff=geo(a.r_eff, b.r_eff),
        n_to_p_ratio=a.n_to_p_ratio,
    )
