"""CACTI-D core: input specs, optimizer, and the public solve API."""

from repro.core.cacti import (
    CactiD,
    MainMemorySolution,
    data_array_spec,
    solve,
    solve_batch,
    solve_main_memory,
    tag_array_spec,
)
from repro.core.config import (
    DENSITY_OPTIMIZED,
    ENERGY_DELAY_OPTIMIZED,
    AccessMode,
    MemorySpec,
    OptimizationTarget,
)
from repro.core.optimizer import (
    NoFeasibleSolution,
    SweepStats,
    feasible_designs,
    filter_constraints,
    optimize,
    pareto_solutions,
    rank,
)
from repro.core.results import Solution
from repro.core.solvecache import SolveCache

__all__ = [
    "AccessMode",
    "CactiD",
    "DENSITY_OPTIMIZED",
    "ENERGY_DELAY_OPTIMIZED",
    "MainMemorySolution",
    "MemorySpec",
    "NoFeasibleSolution",
    "OptimizationTarget",
    "Solution",
    "SolveCache",
    "SweepStats",
    "data_array_spec",
    "feasible_designs",
    "filter_constraints",
    "optimize",
    "pareto_solutions",
    "rank",
    "solve",
    "solve_batch",
    "solve_main_memory",
    "tag_array_spec",
]
