"""Paper Figure 4(a): IPC and average read latency per app x config."""

from conftest import print_table

from repro.report import grouped_bar_chart
from repro.study.table3 import CONFIG_NAMES


def test_figure4a(study_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows_ipc, rows_lat = [], []
    chart_data = {}
    for app in study_result.app_names:
        ipc_row, lat_row = [app], [app]
        chart_data[app] = {}
        for config in CONFIG_NAMES:
            r = study_result.get(app, config)
            ipc_row.append(f"{r.ipc:.2f}")
            lat_row.append(f"{r.stats.average_read_latency:.1f}")
            chart_data[app][config] = r.ipc
        rows_ipc.append(ipc_row)
        rows_lat.append(lat_row)

    print_table("Figure 4(a): IPC", ["app", *CONFIG_NAMES], rows_ipc)
    print()
    print(grouped_bar_chart(chart_data, title="Figure 4(a) as bars: IPC"))
    print_table("Figure 4(a): average read latency (cycles)",
                ["app", *CONFIG_NAMES], rows_lat)

    s = study_result

    def ipc(app, config):
        return s.get(app, config).ipc

    # ft.B / lu.C: L3s help a lot; SRAM is capacity-starved vs LP-DRAM;
    # COMM-DRAM gains nothing over LP-DRAM (paper section 4.2 group 1).
    for app in ("ft.B", "lu.C"):
        assert ipc(app, "lp_dram_c") > 1.25 * ipc(app, "nol3")
        assert ipc(app, "lp_dram_c") >= 0.95 * ipc(app, "sram")
        assert ipc(app, "cm_dram_c") < 1.15 * ipc(app, "lp_dram_c")

    # bt/is/mg/sp: bigger L3s monotonically reduce main-memory traffic.
    for app in ("bt.C", "is.C", "mg.B", "sp.C"):
        assert ipc(app, "cm_dram_c") > ipc(app, "nol3")
        big = s.get(app, "cm_dram_c").stats.counters.mem_reads
        small = s.get(app, "sram").stats.counters.mem_reads
        assert big < small

    # ua.C / cg.C: insensitive to L3 size.
    for app in ("ua.C", "cg.C"):
        spread = [ipc(app, c) for c in CONFIG_NAMES[1:]]
        assert max(spread) < 1.35 * min(spread)

    # IPC correlates inversely with read latency (in-order threads).
    for app in s.app_names:
        fast = max(CONFIG_NAMES, key=lambda c: ipc(app, c))
        slow = min(CONFIG_NAMES, key=lambda c: ipc(app, c))
        assert (
            s.get(app, fast).stats.average_read_latency
            <= s.get(app, slow).stats.average_read_latency * 1.1
        )
