"""Unit tests for the Orion-style crossbar model."""

import pytest

from repro.circuits.crossbar import design_crossbar
from repro.tech.nodes import technology

TECH = technology(32)


class TestCrossbar:
    def test_basic_metrics_positive(self):
        xb = design_crossbar(TECH, 8, 8, 512)
        assert xb.delay > 0
        assert xb.energy_per_bit > 0
        assert xb.leakage > 0
        assert xb.area > 0

    def test_more_ports_cost_more(self):
        small = design_crossbar(TECH, 4, 4, 128)
        big = design_crossbar(TECH, 8, 8, 128)
        assert big.energy_per_bit > small.energy_per_bit
        assert big.area > small.area
        assert big.delay > small.delay

    def test_wider_bus_more_leakage_and_area(self):
        narrow = design_crossbar(TECH, 8, 8, 128)
        wide = design_crossbar(TECH, 8, 8, 512)
        assert wide.leakage > narrow.leakage
        assert wide.area > narrow.area

    def test_energy_per_transfer(self):
        xb = design_crossbar(TECH, 8, 8, 512)
        assert xb.energy_per_transfer() == pytest.approx(
            512 * xb.energy_per_bit
        )
        assert xb.energy_per_transfer(64) == pytest.approx(
            64 * xb.energy_per_bit
        )

    def test_llc_crossbar_magnitudes(self):
        """The LLC study's 8x8 crossbar: sub-ns traverse, pJ/bit scale."""
        xb = design_crossbar(TECH, 8, 8, 512)
        assert xb.delay < 2e-9
        assert 0.01e-12 < xb.energy_per_bit < 5e-12
