#!/usr/bin/env python3
"""Sensitivity analysis: what moves a solved design, and by how much.

Sweeps capacity, associativity, and technology node for an LP-DRAM cache
and reports metric trajectories and elasticities (d log metric / d log
input) -- the kind of derivative information that makes an analytical
model like CACTI-D more useful than point estimates.

Run:  python examples/sensitivity_analysis.py
"""

from repro import CellTech, MemorySpec
from repro.study.sensitivity import capacity_sweep, sweep

BASE = MemorySpec(
    capacity_bytes=4 << 20,
    block_bytes=64,
    associativity=8,
    node_nm=32.0,
    cell_tech=CellTech.LP_DRAM,
)


def print_series(result, metric, scale, unit):
    print(f"\n{metric} vs {result.parameter}:")
    for value, m in result.series(metric):
        print(f"  {value:>12g}  ->  {m * scale:.3f} {unit}")
    e = result.elasticity(metric)
    print(f"  elasticity: {e:+.2f}")


def main() -> None:
    print("Base design: 4 MB 8-way LP-DRAM cache at 32 nm")

    caps = capacity_sweep(BASE, factors=(1, 2, 4, 8, 16))
    print_series(caps, "access_time", 1e9, "ns")
    print_series(caps, "area", 1e6, "mm^2")
    print_series(caps, "p_leakage", 1e3, "mW")

    nodes = sweep(BASE, "node_nm", [90.0, 65.0, 45.0, 32.0])
    print_series(nodes, "access_time", 1e9, "ns")
    print_series(nodes, "e_read", 1e9, "nJ")

    assoc = sweep(BASE, "associativity", [2, 4, 8, 16])
    print_series(assoc, "e_read", 1e9, "nJ")

    print("\nSummary:")
    for result in (caps, nodes, assoc):
        print(result.report())


if __name__ == "__main__":
    main()
