"""Unit tests for repeated-wire design and derating."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits.repeaters import optimal_repeated_wire, repeated_wire
from repro.tech.nodes import technology

TECH = technology(32)
HP = TECH.device("hp")
F = TECH.feature_size


class TestOptimalRepeaters:
    def test_beats_unrepeated_long_wire(self):
        wire = TECH.global_
        design = optimal_repeated_wire(HP, wire, F)
        length = 5e-3
        assert design.delay(length) < wire.elmore_delay(length)

    def test_delay_linear_in_length(self):
        design = optimal_repeated_wire(HP, TECH.global_, F)
        assert design.delay(4e-3) == pytest.approx(2 * design.delay(2e-3))

    def test_plausible_delay_per_mm(self):
        """Repeated global wires at 32 nm run ~50-250 ps/mm."""
        design = optimal_repeated_wire(HP, TECH.global_, F)
        per_mm = design.delay_per_m * 1e-3
        assert 30e-12 < per_mm < 400e-12

    def test_semi_global_slower_than_global(self):
        semi = optimal_repeated_wire(HP, TECH.semi_global, F)
        glob = optimal_repeated_wire(HP, TECH.global_, F)
        assert semi.delay_per_m > glob.delay_per_m

    def test_lstp_repeaters_slower(self):
        lstp = optimal_repeated_wire(TECH.device("lstp"), TECH.global_, F)
        hp = optimal_repeated_wire(HP, TECH.global_, F)
        assert lstp.delay_per_m > hp.delay_per_m


class TestDerating:
    def test_zero_penalty_returns_optimal(self):
        a = repeated_wire(HP, TECH.global_, F, max_delay_penalty=0.0)
        b = optimal_repeated_wire(HP, TECH.global_, F)
        assert a.delay_per_m == b.delay_per_m

    def test_derating_saves_energy(self):
        """The max-repeater-delay constraint trades delay for energy
        (paper section 2.4)."""
        best = optimal_repeated_wire(HP, TECH.global_, F)
        derated = repeated_wire(HP, TECH.global_, F, max_delay_penalty=0.5)
        assert derated.energy_per_m < best.energy_per_m
        assert derated.delay_per_m <= best.delay_per_m * 1.5 + 1e-18

    @given(st.floats(min_value=0.05, max_value=1.0))
    def test_budget_respected(self, penalty):
        best = optimal_repeated_wire(HP, TECH.global_, F)
        derated = repeated_wire(HP, TECH.global_, F, max_delay_penalty=penalty)
        assert derated.delay_per_m <= best.delay_per_m * (1 + penalty) * 1.001

    @given(st.floats(min_value=0.05, max_value=1.0))
    def test_energy_never_worse_than_optimal(self, penalty):
        best = optimal_repeated_wire(HP, TECH.global_, F)
        derated = repeated_wire(HP, TECH.global_, F, max_delay_penalty=penalty)
        assert derated.energy_per_m <= best.energy_per_m

    def test_leakage_drops_with_derating(self):
        best = optimal_repeated_wire(HP, TECH.global_, F)
        derated = repeated_wire(HP, TECH.global_, F, max_delay_penalty=0.6)
        assert derated.leakage_per_m < best.leakage_per_m
