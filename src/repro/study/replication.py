"""Replicated study runs: seed-averaged results with dispersion.

Synthetic workloads carry sampling noise; a single seed can flatter or
damn a configuration.  This module repeats (application, configuration)
runs across seeds and reports mean, standard deviation, and a normal-
approximation confidence half-width for the headline metrics, so study
conclusions come with error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.study.runner import RunResult, run_one
from repro.workloads.synthetic import WorkloadProfile


@dataclass(frozen=True)
class Replicated:
    """Seed-replicated statistics for one (app, config) cell."""

    app: str
    config: str
    runs: tuple[RunResult, ...]

    def _values(self, metric: str) -> list[float]:
        extractors = {
            "ipc": lambda r: r.ipc,
            "cycles": lambda r: r.stats.cycles,
            "read_latency": lambda r: r.stats.average_read_latency,
            "hierarchy_power": lambda r: r.power.total,
            "energy_delay": lambda r: r.system.energy_delay,
        }
        if metric not in extractors:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"choose from {sorted(extractors)}")
        return [extractors[metric](r) for r in self.runs]

    def mean(self, metric: str) -> float:
        values = self._values(metric)
        return sum(values) / len(values)

    def std(self, metric: str) -> float:
        values = self._values(metric)
        if len(values) < 2:
            return 0.0
        mu = sum(values) / len(values)
        return math.sqrt(
            sum((v - mu) ** 2 for v in values) / (len(values) - 1)
        )

    def confidence_half_width(self, metric: str, z: float = 1.96) -> float:
        """+- half-width of the ~95 % interval on the mean."""
        n = len(self.runs)
        return z * self.std(metric) / math.sqrt(n) if n > 1 else 0.0

    def cv(self, metric: str) -> float:
        """Coefficient of variation: dispersion relative to the mean."""
        mu = self.mean(metric)
        return self.std(metric) / mu if mu else 0.0


def replicate(
    profile: WorkloadProfile,
    config_name: str,
    seeds: tuple[int, ...] = (7, 1234, 5150),
    source: str = "paper",
    scale: int = 16,
) -> Replicated:
    """Run one cell across ``seeds``."""
    runs = tuple(
        run_one(profile, config_name, source=source, scale=scale, seed=s)
        for s in seeds
    )
    return Replicated(app=profile.name, config=config_name, runs=runs)


def speedup_interval(
    baseline: Replicated, candidate: Replicated, z: float = 1.96
) -> tuple[float, float, float]:
    """(mean, low, high) of the candidate-vs-baseline cycle speedup.

    First-order error propagation on the ratio of means.
    """
    b, c = baseline.mean("cycles"), candidate.mean("cycles")
    ratio = b / c
    rel = math.sqrt(
        (baseline.confidence_half_width("cycles", z) / b) ** 2
        + (candidate.confidence_half_width("cycles", z) / c) ** 2
    )
    return ratio, ratio * (1 - rel), ratio * (1 + rel)
