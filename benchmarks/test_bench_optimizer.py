"""Ablation (paper section 2.4): the solution optimization methodology.

Sweeps the three user-facing optimizer constraints -- max area, max access
time, max repeater delay -- on a 4 MB SRAM array and shows the controlled
exploration of the area/delay/energy space the paper describes, including
the repeater-derating energy savings.

Also times the optimizer fast path (structural pre-filter + cross-candidate
memoization + persistent solve cache) against the naive
construct-every-candidate sweep and records the results in
``BENCH_optimizer.json`` at the repository root.
"""

import json
import os
import time

from conftest import print_table

from repro.core.cacti import data_array_spec, solve, tag_array_spec
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.optimizer import SweepStats, feasible_designs, optimize
from repro.core.solvecache import SolveCache
from repro.tech.nodes import technology

SPEC = MemorySpec(capacity_bytes=4 << 20, block_bytes=64, associativity=8,
                  node_nm=32.0)
TECH = technology(32)


def sweep():
    array_spec = data_array_spec(SPEC)
    points = []
    for area_frac, time_frac, rep in (
        (0.05, 0.05, 0.0),
        (0.05, 0.5, 0.0),
        (0.3, 0.05, 0.0),
        (0.3, 0.5, 0.0),
        (1.0, 1.0, 0.0),
        (0.3, 0.5, 0.5),
    ):
        target = OptimizationTarget(
            max_area_fraction=area_frac,
            max_acctime_fraction=time_frac,
            max_repeater_delay_penalty=rep,
        )
        best = optimize(TECH, array_spec, target)
        points.append((area_frac, time_frac, rep, best))
    return array_spec, points


def test_optimizer_sweep(benchmark):
    array_spec, points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{a:.2f}", f"{t:.2f}", f"{r:.1f}",
         f"{best.t_access * 1e9:.2f}", f"{best.area * 1e6:.2f}",
         f"{best.e_read_access * 1e9:.3f}", f"{best.p_leakage:.3f}"]
        for a, t, r, best in points
    ]
    print_table(
        "Optimizer constraint sweep (4 MB SRAM, 32 nm)",
        ["max area", "max time", "rep penalty", "access ns", "area mm2",
         "E_rd nJ", "leak W"],
        rows,
    )

    by_key = {(a, t, r): best for a, t, r, best in points}
    tight_area = by_key[(0.05, 0.5, 0.0)]
    loose_area = by_key[(0.3, 0.05, 0.0)]
    # A tight area constraint yields a denser but slower design than a
    # tight access-time constraint.
    assert tight_area.area <= loose_area.area * 1.001
    assert loose_area.t_access <= tight_area.t_access * 1.05

    # Repeater derating saves energy without violating the delay budget.
    base = by_key[(0.3, 0.5, 0.0)]
    derated = by_key[(0.3, 0.5, 0.5)]
    assert derated.e_read_access <= base.e_read_access * 1.02

    # The staged filters genuinely prune the cloud.
    cloud = feasible_designs(TECH, array_spec)
    assert len(cloud) > 20
    print(f"feasible organizations: {len(cloud)}")


BENCH_JSON = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_optimizer.json")


def test_fast_path_speedup(tmp_path, benchmark):
    """Time the naive sweep against the fast path on a 2 MB SRAM solve
    and write the observability record to BENCH_optimizer.json."""
    spec = MemorySpec(capacity_bytes=2 << 20, block_bytes=64,
                      associativity=8, node_nm=32.0)
    data_spec, tag_spec = data_array_spec(spec), tag_array_spec(spec)

    def naive():
        # The seed code path: build every enumerated candidate of both
        # arrays with no pre-filter and no shared circuit designs.  The
        # module-level wire/cell caches are cleared so earlier tests in
        # the session don't pre-warm the baseline.
        from repro.circuits import repeaters
        from repro.tech import cells

        repeaters._WIRE_CACHE.clear()
        cells.cell.cache_clear()
        feasible_designs(TECH, data_spec, prefilter=False, cache=None)
        feasible_designs(TECH, tag_spec, prefilter=False, cache=None)

    t0 = time.perf_counter()
    naive()
    naive_s = time.perf_counter() - t0

    stats = SweepStats()

    def fast():
        return solve(spec, stats=stats)

    t0 = time.perf_counter()
    cold = benchmark.pedantic(fast, rounds=1, iterations=1)
    fast_s = time.perf_counter() - t0

    cache = SolveCache(tmp_path / "solves.json")
    solve(spec, solve_cache=cache)  # populate
    t0 = time.perf_counter()
    warm = solve(spec, solve_cache=cache)
    warm_s = time.perf_counter() - t0

    assert warm.access_time == cold.access_time
    speedup = naive_s / fast_s
    record = {
        "spec": "2MB SRAM cache, 64B blocks, 8-way, 32nm (data+tag)",
        "naive_s": round(naive_s, 4),
        "fast_s": round(fast_s, 4),
        "warm_cache_s": round(warm_s, 6),
        "speedup": round(speedup, 2),
        "stats": stats.as_dict(),
    }
    with open(BENCH_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")

    print_table(
        "Optimizer fast path (2 MB SRAM solve, 32 nm)",
        ["path", "wall s", "speedup"],
        [
            ["naive sweep", f"{naive_s:.3f}", "1.0x"],
            ["pre-filter + memoized", f"{fast_s:.3f}", f"{speedup:.1f}x"],
            ["warm solve cache", f"{warm_s:.5f}",
             f"{naive_s / warm_s:.0f}x"],
        ],
    )
    print(f"candidates: {stats.enumerated} enumerated, "
          f"{stats.prefiltered} pre-filtered "
          f"({stats.prefilter_rate * 100:.1f}%), {stats.built} built")

    # The fast path must actually be fast; 3x is a conservative floor
    # (typical machines see >5x) that tolerates noisy CI boxes.
    assert speedup > 3.0
    assert warm_s < fast_s / 10
    assert stats.enumerated == stats.prefiltered + stats.built
