"""The technology-branch lint: the registry refactor stays refactored.

``tools/lint_tech_branches.py`` fails CI when model code outside
``repro/tech/`` compares ``CellTech`` members or queries ``.is_dram``
-- the branches the trait system replaced.  These tests pin down what
the lint flags, what it allows, and that the shipped tree is clean.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
LINT = REPO / "tools" / "lint_tech_branches.py"

sys.path.insert(0, str(REPO / "tools"))

from lint_tech_branches import lint_file  # noqa: E402


def problems_in(tmp_path, source: str):
    path = tmp_path / "model.py"
    path.write_text(source)
    return lint_file(path)


class TestFlagged:
    def test_identity_comparison(self, tmp_path):
        problems = problems_in(
            tmp_path, "x = 1 if tech is CellTech.SRAM else 2\n"
        )
        assert len(problems) == 1
        assert "CellTech member" in problems[0][2]

    def test_equality_and_membership(self, tmp_path):
        source = (
            "a = spec.cell_tech == CellTech.LP_DRAM\n"
            "b = spec.cell_tech in (CellTech.LP_DRAM, other)\n"
            "c = cells.CellTech.COMM_DRAM != spec.cell_tech\n"
        )
        assert len(problems_in(tmp_path, source)) == 3

    def test_is_dram_attribute(self, tmp_path):
        problems = problems_in(
            tmp_path, "if spec.cell_tech.is_dram:\n    pass\n"
        )
        assert len(problems) == 1
        assert "is_dram" in problems[0][2]


class TestAllowed:
    def test_plain_member_use_is_fine(self, tmp_path):
        """Naming a technology is not branching on one."""
        source = (
            "spec = ArraySpec(cell_tech=CellTech.SRAM)\n"
            "techs = [CellTech.SRAM, CellTech.COMM_DRAM]\n"
        )
        assert problems_in(tmp_path, source) == []

    def test_trait_queries_are_fine(self, tmp_path):
        source = (
            "if spec.cell_tech.traits.needs_refresh:\n    pass\n"
            "x = traits.sensing is SensingScheme.CHARGE_SHARE\n"
        )
        assert problems_in(tmp_path, source) == []

    def test_repro_tech_is_exempt(self):
        from lint_tech_branches import lint

        registry = REPO / "src" / "repro" / "tech" / "registry.py"
        assert lint([registry]) == []


class TestShippedTree:
    def test_src_repro_is_clean(self):
        result = subprocess.run(
            [sys.executable, str(LINT)],
            capture_output=True,
            text=True,
            cwd=REPO,
        )
        assert result.returncode == 0, result.stdout
