"""Tests for trace capture and replay."""

import pytest

from repro.sim.cache import CacheConfig
from repro.sim.dram_channel import MemoryTimingCycles
from repro.sim.system import System, SystemConfig
from repro.workloads.npb import FT_B
from repro.workloads.synthetic import event_stream
from repro.workloads.trace import (
    TraceFormatError,
    load_trace,
    load_traces,
    save_trace,
    save_traces,
)

EVENTS = [
    ("step", 10, 31.0, 0x1000, False),
    ("compute", 5, 20.0),
    ("mem", 0xDEAD40, True),
    ("barrier",),
    ("lock", 3, 50.0),
]


class TestRoundTrip:
    def test_events_survive(self, tmp_path):
        path = tmp_path / "t.trace"
        assert save_trace(EVENTS, path) == len(EVENTS)
        assert list(load_trace(path)) == EVENTS

    def test_synthetic_stream_round_trips(self, tmp_path):
        profile = FT_B.with_instructions(3000).scaled(16)
        events = list(event_stream(profile, 0, 32))
        path = tmp_path / "ft.trace"
        save_trace(events, path)
        assert list(load_trace(path)) == events

    def test_multi_thread_layout(self, tmp_path):
        streams = [list(EVENTS) for _ in range(4)]
        counts = save_traces(streams, tmp_path / "traces")
        assert counts == [len(EVENTS)] * 4
        loaded = load_traces(tmp_path / "traces")
        assert len(loaded) == 4
        assert list(loaded[0]) == EVENTS

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_traces(tmp_path / "nothing")


class TestFormat:
    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "c.trace"
        path.write_text("# header\n\nB\n")
        assert list(load_trace(path)) == [("barrier",)]

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("S 1\n")
        with pytest.raises(TraceFormatError, match="line 1"):
            list(load_trace(path))

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("X 1 2\n")
        with pytest.raises(TraceFormatError, match="unknown record"):
            list(load_trace(path))

    def test_unserializable_event(self, tmp_path):
        with pytest.raises(TraceFormatError):
            save_trace([("jump", 1)], tmp_path / "x.trace")


class TestReplayEquivalence:
    def test_simulation_identical_from_trace(self, tmp_path):
        """Replaying a captured trace reproduces the live run exactly."""
        profile = FT_B.with_instructions(2000).scaled(16)
        config = SystemConfig(
            name="replay",
            l1=CacheConfig(1024, 64, 2, 2),
            l2=CacheConfig(4096, 64, 4, 3),
            l3=None,
            memory=MemoryTimingCycles(30, 31, 28, 70, 98, 15, 5),
            num_cores=2,
            threads_per_core=2,
        )
        streams = [
            list(event_stream(profile, tid, 4)) for tid in range(4)
        ]
        save_traces([list(s) for s in streams], tmp_path / "tr")

        live = System(config).run([iter(s) for s in streams])
        replay = System(config).run(load_traces(tmp_path / "tr"))
        assert replay.cycles == live.cycles
        assert replay.instructions == live.instructions
        assert replay.counters.mem_reads == live.counters.mem_reads
