"""Ablation (paper section 2.4): the solution optimization methodology.

Sweeps the three user-facing optimizer constraints -- max area, max access
time, max repeater delay -- on a 4 MB SRAM array and shows the controlled
exploration of the area/delay/energy space the paper describes, including
the repeater-derating energy savings.
"""

from conftest import print_table

from repro.core.cacti import data_array_spec
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.optimizer import feasible_designs, optimize
from repro.tech.nodes import technology

SPEC = MemorySpec(capacity_bytes=4 << 20, block_bytes=64, associativity=8,
                  node_nm=32.0)
TECH = technology(32)


def sweep():
    array_spec = data_array_spec(SPEC)
    points = []
    for area_frac, time_frac, rep in (
        (0.05, 0.05, 0.0),
        (0.05, 0.5, 0.0),
        (0.3, 0.05, 0.0),
        (0.3, 0.5, 0.0),
        (1.0, 1.0, 0.0),
        (0.3, 0.5, 0.5),
    ):
        target = OptimizationTarget(
            max_area_fraction=area_frac,
            max_acctime_fraction=time_frac,
            max_repeater_delay_penalty=rep,
        )
        best = optimize(TECH, array_spec, target)
        points.append((area_frac, time_frac, rep, best))
    return array_spec, points


def test_optimizer_sweep(benchmark):
    array_spec, points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [f"{a:.2f}", f"{t:.2f}", f"{r:.1f}",
         f"{best.t_access * 1e9:.2f}", f"{best.area * 1e6:.2f}",
         f"{best.e_read_access * 1e9:.3f}", f"{best.p_leakage:.3f}"]
        for a, t, r, best in points
    ]
    print_table(
        "Optimizer constraint sweep (4 MB SRAM, 32 nm)",
        ["max area", "max time", "rep penalty", "access ns", "area mm2",
         "E_rd nJ", "leak W"],
        rows,
    )

    by_key = {(a, t, r): best for a, t, r, best in points}
    tight_area = by_key[(0.05, 0.5, 0.0)]
    loose_area = by_key[(0.3, 0.05, 0.0)]
    # A tight area constraint yields a denser but slower design than a
    # tight access-time constraint.
    assert tight_area.area <= loose_area.area * 1.001
    assert loose_area.t_access <= tight_area.t_access * 1.05

    # Repeater derating saves energy without violating the delay budget.
    base = by_key[(0.3, 0.5, 0.0)]
    derated = by_key[(0.3, 0.5, 0.5)]
    assert derated.e_read_access <= base.e_read_access * 1.02

    # The staged filters genuinely prune the cloud.
    cloud = feasible_designs(TECH, array_spec)
    assert len(cloud) > 20
    print(f"feasible organizations: {len(cloud)}")
