"""Paper Figure 5(a): memory-hierarchy power breakdown."""

from conftest import print_table

from repro.study.table3 import CONFIG_NAMES

_COMPONENTS = (
    "l1_leak", "l1_dyn", "l2_leak", "l2_dyn", "crossbar_leak",
    "crossbar_dyn", "l3_leak", "l3_dyn", "l3_refresh", "main_chip_dyn",
    "main_standby", "main_refresh", "main_bus",
)


def test_figure5a(study_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for app in study_result.app_names:
        for config in CONFIG_NAMES:
            p = study_result.get(app, config).power
            d = p.as_dict()
            rows.append([
                app, config, f"{p.total:.2f}",
                *(f"{d[c]:.2f}" for c in _COMPONENTS),
            ])
    print_table(
        "Figure 5(a): memory-hierarchy power (W)",
        ["app", "config", "total", *_COMPONENTS],
        rows,
    )

    s = study_result
    increases = {
        c: s.mean_hierarchy_power_increase(c) for c in CONFIG_NAMES[1:]
    }
    paper = {"sram": 0.58, "lp_dram_ed": 0.37, "lp_dram_c": 0.35,
             "cm_dram_ed": 0.012, "cm_dram_c": 0.023}
    for config, value in increases.items():
        print(f"mean hierarchy power increase {config}: {value:+.1%} "
              f"(paper: {paper[config]:+.1%})")

    # Paper orderings: SRAM raises hierarchy power the most, LP-DRAM less,
    # COMM-DRAM barely at all.
    assert increases["sram"] > increases["lp_dram_ed"]
    assert increases["sram"] > increases["lp_dram_c"]
    assert increases["lp_dram_ed"] > increases["cm_dram_ed"]
    assert abs(increases["cm_dram_c"]) < 0.15
    assert abs(increases["cm_dram_ed"]) < 0.15

    # Main memory dominates hierarchy power in every configuration
    # ("the main power drain in the memory hierarchy is the main memory
    # chips") for the average app.
    for config in ("nol3", "cm_dram_c"):
        mains, totals = 0.0, 0.0
        for app in s.app_names:
            p = s.get(app, config).power
            mains += p.main_memory_total
            totals += p.total
        assert mains > 0.35 * totals

    # The nol3 hierarchy consumes several watts (paper: 6.6 W average).
    avg_nol3 = sum(
        s.get(app, "nol3").power.total for app in s.app_names
    ) / len(s.app_names)
    print(f"average nol3 hierarchy power: {avg_nol3:.1f} W (paper: 6.6 W)")
    assert 2.0 < avg_nol3 < 15.0
