"""Unit tests for Solution composition semantics."""

import pytest

from repro.core.cacti import solve
from repro.core.config import AccessMode, MemorySpec
from repro.tech.cells import CellTech


@pytest.fixture(scope="module")
def normal():
    return solve(MemorySpec(capacity_bytes=2 << 20, block_bytes=64,
                            associativity=8, node_nm=32.0,
                            cell_tech=CellTech.LP_DRAM))


@pytest.fixture(scope="module")
def sequential():
    return solve(MemorySpec(capacity_bytes=2 << 20, block_bytes=64,
                            associativity=8, node_nm=32.0,
                            cell_tech=CellTech.LP_DRAM,
                            access_mode=AccessMode.SEQUENTIAL))


class TestComposition:
    def test_normal_access_is_max_of_paths(self, normal):
        assert normal.access_time >= normal.data.t_access
        assert normal.access_time >= normal.tag.t_access

    def test_sequential_access_is_sum(self, sequential):
        assert (
            sequential.access_time
            > sequential.tag.t_access + sequential.data.t_access
        )

    def test_sequential_reads_one_way(self, normal, sequential):
        """Sequential mode divides the activation energy by the ways."""
        assert sequential.e_read < normal.e_read
        ways = normal.spec.associativity
        expected = (
            normal.tag.e_read_access
            + normal.data.e_activate / ways
            + normal.data.e_read_column
            + normal.data.e_precharge / ways
        )
        assert sequential.e_read == pytest.approx(expected, rel=0.05)

    def test_writes_unchanged_by_mode(self, normal, sequential):
        """Writes know their way up front; both modes pay the same."""
        assert sequential.e_write == pytest.approx(normal.e_write, rel=0.05)

    def test_totals_include_tag(self, normal):
        assert normal.area > normal.data.area
        assert normal.p_leakage > normal.data.p_leakage
        assert normal.p_refresh >= normal.data.p_refresh

    def test_cycle_times_take_worst_array(self, normal):
        assert normal.random_cycle_time == max(
            normal.data.t_random_cycle, normal.tag.t_random_cycle
        )
        assert normal.interleave_cycle_time == max(
            normal.data.t_interleave, normal.tag.t_interleave
        )

    def test_area_efficiency_weighted_average(self, normal):
        lo = min(normal.data.area_efficiency, normal.tag.area_efficiency)
        hi = max(normal.data.area_efficiency, normal.tag.area_efficiency)
        assert lo <= normal.area_efficiency <= hi


class TestUnitViews:
    def test_unit_conversions(self, normal):
        assert normal.access_time_ns == pytest.approx(
            normal.access_time * 1e9
        )
        assert normal.e_read_nj == pytest.approx(normal.e_read * 1e9)
        assert normal.p_leakage_mw == pytest.approx(normal.p_leakage * 1e3)
        assert normal.area_mm2 == pytest.approx(normal.area * 1e6)

    def test_summary_mentions_all_headlines(self, normal):
        text = normal.summary()
        for fragment in ("access time", "random cycle", "interleave",
                         "read energy", "leakage", "refresh", "area"):
            assert fragment in text
