"""Sensitivity analysis: how solved metrics respond to inputs.

A modeling tool earns trust by exposing its derivatives: which inputs
move which outputs, and by how much.  This module sweeps a one-dimensional
input of a :class:`~repro.core.config.MemorySpec` (capacity,
associativity, block size, technology node, banks) or an optimizer knob,
re-solves at each point, and reports the resulting metric trajectories
plus local elasticities (d log(metric) / d log(input)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core.cacti import solve
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.optimizer import NoFeasibleSolution
from repro.core.results import Solution

#: Metrics extracted from each solved point.
METRICS: dict[str, Callable[[Solution], float]] = {
    "access_time": lambda s: s.access_time,
    "random_cycle": lambda s: s.random_cycle_time,
    "e_read": lambda s: s.e_read,
    "p_leakage": lambda s: s.p_leakage,
    "p_refresh": lambda s: s.p_refresh,
    "area": lambda s: s.area,
    "area_efficiency": lambda s: s.area_efficiency,
}

#: Spec fields sweepable by name.
SWEEPABLE = (
    "capacity_bytes",
    "block_bytes",
    "associativity",
    "nbanks",
    "node_nm",
)


@dataclass(frozen=True)
class SweepPoint:
    """One solved point of a sweep."""

    value: float
    solution: Solution | None  #: None if infeasible at this value

    def metric(self, name: str) -> float | None:
        if self.solution is None:
            return None
        return METRICS[name](self.solution)


@dataclass(frozen=True)
class SensitivityResult:
    """A full one-dimensional sweep."""

    parameter: str
    points: tuple[SweepPoint, ...]

    def series(self, metric: str) -> list[tuple[float, float]]:
        """(input value, metric value) pairs for the feasible points."""
        return [
            (p.value, p.metric(metric))
            for p in self.points
            if p.solution is not None
        ]

    def elasticity(self, metric: str) -> float | None:
        """Log-log slope of the metric over the sweep (least squares).

        An elasticity of 1.0 means the metric scales proportionally with
        the input; 0.5 like its square root; 0 means insensitive.
        Returns None with fewer than two feasible points.
        """
        pairs = [
            (v, m) for v, m in self.series(metric) if v > 0 and m > 0
        ]
        if len(pairs) < 2:
            return None
        xs = [math.log(v) for v, _ in pairs]
        ys = [math.log(m) for _, m in pairs]
        n = len(xs)
        mean_x, mean_y = sum(xs) / n, sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        if sxx == 0:
            return None
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        return sxy / sxx

    def report(self) -> str:
        lines = [f"sensitivity sweep over {self.parameter}"]
        for metric in METRICS:
            e = self.elasticity(metric)
            if e is None:
                continue
            lines.append(f"  {metric:<16} elasticity {e:+.2f}")
        return "\n".join(lines)


def sweep(
    base: MemorySpec,
    parameter: str,
    values: Sequence,
    target: OptimizationTarget | None = None,
) -> SensitivityResult:
    """Re-solve ``base`` across ``values`` of ``parameter``."""
    if parameter not in SWEEPABLE:
        raise ValueError(
            f"cannot sweep {parameter!r}; choose one of {SWEEPABLE}"
        )
    points = []
    for value in values:
        try:
            spec = replace(base, **{parameter: value})
            solution = solve(spec, target)
        except (NoFeasibleSolution, ValueError):
            solution = None
        points.append(SweepPoint(value=float(value), solution=solution))
    if not any(p.solution is not None for p in points):
        raise NoFeasibleSolution(
            f"no feasible point in the {parameter} sweep"
        )
    return SensitivityResult(parameter=parameter, points=tuple(points))


def capacity_sweep(
    base: MemorySpec, factors: Sequence[int] = (1, 2, 4, 8, 16)
) -> SensitivityResult:
    """Convenience: sweep capacity by powers of two from the base."""
    return sweep(
        base,
        "capacity_bytes",
        [base.capacity_bytes * f for f in factors],
    )
