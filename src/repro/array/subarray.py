"""Subarray model: cells, wordlines, bitlines, sensing, restore, precharge.

A subarray is a contiguous grid of memory cells with its own wordline
drivers (one edge), sense amplifiers (another edge), and a share of the row
decoder.  CACTI-D models every cell technology in one framework --
identical peripheral methodology -- and differs only where the declared
:class:`~repro.tech.registry.CellTraits` genuinely differ:

* Current-latch technologies (SRAM, STT-RAM) actively drive one bitline of
  a precharged pair until the required sense differential develops; the
  cell is undisturbed.
* Charge-share technologies (the DRAMs) read by destructive charge
  redistribution; the sense amplifier must regenerate the full bitline
  swing, which also writes the data back into the cell; afterwards the
  bitlines must be restored to VDD/2 (precharge).

This module never names a technology: all dispatch is on trait values,
so a technology registered with :mod:`repro.tech.registry` works here
without modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.circuits.decoder import DecoderMetrics, WordlineLoad, design_decoder
from repro.circuits.drivers import WireLoad
from repro.circuits.senseamp import SenseAmp, charge_share_signal
from repro.tech.cells import CellParams
from repro.tech.devices import TEMPERATURE_LEAKAGE_FACTOR, DeviceParams
from repro.tech.nodes import Technology
from repro.tech.registry import CellTraits, SensingScheme

#: RC settling multiplier for full-swing charging (to ~90 %).
_T_SETTLE = 2.3

#: RC settling multiplier to ~1 % precision, for bitline equalization of
#: technologies whose precharge level is the sensing reference.
_T_SETTLE_PRECISE = 4.6

#: Cell-restore slowdown: as the storage node approaches full level the
#: access device's overdrive (VPP - Vth - Vcell) collapses, so the final
#: restore is several RC constants slower than the nominal channel
#: resistance suggests.
_RESTORE_SLOWDOWN = 3.0

#: Width of a bitline precharge/equalize device, in feature sizes.
_PRECHARGE_WIDTH_F = 8.0

#: Edge overhead of a subarray: wordline-driver strip width, in feature
#: sizes.  The sense-amp strip height comes from the cell traits (DRAM
#: strips are taller -- the amps are big relative to the tiny cell pitch).
_DRIVER_STRIP_F = 20.0


class InfeasibleSubarray(ValueError):
    """Raised when a candidate subarray violates an electrical constraint."""


@dataclass(frozen=True)
class Subarray:
    """One subarray of ``rows x cols`` cells plus its edge circuitry."""

    tech: Technology
    cell: CellParams
    periph: DeviceParams
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise InfeasibleSubarray("subarray must have >= 1 row and column")

    @property
    def traits(self) -> CellTraits:
        """Declared behavior of this subarray's cell technology."""
        return self.cell.tech.traits

    # ------------------------------------------------------------------ #
    # Geometry

    @cached_property
    def cell_array_width(self) -> float:
        return self.cols * self.cell.width

    @cached_property
    def cell_array_height(self) -> float:
        return self.rows * self.cell.height

    @cached_property
    def width(self) -> float:
        """Subarray width including the wordline-driver strip (m)."""
        return self.cell_array_width + _DRIVER_STRIP_F * self.tech.feature_size

    @cached_property
    def height(self) -> float:
        """Subarray height including the sense-amp strip (m)."""
        strip = self.traits.sense_strip_height_f
        return self.cell_array_height + strip * self.tech.feature_size

    @cached_property
    def area(self) -> float:
        return self.width * self.height + self.decoder.area

    @cached_property
    def cell_area(self) -> float:
        """Area of the cells alone, for area-efficiency accounting (m^2)."""
        return self.rows * self.cols * self.cell.area

    # ------------------------------------------------------------------ #
    # Wordline and bitline electricals

    @cached_property
    def wordline_load(self) -> WordlineLoad:
        wire = self.tech.local
        # How many access gates one wordline drives per cell is a trait:
        # two for a 6T pair, one for 1T1C or 1T1MTJ cells.
        gates_per_cell = self.traits.wordline_gates_per_cell
        c_gate = (
            gates_per_cell * self.cell.access_width * self.periph.c_gate
        )
        c = self.cols * (c_gate + wire.c_per_m * self.cell.width)
        r = self.cols * wire.r_per_m * self.cell.width
        return WordlineLoad(
            resistance=r,
            capacitance=c,
            pitch=self.cell.height,
            voltage=self.cell.wordline_voltage,
        )

    @cached_property
    def bitline_capacitance(self) -> float:
        """Total capacitance of one bitline (F)."""
        wire = self.tech.bitline_wire(self.cell.tech)
        junction = (
            self.cell.access_c_drain * self.cell.access_width
            + self.cell.access_c_junction
        )
        # In a folded array only every other cell contacts a given
        # bitline, but the twin bitline runs the full height either way;
        # junction loading halves, wire loading does not.
        if self.traits.folded_bitline:
            junction = 0.5 * junction
        per_cell = junction + wire.c_per_m * self.cell.height
        return self.rows * per_cell

    @cached_property
    def bitline_resistance(self) -> float:
        """Total resistance of one bitline (ohm)."""
        wire = self.tech.bitline_wire(self.cell.tech)
        return self.rows * wire.r_per_m * self.cell.height

    # ------------------------------------------------------------------ #
    # Row decode

    @cached_property
    def decoder(self) -> DecoderMetrics:
        predec_wire = WireLoad(
            resistance=self.tech.semi_global.r_per_m * self.cell_array_height,
            capacitance=self.tech.semi_global.c_per_m * self.cell_array_height,
        )
        return design_decoder(
            self.periph,
            self.tech.feature_size,
            self.rows,
            self.wordline_load,
            predec_wire,
        )

    # ------------------------------------------------------------------ #
    # Sensing

    @cached_property
    def sense_amp(self) -> SenseAmp:
        return SenseAmp(self.periph, self.tech.feature_size)

    @cached_property
    def sense_signal(self) -> float:
        """Available sense signal (V); full rail for current-latch cells."""
        if self.traits.sensing is SensingScheme.CURRENT_LATCH:
            return self.periph.vdd
        assert self.cell.storage_cap is not None
        return charge_share_signal(
            self.cell.storage_cap, self.bitline_capacitance, self.cell.vdd_cell
        )

    @cached_property
    def t_bitline(self) -> float:
        """Bitline signal development time after the wordline rises (s)."""
        if self.traits.sensing is SensingScheme.CHARGE_SHARE:
            # Charge redistribution through the access device and bitline.
            assert self.cell.storage_cap is not None
            r_access = self.cell.access_r_channel / self.cell.access_width
            c_share = (
                self.cell.storage_cap
                * self.bitline_capacitance
                / (self.cell.storage_cap + self.bitline_capacitance)
            )
            return _T_SETTLE * (
                r_access + self.bitline_resistance / 2.0
            ) * c_share
        # Current-latch: constant-current discharge to the sense swing
        # plus the distributed bitline RC.
        swing = 0.10 * self.periph.vdd
        discharge = self.bitline_capacitance * swing / self.cell.read_current
        return discharge + 0.38 * self.bitline_resistance * self.bitline_capacitance

    @cached_property
    def t_sense(self) -> float:
        """Sense-amp latching (and, if restoring, regeneration) time (s)."""
        if self.traits.sensing is SensingScheme.CHARGE_SHARE:
            try:
                return self.sense_amp.restore_delay(
                    self.bitline_capacitance,
                    self.sense_signal,
                    self.cell.vdd_cell,
                )
            except ValueError as exc:
                raise InfeasibleSubarray(str(exc)) from exc
        return self.sense_amp.latch_delay()

    @cached_property
    def t_writeback(self) -> float:
        """Wordline hold time beyond sensing that closes the row (s).

        For destructive-read cells this is the storage-node restore after
        the bitline reaches full rail.  For non-destructive cells it is
        the technology's declared write-pulse overhead (the row cycle is
        sized for the worst-case operation, a write): zero when writes
        are no slower than reads.  Either way it extends the row cycle,
        not the access time.
        """
        if self.traits.destructive_read:
            assert self.cell.storage_cap is not None
            r_access = self.cell.access_r_channel / self.cell.access_width
            return (
                _T_SETTLE * _RESTORE_SLOWDOWN * r_access * self.cell.storage_cap
            )
        return self.traits.write_pulse_time

    @cached_property
    def t_precharge(self) -> float:
        """Bitline precharge/equalize time (s).

        Technologies whose precharge level is the sensing reference (the
        charge-share DRAMs) must settle to well within the sense margin,
        so they pay a precision settling factor and a half-rail swing;
        others only erase the small read swing.  Both facts are traits.
        """
        w_pre = _PRECHARGE_WIDTH_F * self.tech.feature_size
        r_pre = self.periph.r_eff / w_pre
        swing_factor = self.traits.precharge_swing_fraction
        settle = _T_SETTLE_PRECISE if self.traits.precise_precharge else _T_SETTLE
        c = self.bitline_capacitance
        # Equalization shorts the pair, halving the effective excursion.
        return settle * r_pre * c * swing_factor + 0.38 * (
            self.bitline_resistance * c * swing_factor
        )

    # ------------------------------------------------------------------ #
    # Per-access energies

    @cached_property
    def e_sense_per_pair(self) -> float:
        """Energy of sensing one bitline pair on a read (J)."""
        if self.traits.sensing is SensingScheme.CHARGE_SHARE:
            return self.sense_amp.restore_energy(
                self.bitline_capacitance, self.cell.vdd_cell
            )
        return self.sense_amp.latch_energy(self.bitline_capacitance)

    def e_read_bitlines(self, num_sensed: int) -> float:
        """Energy of sensing ``num_sensed`` bitline pairs on a read (J)."""
        return num_sensed * self.e_sense_per_pair

    def e_write_bitlines(self, num_written: int) -> float:
        """Energy of driving ``num_written`` bitline pairs on a write (J).

        The write-swing trait scales the full-rail energy: 1.0 when every
        written pair swings (SRAM), 0.5 when writes flip already-sensed
        bitlines to the new data (DRAM restore-then-flip).
        """
        vdd = self.cell.vdd_cell
        return (
            num_written
            * self.bitline_capacitance
            * vdd
            * vdd
            * self.traits.write_swing_fraction
        )

    @cached_property
    def e_wordline(self) -> float:
        """Energy of one wordline selection, including decode (J)."""
        return self.decoder.energy

    @cached_property
    def leakage_fixed(self) -> float:
        """Sense-amp-independent leakage (W): cells + decoder."""
        cell_leak = (
            self.rows
            * self.cols
            * self.cell.access_i_off
            * TEMPERATURE_LEAKAGE_FACTOR
            * self.cell.access_width
            * self.cell.vdd_cell
        )
        # Supply-leakage paths per cell are a trait: 2.0 for a 6T cell
        # (both inverters leak; access devices are off), 0.0 when cell
        # leakage drains a storage node instead of the supply -- that
        # costs refresh energy (modeled separately), not static power.
        cell_leak *= self.traits.cell_leak_paths
        return cell_leak + self.decoder.leakage

    def leakage(self, num_sense_amps: int) -> float:
        """Static leakage of this subarray (W): cells + decoder + amps."""
        return self.leakage_fixed + num_sense_amps * self.sense_amp.leakage()

    # ------------------------------------------------------------------ #
    # Composite row timings

    @cached_property
    def t_row_to_sense(self) -> float:
        """Decode + wordline + bitline + sense: data latched in the amps (s)."""
        return (
            self.decoder.delay + self.t_bitline + self.t_sense
        )

    @cached_property
    def t_row_cycle(self) -> float:
        """Full destructive-read row cycle: sense + restore + precharge (s)."""
        return self.t_row_to_sense + self.t_writeback + self.t_precharge

    def check_sense_feasible(self) -> None:
        """Raise InfeasibleSubarray if the sensing signal budget is violated.

        Only charge-share technologies have a signal-margin feasibility
        limit (too many cells per bitline for the storage capacitor);
        current-latch sensing always develops full differential.
        """
        if self.traits.sensing is SensingScheme.CHARGE_SHARE:
            _ = self.t_sense  # triggers the signal-margin check

    #: Pre-registry name of :meth:`check_sense_feasible`.
    check_dram_feasible = check_sense_feasible
