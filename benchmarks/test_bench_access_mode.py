"""Ablation (paper sections 2.3.4/3.4): normal vs sequential cache access.

A *sequential* cache reads data only after the tag lookup, sensing a
single way instead of the whole set -- the paper cites this as the
energy-saving mode whose access pattern breaks set-per-page mapping
locality.  For a high-associativity DRAM LLC the activation energy scales
with the sensed page, so sequential access saves a large fraction of read
energy at the cost of serializing tag and data latency.

Also quantifies the refresh availability cost of the LP-DRAM L3's 0.12 ms
retention: what fraction of array time refresh steals.
"""

from conftest import print_table

from repro.core.cacti import solve
from repro.core.config import (
    DENSITY_OPTIMIZED,
    AccessMode,
    MemorySpec,
)
from repro.models.refresh import refresh_schedule
from repro.study.table3 import solve_l3
from repro.tech.cells import CellTech


def solve_both_modes():
    out = {}
    for mode in (AccessMode.NORMAL, AccessMode.SEQUENTIAL):
        out[mode] = solve(
            MemorySpec(
                capacity_bytes=192 << 20, block_bytes=64, associativity=24,
                nbanks=8, node_nm=32.0, cell_tech=CellTech.COMM_DRAM,
                access_mode=mode,
            ),
            DENSITY_OPTIMIZED,
        )
    return out


def test_access_modes(benchmark):
    solutions = benchmark.pedantic(solve_both_modes, rounds=1, iterations=1)
    rows = [
        [mode.value,
         f"{s.access_time * 1e9:.2f}",
         f"{s.e_read * 1e9:.3f}",
         f"{s.e_write * 1e9:.3f}"]
        for mode, s in solutions.items()
    ]
    print_table(
        "Normal vs sequential access (192 MB 24-way COMM-DRAM L3)",
        ["mode", "access ns", "E_read nJ", "E_write nJ"],
        rows,
    )
    normal = solutions[AccessMode.NORMAL]
    seq = solutions[AccessMode.SEQUENTIAL]
    saving = 1 - seq.e_read / normal.e_read
    penalty = seq.access_time / normal.access_time - 1
    print(f"sequential read-energy saving: {saving:.0%}, "
          f"latency penalty: {penalty:+.0%}")

    # Sensing one way instead of 24 must save a large energy fraction...
    assert saving > 0.3
    # ...while serializing tag+data costs latency.
    assert seq.access_time > normal.access_time


def test_refresh_availability(benchmark):
    """LP-DRAM's 0.12 ms retention: how much array time refresh steals."""
    def schedules():
        out = []
        for name in ("lp_dram_ed", "lp_dram_c", "cm_dram_ed", "cm_dram_c"):
            row = solve_l3(name)
            cell = (CellTech.LP_DRAM if name.startswith("lp")
                    else CellTech.COMM_DRAM)
            retention = 0.12e-3 if cell is CellTech.LP_DRAM else 64e-3
            # Distributed refresh: every subarray refreshes its own rows
            # concurrently, so the availability tax per subarray is
            # (rows x row cycle) / retention.
            sched = refresh_schedule(
                total_rows=row.rows_per_subarray,
                rows_per_operation=1,
                retention_time=retention,
                row_cycle_time=row.random_cycles * 0.5e-9,
                nbanks=1,
            )
            out.append((name, retention, sched))
        return out

    results = benchmark.pedantic(schedules, rounds=1, iterations=1)
    rows = [
        [name, f"{ret * 1e3:g}", f"{s.refresh_interval * 1e9:.0f}",
         f"{s.bandwidth_overhead:.2%}"]
        for name, ret, s in results
    ]
    print_table(
        "Refresh availability cost of the DRAM L3s",
        ["config", "retention ms", "tREFI ns", "bandwidth stolen"],
        rows,
    )
    by_name = {name: s for name, _, s in results}
    # LP-DRAM refreshes ~500x more often; its bandwidth tax must dominate
    # COMM-DRAM's, yet stay manageable (the paper deploys LP-DRAM LLCs).
    assert (by_name["lp_dram_ed"].bandwidth_overhead
            > 20 * by_name["cm_dram_ed"].bandwidth_overhead)
    # ... yet the tax stays manageable, which is why the paper can deploy
    # LP-DRAM LLCs at all.
    assert by_name["lp_dram_ed"].bandwidth_overhead < 0.10
