"""The single-JSON-file backend: the original cache format, unchanged.

One file holds ``{"version": ..., "records": {key: record, ...}}``,
written with sorted keys -- byte-compatible with every solve-cache file
produced before the store refactor, so existing ``--cache`` files keep
working (and stay readable by older builds of the same version).

Every save rewrites the whole file: load-before-save merges records a
concurrent writer flushed since we loaded, then an atomic
``os.replace`` of a uniquely-named temp file swaps the union in.  The
load-merge-replace sequence holds an advisory ``flock`` on a sibling
``<name>.lock`` file, so concurrent saves serialize and each one's
union really contains every record flushed before it -- without the
lock, two overlapping saves could both load the same disk state and
the second replace would drop records the first added.  A killed
process cannot corrupt the records (the lock dies with it and the
temp-file swap is atomic).  The O(total records) rewrite is this
backend's scaling limit; :class:`~repro.store.sqlite.SqliteStore`
exists for workloads past it.

Version handling mirrors the original cache: a *known-older* version
loads as empty and the next flush rewrites the file at the current
version (the migration path).  An *unrecognized* version -- most
likely a file written by a newer build -- is never served from and
never clobbered: the store warns once and redirects its own writes to
a version-suffixed sibling path (``<name>.<version>``), leaving the
foreign file intact.
"""

from __future__ import annotations

import contextlib
import json
import os
import warnings
from pathlib import Path
from typing import Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - Windows: saves stay last-wins
    fcntl = None

from repro.store.base import KVStore, Validator


class JsonFileStore(KVStore):
    """One version-stamped JSON file of records, rewritten atomically."""

    BACKEND = "json"

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        version: str,
        older_versions: tuple[str, ...] = (),
        validate: Validator | None = None,
    ):
        super().__init__(
            version=version, older_versions=older_versions,
            validate=validate,
        )
        self._path = Path(path)
        #: Where flushes land.  Normally ``path``; redirected to a
        #: version-suffixed sibling when ``path`` holds a foreign
        #: (unrecognized-version) store that must not be clobbered.
        self._write_path = self._path
        # Created empty before _load(): screening inside the load may
        # tombstone corrupt records, which drops them from _records.
        self._records: dict[str, dict] = {}
        self._records = self._load()

    # ------------------------------------------------------------------ #
    # Engine interface

    @property
    def path(self) -> Path:
        return self._path

    @property
    def url(self) -> str:
        return str(self._path)

    def get(self, key: str) -> dict | None:
        record = self._records.get(key)
        if record is None:
            return None
        return self._screen_record(key, record)

    def put(self, key: str, record: dict) -> None:
        self._records[key] = record
        self._tombstoned.discard(key)
        self._dirty = True

    def scan(self) -> Iterator[tuple[str, dict]]:
        # Key order, matching the sqlite backend's ORDER BY: scans (and
        # everything built on them, e.g. migration) are deterministic.
        for key in sorted(self._records):
            record = self.get(key)
            if record is not None:
                yield key, record

    def __len__(self) -> int:
        return len(self._records)

    def refresh(self) -> None:
        """Merge records another process wrote since we loaded.

        In-memory records win key conflicts, which is harmless for
        deterministic workloads: two processes writing the same key
        wrote the same record.  Tombstoned keys stay dropped.
        """
        self._records = {**self._load(), **self._records}

    def _drop(self, key: str) -> None:
        self._records.pop(key, None)

    # ------------------------------------------------------------------ #
    # File format

    def _load(self) -> dict[str, dict]:
        try:
            payload = json.loads(self._write_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        version = payload.get("version")
        if version != self.version:
            if (
                self._write_path == self._path
                and version not in self.older_versions
            ):
                # Unrecognized version -- most likely a newer build's
                # file.  Serving from it would be wrong and rewriting
                # it would destroy it, so redirect our writes to a
                # sibling and re-load from there (another process of
                # this version may already have written it).
                self._write_path = self.sibling_path(self.version)
                warnings.warn(
                    f"store {self._path} has unrecognized version "
                    f"{version!r} (this build is {self.version!r}); "
                    f"preserving it and using {self._write_path} instead",
                    stacklevel=2,
                )
                return self._load()
            return {}
        records = payload.get("records")
        if not isinstance(records, dict):
            return {}
        return self._screen(records)

    def _screen(self, records: dict) -> dict[str, dict]:
        """Drop structurally corrupt records (and known-corrupt keys)
        so they are neither served, re-parsed, nor re-persisted."""
        kept: dict[str, dict] = {}
        for key, record in records.items():
            if key in self._tombstoned:
                continue
            if self._screen_record(key, record) is None:
                continue
            kept[key] = record
        return kept

    @contextlib.contextmanager
    def _save_lock(self):
        """Hold an advisory exclusive lock spanning one load-merge-replace.

        The lock file is a sibling (``<name>.lock``) left in place
        between saves: deleting it would race lock acquisition.  The
        kernel releases the lock when the holder exits, however it
        dies.
        """
        if fcntl is None:
            yield
            return
        lock = self._write_path.with_name(f"{self._write_path.name}.lock")
        with open(lock, "a") as fh:
            fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh, fcntl.LOCK_UN)

    def _save(self) -> None:
        self._write_path.parent.mkdir(parents=True, exist_ok=True)
        # The temp name carries the pid so two processes sharing one
        # store path never write the same temp file; os.replace is
        # atomic on POSIX and Windows.
        tmp = self._write_path.with_name(
            f"{self._write_path.name}.{os.getpid()}.tmp"
        )
        with self._save_lock():
            # Load-before-save: merge records a concurrent writer
            # flushed since we loaded, under the lock so the union is
            # complete.
            self.refresh()
            payload = {"version": self.version, "records": self._records}
            try:
                tmp.write_text(json.dumps(payload, sort_keys=True))
                os.replace(tmp, self._write_path)
            finally:
                tmp.unlink(missing_ok=True)

    def bytes_on_disk(self) -> int:
        try:
            return os.path.getsize(self._write_path)
        except OSError:
            return 0

    # ------------------------------------------------------------------ #
    # Garbage collection

    def sibling_path(self, version: str) -> Path:
        """The version-suffixed sibling redirect path for ``version``."""
        return self._path.with_name(f"{self._path.name}.{version}")

    def stale_siblings(self) -> list[Path]:
        """Sibling-redirect files left behind by superseded versions.

        A sibling at a *known-older* version is stale by definition.  A
        sibling at the *current* version is stale only when the main
        path is writable at the current version (the redirect that
        created it is gone), and its records are merged before removal.
        Siblings at unrecognized versions are foreign and preserved.
        """
        stale = [
            sibling
            for version in self.older_versions
            if (sibling := self.sibling_path(version)).exists()
        ]
        current = self.sibling_path(self.version)
        if self._write_path == self._path and current.exists():
            stale.append(current)
        return stale

    def gc(self) -> dict:
        """Purge tombstones and remove stale-version sibling files.

        Records from a current-version sibling are merged into the main
        file before the sibling is deleted, so gc never loses a live
        record.  Returns a report of what was reclaimed.
        """
        before = self.bytes_on_disk()
        removed: list[str] = []
        merged = 0
        for sibling in self.stale_siblings():
            try:
                payload = json.loads(sibling.read_text())
            except (OSError, ValueError):
                payload = {}
            if (
                isinstance(payload, dict)
                and payload.get("version") == self.version
                and isinstance(payload.get("records"), dict)
            ):
                for key, record in self._screen(
                    payload["records"]
                ).items():
                    if key not in self._records:
                        self._records[key] = record
                        merged += 1
                        self._dirty = True
            sibling.unlink(missing_ok=True)
            removed.append(sibling.name)
        purged = self.corrupt_records
        self.flush()
        return {
            "backend": self.BACKEND,
            "purged_tombstones": purged,
            "removed_siblings": removed,
            "merged_records": merged,
            "bytes_before": before,
            "bytes_after": self.bytes_on_disk(),
        }

    def info(self) -> dict:
        report = super().info()
        report["stale_siblings"] = [
            p.name for p in self.stale_siblings()
        ]
        report["redirected"] = self._write_path != self._path
        return report
