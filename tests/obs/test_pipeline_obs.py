"""End-to-end observability: spans and metrics through real solves.

Covers the span taxonomy of a full solve, worker-span stitching at
jobs {1, 2}, machine-readable run reports, and the instrumented
sensitivity sweep.  The numeric side of the determinism contract lives
in tests/core/test_golden_equivalence.py.
"""

import json
import os

import pytest

from repro.array.mainmem import MainMemorySpec
from repro.core.cacti import solve, solve_batch, solve_main_memory
from repro.core.config import MemorySpec
from repro.obs import Obs
from repro.study import sensitivity

SPEC = MemorySpec(
    capacity_bytes=64 << 10, block_bytes=64, associativity=8, node_nm=32.0
)


def names(obs: Obs) -> list:
    return [d["name"] for d in obs.tracer.to_dicts()]


class TestSolveSpanTaxonomy:
    @pytest.fixture(scope="class")
    def obs(self):
        obs = Obs()
        solve(SPEC, obs=obs)
        return obs

    def test_span_tree(self, obs):
        spans = {d["name"]: d for d in obs.tracer.to_dicts()}
        by_id = {d["id"]: d for d in spans.values()}

        def parent_name(name):
            parent = spans[name]["parent"]
            return None if parent is None else by_id[parent]["name"]

        assert parent_name("solve") is None
        assert parent_name("data_array") == "solve"
        assert parent_name("tag_array") == "solve"
        # Both arrays run an optimize with prefilter/build/rank inside.
        assert names(obs).count("optimize") == 2
        assert names(obs).count("prefilter") == 2
        assert names(obs).count("build") == 2
        assert names(obs).count("rank") == 2

    def test_counters_balance(self, obs):
        c = obs.metrics.snapshot()["counters"]
        assert (
            c["optimizer.enumerated"]
            == c["optimizer.prefiltered"] + c["optimizer.built"]
        )
        assert c["optimizer.feasible"] > 0

    def test_derived_eval_cache_rates(self, obs):
        derived = obs.metrics.snapshot()["derived"]
        assert 0.0 < derived["eval_cache.subarray.hit_rate"] <= 1.0
        # The vectorized kernels fold tree delays into closed-form
        # arithmetic and consult the tree cache only for materialized
        # winners, so its hit rate may legitimately be zero here; the
        # scalar path's tree reuse is covered in
        # tests/core/test_parallel.py.
        assert 0.0 <= derived["eval_cache.htree.hit_rate"] <= 1.0

    def test_phase_latency_histograms(self, obs):
        h = obs.metrics.snapshot()["histograms"]
        for phase_name in ("phase.prefilter_s", "phase.build_s",
                           "phase.rank_s"):
            assert h[phase_name]["count"] == 2  # data + tag arrays
            assert h[phase_name]["sum"] >= 0.0


class TestWorkerStitching:
    def test_serial_trace_is_single_process(self):
        obs = Obs()
        solve(SPEC, obs=obs, jobs=1)
        assert {d["pid"] for d in obs.tracer.to_dicts()} == {os.getpid()}
        assert "chunk" not in names(obs)

    def test_parallel_trace_stitches_worker_spans(self):
        obs = Obs()
        solve(SPEC, obs=obs, jobs=2)
        spans = obs.tracer.to_dicts()
        chunk_pids = {d["pid"] for d in spans if d["name"] == "chunk"}
        assert chunk_pids, "workers shipped no chunk spans home"
        assert os.getpid() not in chunk_pids
        # Worker chunk metrics land in the parent registry.
        snap = obs.metrics.snapshot()
        assert snap["histograms"]["parallel.chunk_s"]["count"] > 0
        assert snap["gauges"]["parallel.worker_utilization"] is not None

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_counters_identical_at_any_job_count(self, jobs):
        obs = Obs()
        solve(SPEC, obs=obs, jobs=jobs)
        c = obs.metrics.snapshot()["counters"]
        # The work done is the same; only who does it changes.
        assert (
            c["optimizer.enumerated"]
            == c["optimizer.prefiltered"] + c["optimizer.built"]
        )
        assert c["optimizer.feasible"] > 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_batch_span_and_worker_absorption(self, jobs):
        specs = [
            SPEC,
            MemorySpec(capacity_bytes=128 << 10, block_bytes=64,
                       associativity=8, node_nm=32.0),
        ]
        obs = Obs()
        solutions = solve_batch(specs, obs=obs, jobs=jobs)
        assert len(solutions) == 2
        assert "batch" in names(obs)
        assert obs.metrics.snapshot()["counters"]["optimizer.feasible"] > 0


class TestRunReports:
    def test_cache_report(self):
        solution = solve(SPEC)
        report = solution.run_report()
        json.dumps(report)  # plain JSON types only
        assert report["kind"] == "cache"
        assert report["spec"]["capacity_bytes"] == SPEC.capacity_bytes
        assert report["metrics"]["access_time_ns"] == (
            solution.access_time_ns
        )
        assert report["organization"]["rows"] == solution.data.rows
        assert report["tag"]["area_mm2"] > 0

    def test_ram_report_has_no_tag(self):
        ram = MemorySpec(
            capacity_bytes=64 << 10, block_bytes=64, associativity=None,
            node_nm=32.0,
        )
        report = solve(ram).run_report()
        assert report["kind"] == "ram"
        assert "tag" not in report

    def test_main_memory_report(self):
        solution = solve_main_memory(
            MainMemorySpec(capacity_bits=1 << 30), node_nm=78.0
        )
        report = solution.run_report()
        json.dumps(report)
        assert report["kind"] == "main_memory"
        assert report["timing_ns"]["t_rcd"] > 0
        assert report["energy_nj"]["e_activate"] > 0
        assert report["power_mw"]["p_refresh"] > 0
        assert report["area_mm2"] > 0


class TestSweepObservability:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_spans_and_counters(self, jobs):
        base = MemorySpec(
            capacity_bytes=32 << 10, block_bytes=64, associativity=8,
            node_nm=32.0,
        )
        obs = Obs()
        result = sensitivity.sweep(
            base,
            "capacity_bytes",
            [32 << 10, 64 << 10],
            jobs=jobs,
            obs=obs,
        )
        assert len(result.points) == 2
        assert "sweep" in names(obs)
        if jobs == 1:
            assert names(obs).count("sweep.point") == 2
        c = obs.metrics.snapshot()["counters"]
        assert c["sensitivity.points"] == 2
        assert c["sensitivity.feasible_points"] == 2
