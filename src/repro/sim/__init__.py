"""Multicore multithreaded timing simulator for the LLC study."""

from repro.sim.cache import Cache, CacheConfig, MesiState
from repro.sim.coherence import MesiDirectory
from repro.sim.core import ThreadContext, thread_cpi
from repro.sim.dram_channel import MemoryController, MemoryTimingCycles
from repro.sim.interconnect import Crossbar
from repro.sim.stats import (
    BREAKDOWN_CATEGORIES,
    AccessCounters,
    CycleBreakdown,
    SimStats,
)
from repro.sim.system import L3Config, System, SystemConfig, run_workload

__all__ = [
    "AccessCounters",
    "BREAKDOWN_CATEGORIES",
    "Cache",
    "CacheConfig",
    "Crossbar",
    "CycleBreakdown",
    "L3Config",
    "MemoryController",
    "MemoryTimingCycles",
    "MesiDirectory",
    "MesiState",
    "SimStats",
    "System",
    "SystemConfig",
    "ThreadContext",
    "run_workload",
    "thread_cpi",
]
