"""Workload-profile persistence: define applications in JSON files.

Users characterizing their own applications shouldn't have to edit Python:
a :class:`~repro.workloads.synthetic.WorkloadProfile` round-trips through
a plain JSON object, one file per profile or a list per file.  The schema
is exactly the dataclass's fields; unknown keys are rejected so typos
fail loudly.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.workloads.synthetic import WorkloadProfile

_FIELDS = {f.name for f in dataclasses.fields(WorkloadProfile)}


def profile_to_dict(profile: WorkloadProfile) -> dict:
    return dataclasses.asdict(profile)


def profile_from_dict(data: dict) -> WorkloadProfile:
    unknown = set(data) - _FIELDS
    if unknown:
        raise ValueError(
            f"unknown profile fields: {sorted(unknown)}; "
            f"valid fields are {sorted(_FIELDS)}"
        )
    return WorkloadProfile(**data)


def save_profiles(
    profiles: list[WorkloadProfile], path: str | Path
) -> None:
    """Write profiles as a JSON list."""
    Path(path).write_text(
        json.dumps([profile_to_dict(p) for p in profiles], indent=2)
        + "\n"
    )


def load_profiles(path: str | Path) -> list[WorkloadProfile]:
    """Load one profile (object) or several (list) from a JSON file."""
    data = json.loads(Path(path).read_text())
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ValueError(
            f"{path}: expected a JSON object or list of objects"
        )
    return [profile_from_dict(item) for item in data]
