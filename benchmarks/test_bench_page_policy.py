"""Ablation (paper sections 2.3.4 and 3.4): page policies and line mapping.

Two design choices the paper argues qualitatively:

* open vs closed page policy as a function of the page-hit ratio, with the
  crossover point;
* cache-set-to-DRAM-page mapping (set-per-page vs striped, Figure 3) and
  why neither yields page hits for interleaved LLC traffic -- the reason
  the study operates its DRAM caches with an SRAM-like interface.
"""

from conftest import print_table

from repro.dram.interface import LineMapping, page_hit_ratio
from repro.dram.page_policy import (
    ClosedPagePolicy,
    OpenPagePolicy,
    crossover_hit_ratio,
    expected_access_latency,
)
from repro.study.table3 import solve_main_memory_chip


def test_page_policy_crossover(benchmark):
    mm = benchmark.pedantic(solve_main_memory_chip, rounds=1, iterations=1)
    t = mm.timing
    crossover = crossover_hit_ratio(t.t_rcd, t.t_cas, t.t_rp)

    rows = []
    for hit_ratio in (0.0, 0.1, 0.25, crossover, 0.5, 0.75, 0.95):
        open_lat = expected_access_latency(
            t.t_rcd, t.t_cas, t.t_rp, hit_ratio, OpenPagePolicy()
        )
        closed_lat = expected_access_latency(
            t.t_rcd, t.t_cas, t.t_rp, hit_ratio, ClosedPagePolicy()
        )
        winner = "open" if open_lat < closed_lat else "closed"
        if abs(open_lat - closed_lat) < 1e-12:
            winner = "tie"
        rows.append([
            f"{hit_ratio:.2f}", f"{open_lat * 1e9:.1f}",
            f"{closed_lat * 1e9:.1f}", winner,
        ])
    print_table(
        "Open vs closed page policy (32 nm DDR4 chip)",
        ["page-hit ratio", "open (ns)", "closed (ns)", "winner"],
        rows,
    )
    print(f"crossover hit ratio: {crossover:.2f}")

    low = expected_access_latency(t.t_rcd, t.t_cas, t.t_rp, 0.05,
                                  OpenPagePolicy())
    closed = expected_access_latency(t.t_rcd, t.t_cas, t.t_rp, 0.05,
                                     ClosedPagePolicy())
    assert closed < low  # sparse random traffic favours closed page
    assert 0.0 < crossover < 1.0


def test_line_mapping(benchmark):
    def mappings():
        page_bits, line_bits, assoc = 16384, 512, 12
        cases = []
        for mapping in LineMapping:
            for sequential in (False, True):
                for locality in (0.0, 0.5, 0.9):
                    cases.append((
                        mapping, sequential, locality,
                        page_hit_ratio(mapping, page_bits, line_bits,
                                       assoc, sequential, locality),
                    ))
        return cases

    cases = benchmark(mappings)
    rows = [
        [m.value, str(seq), f"{loc:.1f}", f"{hit:.3f}"]
        for m, seq, loc, hit in cases
    ]
    print_table(
        "Figure 3: line-to-page mapping page-hit ratios (16 Kb page)",
        ["mapping", "sequential access", "spatial locality", "page hits"],
        rows,
    )

    by_key = {(m, s, l): h for m, s, l, h in cases}
    # Sequential caches get zero page hits from set-per-page mapping.
    assert by_key[(LineMapping.SET_PER_PAGE, True, 0.9)] == 0.0
    # Random interleaved traffic (no spatial locality) gets none either
    # way -- the SRAM-like interface justification.
    for mapping in LineMapping:
        assert by_key[(mapping, False, 0.0)] == 0.0
    # With spatial locality and normal access, multiple sets per page help.
    assert by_key[(LineMapping.SET_PER_PAGE, False, 0.9)] > 0.2
