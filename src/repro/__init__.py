"""repro: a reproduction of CACTI-D (Thoziyoor et al., ISCA 2008).

A comprehensive memory modeling tool covering SRAM, logic-process DRAM
(LP-DRAM), and commodity DRAM (COMM-DRAM) technologies with consistent
models from L1 caches through main-memory DRAM chips, plus the multicore
timing simulator, workloads, and power accounting used for the paper's
stacked last-level-cache study.

Quick start::

    from repro import MemorySpec, solve
    from repro.tech import CellTech

    spec = MemorySpec(capacity_bytes=1 << 20, block_bytes=64,
                      associativity=8, node_nm=32.0,
                      cell_tech=CellTech.SRAM)
    solution = solve(spec)
    print(solution.summary())
"""

from repro.array.mainmem import MainMemorySpec
from repro.core import (
    AccessMode,
    CactiD,
    MainMemorySolution,
    MemorySpec,
    NoFeasibleSolution,
    OptimizationTarget,
    Solution,
    SolveCache,
    SweepStats,
    solve,
    solve_batch,
    solve_main_memory,
)
from repro.tech import CellTech, technology

__version__ = "1.0.0"

__all__ = [
    "AccessMode",
    "CactiD",
    "CellTech",
    "MainMemorySolution",
    "MainMemorySpec",
    "MemorySpec",
    "NoFeasibleSolution",
    "OptimizationTarget",
    "Solution",
    "SolveCache",
    "SweepStats",
    "solve",
    "solve_batch",
    "solve_main_memory",
    "technology",
    "__version__",
]
