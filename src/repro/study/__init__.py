"""The stacked last-level-cache study (paper sections 3-4)."""

from repro.study.floorplan import Floorplan, derive_floorplan
from repro.study.replication import Replicated, replicate, speedup_interval
from repro.study.sensitivity import (
    SensitivityResult,
    SweepPoint,
    capacity_sweep,
    sweep,
)
from repro.study.runner import (
    DEFAULT_SCALE,
    RunResult,
    StudyResult,
    run_one,
    run_study,
)
from repro.study.table3 import (
    CONFIG_NAMES,
    CPU_HZ,
    NODE_NM,
    Table3Row,
    build_energy_model,
    build_system_config,
    paper_table3,
    solve_table3,
)

__all__ = [
    "CONFIG_NAMES",
    "CPU_HZ",
    "DEFAULT_SCALE",
    "Floorplan",
    "NODE_NM",
    "Replicated",
    "RunResult",
    "SensitivityResult",
    "StudyResult",
    "SweepPoint",
    "Table3Row",
    "build_energy_model",
    "build_system_config",
    "paper_table3",
    "run_one",
    "run_study",
    "solve_table3",
]
