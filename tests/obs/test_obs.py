"""Unit tests for the Obs bundle and the phase/maybe_span helpers."""

from repro.core.optimizer import SweepStats
from repro.obs import Obs, maybe_span, phase


class TestMaybeSpan:
    def test_none_obs_is_a_free_noop(self):
        with maybe_span(None, "solve") as span:
            assert span is None

    def test_live_obs_records_a_span(self):
        obs = Obs()
        with maybe_span(obs, "solve", capacity=64) as span:
            assert span is not None
        assert [s.name for s in obs.tracer.spans] == ["solve"]
        assert obs.tracer.spans[0].attrs == {"capacity": 64}


class TestPhase:
    def test_no_sinks_yields_nothing(self):
        with phase("build") as span:
            assert span is None

    def test_stats_only_populates_phase_times(self):
        stats = SweepStats()
        with phase("build", stats=stats):
            pass
        assert "build" in stats.phase_times
        assert stats.phase_times["build"] >= 0.0

    def test_obs_records_span_and_histogram(self):
        obs = Obs()
        with phase("build", obs):
            pass
        assert [s.name for s in obs.tracer.spans] == ["build"]
        h = obs.metrics.snapshot()["histograms"]["phase.build_s"]
        assert h["count"] == 1

    def test_one_measurement_feeds_both_sinks(self):
        """SweepStats stays a thin view of the same clock reading."""
        obs = Obs()
        stats = SweepStats()
        with phase("build", obs, stats):
            pass
        h = obs.metrics.snapshot()["histograms"]["phase.build_s"]
        assert stats.phase_times["build"] == h["sum"]


class TestObsBundle:
    def test_delegates(self):
        obs = Obs()
        obs.inc("events")
        obs.inc("events", 2)
        obs.observe("latency", 0.5)
        obs.gauge("workers", 4)
        snap = obs.metrics.snapshot()
        assert snap["counters"]["events"] == 3
        assert snap["histograms"]["latency"]["count"] == 1
        assert snap["gauges"]["workers"] == 4

    def test_worker_round_trip(self):
        worker = Obs()
        with worker.span("chunk"):
            worker.inc("optimizer.built", 5)
        parent = Obs()
        parent.inc("optimizer.built", 1)
        parent.absorb_worker(worker.export_payload())
        assert parent.metrics.snapshot()["counters"]["optimizer.built"] == 6
        assert [s.name for s in parent.tracer.spans] == ["chunk"]

    def test_absorb_worker_none_is_a_noop(self):
        parent = Obs()
        parent.absorb_worker(None)
        assert len(parent.tracer) == 0
