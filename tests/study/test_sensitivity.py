"""Tests for the sensitivity-analysis tooling."""

import pytest

from repro.core.config import MemorySpec
from repro.core.optimizer import NoFeasibleSolution
from repro.study.sensitivity import capacity_sweep, sweep
from repro.tech.cells import CellTech

BASE = MemorySpec(capacity_bytes=256 << 10, block_bytes=64, associativity=8,
                  node_nm=32.0)


class TestSweep:
    def test_unknown_parameter(self):
        with pytest.raises(ValueError, match="cannot sweep"):
            sweep(BASE, "colour", [1, 2])

    def test_infeasible_points_are_none(self):
        result = sweep(BASE, "capacity_bytes", [997, 256 << 10])
        assert result.points[0].solution is None
        assert result.points[1].solution is not None

    def test_all_infeasible_raises(self):
        with pytest.raises(NoFeasibleSolution):
            sweep(BASE, "capacity_bytes", [997, 1003])

    def test_series_skips_infeasible(self):
        result = sweep(BASE, "capacity_bytes", [997, 256 << 10, 512 << 10])
        assert len(result.series("area")) == 2


class TestCapacityScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return capacity_sweep(BASE, factors=(1, 2, 4, 8))

    def test_area_scales_near_linearly(self, result):
        """Cache area tracks capacity; slightly sublinear because fixed
        overheads (decode strips, H-trees, the tag array) amortize."""
        e = result.elasticity("area")
        assert 0.7 < e < 1.2

    def test_leakage_scales_linearly(self, result):
        e = result.elasticity("p_leakage")
        assert 0.7 < e < 1.3

    def test_access_time_sublinear(self, result):
        """Latency grows much slower than capacity (wires ~ sqrt)."""
        e = result.elasticity("access_time")
        assert 0.0 < e < 0.7

    def test_report_renders(self, result):
        text = result.report()
        assert "elasticity" in text and "capacity_bytes" in text


class TestNodeScaling:
    def test_smaller_node_smaller_area(self):
        result = sweep(BASE, "node_nm", [90.0, 65.0, 45.0, 32.0])
        series = result.series("area")
        areas = [m for _, m in series]
        assert areas == sorted(areas, reverse=True)

    def test_dram_refresh_insensitive_to_node(self):
        base = MemorySpec(capacity_bytes=4 << 20, block_bytes=64,
                          associativity=8, node_nm=32.0,
                          cell_tech=CellTech.LP_DRAM)
        result = sweep(base, "node_nm", [65.0, 45.0, 32.0])
        e = result.elasticity("p_refresh")
        assert e is not None
        # Retention and storage cap are node-invariant; refresh power
        # tracks page energy, which moves far less than quadratically.
        assert abs(e) < 3.0


class TestSweepResilience:
    def test_skip_mode_records_failed_points(self):
        from repro.core.resilience import (
            FaultPlan,
            FaultSpec,
            ResiliencePolicy,
            TaskFailure,
        )

        # Point 1 fails terminally under skip: it lands as an
        # infeasible-looking None with a TaskFailure record, and the
        # other points still solve.
        policy = ResiliencePolicy(
            on_error="skip",
            fault_plan=FaultPlan(
                (FaultSpec("sweep.point", 1, "raise", trips=99),)
            ),
        )
        result = sweep(
            BASE,
            "capacity_bytes",
            [128 << 10, 256 << 10, 512 << 10],
            resilience=policy,
        )
        assert result.points[0].solution is not None
        assert result.points[1].solution is None
        assert result.points[2].solution is not None
        assert len(result.failed) == 1
        assert isinstance(result.failed[0], TaskFailure)
        assert result.failed[0].stage == "sweep.point"

    def test_resumed_sweep_matches_plain_sweep(self, tmp_path):
        import dataclasses

        from repro.core.resilience import (
            FaultInjected,
            FaultPlan,
            FaultSpec,
            Journal,
            ResiliencePolicy,
        )

        values = [128 << 10, 256 << 10]
        path = tmp_path / "sweep.journal"
        interrupted = ResiliencePolicy(
            journal=Journal(path),
            fault_plan=FaultPlan(
                (FaultSpec("sweep.point", 1, "raise", trips=99),)
            ),
        )
        with pytest.raises(FaultInjected):
            sweep(BASE, "capacity_bytes", values, resilience=interrupted)
        interrupted.journal.close()
        assert len(Journal(path)) == 1

        resumed = ResiliencePolicy(journal=Journal(path))
        result = sweep(BASE, "capacity_bytes", values, resilience=resumed)
        resumed.journal.close()
        assert len(Journal(path)) == 2

        plain = sweep(BASE, "capacity_bytes", values)
        for restored, direct in zip(result.points, plain.points):
            assert dataclasses.asdict(restored.solution) == \
                dataclasses.asdict(direct.solution)
