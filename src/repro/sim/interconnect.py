"""The L2-L3 crossbar as a timed resource.

The core die implements an 8x8 crossbar connecting the per-core L2 banks
to the 8 L3 banks on the stacked die (paper Figure 2), with face-to-face
through-silicon vias whose delay is sub-FO4 and therefore ignored.  The
simulator models the crossbar as a fixed traverse latency plus per-output-
port occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Crossbar:
    """Timed 8x8 crossbar between L2s and L3 banks."""

    traverse_cycles: int  #: one-way latency (CPU cycles)
    port_occupancy: int = 1  #: cycles an output port is held per transfer
    num_ports: int = 8
    _port_ready: list[float] = field(default_factory=list)
    transfers: int = 0

    def __post_init__(self) -> None:
        if not self._port_ready:
            self._port_ready = [0.0] * self.num_ports

    def traverse(self, now: float, port: int) -> float:
        """Send one transfer toward ``port`` at time ``now``; returns the
        arrival time at the far side (CPU cycles)."""
        start = max(now, self._port_ready[port])
        self._port_ready[port] = start + self.port_occupancy
        self.transfers += 1
        return start + self.traverse_cycles

    def round_trip(self, now: float, port: int) -> float:
        """Request + response traverse; returns total added latency."""
        arrival = self.traverse(now, port)
        return arrival + self.traverse_cycles - now
