"""Unit tests for the subarray model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.array.subarray import InfeasibleSubarray, Subarray
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)


def make(cell_tech=CellTech.SRAM, rows=256, cols=256, periph=None):
    if periph is None:
        periph = "lstp" if cell_tech is CellTech.COMM_DRAM else "hp-long-channel"
    return Subarray(
        tech=TECH,
        cell=TECH.cell(cell_tech, periph),
        periph=TECH.device(periph),
        rows=rows,
        cols=cols,
    )


class TestGeometry:
    def test_dimensions_scale_with_cells(self):
        small = make(rows=128, cols=128)
        big = make(rows=256, cols=256)
        assert big.width > small.width
        assert big.height > small.height
        assert big.area > small.area

    def test_cell_area_fraction_below_one(self):
        sub = make()
        assert 0 < sub.cell_area < sub.area

    def test_invalid_dimensions(self):
        with pytest.raises(InfeasibleSubarray):
            make(rows=0)

    def test_comm_dram_densest(self):
        sram = make(CellTech.SRAM)
        comm = make(CellTech.COMM_DRAM)
        assert comm.cell_area < sram.cell_area / 10


class TestBitlines:
    def test_capacitance_linear_in_rows(self):
        c1 = make(rows=128).bitline_capacitance
        c2 = make(rows=256).bitline_capacitance
        assert c2 == pytest.approx(2 * c1, rel=0.01)

    def test_dram_folded_halves_junction_loading(self):
        lp = make(CellTech.LP_DRAM, rows=256)
        assert lp.bitline_capacitance > 0

    def test_resistance_positive(self):
        assert make().bitline_resistance > 0

    def test_comm_tungsten_bitline_more_resistive(self):
        """COMM-DRAM's tungsten bitlines vs LP-DRAM's copper, corrected
        for the different cell heights."""
        comm = make(CellTech.COMM_DRAM, rows=256)
        lp = make(CellTech.LP_DRAM, rows=256)
        r_per_m_comm = comm.bitline_resistance / comm.cell_array_height
        r_per_m_lp = lp.bitline_resistance / lp.cell_array_height
        assert r_per_m_comm > 2 * r_per_m_lp


class TestTiming:
    def test_sram_has_no_writeback(self):
        assert make(CellTech.SRAM).t_writeback == 0.0

    @pytest.mark.parametrize("ct", [CellTech.LP_DRAM, CellTech.COMM_DRAM])
    def test_dram_has_writeback(self, ct):
        assert make(ct).t_writeback > 0

    def test_comm_restore_slower_than_lp(self):
        """Thick-oxide COMM access devices restore far slower."""
        assert (
            make(CellTech.COMM_DRAM).t_writeback
            > 2 * make(CellTech.LP_DRAM).t_writeback
        )

    def test_row_cycle_exceeds_row_to_sense(self):
        for ct in (CellTech.SRAM, CellTech.LP_DRAM, CellTech.COMM_DRAM):
            sub = make(ct)
            assert sub.t_row_cycle > sub.t_row_to_sense

    def test_dram_sense_slower_than_sram(self):
        assert make(CellTech.COMM_DRAM).t_sense > make(CellTech.SRAM).t_sense

    def test_longer_bitline_slower_everything(self):
        short = make(CellTech.COMM_DRAM, rows=128)
        long_ = make(CellTech.COMM_DRAM, rows=512)
        assert long_.t_bitline > short.t_bitline
        assert long_.t_sense > short.t_sense
        assert long_.t_precharge > short.t_precharge

    def test_infeasible_dram_signal(self):
        """Extremely long bitlines starve the sense signal."""
        sub = make(CellTech.LP_DRAM, rows=16384)
        with pytest.raises(InfeasibleSubarray):
            sub.check_dram_feasible()


class TestEnergyAndLeakage:
    def test_read_energy_scales_with_sensed_columns(self):
        sub = make(CellTech.COMM_DRAM)
        assert sub.e_read_bitlines(256) == pytest.approx(
            2 * sub.e_read_bitlines(128)
        )

    def test_dram_sense_energy_exceeds_sram(self):
        sram, comm = make(CellTech.SRAM), make(CellTech.COMM_DRAM)
        assert comm.e_read_bitlines(64) > sram.e_read_bitlines(64)

    def test_sram_cells_leak_dram_cells_do_not(self):
        """DRAM cell leakage costs refresh, not supply current."""
        sram, lp = make(CellTech.SRAM), make(CellTech.LP_DRAM)
        sram_only_decoder = sram.decoder.leakage
        assert sram.leakage(64) - sram_only_decoder > 0
        # DRAM leakage is periphery-only.
        assert lp.leakage(0) == pytest.approx(lp.decoder.leakage, rel=0.05)

    def test_comm_periphery_leaks_least(self):
        """LSTP periphery: orders of magnitude below long-channel HP."""
        comm = make(CellTech.COMM_DRAM)
        sram = make(CellTech.SRAM)
        assert comm.leakage(64) < sram.leakage(64) / 20

    @given(st.integers(min_value=1, max_value=1024))
    @settings(max_examples=20, deadline=None)
    def test_leakage_monotone_in_sense_amps(self, n):
        sub = make()
        assert sub.leakage(n + 1) >= sub.leakage(n)
