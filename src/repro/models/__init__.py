"""Aggregate model views: breakdowns, leakage/refresh utilities, DDR grades."""

from repro.models.area import AreaBreakdown, area_breakdown
from repro.models.delay import DelayBreakdown, delay_breakdown
from repro.models.energy import EnergyBreakdown, dynamic_power, energy_breakdown
from repro.models.leakage import (
    OPERATING_TEMPERATURE,
    rescale_leakage,
    sleep_transistor_leakage,
    temperature_factor,
)
from repro.models.refresh import RefreshSchedule, refresh_power, refresh_schedule
from repro.models.timing_dram import (
    DDR3_1066,
    DDR3_1333,
    DDR4_2400,
    DDR4_3200,
    DatasheetTiming,
    SpeedGrade,
    quantize,
    to_main_memory_timing,
)

__all__ = [
    "AreaBreakdown",
    "DDR3_1066",
    "DDR3_1333",
    "DDR4_2400",
    "DDR4_3200",
    "DatasheetTiming",
    "DelayBreakdown",
    "EnergyBreakdown",
    "OPERATING_TEMPERATURE",
    "RefreshSchedule",
    "SpeedGrade",
    "area_breakdown",
    "delay_breakdown",
    "dynamic_power",
    "energy_breakdown",
    "quantize",
    "refresh_power",
    "refresh_schedule",
    "rescale_leakage",
    "sleep_transistor_leakage",
    "temperature_factor",
    "to_main_memory_timing",
]
