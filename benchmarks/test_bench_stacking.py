"""Extension bench: partitioning one L3 bank across stacked layers.

The paper stacks whole banks and cites 3DCacti / Puttaswamy-Loh for
array-level 3D partitioning; this bench quantifies that next step for the
192 MB COMM-DRAM L3 bank: footprint, access time, and read energy as the
bank folds onto 1/2/4/8 layers with sub-FO4 TSVs.
"""

from conftest import print_table

from repro.array.stacking import stacking_sweep
from repro.study.table3 import NODE_NM, solve_l3
from repro.core.cacti import solve
from repro.core.config import DENSITY_OPTIMIZED, MemorySpec
from repro.tech.cells import CellTech
from repro.tech.nodes import technology


def run_sweep():
    tech = technology(NODE_NM)
    solution = solve(
        MemorySpec(
            capacity_bytes=192 << 20, block_bytes=64, associativity=24,
            nbanks=8, node_nm=NODE_NM, cell_tech=CellTech.COMM_DRAM,
        ),
        DENSITY_OPTIMIZED,
    )
    return stacking_sweep(solution.data, tech.device("lstp"), max_layers=8)


def test_stacked_partitioning(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        [str(s.layers),
         f"{s.footprint * 1e6:.2f}",
         f"{s.access_time * 1e9:.2f}",
         f"{s.speedup:.2f}x",
         f"{s.e_read_access * 1e9:.2f}"]
        for s in sweep
    ]
    print_table(
        "3D partitioning of the 192 MB COMM-DRAM L3 (per 8-bank structure)",
        ["layers", "footprint mm2", "access ns", "speedup", "E_rd nJ"],
        rows,
    )

    flat, deepest = sweep[0], sweep[-1]
    assert deepest.footprint == flat.footprint / deepest.layers
    assert deepest.access_time <= flat.access_time
    assert deepest.e_read_access <= flat.e_read_access
    # Diminishing returns: the local array path bounds the speedup.
    assert deepest.speedup < 2.5
