"""Ablation: page policy at system level, with the full simulator.

The closed-form crossover analysis (test_bench_page_policy.py) says open
page wins only when the page-hit ratio is high.  This bench checks the
claim end to end: the same application runs on the nol3 system under an
open-page and a closed-page memory controller.  Interleaved multithreaded
LLC-class traffic produces few row hits, so closed page should not lose;
a single-threaded streaming workload rows hit constantly, favouring open
page.
"""

import dataclasses

from conftest import print_table

from repro.dram.page_policy import ClosedPagePolicy, OpenPagePolicy
from repro.sim.system import run_workload
from repro.study.table3 import build_system_config
from repro.workloads.micro import STREAM
from repro.workloads.npb import CG_C, FT_B
from repro.workloads.synthetic import event_stream

INSTR = 25_000


def run_app(profile, policy):
    config = dataclasses.replace(
        build_system_config("nol3", scale=16), page_policy=policy
    )
    scaled = profile.scaled(16)
    return run_workload(
        config,
        lambda tid: event_stream(scaled, tid, config.num_threads),
    ), config


STREAMING = STREAM.with_instructions(INSTR)


def test_system_page_policy(benchmark):
    def run_all():
        out = {}
        for app in (FT_B.with_instructions(INSTR),
                    CG_C.with_instructions(INSTR),
                    STREAMING):
            for policy in (OpenPagePolicy(), ClosedPagePolicy()):
                stats, config = run_app(app, policy)
                out[(app.name, policy.name)] = stats
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [app, policy, f"{stats.ipc:.2f}",
         f"{stats.average_read_latency:.1f}"]
        for (app, policy), stats in results.items()
    ]
    print_table(
        "Page policy at system level (nol3 configuration)",
        ["app", "policy", "IPC", "avg read latency"],
        rows,
    )

    def ipc(app, policy):
        return results[(app, policy)].ipc

    # Interleaved multithreaded traffic: closed page within a few percent
    # of (or better than) open page -- the paper's section 3.4 argument.
    for app in ("ft.B", "cg.C"):
        assert ipc(app, "closed") >= ipc(app, "open") * 0.93

    # Streaming with long sequential runs: open page must not lose, and
    # typically wins on latency.
    open_lat = results[("micro.stream", "open")].average_read_latency
    closed_lat = results[("micro.stream", "closed")].average_read_latency
    assert open_lat <= closed_lat * 1.05
