"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_size


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("32K") == 32 << 10
        assert parse_size("2M") == 2 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size("1.5M") == int(1.5 * (1 << 20))

    def test_raw_integers(self):
        assert parse_size("4096") == 4096

    def test_lowercase(self):
        assert parse_size("64k") == 64 << 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_size("M")
        with pytest.raises(ValueError):
            parse_size("abc")

    def test_non_positive_rejected(self):
        for bad in ("0", "-1", "-4K", "-2M", "-1G", "0K", "-0.5M"):
            with pytest.raises(ValueError, match="positive"):
                parse_size(bad)

    def test_positive_still_accepted(self):
        assert parse_size("1") == 1
        assert parse_size("0.5K") == 512


class TestCommands:
    def test_cache(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--assoc", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "access time" in out
        assert "leakage power" in out

    def test_plain_ram(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--assoc", "0"])
        assert rc == 0

    def test_cache_lp_dram_sequential(self, capsys):
        rc = main([
            "cache", "--capacity", "1M", "--tech", "lp-dram",
            "--sequential", "--optimize", "energy-delay",
        ])
        assert rc == 0
        assert "lp-dram" in capsys.readouterr().out

    def test_main_memory(self, capsys):
        rc = main(["main-memory", "--capacity", "1G", "--node", "78"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tRCD" in out and "refresh power" in out

    def test_invalid_spec_returns_error_code(self, capsys):
        rc = main(["cache", "--capacity", "5", "--assoc", "3"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_validate_ddr3(self, capsys):
        rc = main(["validate-ddr3"])
        assert rc == 0
        assert "mean |error|" in capsys.readouterr().out

    def test_infeasible_request_is_a_clean_error(self, capsys):
        """NoFeasibleSolution subclasses RuntimeError, not ValueError; it
        must still print `error: ...` and exit 2, not dump a traceback."""
        rc = main(["cache", "--capacity", "1K", "--assoc", "8"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no feasible organization" in err

    def test_negative_capacity_is_a_clean_error(self, capsys):
        """argparse rejects the value at parse time with our message,
        not a generic 'invalid value' or a traceback from the solver."""
        with pytest.raises(SystemExit) as exc:
            main(["cache", "--capacity=-4K"])
        assert exc.value.code == 2
        assert "positive" in capsys.readouterr().err

    def test_stats_flag_prints_sweep_stats(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "candidates enumerated" in out
        assert "solve cache" in out

    def test_cache_flag_creates_and_reuses_cache(self, tmp_path, capsys):
        path = tmp_path / "solves.json"
        args = ["cache", "--capacity", "256K", "--cache", str(path),
                "--stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert "solve cache           : 0 hits" in first

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "solve cache           : 2 hits" in second
        # The cached run reports the same design.
        assert first.split("\n\n")[0] == second.split("\n\n")[0]

    def test_unwritable_cache_path_is_a_clean_error(self, tmp_path, capsys):
        """--cache pointing at a directory must not dump a traceback."""
        rc = main(["cache", "--capacity", "256K",
                   "--cache", str(tmp_path)])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_cache_flag_main_memory(self, tmp_path, capsys):
        path = tmp_path / "solves.json"
        args = ["main-memory", "--capacity", "1G", "--node", "78",
                "--cache", str(path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first
