"""Solution optimization (paper section 2.4).

CACTI 5 changed the optimization flow: rather than a single fixed figure
of merit, the tool first collects *all* feasible organizations, keeps the
ones whose area is within a user-supplied percentage of the most
area-efficient solution (max area constraint), narrows to those whose
access time is within a percentage of the fastest remaining solution (max
access time constraint), and finally ranks that subset by a normalized,
weighted combination of dynamic energy, leakage power, random cycle time,
and multisubbank interleave cycle time.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.array.organization import (
    ArrayMetrics,
    ArraySpec,
    InfeasibleOrganization,
    InfeasibleSubarray,
    build_organization,
    enumerate_orgs,
)
from repro.core.config import OptimizationTarget
from repro.tech.nodes import Technology


class NoFeasibleSolution(RuntimeError):
    """No partitioning tuple could realize the requested array."""


def feasible_designs(
    tech: Technology, spec: ArraySpec, orgs: Iterable | None = None
) -> list[ArrayMetrics]:
    """Evaluate every feasible partitioning of ``spec``."""
    designs = []
    for org in orgs if orgs is not None else enumerate_orgs(spec):
        try:
            designs.append(build_organization(tech, spec, org))
        except (InfeasibleOrganization, InfeasibleSubarray):
            continue
    if not designs:
        raise NoFeasibleSolution(
            f"no feasible organization for {spec.capacity_bits} bits of "
            f"{spec.cell_tech.value} in {spec.nbanks} bank(s)"
        )
    return designs


def filter_constraints(
    designs: list[ArrayMetrics], target: OptimizationTarget
) -> list[ArrayMetrics]:
    """Apply the staged max-area then max-access-time filters."""
    best_area = min(d.area for d in designs)
    within_area = [
        d for d in designs
        if d.area <= best_area * (1.0 + target.max_area_fraction)
    ]
    best_time = min(d.t_access for d in within_area)
    return [
        d for d in within_area
        if d.t_access <= best_time * (1.0 + target.max_acctime_fraction)
    ]


def rank(
    designs: list[ArrayMetrics], target: OptimizationTarget
) -> list[ArrayMetrics]:
    """Sort candidates by the normalized weighted objective, best first."""

    def floor(values: Iterable[float]) -> float:
        smallest = min(values)
        return smallest if smallest > 0.0 else 1e-30

    min_dyn = floor(d.e_read_access for d in designs)
    min_leak = floor(d.p_leakage + d.p_refresh for d in designs)
    min_cycle = floor(d.t_random_cycle for d in designs)
    min_interleave = floor(d.t_interleave for d in designs)

    def score(d: ArrayMetrics) -> float:
        return (
            target.weight_dynamic * d.e_read_access / min_dyn
            + target.weight_leakage * (d.p_leakage + d.p_refresh) / min_leak
            + target.weight_cycle * d.t_random_cycle / min_cycle
            + target.weight_interleave * d.t_interleave / min_interleave
        )

    return sorted(designs, key=score)


def optimize(
    tech: Technology,
    spec: ArraySpec,
    target: OptimizationTarget,
) -> ArrayMetrics:
    """Full pipeline: enumerate, filter, rank; return the best design."""
    spec = _with_repeater_penalty(spec, target)
    designs = feasible_designs(tech, spec)
    constrained = filter_constraints(designs, target)
    return rank(constrained, target)[0]


def pareto_solutions(
    tech: Technology, spec: ArraySpec, target: OptimizationTarget
) -> list[ArrayMetrics]:
    """All constraint-satisfying designs, ranked -- the solution cloud the
    paper plots in its Figure 1 validation bubbles."""
    spec = _with_repeater_penalty(spec, target)
    designs = feasible_designs(tech, spec)
    return rank(filter_constraints(designs, target), target)


def _with_repeater_penalty(
    spec: ArraySpec, target: OptimizationTarget
) -> ArraySpec:
    if target.max_repeater_delay_penalty == spec.max_repeater_delay_penalty:
        return spec
    from dataclasses import replace

    return replace(
        spec, max_repeater_delay_penalty=target.max_repeater_delay_penalty
    )
