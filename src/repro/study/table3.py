"""Table 3: the LLC study's memory-hierarchy configurations at 32 nm.

Builds the six system configurations of the paper's study -- nol3, sram
(24 MB), lp_dram_ed (48 MB), lp_dram_c (72 MB), cm_dram_ed (96 MB),
cm_dram_c (192 MB) -- in two ways:

* ``solve_table3()`` runs this reproduction's CACTI-D end-to-end for every
  structure (L1, L2, the five L3 options, the 8 Gb DDR4-3200 chip) and
  derives the architectural parameters exactly as the paper does: cache
  clocks limited to at most 6 pipeline stages, access/cycle times
  quantized to CPU cycles.
* ``paper_table3()`` returns the values printed in the paper, for
  side-by-side comparison and as a fast path for the simulator.

The per-bank area budget is 6.2 mm^2 (1/8th of the scaled core die,
section 3.1); capacities per technology come from what fits that budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.array.mainmem import MainMemorySpec
from repro.circuits.crossbar import design_crossbar
from repro.core.cacti import solve, solve_main_memory
from repro.core.config import (
    DENSITY_OPTIMIZED,
    ENERGY_DELAY_OPTIMIZED,
    MemorySpec,
    OptimizationTarget,
)
from repro.models.timing_dram import DDR4_3200, quantize, to_main_memory_timing
from repro.power.hierarchy import (
    HierarchyEnergyModel,
    LevelEnergy,
    MainMemoryEnergy,
)
from repro.sim.cache import CacheConfig
from repro.sim.dram_channel import MemoryTimingCycles
from repro.sim.system import L3Config, SystemConfig
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

CPU_HZ = 2e9
NODE_NM = 32.0

#: Maximum pipeline depth inside any cache (paper section 4.1).
MAX_PIPELINE_STAGES = 6

#: The study's six configurations, in the paper's plotting order.
CONFIG_NAMES = (
    "nol3",
    "sram",
    "lp_dram_ed",
    "lp_dram_c",
    "cm_dram_ed",
    "cm_dram_c",
)


@dataclass(frozen=True)
class Table3Row:
    """One column of paper Table 3."""

    name: str
    capacity_bytes: int
    nbanks: int
    subbanks: int
    associativity: int
    clock_divider: int  #: cache clock = CPU clock / divider
    access_cycles: int  #: CPU cycles
    cycle_cycles: int  #: CPU cycles (effective issue pitch per bank)
    area_mm2: float  #: per bank (caches) or per chip (main memory)
    area_efficiency: float
    leakage_w: float  #: whole structure
    refresh_w: float
    e_read_nj: float  #: per cache-line read
    e_write_nj: float = 0.0
    interleave_cycles: int = 0  #: multisubbank interleave pitch (CPU cyc)
    random_cycles: int = 0  #: same-subbank row cycle (CPU cyc)
    rows_per_subarray: int = 0  #: physical rows per subarray (0 = n/a)


#: L3 design points: (name, capacity, associativity, cell tech, optimizer).
_L3_POINTS = {
    "sram": (24 << 20, 12, CellTech.SRAM, OptimizationTarget()),
    "lp_dram_ed": (48 << 20, 12, CellTech.LP_DRAM, ENERGY_DELAY_OPTIMIZED),
    "lp_dram_c": (72 << 20, 18, CellTech.LP_DRAM, DENSITY_OPTIMIZED),
    "cm_dram_ed": (96 << 20, 12, CellTech.COMM_DRAM, ENERGY_DELAY_OPTIMIZED),
    "cm_dram_c": (192 << 20, 24, CellTech.COMM_DRAM, DENSITY_OPTIMIZED),
}


def _cycles(t_seconds: float, divider: int = 1) -> int:
    """Round a latency up to CPU cycles, in multiples of the cache clock."""
    cpu_cycles = t_seconds * CPU_HZ
    return max(divider, divider * math.ceil(cpu_cycles / divider - 1e-9))


def _clock_divider(access_time: float) -> int:
    """Cache clock divider so the access pipelines into <= 6 stages."""
    cpu_period = 1.0 / CPU_HZ
    return max(1, math.ceil(access_time / (MAX_PIPELINE_STAGES * cpu_period)))


def _cache_row(name: str, solution, nbanks: int) -> Table3Row:
    spec = solution.spec
    divider = _clock_divider(solution.access_time)
    org = solution.data.org
    subbanks = org.ndbl
    interleave = max(
        solution.interleave_cycle_time, divider / CPU_HZ
    )
    conflict = 1.0 / max(subbanks, 1)
    effective_cycle = (
        (1.0 - conflict) * interleave
        + conflict * solution.random_cycle_time
    )
    return Table3Row(
        name=name,
        capacity_bytes=spec.capacity_bytes,
        nbanks=nbanks,
        subbanks=subbanks,
        associativity=spec.associativity or 1,
        clock_divider=divider,
        access_cycles=_cycles(solution.access_time, divider),
        cycle_cycles=_cycles(effective_cycle, 1),
        area_mm2=solution.area_mm2 / nbanks,
        area_efficiency=solution.area_efficiency,
        leakage_w=solution.p_leakage,
        refresh_w=solution.p_refresh,
        e_read_nj=solution.e_read_nj,
        e_write_nj=solution.e_write_nj,
        interleave_cycles=_cycles(interleave, 1),
        random_cycles=_cycles(solution.random_cycle_time, 1),
        rows_per_subarray=solution.data.rows,
    )


#: Memo of knob-free row solves (the lru_cache equivalent).  Knobbed
#: calls bypass it: a caller passing ``stats``/``obs``/``solve_cache``
#: expects a live solve feeding those sinks, not a silent memo hit --
#: and a memoized knobbed result would leak one caller's cache handle
#: into the next caller's run.
_ROW_MEMO: dict[str, object] = {}


def _memoized(key: str, build):
    row = _ROW_MEMO.get(key)
    if row is None:
        row = _ROW_MEMO[key] = build()
    return row


def _l1_row(**knobs) -> Table3Row:
    s = solve(MemorySpec(capacity_bytes=32 << 10, block_bytes=64,
                         associativity=8, node_nm=NODE_NM), **knobs)
    return _cache_row("L1", s, nbanks=1)


def solve_l1(**knobs) -> Table3Row:
    if knobs:
        return _l1_row(**knobs)
    return _memoized("L1", _l1_row)


def _l2_row(**knobs) -> Table3Row:
    s = solve(MemorySpec(capacity_bytes=1 << 20, block_bytes=64,
                         associativity=8, node_nm=NODE_NM), **knobs)
    return _cache_row("L2", s, nbanks=1)


def solve_l2(**knobs) -> Table3Row:
    if knobs:
        return _l2_row(**knobs)
    return _memoized("L2", _l2_row)


def _l3_row(name: str, **knobs) -> Table3Row:
    capacity, assoc, cell_tech, target = _L3_POINTS[name]
    s = solve(
        MemorySpec(
            capacity_bytes=capacity,
            block_bytes=64,
            associativity=assoc,
            nbanks=8,
            node_nm=NODE_NM,
            cell_tech=cell_tech,
            sleep_transistors=cell_tech.traits.sleep_transistors_effective,
        ),
        target,
        **knobs,
    )
    return _cache_row(name, s, nbanks=8)


def solve_l3(name: str, **knobs) -> Table3Row:
    if knobs:
        return _l3_row(name, **knobs)
    return _memoized(name, lambda: _l3_row(name))


def solve_main_memory_chip(**knobs):
    """The 8 Gb DDR4-3200 x8 device at 32 nm."""
    if knobs:
        return _main_memory_chip(**knobs)
    return _memoized("main_chip", _main_memory_chip)


def _main_memory_chip(**knobs):
    spec = MainMemorySpec(capacity_bits=8 * 2**30, page_bits=8192)
    # The cachedb grid only covers cache/RAM specs, not the main-memory
    # interface derivation, so that knob stops here.
    knobs = {k: v for k, v in knobs.items() if k != "cachedb"}
    return solve_main_memory(spec, node_nm=NODE_NM, **knobs)


def main_memory_row(**knobs) -> Table3Row:
    if knobs:
        return _main_row(**knobs)
    return _memoized("main", _main_row)


def _main_row(**knobs) -> Table3Row:
    mm = solve_main_memory_chip(**knobs)
    sheet = quantize(mm.timing, DDR4_3200)
    timing = to_main_memory_timing(sheet, burst_length=8)
    return Table3Row(
        name="main",
        capacity_bytes=2**30,  # 8 Gb
        nbanks=8,
        subbanks=mm.metrics.org.ndbl,
        associativity=1,
        clock_divider=16,
        access_cycles=_cycles(timing.t_rcd + timing.t_cas),
        cycle_cycles=_cycles(timing.t_rc),
        area_mm2=mm.area_mm2,
        area_efficiency=mm.area_efficiency,
        leakage_w=mm.energies.p_standby,
        refresh_w=mm.energies.p_refresh,
        e_read_nj=(mm.energies.e_activate + mm.energies.e_read) * 8 * 1e9,
        e_write_nj=(mm.energies.e_activate + mm.energies.e_write) * 8 * 1e9,
    )


def solve_table3(**knobs) -> dict[str, Table3Row]:
    """All Table 3 columns from the live CACTI-D model.

    Keyword knobs (``solve_cache``, ``stats``, ``jobs``, ``obs``,
    ``resilience``, ``cachedb``) pass through to every underlying cache
    solve (``cachedb`` stops before the main-memory chip, whose
    interface derivation the grid does not cover); knob-free calls are
    memoized.

    A ``resilience`` policy carrying a journal checkpoints the table at
    row granularity (stage ``"table3.row"``): each solved row is
    recorded as it completes, and a re-run against the same journal
    restores the finished rows without re-solving them -- an
    interrupted table resumes where it stopped.  The policy's fault
    plan fires at each row boundary (in the parent, so an injected
    ``kill`` degrades to an exception), which is how the test harness
    interrupts a table mid-build deterministically.
    """
    resilience = knobs.get("resilience")
    journal = resilience.journal if resilience is not None else None
    builders = [
        ("L1", lambda: solve_l1(**knobs)),
        ("L2", lambda: solve_l2(**knobs)),
        *[
            (name, lambda name=name: solve_l3(name, **knobs))
            for name in _L3_POINTS
        ],
        ("main", lambda: main_memory_row(**knobs)),
    ]
    rows: dict[str, Table3Row] = {}
    for index, (name, build) in enumerate(builders):
        key = None
        if journal is not None:
            from repro.core.resilience import task_key

            key = task_key("table3.row", {"row": name, "node_nm": NODE_NM})
            if key in journal:
                rows[name] = journal.result(key)
                continue
        if resilience is not None and resilience.fault_plan is not None:
            resilience.fault_plan.fire("table3.row", index, attempt=1)
        row = build()
        if key is not None:
            journal.record(key, "table3.row", row)
        rows[name] = row
    return rows


def paper_table3() -> dict[str, Table3Row]:
    """The values printed in paper Table 3, for comparison."""
    rows = [
        Table3Row("L1", 32 << 10, 1, 1, 8, 1, 2, 1, 0.17, 0.25, 0.009, 0.0,
                  0.07),
        Table3Row("L2", 1 << 20, 1, 4, 8, 1, 3, 1, 2.0, 0.67, 0.157, 0.0,
                  0.27),
        Table3Row("sram", 24 << 20, 8, 4, 12, 1, 5, 1, 6.2, 0.64, 3.6, 0.0,
                  0.54),
        Table3Row("lp_dram_ed", 48 << 20, 8, 32, 12, 1, 5, 1, 5.7, 0.36,
                  2.0, 0.3, 0.54),
        Table3Row("lp_dram_c", 72 << 20, 8, 16, 18, 1, 7, 3, 6.0, 0.51,
                  2.1, 0.12, 0.59),
        Table3Row("cm_dram_ed", 96 << 20, 8, 64, 12, 3, 16, 5, 4.8, 0.30,
                  0.015, 0.00018, 0.6),
        Table3Row("cm_dram_c", 192 << 20, 8, 32, 24, 4, 21, 10, 6.2, 0.47,
                  0.026, 0.001, 0.92),
        Table3Row("main", 1 << 30, 8, 64, 1, 16, 61, 98, 115.0, 0.46,
                  0.091, 0.009, 14.2),
    ]
    return {r.name: r for r in rows}


# --------------------------------------------------------------------- #
# Simulator + power-model wiring


def _memory_timing_cycles(source: str) -> MemoryTimingCycles:
    if source == "cacti":
        mm = solve_main_memory_chip()
        sheet = quantize(mm.timing, DDR4_3200)
        timing = to_main_memory_timing(sheet, burst_length=8)
        return MemoryTimingCycles.from_chip(timing, CPU_HZ)
    # Paper values: access = tRCD + CL = 61 CPU cycles, tRC = 98 cycles.
    return MemoryTimingCycles(
        t_rcd=30.0,
        t_cas=31.0,
        t_rp=28.0,
        t_ras=70.0,
        t_rc=98.0,
        t_rrd=15.0,
        t_burst=5.0,
    )


def build_system_config(
    name: str, source: str = "paper", scale: int = 16, cachedb=None
) -> SystemConfig:
    """One simulator configuration, capacities scaled by ``scale``.

    ``source`` selects where latencies come from: ``"cacti"`` runs this
    reproduction's solver (the paper's own flow), ``"paper"`` uses the
    published Table 3 numbers.  ``cachedb`` (a
    :class:`~repro.cachedb.CacheDB`) lets the cacti path serve exact
    precomputed solves instead of solving live.
    """
    if source == "paper":
        rows = paper_table3()
    elif cachedb is not None:
        rows = solve_table3(cachedb=cachedb)
    else:
        rows = solve_table3()
    l1r, l2r = rows["L1"], rows["L2"]
    l1 = CacheConfig(
        capacity_bytes=max(l1r.capacity_bytes // scale, 1024),
        block_bytes=64,
        associativity=l1r.associativity,
        access_cycles=l1r.access_cycles,
    )
    l2 = CacheConfig(
        capacity_bytes=max(l2r.capacity_bytes // scale, 4096),
        block_bytes=64,
        associativity=l2r.associativity,
        access_cycles=l2r.access_cycles,
    )
    l3 = None
    if name != "nol3":
        row = rows[name]
        if source == "cacti" and row.subbanks > 1:
            # Explicit multisubbank interleaving: the shared bus pitches
            # at the interleave cycle; a busy subbank stalls reuse for
            # its full (destructive-read) row cycle.
            l3 = L3Config(
                capacity_bytes=row.capacity_bytes // scale,
                associativity=row.associativity,
                access_cycles=row.access_cycles,
                bank_cycle=max(row.interleave_cycles, 1),
                nbanks=row.nbanks,
                subbanks=row.subbanks,
                subbank_cycle=row.random_cycles,
            )
        else:
            # The published Table 3 cycle is already the effective pitch.
            l3 = L3Config(
                capacity_bytes=row.capacity_bytes // scale,
                associativity=row.associativity,
                access_cycles=row.access_cycles,
                bank_cycle=row.cycle_cycles,
                nbanks=row.nbanks,
            )
    return SystemConfig(
        name=name,
        l1=l1,
        l2=l2,
        l3=l3,
        memory=_memory_timing_cycles(source),
        cpu_hz=CPU_HZ,
    )


@lru_cache(maxsize=None)
def _crossbar_metrics():
    # The crossbar sits on the core die; long-channel devices keep its
    # standby power negligible next to the caches it connects.
    return design_crossbar(technology(NODE_NM), 8, 8, 512,
                           device_type="hp-long-channel")


def build_energy_model(name: str, source: str = "paper", cachedb=None
                       ) -> HierarchyEnergyModel:
    """The Figure 5(a) energy model for one configuration."""
    if source == "paper":
        rows = paper_table3()
    elif cachedb is not None:
        rows = solve_table3(cachedb=cachedb)
    else:
        rows = solve_table3()
    l1r, l2r = rows["L1"], rows["L2"]

    def level(row: Table3Row, instances: int) -> LevelEnergy:
        e_read = row.e_read_nj * 1e-9
        e_write = (row.e_write_nj or row.e_read_nj) * 1e-9
        return LevelEnergy(
            e_read=e_read,
            e_write=e_write,
            p_leakage=row.leakage_w * instances,
            p_refresh=row.refresh_w * instances,
        )

    l3 = None
    if name != "nol3":
        l3 = level(rows[name], 1)

    if source == "cacti":
        mm = solve_main_memory_chip()
        memory = MainMemoryEnergy(
            e_activate=mm.energies.e_activate,
            e_read=mm.energies.e_read,
            e_write=mm.energies.e_write,
            p_standby=mm.energies.p_standby,
            p_refresh=mm.energies.p_refresh,
        )
    else:
        row = rows["main"]
        # Table 3's 14.2 nJ covers the full 8-chip line read incl. ACT.
        memory = MainMemoryEnergy(
            e_activate=0.6e-9,
            e_read=row.e_read_nj * 1e-9 / 8 - 0.6e-9,
            e_write=row.e_read_nj * 1e-9 / 8 - 0.6e-9,
            p_standby=row.leakage_w,
            p_refresh=row.refresh_w,
        )
    xbar = _crossbar_metrics()
    return HierarchyEnergyModel(
        l1=level(l1r, 16),
        l2=level(l2r, 8),
        crossbar_e_transfer=xbar.energy_per_transfer(),
        crossbar_p_leakage=xbar.leakage,
        l3=l3,
        memory=memory,
    )
