"""CMOS gate primitives: caps, resistances, delay, and the gate-area model.

CACTI-D sizes peripheral circuitry with the method of logical effort and
computes stage delays with the Horowitz slope-aware approximation.  Its
analytical gate-area model makes areas sensitive to transistor sizing:
transistors wider than the pitch they must fit in (wordline drivers matched
to the wordline pitch, sense amplifiers matched to the bitline pitch) get
*folded* into multiple fingers, growing the layout along the free axis.
This is what lets a single framework capture the very different pitch
constraints of SRAM and DRAM arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.tech.devices import DeviceParams

#: Contacted gate (poly) pitch in feature sizes: one finger of any
#: transistor occupies this much layout along the gate direction.
CONTACTED_PITCH_F = 4.0

#: Layout overhead (diffusion spacing, well separation) per gate, in F.
_GATE_OVERHEAD_F = 6.0

#: Minimum transistor width in feature sizes.
MIN_WIDTH_F = 2.0


def horowitz(t_ramp: float, tau: float, switching: float = 0.5) -> float:
    """Horowitz delay approximation for a gate with input slope ``t_ramp``.

    ``tau`` is the intrinsic RC time constant of the switching gate and
    ``switching`` the input switching threshold as a fraction of VDD.
    Reduces to ``tau * ln(1/switching)`` for a step input.
    """
    if tau <= 0.0:
        return 0.0
    a = t_ramp / tau
    return tau * math.sqrt(
        math.log(switching) ** 2 + 2.0 * a * 0.5 * (1.0 - switching)
    )


@dataclass(frozen=True)
class Gate:
    """A static CMOS gate of a given type and NMOS/PMOS sizing.

    ``w_n``/``w_p`` are per-input widths in metres.  ``stack`` is the series
    stack depth on the critical pull network (2 for NAND2 pull-down, etc.).
    """

    device: DeviceParams
    num_inputs: int
    w_n: float
    w_p: float
    stack: int = 1

    @property
    def c_in(self) -> float:
        """Input capacitance presented on one input (F)."""
        return (self.w_n + self.w_p) * self.device.c_gate

    @property
    def c_out(self) -> float:
        """Parasitic drain capacitance on the output node (F)."""
        drains = self.w_n * self.stack + self.w_p
        return drains * self.device.c_drain

    @property
    def r_drive(self) -> float:
        """Effective output resistance of the critical pull network (ohm)."""
        return self.device.r_eff * self.stack / self.w_n

    def delay(self, c_load: float, t_ramp: float = 0.0) -> tuple[float, float]:
        """(propagation delay, output ramp time) driving ``c_load`` (s)."""
        tau = self.r_drive * (self.c_out + c_load)
        d = horowitz(t_ramp, tau)
        return d, 2.0 * d

    def switch_energy(self, c_load: float) -> float:
        """Dynamic energy of one output transition (J)."""
        vdd = self.device.vdd
        return (self.c_out + self.c_in + c_load) * vdd * vdd

    def leakage(self) -> float:
        """Average static leakage power (W).

        Half the input states leak through the NMOS network, half through
        the PMOS; series stacks reduce subthreshold leakage roughly by the
        stack depth.
        """
        w_leak = (
            self.w_n * self.num_inputs / self.stack
            + self.w_p * self.num_inputs / self.device.n_to_p_ratio
        ) / 2.0
        return self.device.leakage_power(w_leak)

    def area(self, feature_size: float, pitch: float | None = None) -> float:
        """Layout area (m^2), folding transistors to honour ``pitch``.

        Without a pitch constraint the gate is laid out freely; with one,
        each transistor is folded so its diffusion fits inside the pitch
        and the layout grows along the unconstrained axis.
        """
        w_total = (self.w_n + self.w_p) * self.num_inputs
        if pitch is None:
            height = self.w_n + self.w_p + _GATE_OVERHEAD_F * feature_size
            width = self.num_inputs * CONTACTED_PITCH_F * feature_size
            return height * width
        area, _ = folded_strip_area(w_total, pitch, feature_size)
        return area


def folded_strip_area(
    w_total: float, pitch: float, feature_size: float
) -> tuple[float, int]:
    """Area of transistors of total width ``w_total`` folded into ``pitch``.

    Returns ``(area, fingers)``.  The diffusion dimension of each finger is
    limited to what fits inside the pitch (less wiring overhead); extra
    width folds into more fingers at the contacted gate pitch.  This is the
    pitch-matching model used for wordline drivers and sense amplifiers.
    """
    usable = max(pitch - 2.0 * feature_size, feature_size)
    fingers = max(1, math.ceil(w_total / usable))
    area = fingers * CONTACTED_PITCH_F * feature_size * pitch
    return area, fingers


def inverter(device: DeviceParams, w_n: float) -> Gate:
    """Inverter with PMOS sized for equal rise/fall drive."""
    return Gate(device, num_inputs=1, w_n=w_n, w_p=w_n * device.n_to_p_ratio)


def nand(device: DeviceParams, num_inputs: int, w_n: float) -> Gate:
    """NAND gate; NMOS stack upsized to preserve pull-down drive."""
    return Gate(
        device,
        num_inputs=num_inputs,
        w_n=w_n * num_inputs,
        w_p=w_n * device.n_to_p_ratio,
        stack=num_inputs,
    )


def nor(device: DeviceParams, num_inputs: int, w_n: float) -> Gate:
    """NOR gate; PMOS stack upsized to preserve pull-up drive."""
    return Gate(
        device,
        num_inputs=num_inputs,
        w_n=w_n,
        w_p=w_n * device.n_to_p_ratio * num_inputs,
        stack=1,
    )


def min_width(device: DeviceParams, feature_size: float) -> float:
    """Minimum usable transistor width in this technology (m)."""
    del device  # width floor is lithographic, not electrical
    return MIN_WIDTH_F * feature_size
