"""Page policies for DRAM operation (paper section 2.3.4).

Once a page is activated, the *open page* policy keeps it latched hoping
that near-term requests hit the same page -- saving tRCD+tRP on hits but
paying an extra tRP on conflicts and leaking sense-amp power over time.
The *closed page* policy proactively precharges after every access, which
wins when requests rarely hit an open page (e.g. the interleaved random
traffic a last-level cache sees, per the paper's section 3.4 argument).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PagePolicy:
    """Base page policy; subclasses decide whether to close after access."""

    name: str = "base"

    def close_after_access(self, expected_hit_ratio: float) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class OpenPagePolicy(PagePolicy):
    name: str = "open"

    def close_after_access(self, expected_hit_ratio: float) -> bool:
        del expected_hit_ratio
        return False


@dataclass(frozen=True)
class ClosedPagePolicy(PagePolicy):
    name: str = "closed"

    def close_after_access(self, expected_hit_ratio: float) -> bool:
        del expected_hit_ratio
        return True


def expected_access_latency(
    t_rcd: float,
    t_cas: float,
    t_rp: float,
    hit_ratio: float,
    policy: PagePolicy,
) -> float:
    """Mean request latency under a policy given the page-hit ratio.

    Open page: hits pay CAS only; misses pay tRP (conflict) + tRCD + CAS.
    Closed page: every access pays tRCD + CAS, with the precharge hidden.
    This is the closed-form tradeoff behind the paper's choice of an
    SRAM-like (effectively closed-page) interface for DRAM caches.
    """
    if isinstance(policy, ClosedPagePolicy):
        return t_rcd + t_cas
    hit = t_cas
    miss = t_rp + t_rcd + t_cas
    return hit_ratio * hit + (1.0 - hit_ratio) * miss


def crossover_hit_ratio(t_rcd: float, t_cas: float, t_rp: float) -> float:
    """Page-hit ratio above which the open policy beats the closed policy.

    Setting the two expected latencies equal:
    ``h * CAS + (1-h)(RP+RCD+CAS) = RCD + CAS``  =>  ``h = RP/(RP+RCD)``.
    """
    del t_cas
    return t_rp / (t_rp + t_rcd)
