"""Vectorized survivor-batch evaluation kernels.

The optimizer's serial inner loop used to build one Python object stack
(`_Builder` -> `Subarray` -> `HTree` -> `ArrayMetrics`) per prefilter
survivor -- ~12-15 % of the enumerated grid, thousands of candidates per
solve.  This module recasts that per-candidate composition as numpy
array arithmetic over *all* survivors at once:

* :func:`survivor_batch` wraps the raw arrays of
  :func:`~repro.array.organization.survivor_arrays` (the vectorized
  structural pre-filter) without materializing ``OrgParams`` /
  ``OrgGeometry`` objects;
* :func:`evaluate_batch` computes bitline/sense/decode/H-tree delays,
  per-access energies, leakage, refresh power, and area for the whole
  batch as float64 arrays;
* :func:`rank_batch` applies the staged area/access-time constraints
  and the normalized weighted ranking on the arrays.

Full ``Subarray``/``HTree``/``ArrayMetrics`` objects are constructed
only for the winner(s) the caller materializes afterwards -- see
``repro.core.optimizer``.

Determinism / bit-identity contract
-----------------------------------
Per-candidate arithmetic in the scalar path uses only ``+ * / max`` on
float64 (plus exact int-to-float conversions), and numpy performs the
identical IEEE-754 operation elementwise, so every kernel here mirrors
the scalar expression *operation for operation, in the same
left-associative order*.  Quantities whose formulas involve logs or
iterative sizing (decoder chains, sense timing, bitline RC) are never
recomputed: they are gathered from the same frozen
:class:`~repro.array.subarray.Subarray` objects the scalar path builds,
one per *unique* ``(rows, cols)`` -- via the shared
:class:`~repro.array.organization.EvalCache` -- and broadcast by
gather.  H-tree levels use an exact integer ``frexp`` ceil-log2.  The
result: ranking picks the same winner index the scalar sweep picks, and
the materialized winner is bit-identical.  ``REPRO_KERNELS=0`` (or the
:func:`disabled` context manager) forces the scalar path for
equivalence testing and benchmarking.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

try:  # optional, as in repro.array.organization
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None

from repro.array.htree import BRANCH_BUFFER_FO4
from repro.array.organization import (
    _BANK_AREA_OVERHEAD,
    _COLMUX_FO4,
    _CONTROL_ENERGY_FRACTION,
    _CONTROL_LEAKAGE_FRACTION,
    _CONTROL_WIRES,
    MAX_COLS,
    ArraySpec,
    EvalCache,
    OrgGeometry,
    OrgParams,
    survivor_arrays,
)
from repro.array.subarray import InfeasibleSubarray
from repro.circuits.repeaters import repeated_wire
from repro.tech.nodes import Technology

#: Module switch; the environment variable is read once at import.
_ENABLED = os.environ.get("REPRO_KERNELS", "1").lower() not in ("0", "off")


def enabled() -> bool:
    """Whether the vectorized kernels are active (and numpy is present)."""
    return _ENABLED and _np is not None


def set_enabled(flag: bool) -> None:
    """Force the kernels on or off process-wide (tests, benchmarks)."""
    global _ENABLED
    _ENABLED = bool(flag)


@contextmanager
def disabled():
    """Context manager forcing the scalar build path (for comparison)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


@dataclass
class SurvivorBatch:
    """All prefilter survivors of one spec, as aligned arrays.

    Column-for-column the same data ``prefilter_grid`` returns as
    ``(OrgParams, OrgGeometry)`` tuples, in the same enumeration order,
    without the per-candidate objects.
    """

    spec: ArraySpec
    ndwl: "object"  #: int64 arrays, one entry per survivor
    ndbl: "object"
    nspd: "object"  #: float64
    ndcm: "object"
    ndsam: "object"
    rows: "object"
    cols: "object"
    nact: "object"
    sensed_bits: "object"
    sense_amps_per_sub: "object"

    @property
    def size(self) -> int:
        return int(self.ndwl.shape[0])

    def org_at(self, i: int) -> tuple[OrgParams, OrgGeometry]:
        """Materialize candidate ``i`` as the scalar path's objects."""
        return (
            OrgParams(
                int(self.ndwl[i]),
                int(self.ndbl[i]),
                float(self.nspd[i]),
                int(self.ndcm[i]),
                int(self.ndsam[i]),
            ),
            OrgGeometry(
                rows=int(self.rows[i]),
                cols=int(self.cols[i]),
                nact=int(self.nact[i]),
                sensed_bits=int(self.sensed_bits[i]),
                sense_amps_per_sub=int(self.sense_amps_per_sub[i]),
            ),
        )

    def candidates(self) -> list[tuple[OrgParams, OrgGeometry]]:
        """The full ``prefilter_grid``-shaped candidate list."""
        return [self.org_at(i) for i in range(self.size)]

    def take(self, idx) -> "SurvivorBatch":
        """A new batch holding the candidates at ``idx``, in order."""
        return SurvivorBatch(
            spec=self.spec,
            ndwl=self.ndwl[idx],
            ndbl=self.ndbl[idx],
            nspd=self.nspd[idx],
            ndcm=self.ndcm[idx],
            ndsam=self.ndsam[idx],
            rows=self.rows[idx],
            cols=self.cols[idx],
            nact=self.nact[idx],
            sensed_bits=self.sensed_bits[idx],
            sense_amps_per_sub=self.sense_amps_per_sub[idx],
        )


def survivor_batch(
    spec: ArraySpec,
    max_ndwl: int = 64,
    max_ndbl: int = 64,
    nspd_values: tuple[float, ...] | None = None,
    max_mux: int | None = None,
) -> SurvivorBatch | None:
    """The spec's prefilter survivors as arrays; None without numpy."""
    arrays = survivor_arrays(spec, max_ndwl, max_ndbl, nspd_values, max_mux)
    if arrays is None:
        return None
    return SurvivorBatch(spec, *arrays)


@dataclass
class EvaluatedBatch:
    """Per-candidate metric arrays for the *buildable* survivors.

    Candidates whose subarray fails the electrical sense-signal check
    (the only build-time feasibility gate past the structural
    pre-filter) are dropped; ``batch`` is compacted accordingly and
    ``n_infeasible`` counts the drops.  Every array mirrors the
    same-named :class:`~repro.array.organization.ArrayMetrics` field
    bit for bit.
    """

    batch: SurvivorBatch
    n_infeasible: int
    t_access: "object"
    t_random_cycle: "object"
    t_interleave: "object"
    e_activate: "object"
    e_read_column: "object"
    e_write_column: "object"
    e_precharge: "object"
    e_read_access: "object"
    p_leakage: "object"
    p_refresh: "object"
    area: "object"
    bank_width: "object"
    bank_height: "object"
    area_efficiency: "object"

    @property
    def size(self) -> int:
        return int(self.t_access.shape[0])


def _htree_levels_array(num_mats):
    """Exact ``max(1, ceil(log2(max(n, 2))))`` for an int64 array.

    ``frexp`` decomposes n = m * 2**e with m in [0.5, 1); for integral
    n the ceil of log2 is e, minus one exactly when n is a power of two
    (m == 0.5).  Integer-exact for every value in range, unlike a
    floating ``log2`` whose ULP rounding could cross an integer.
    """
    mantissa, exponent = _np.frexp(num_mats.astype(_np.float64))
    levels = exponent - (mantissa == 0.5)
    return _np.maximum(1, levels)


def evaluate_batch(
    tech: Technology,
    spec: ArraySpec,
    batch: SurvivorBatch,
    cache: EvalCache,
) -> EvaluatedBatch:
    """Compose metrics for every survivor as one array computation.

    Mirrors ``organization._Builder.metrics()`` operation for
    operation; see the module docstring for the bit-identity argument.
    ``cache`` receives exactly the subarray hit/miss counts the scalar
    sweep would record (one lookup per candidate); H-tree designs are
    replaced by closed-form array arithmetic over the one memoized
    :class:`~repro.circuits.repeaters.RepeatedWireDesign`, so tree
    counters advance only when winners are materialized afterwards.
    """
    periph = tech.device(spec.periph_device_type)
    cell = tech.cell(spec.cell_tech, spec.periph_device_type)
    traits = spec.cell_tech.traits

    # --- per-unique subarray table -----------------------------------
    # Many candidates share one (rows, cols) subarray; the scalar sweep
    # resolves each through the EvalCache.  Solve each unique once and
    # gather, replicating the cache counters the per-candidate lookups
    # would have produced.
    key = batch.rows * (MAX_COLS + 1) + batch.cols
    unique_keys, inverse, counts = _np.unique(
        key, return_inverse=True, return_counts=True
    )
    rows_u = unique_keys // (MAX_COLS + 1)
    cols_u = unique_keys % (MAX_COLS + 1)
    n_unique = len(unique_keys)

    feasible_u = _np.zeros(n_unique, dtype=bool)
    per_unique = {
        name: _np.zeros(n_unique, dtype=_np.float64)
        for name in (
            "width", "height", "area", "cell_area", "blcap",
            "dec_delay", "wl_delay", "e_wordline", "t_bitline", "t_sense",
            "t_writeback", "t_precharge", "e_sense_per_pair", "e_writebl",
            "leak_fixed", "amp_leak",
        )
    }
    for u in range(n_unique):
        sub = cache.subarray(tech, spec, int(rows_u[u]), int(cols_u[u]))
        cache.subarray_hits += int(counts[u]) - 1
        try:
            sub.check_sense_feasible()
        except InfeasibleSubarray:
            continue
        feasible_u[u] = True
        per_unique["width"][u] = sub.width
        per_unique["height"][u] = sub.height
        per_unique["area"][u] = sub.area
        per_unique["cell_area"][u] = sub.cell_area
        per_unique["blcap"][u] = sub.bitline_capacitance
        per_unique["dec_delay"][u] = sub.decoder.delay
        per_unique["wl_delay"][u] = sub.decoder.wordline_delay
        per_unique["e_wordline"][u] = sub.e_wordline
        per_unique["t_bitline"][u] = sub.t_bitline
        per_unique["t_sense"][u] = sub.t_sense
        per_unique["t_writeback"][u] = sub.t_writeback
        per_unique["t_precharge"][u] = sub.t_precharge
        per_unique["e_sense_per_pair"][u] = sub.e_sense_per_pair
        per_unique["e_writebl"][u] = sub.e_write_bitlines(spec.output_bits)
        per_unique["leak_fixed"][u] = sub.leakage_fixed
        per_unique["amp_leak"][u] = sub.sense_amp.leakage()

    buildable = feasible_u[inverse]
    n_infeasible = int(batch.size - _np.count_nonzero(buildable))
    keep = _np.nonzero(buildable)[0]
    batch = batch.take(keep)
    inv = inverse[keep]

    def g(name):
        return per_unique[name][inv]

    w, b = batch.ndwl, batch.ndbl
    nact, sensed = batch.nact, batch.sensed_bits
    n_sa = batch.sense_amps_per_sub

    # --- geometry + H-trees ------------------------------------------
    # mats_in_bank: max(1, ceil(ndwl/2) * ceil(ndbl/2)); the operands
    # are positive ints, so the int ceil is exact.
    num_mats = _np.maximum(1, ((w + 1) // 2) * ((b + 1) // 2))
    bank_width = w * g("width")
    bank_height = b * g("height")

    design = repeated_wire(
        periph,
        tech.htree_wire(spec.cell_tech),
        tech.feature_size,
        spec.max_repeater_delay_penalty,
    )
    path = (bank_width + bank_height) / 2.0
    levels = _htree_levels_array(num_mats)
    buffer_delay = levels * BRANCH_BUFFER_FO4 * periph.fo4
    t_htree = design.delay_per_m * path + buffer_delay
    occupancy = t_htree / _np.maximum(levels, 1)
    e_per_wire = design.energy_per_m * path
    in_wires = spec.address_bits + _CONTROL_WIRES
    out_wires = spec.output_bits
    e_htree_in = in_wires * e_per_wire
    e_htree_out = out_wires * e_per_wire
    leak_htree_in = in_wires * (design.leakage_per_m * (2.0 * path))
    leak_htree_out = out_wires * (design.leakage_per_m * (2.0 * path))
    wiring_in = in_wires * design.wire.pitch * 2.0 * path
    wiring_out = out_wires * design.wire.pitch * 2.0 * path

    # --- timing -------------------------------------------------------
    t_colmux = _COLMUX_FO4 * periph.fo4
    t_access = (
        t_htree
        + g("dec_delay")
        + g("t_bitline")
        + g("t_sense")
        + t_colmux
        + t_htree
    )
    t_random_cycle = (
        g("wl_delay")
        + g("t_bitline")
        + g("t_sense")
        + g("t_writeback")
        + g("t_precharge")
    )
    # max(in-tree occupancy, out-tree occupancy, colmux); both trees
    # share one design and path, so their occupancies are one array.
    t_interleave = _np.maximum(_np.maximum(occupancy, occupancy), t_colmux)

    # --- energies -----------------------------------------------------
    e_wordlines = nact * g("e_wordline")
    e_sense = sensed * g("e_sense_per_pair")
    e_activate = e_wordlines + e_sense + e_htree_in
    e_colmux = (
        spec.output_bits
        * periph.c_gate
        * 8.0
        * tech.feature_size
        * periph.vdd**2
    )
    e_read_column = e_colmux + e_htree_out
    e_write_column = e_colmux + e_htree_out + g("e_writebl")
    swing_fraction = traits.precharge_swing_fraction
    e_precharge = (
        sensed * g("blcap") * cell.vdd_cell**2 * swing_fraction * 0.5
    )
    scale = 1.0 + _CONTROL_ENERGY_FRACTION
    e_activate = e_activate * scale
    e_read_column = e_read_column * scale
    e_write_column = e_write_column * scale
    e_precharge = e_precharge * scale

    # --- leakage ------------------------------------------------------
    num_subs = w * b
    leak_per_sub = g("leak_fixed") + n_sa * g("amp_leak")
    if spec.sleep_transistors:
        active_fraction = nact / num_subs
        leak_array = leak_per_sub * num_subs * (
            active_fraction + 0.5 * (1.0 - active_fraction)
        )
    else:
        leak_array = leak_per_sub * num_subs
    leak_bank = (
        leak_array + leak_htree_in + leak_htree_out
    ) * (1.0 + _CONTROL_LEAKAGE_FRACTION)
    p_leakage = leak_bank * spec.nbanks

    # --- refresh ------------------------------------------------------
    if traits.needs_refresh:
        refresh_ops_per_bank = batch.rows * b * w / nact
        e_refresh_op = (e_activate + e_precharge)
        p_refresh = (
            spec.nbanks
            * refresh_ops_per_bank
            * e_refresh_op
            / cell.retention_time
        )
    else:
        p_refresh = _np.zeros(batch.size, dtype=_np.float64)

    # --- area ---------------------------------------------------------
    subarrays_area = num_subs * g("area") * 1.02
    wiring = wiring_in + wiring_out
    bank_area = (subarrays_area + 0.5 * wiring) * (1 + _BANK_AREA_OVERHEAD)
    total_area = bank_area * spec.nbanks
    cell_area = num_subs * g("cell_area") * spec.nbanks

    e_read_access = e_activate + e_read_column + e_precharge
    return EvaluatedBatch(
        batch=batch,
        n_infeasible=n_infeasible,
        t_access=t_access,
        t_random_cycle=t_random_cycle,
        t_interleave=t_interleave,
        e_activate=e_activate,
        e_read_column=e_read_column,
        e_write_column=e_write_column,
        e_precharge=e_precharge,
        e_read_access=e_read_access,
        p_leakage=p_leakage,
        p_refresh=p_refresh,
        area=total_area,
        bank_width=bank_width,
        bank_height=bank_height,
        area_efficiency=cell_area / total_area,
    )


def rank_batch(ev: EvaluatedBatch, target) -> "object":
    """Staged constraints + normalized weighted ranking on the arrays.

    Returns the indices of the constraint-satisfying candidates into
    ``ev``'s arrays, best first -- exactly the order
    ``rank(filter_constraints(designs, target), target)`` produces,
    including stable tie-breaking by enumeration order.
    """
    area, t_access = ev.area, ev.t_access
    best_area = float(area.min())
    within_area = area <= best_area * (1.0 + target.max_area_fraction)
    best_time = float(t_access[within_area].min())
    mask = within_area & (
        t_access <= best_time * (1.0 + target.max_acctime_fraction)
    )
    idx = _np.nonzero(mask)[0]

    def floor(values) -> float:
        smallest = float(values.min())
        return smallest if smallest > 0.0 else 1e-30

    e_read = ev.e_read_access[idx]
    leak_total = ev.p_leakage[idx] + ev.p_refresh[idx]
    cycle = ev.t_random_cycle[idx]
    interleave = ev.t_interleave[idx]
    min_dyn = floor(e_read)
    min_leak = floor(leak_total)
    min_cycle = floor(cycle)
    min_interleave = floor(interleave)
    score = (
        target.weight_dynamic * e_read / min_dyn
        + target.weight_leakage * leak_total / min_leak
        + target.weight_cycle * cycle / min_cycle
        + target.weight_interleave * interleave / min_interleave
    )
    return idx[_np.argsort(score, kind="stable")]
