"""Mats: the 2x2 subarray tiles that the H-tree distributes to.

A mat groups four identical subarrays around shared predecode/control in
the CACTI organization.  The grouping matters for the H-tree (it targets
mats, not subarrays) and for area (shared central strip); electrically the
critical path runs through a single subarray, which :class:`Mat` delegates
to.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.array.subarray import Subarray

#: Subarrays per mat (2 x 2).
SUBARRAYS_PER_MAT = 4

#: Central control/predecode strip overhead as a fraction of subarray area;
#: partially offset by the predecoder sharing across the four subarrays.
_MAT_OVERHEAD = 0.02


@dataclass(frozen=True)
class Mat:
    """A 2x2 tile of identical subarrays with shared central control."""

    subarray: Subarray

    @cached_property
    def width(self) -> float:
        return 2.0 * self.subarray.width

    @cached_property
    def height(self) -> float:
        return 2.0 * self.subarray.height

    @cached_property
    def area(self) -> float:
        return SUBARRAYS_PER_MAT * self.subarray.area * (1.0 + _MAT_OVERHEAD)

    @cached_property
    def cell_area(self) -> float:
        return SUBARRAYS_PER_MAT * self.subarray.cell_area


def mats_in_bank(ndwl: int, ndbl: int) -> int:
    """Number of mats covering an ndwl x ndbl subarray grid."""
    return max(1, math.ceil(ndwl / 2) * math.ceil(ndbl / 2))
