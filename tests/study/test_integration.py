"""End-to-end integration: CACTI-D solves feeding the simulator.

The paper's flow is: CACTI-D produces the hierarchy's latencies and
energies; the architectural simulator consumes them; the power model
combines both.  These tests run that complete path (``source="cacti"``)
and check the study's headline orderings, plus robustness of the
qualitative conclusions to the workload random seed.
"""

import pytest

from repro.study.runner import run_one, run_study
from repro.workloads.npb import CG_C, FT_B

INSTR = 25_000


@pytest.mark.slow
class TestCactiSourcedStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(
            profiles=(FT_B, CG_C),
            configs=("nol3", "sram", "lp_dram_ed", "cm_dram_c"),
            source="cacti",
            instructions_per_thread=INSTR,
        )

    def test_ft_benefits_from_l3(self, study):
        assert study.normalized_cycles("ft.B", "lp_dram_ed") < 0.8

    def test_comm_l3_minimal_power_increase(self, study):
        sram = study.mean_hierarchy_power_increase("sram")
        comm = study.mean_hierarchy_power_increase("cm_dram_c")
        assert comm < sram

    def test_comm_edp_beats_sram(self, study):
        assert (
            study.mean_energy_delay_improvement("cm_dram_c")
            > study.mean_energy_delay_improvement("sram")
        )

    def test_solved_latencies_propagate(self, study):
        """The L3 service time must reflect the solved access latency."""
        r = study.get("ft.B", "lp_dram_ed")
        assert r.stats.breakdown.l3 > 0


class TestSeedRobustness:
    """The qualitative conclusions must not hinge on one RNG seed."""

    @pytest.mark.parametrize("seed", [7, 1234, 99999])
    def test_ft_l3_benefit_for_any_seed(self, seed):
        nol3 = run_one(FT_B.with_instructions(INSTR), "nol3", seed=seed)
        lp = run_one(FT_B.with_instructions(INSTR), "lp_dram_ed",
                     seed=seed)
        assert lp.ipc > nol3.ipc * 1.25

    @pytest.mark.parametrize("seed", [7, 99999])
    def test_cg_flat_for_any_seed(self, seed):
        nol3 = run_one(CG_C.with_instructions(INSTR), "nol3", seed=seed)
        comm = run_one(CG_C.with_instructions(INSTR), "cm_dram_c",
                       seed=seed)
        assert abs(comm.ipc / nol3.ipc - 1.0) < 0.30
