"""Orion-style crossbar delay/energy model (Wang et al., MICRO 2002).

The LLC study connects the 8 L2 banks on the core die to the 8 L3 banks on
the stacked die through a crossbar implemented on the core die (paper
section 3.1); CACTI-D incorporates an Orion-like model for its delay and
energy.  A matrix crossbar of N inputs x M outputs of ``width`` bits is a
grid of input and output lines with a tristate connector at each crossing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.drivers import WireLoad, build_chain
from repro.circuits.repeaters import repeated_wire
from repro.tech.nodes import Technology

#: Tristate connector transistor width in feature sizes.
_CONNECTOR_WIDTH_F = 12.0

#: Track pitch multiplier: control + shielding overhead per signal track.
_TRACK_OVERHEAD = 1.5


@dataclass(frozen=True)
class CrossbarMetrics:
    """Per-traversal properties of one crossbar design."""

    delay: float  #: input-port to output-port latency (s)
    energy_per_bit: float  #: dynamic energy per transferred bit (J)
    leakage: float  #: total static leakage (W)
    area: float  #: layout area (m^2)
    width_bits: int

    def energy_per_transfer(self, bits: int | None = None) -> float:
        """Energy to move one flit of ``bits`` (default: full width)."""
        n = self.width_bits if bits is None else bits
        return self.energy_per_bit * n


def design_crossbar(
    tech: Technology,
    num_inputs: int,
    num_outputs: int,
    width_bits: int,
    device_type: str = "hp",
) -> CrossbarMetrics:
    """Design an ``num_inputs x num_outputs`` crossbar of ``width_bits``."""
    device = tech.device(device_type)
    wire = tech.global_
    f = tech.feature_size

    track = wire.pitch * _TRACK_OVERHEAD
    # Input lines span all output columns and vice versa.
    in_len = num_outputs * width_bits * track
    out_len = num_inputs * width_bits * track
    area = in_len * out_len / width_bits  # grid area of the full matrix

    w_conn = _CONNECTOR_WIDTH_F * f
    c_connector = w_conn * device.c_drain

    # Input line: driven from the port buffer, loaded by the wire plus one
    # connector drain per output column.
    c_in_line = wire.c_per_m * in_len + num_outputs * c_connector
    r_in_line = wire.r_per_m * in_len
    in_chain = build_chain(device, f, c_load=num_outputs * c_connector,
                           wire=WireLoad(r_in_line, wire.c_per_m * in_len))

    # Output line: driven through one connector, loaded by wire + port cap.
    c_out_line = wire.c_per_m * out_len + num_inputs * c_connector
    r_conn = device.r_eff / w_conn
    tau_out = r_conn * c_out_line + 0.38 * wire.r_per_m * out_len * (
        wire.c_per_m * out_len
    )
    out_delay = 0.69 * tau_out

    vdd = device.vdd
    energy_per_bit = (c_in_line + c_out_line + w_conn * device.c_gate) * vdd * vdd

    # Tristate connectors sit in series stacks and are mostly cut off;
    # only a small fraction of the matrix leaks meaningfully.
    crossings = num_inputs * num_outputs * width_bits
    leakage = crossings * device.leakage_power(w_conn) * 0.1
    leakage += (num_inputs + num_outputs) * width_bits * in_chain.leakage

    # Long lines get repeated if the span warrants it; account for the
    # better of raw RC vs repeated delay.
    rep = repeated_wire(device, wire, f)
    in_line_delay = min(in_chain.delay, in_chain.delay / 2.0 + rep.delay(in_len))

    return CrossbarMetrics(
        delay=in_line_delay + out_delay,
        energy_per_bit=energy_per_bit,
        leakage=leakage,
        area=area,
        width_bits=width_bits,
    )
