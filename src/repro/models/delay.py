"""Access-path delay breakdown reporting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.array.organization import ArrayMetrics


@dataclass(frozen=True)
class DelayBreakdown:
    """Stage-by-stage latency of one access (s)."""

    htree_in: float
    decode: float
    bitline: float
    sense: float
    htree_out: float
    writeback: float  #: row-cycle only, not on the access path
    precharge: float  #: row-cycle only
    access_time: float
    random_cycle: float
    interleave_cycle: float

    def report(self) -> str:
        rows = [
            ("address H-tree in", self.htree_in),
            ("row decode + wordline", self.decode),
            ("bitline development", self.bitline),
            ("sense amplify", self.sense),
            ("data H-tree out", self.htree_out),
            ("writeback/restore (cycle)", self.writeback),
            ("precharge (cycle)", self.precharge),
            ("access time", self.access_time),
            ("random cycle time", self.random_cycle),
            ("interleave cycle time", self.interleave_cycle),
        ]
        return "\n".join(
            f"{name:<28}{t * 1e9:>9.3f} ns" for name, t in rows
        )


def delay_breakdown(metrics: ArrayMetrics) -> DelayBreakdown:
    return DelayBreakdown(
        htree_in=metrics.t_htree_in,
        decode=metrics.t_decode,
        bitline=metrics.t_bitline,
        sense=metrics.t_sense,
        htree_out=metrics.t_htree_out,
        writeback=metrics.t_writeback,
        precharge=metrics.t_precharge,
        access_time=metrics.t_access,
        random_cycle=metrics.t_random_cycle,
        interleave_cycle=metrics.t_interleave,
    )
