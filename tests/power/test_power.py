"""Unit tests for power accounting, core scaling, and thermal estimates."""

import pytest

from repro.power.hierarchy import (
    BUS_ENERGY_PER_BIT,
    HierarchyEnergyModel,
    LevelEnergy,
    MainMemoryEnergy,
    hierarchy_power,
)
from repro.power.system import (
    PAPER_CORE_POWER_W,
    SystemPower,
    energy_delay_ratio,
    scaled_core_power,
)
from repro.power.thermal import ThermalEstimate, temperature_spread
from repro.sim.stats import AccessCounters, SimStats


def model(l3=True):
    level = LevelEnergy(e_read=0.5e-9, e_write=0.6e-9, p_leakage=1.0)
    return HierarchyEnergyModel(
        l1=LevelEnergy(e_read=0.07e-9, e_write=0.07e-9, p_leakage=0.14),
        l2=level,
        crossbar_e_transfer=0.2e-9,
        crossbar_p_leakage=0.1,
        l3=LevelEnergy(e_read=0.54e-9, e_write=0.6e-9, p_leakage=3.6,
                       p_refresh=0.3) if l3 else None,
        memory=MainMemoryEnergy(
            e_activate=0.6e-9, e_read=0.6e-9, e_write=0.7e-9,
            p_standby=0.091, p_refresh=0.009,
        ),
    )


def stats(**kwargs):
    counters = AccessCounters(**kwargs)
    return SimStats(cycles=2e6, instructions=4e6, counters=counters)


class TestHierarchyPower:
    def test_leakage_always_present(self):
        p = hierarchy_power(model(), stats(), duration_s=1e-3)
        assert p.l1_leak == pytest.approx(0.14)
        assert p.l3_leak == pytest.approx(3.6)
        assert p.l3_refresh == pytest.approx(0.3)
        assert p.main_standby == pytest.approx(0.091 * 16)

    def test_dynamic_scales_with_activity(self):
        lo = hierarchy_power(model(), stats(l2_reads=1000), 1e-3)
        hi = hierarchy_power(model(), stats(l2_reads=2000), 1e-3)
        assert hi.l2_dyn == pytest.approx(2 * lo.l2_dyn)

    def test_memory_dynamic_counts_chips(self):
        p = hierarchy_power(
            model(), stats(mem_reads=1000, mem_activates=1000), 1e-3
        )
        expected = 1000 * (0.6e-9 + 0.6e-9) * 8 / 1e-3
        assert p.main_chip_dyn == pytest.approx(expected)

    def test_bus_power_follows_paper_assumption(self):
        p = hierarchy_power(model(), stats(mem_reads=1000), 1e-3)
        bits = 1000 * (512 + 64)
        assert p.main_bus == pytest.approx(bits * BUS_ENERGY_PER_BIT / 1e-3)

    def test_no_l3_config_zeroes_l3_and_crossbar(self):
        p = hierarchy_power(model(l3=False), stats(l3_reads=100), 1e-3)
        assert p.l3_leak == 0 and p.l3_dyn == 0
        assert p.crossbar_leak == 0 and p.crossbar_dyn == 0

    def test_total_sums_components(self):
        p = hierarchy_power(model(), stats(l2_reads=10), 1e-3)
        assert p.total == pytest.approx(sum(p.as_dict().values()))

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            hierarchy_power(model(), stats(), 0.0)


class TestCorePower:
    def test_matches_paper_value(self):
        """The scaling recipe must land near the paper's 22.3 W."""
        assert scaled_core_power() == pytest.approx(PAPER_CORE_POWER_W,
                                                    rel=0.10)

    def test_higher_clock_more_power(self):
        assert scaled_core_power(clock_hz=3e9) > scaled_core_power()

    def test_lower_vdd_less_power(self):
        assert scaled_core_power(vdd=0.8) < scaled_core_power()


class TestEnergyDelay:
    def test_edp_quadratic_in_time(self):
        p = hierarchy_power(model(), stats(), 1e-3)
        fast = SystemPower(core=22.3, memory_hierarchy=p,
                           execution_time=1e-3)
        slow = SystemPower(core=22.3, memory_hierarchy=p,
                           execution_time=2e-3)
        assert energy_delay_ratio(slow, fast) == pytest.approx(4.0)

    def test_edp_linear_in_power(self):
        p = hierarchy_power(model(), stats(), 1e-3)
        base = SystemPower(core=20.0, memory_hierarchy=p,
                           execution_time=1e-3)
        hot = SystemPower(core=20.0 + p.total, memory_hierarchy=p,
                          execution_time=1e-3)
        expected = (20.0 + 2 * p.total) / (20.0 + p.total)
        assert energy_delay_ratio(hot, base) == pytest.approx(expected)


class TestThermal:
    def test_paper_conclusion_holds(self):
        """SRAM vs COMM-DRAM stacked L3: < 1.5 K spread (section 4.3).

        The paper's worst case is ~450 mW per 6.2 mm^2 SRAM bank; the
        COMM-DRAM bank dissipates almost nothing.
        """
        estimates = [
            ThermalEstimate("sram", power=0.45, area=6.2e-6),
            ThermalEstimate("lp-dram", power=0.30, area=6.2e-6),
            ThermalEstimate("comm-dram", power=0.01, area=6.2e-6),
        ]
        assert temperature_spread(estimates) < 1.5

    def test_rise_scales_with_density(self):
        a = ThermalEstimate("a", power=1.0, area=1e-4)
        b = ThermalEstimate("b", power=2.0, area=1e-4)
        assert b.temperature_rise == pytest.approx(2 * a.temperature_rise)
