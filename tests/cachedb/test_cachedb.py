"""Unit tests for the precomputed design-space database."""

import json

import pytest

from repro.cachedb import (
    CacheDB,
    CacheDBError,
    CacheDBMiss,
    GridSpec,
    build_cachedb,
    grid_key,
    grid_spec_for,
)
from repro.cachedb.schema import DB_METRICS
from repro.cli import main
from repro.core.cacti import CactiD, solve
from repro.core.config import OptimizationTarget
from repro.core.solvecache import CACHE_VERSION, metrics_to_dict
from repro.obs import Obs
from repro.tech.registry import registered_names

CAPS = (64 << 10, 256 << 10)
NODES = (32.0, 45.0)


@pytest.fixture(scope="module")
def db_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cachedb") / "db.json"
    grid = GridSpec(
        capacities_bytes=CAPS, nodes_nm=NODES, technologies=("sram",)
    )
    report = build_cachedb(path, grid, jobs=1)
    assert report.solved == len(grid) == 4
    return path


@pytest.fixture()
def db(db_path):
    return CacheDB(db_path)


class TestGridSpec:
    def test_axes_deduped_and_sorted(self):
        grid = GridSpec(
            capacities_bytes=(1 << 20, 1 << 16, 1 << 20),
            nodes_nm=(45, 32.0, 45.0),
            technologies=("sram",),
        )
        assert grid.capacities_bytes == (1 << 16, 1 << 20)
        assert grid.nodes_nm == (32.0, 45.0)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one capacity"):
            GridSpec(capacities_bytes=())

    def test_node_outside_itrs_range_rejected(self):
        with pytest.raises(ValueError, match="outside modeled ITRS"):
            GridSpec(capacities_bytes=(1 << 16,), nodes_nm=(22.0,))

    def test_unknown_technology_rejected_with_registered_list(self):
        with pytest.raises(ValueError, match="sram"):
            GridSpec(
                capacities_bytes=(1 << 16,), technologies=("no-such-tech",)
            )

    def test_default_technologies_is_whole_registry(self):
        grid = GridSpec(capacities_bytes=(1 << 16,))
        assert grid.technologies == registered_names()

    def test_len_is_axis_product(self):
        grid = GridSpec(
            capacities_bytes=CAPS,
            nodes_nm=NODES,
            associativities=(4, 8),
            technologies=("sram", "stt-ram"),
        )
        assert len(grid) == 2 * 2 * 2 * 2
        assert len(list(grid.points())) == len(grid)


class TestBuilder:
    def test_infeasible_cells_become_holes(self, tmp_path):
        # 256 B cannot hold one 8-way set of 64 B blocks.
        grid = GridSpec(
            capacities_bytes=(256, 64 << 10), technologies=("sram",)
        )
        report = build_cachedb(tmp_path / "db.json", grid, jobs=1)
        assert report.solved == 1 and report.holes == 1
        db = CacheDB(tmp_path / "db.json")
        with pytest.raises(CacheDBMiss, match="hole"):
            db.query(256, fallback="error")

    def test_artifact_is_versioned(self, db_path):
        payload = json.loads(db_path.read_text())
        assert payload["format"] == "repro-cachedb-v1"
        assert payload["model_version"] == CACHE_VERSION

    def test_resumed_build_restores_solved_cells(self, tmp_path):
        grid = GridSpec(capacities_bytes=CAPS, technologies=("sram",))
        journal = tmp_path / "build.journal"
        first = build_cachedb(
            tmp_path / "db.json", grid, jobs=1, journal_path=journal
        )
        assert first.restored == 0 and first.solved == 2
        again = build_cachedb(
            tmp_path / "db.json", grid, jobs=1, journal_path=journal
        )
        assert again.restored == 2 and again.solved == 2


class TestReader:
    def test_exact_hit_counts_and_flags(self, db):
        result = db.query(CAPS[0], node_nm=32.0)
        assert result.source == "exact" and not result.interpolated
        assert db.stats()["hits"] == 1 and len(db) == 4

    def test_exact_hit_metrics_match_stored_record(self, db, db_path):
        payload = json.loads(db_path.read_text())
        key = grid_key("sram", 32.0, CAPS[0], 64, 8)
        assert (
            db.query(CAPS[0], node_nm=32.0).metrics
            == payload["points"][key]["metrics"]
        )

    def test_interpolated_query_is_flagged(self, db):
        result = db.query(128 << 10, node_nm=38.0)
        assert result.interpolated and result.source == "interpolated"
        assert result.solution is None
        assert db.stats()["interpolated"] == 1

    def test_fallback_error_raises_out_of_range(self, db):
        with pytest.raises(CacheDBMiss, match="outside grid range"):
            db.query(1 << 30, fallback="error")

    def test_fallback_nearest_snaps_to_grid(self, db):
        result = db.query(1 << 30, fallback="nearest")
        assert result.source == "nearest"
        assert result.capacity_bytes == CAPS[-1]
        assert db.stats()["fallbacks"] == 1

    def test_fallback_solve_matches_live_solve(self, db):
        result = db.query(32 << 10, fallback="solve")
        assert result.source == "solve" and not result.interpolated
        live = solve(grid_spec_for("sram", 32.0, 32 << 10, 64, 8))
        assert metrics_to_dict(result.solution.data) == metrics_to_dict(
            live.data
        )
        assert result.metrics == {
            name: extract(live) for name, extract in DB_METRICS.items()
        }

    def test_unknown_fallback_rejected(self, db):
        with pytest.raises(CacheDBError, match="unknown fallback"):
            db.query(CAPS[0], fallback="guess")

    def test_off_grid_discrete_axis_falls_back(self, db):
        with pytest.raises(CacheDBMiss, match="associativity"):
            db.query(CAPS[0], associativity=4, fallback="error")

    def test_foreign_format_refused(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(CacheDBError, match="format"):
            CacheDB(path)

    def test_stale_model_version_refused_unless_inspecting(
        self, tmp_path, db_path
    ):
        payload = json.loads(db_path.read_text())
        payload["model_version"] = "repro-solve-cache-v99"
        stale = tmp_path / "stale.json"
        stale.write_text(json.dumps(payload))
        with pytest.raises(CacheDBError, match="rebuild"):
            CacheDB(stale)
        info = CacheDB(stale, check_model=False).info()
        assert info["stale"] and info["points"] == 4


class TestSolveIntegration:
    def test_lookup_exact_counts_obs_metrics(self, db):
        obs = Obs()
        spec = grid_spec_for("sram", 32.0, CAPS[0], 64, 8)
        assert db.lookup_exact(spec, obs=obs) is not None
        off_spec = grid_spec_for("sram", 32.0, 32 << 10, 64, 8)
        assert db.lookup_exact(off_spec, obs=obs) is None
        snapshot = obs.metrics.snapshot()
        assert snapshot["counters"]["cachedb.hits"] == 1
        assert snapshot["counters"]["cachedb.misses"] == 1

    def test_lookup_exact_misses_on_different_target(self, db):
        from repro.core.config import DENSITY_OPTIMIZED

        spec = grid_spec_for("sram", 32.0, CAPS[0], 64, 8)
        assert db.lookup_exact(spec, DENSITY_OPTIMIZED) is None

    def test_lookup_exact_misses_on_off_grid_knobs(self, db):
        import dataclasses

        spec = dataclasses.replace(
            grid_spec_for("sram", 32.0, CAPS[0], 64, 8), ecc=True
        )
        assert db.lookup_exact(spec) is None

    def test_solve_served_from_cachedb_bit_identically(self, db):
        spec = grid_spec_for("sram", 32.0, CAPS[0], 64, 8)
        live = solve(spec)
        before = db.hits
        served = solve(spec, cachedb=db)
        assert db.hits == before + 1
        assert metrics_to_dict(served.data) == metrics_to_dict(live.data)
        assert metrics_to_dict(served.tag) == metrics_to_dict(live.tag)

    def test_cactid_accepts_cachedb_path(self, db_path):
        facade = CactiD(cachedb=db_path)
        spec = grid_spec_for("sram", 32.0, CAPS[0], 64, 8)
        solution = facade.solve(spec, OptimizationTarget())
        assert facade.cachedb.hits == 1
        assert solution.spec == spec


class TestCli:
    def test_build_query_info_round_trip(self, tmp_path, capsys):
        path = tmp_path / "db.json"
        assert main([
            "cachedb", "build", str(path),
            "--capacities", "64K,128K", "--techs", "sram",
            "--jobs", "1",
        ]) == 0
        assert "solved          : 2" in capsys.readouterr().out

        assert main([
            "cachedb", "query", str(path), "--capacity", "64K",
        ]) == 0
        assert "source          : exact" in capsys.readouterr().out

        assert main([
            "cachedb", "query", str(path), "--capacity", "96K",
            "--fallback", "error",
        ]) == 0
        assert "interpolated    : yes" in capsys.readouterr().out

        assert main(["cachedb", "info", str(path)]) == 0
        assert "repro-cachedb-v1" in capsys.readouterr().out

    def test_query_fallback_error_exits_2(self, tmp_path, capsys):
        path = tmp_path / "db.json"
        main([
            "cachedb", "build", str(path),
            "--capacities", "64K", "--techs", "sram", "--jobs", "1",
        ])
        capsys.readouterr()
        assert main([
            "cachedb", "query", str(path), "--capacity", "1G",
            "--fallback", "error",
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cache_subcommand_consults_cachedb(
        self, tmp_path, capsys, monkeypatch
    ):
        path = tmp_path / "db.json"
        main([
            "cachedb", "build", str(path),
            "--capacities", "64K", "--techs", "sram", "--jobs", "1",
        ])
        capsys.readouterr()

        def boom(*args, **kwargs):  # the solver must not run on a hit
            raise AssertionError("solver invoked despite cachedb hit")

        from repro.core import cacti

        monkeypatch.setattr(cacti, "optimize", boom)
        assert main([
            "cache", "--capacity", "64K", "--cachedb", str(path),
        ]) == 0
        assert "64 KB" in capsys.readouterr().out
