"""Tests for ECC and temperature extensions on the solve API."""

import pytest

from repro import MemorySpec, solve
from repro.core.cacti import data_array_spec
from repro.models.leakage import TEMPERATURE_LEAKAGE_FACTOR


class TestEcc:
    def test_spec_widens_array(self):
        base = data_array_spec(MemorySpec(capacity_bytes=1 << 20))
        ecc = data_array_spec(MemorySpec(capacity_bytes=1 << 20, ecc=True))
        assert ecc.output_bits == base.output_bits * 9 // 8
        assert ecc.capacity_bits == base.capacity_bits * 9 // 8

    def test_ecc_costs_area_and_energy(self):
        base = solve(MemorySpec(capacity_bytes=1 << 20))
        ecc = solve(MemorySpec(capacity_bytes=1 << 20, ecc=True))
        assert ecc.area > base.area * 1.05
        assert ecc.e_read > base.e_read * 1.05
        # But not more than the storage overhead suggests.
        assert ecc.area < base.area * 1.35


class TestTemperature:
    def test_default_operating_point_is_identity(self):
        s = solve(MemorySpec(capacity_bytes=256 << 10))
        assert s.p_leakage_at(360.0) == pytest.approx(s.p_leakage)

    def test_room_temperature_divides_by_factor(self):
        s = solve(MemorySpec(capacity_bytes=256 << 10))
        assert s.p_leakage_at(300.0) == pytest.approx(
            s.p_leakage / TEMPERATURE_LEAKAGE_FACTOR
        )

    def test_hotter_leaks_more(self):
        s = solve(MemorySpec(capacity_bytes=256 << 10))
        assert s.p_leakage_at(400.0) > s.p_leakage
