"""Property and failure-injection tests on the full-system simulator."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.cache import CacheConfig
from repro.sim.dram_channel import MemoryTimingCycles
from repro.sim.system import L3Config, System, SystemConfig, run_workload
from repro.workloads.synthetic import WorkloadProfile, event_stream

MEM = MemoryTimingCycles(
    t_rcd=30, t_cas=31, t_rp=28, t_ras=70, t_rc=98, t_rrd=15, t_burst=5
)


def config(l3=True, cores=2, threads=2, l3_kb=64):
    return SystemConfig(
        name="prop",
        l1=CacheConfig(capacity_bytes=1024, block_bytes=64, associativity=2,
                       access_cycles=2),
        l2=CacheConfig(capacity_bytes=4096, block_bytes=64, associativity=4,
                       access_cycles=3),
        l3=L3Config(capacity_bytes=l3_kb << 10, associativity=8,
                    access_cycles=5, bank_cycle=1) if l3 else None,
        memory=MEM,
        num_cores=cores,
        threads_per_core=threads,
    )


def tiny_profile(**overrides):
    params = dict(
        name="prop",
        instructions_per_thread=2000,
        fp_fraction=0.4,
        mem_per_instr=0.1,
        write_fraction=0.3,
        hot_bytes=2048,
        warm_bytes=32 << 10,
        cold_bytes=64 << 10,
        p_hot=0.5,
        p_warm=0.4,
        p_cold=0.1,
        barriers=4,
    )
    params.update(overrides)
    return WorkloadProfile(**params)


addresses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 22), st.booleans()),
    min_size=1,
    max_size=120,
)


class TestConservation:
    @given(addresses)
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_counter_hierarchy_invariants(self, refs):
        """Traffic can only narrow going down the hierarchy."""
        events = [("mem", a * 64, w) for a, w in refs]
        cfg = config()
        system = System(cfg)
        stats = system.run(
            [iter(list(events)) for _ in range(cfg.num_threads)]
        )
        c = stats.counters
        l1 = c.l1_reads + c.l1_writes
        l2 = c.l2_reads + c.l2_writes
        l3 = c.l3_reads + c.l3_writes
        assert l1 == len(events) * cfg.num_threads
        assert l2 <= l1
        assert l3 <= l2 + c.coherence_invalidations
        # Demand memory reads cannot exceed L3 traffic.
        assert c.mem_reads <= l3

    @given(addresses)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_breakdown_matches_thread_time(self, refs):
        """Per-thread attributed cycles sum to the thread's clock."""
        events = [("compute", 10, 31.0)] + [
            ("mem", a * 64, w) for a, w in refs
        ]
        cfg = config(cores=1, threads=1)
        system = System(cfg)
        stats = system.run([iter(events)])
        assert stats.breakdown.total == pytest.approx(stats.cycles)

    @given(addresses)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_monotone_time(self, refs):
        """More work never makes the run shorter."""
        cfg = config(cores=1, threads=1)
        half = [("mem", a * 64, w) for a, w in refs[: len(refs) // 2 + 1]]
        full = [("mem", a * 64, w) for a, w in refs]
        t_half = System(cfg).run([iter(half)]).cycles
        t_full = System(cfg).run([iter(full)]).cycles
        assert t_full >= t_half - 1e-9


class TestWorkloadIntegration:
    def test_single_thread_system(self):
        cfg = config(cores=1, threads=1)
        profile = tiny_profile()
        stats = run_workload(
            cfg, lambda tid: event_stream(profile, tid, 1)
        )
        assert stats.instructions >= profile.instructions_per_thread

    def test_extreme_memory_intensity(self):
        """mem_per_instr = 1.0: one reference per instruction."""
        profile = tiny_profile(mem_per_instr=1.0,
                               instructions_per_thread=500)
        cfg = config()
        stats = run_workload(
            cfg, lambda tid: event_stream(profile, tid, cfg.num_threads)
        )
        assert stats.counters.l1_reads + stats.counters.l1_writes >= 400

    def test_no_barriers(self):
        profile = tiny_profile(barriers=0)
        cfg = config()
        stats = run_workload(
            cfg, lambda tid: event_stream(profile, tid, cfg.num_threads)
        )
        assert stats.breakdown.barrier == 0.0

    def test_pure_streaming(self):
        """All-cold traffic: misses dominate, L3 barely helps."""
        profile = tiny_profile(p_hot=0.0, p_warm=0.0, p_cold=1.0,
                               cold_bytes=8 << 20, spatial_run=1.0)
        cfg = config()
        stats = run_workload(
            cfg, lambda tid: event_stream(profile, tid, cfg.num_threads)
        )
        assert stats.counters.mem_reads > 0

    def test_all_hot_traffic_stays_in_l1(self):
        profile = tiny_profile(p_hot=1.0, p_warm=0.0, p_cold=0.0,
                               hot_bytes=512, spatial_run=1.0)
        cfg = config(cores=1, threads=1)
        stats = run_workload(cfg, lambda tid: event_stream(profile, tid, 1))
        l1 = stats.counters.l1_reads + stats.counters.l1_writes
        l2 = stats.counters.l2_reads + stats.counters.l2_writes
        assert l2 < 0.15 * l1  # only cold misses and write upgrades

    def test_writes_generate_writebacks(self):
        profile = tiny_profile(write_fraction=1.0, p_hot=0.0, p_warm=1.0,
                               p_cold=0.0, warm_bytes=1 << 20)
        cfg = config(l3=False, cores=1, threads=1)
        stats = run_workload(cfg, lambda tid: event_stream(profile, tid, 1))
        assert stats.counters.mem_writes > 0

    def test_deterministic_given_seed(self):
        profile = tiny_profile()
        cfg = config()

        def run():
            return run_workload(
                cfg_fresh(),
                lambda tid: event_stream(profile, tid, cfg.num_threads,
                                         seed=99),
            )

        def cfg_fresh():
            return config()

        a, b = run(), run()
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions
        assert a.counters.mem_reads == b.counters.mem_reads


class TestAnalyticCrossCheck:
    def test_uniform_region_hit_rate_matches_capacity_ratio(self):
        """Cross-check the simulator against the analytic model: for
        uniform random reuse over a region of size W, an LRU cache of
        capacity C approaches hit rate ~ C/W in steady state."""
        region_lines = 4096
        cache_lines = 1024  # C/W = 0.25
        cfg = SystemConfig(
            name="analytic",
            l1=CacheConfig(64, 64, 1, 1),  # pass-through single line
            l2=CacheConfig(cache_lines * 64, 64, 8, 3),
            l3=None,
            memory=MEM,
            num_cores=1,
            threads_per_core=1,
        )
        import numpy as np

        rng = np.random.default_rng(11)
        addresses = rng.integers(0, region_lines, 30_000) * 64
        system = System(cfg)
        stats = system.run([iter([("mem", int(a), False)
                                  for a in addresses])])
        warmup_misses = cache_lines
        demand = len(addresses)
        misses = stats.counters.mem_reads - warmup_misses
        miss_rate = misses / demand
        expected = 1.0 - cache_lines / region_lines
        assert miss_rate == pytest.approx(expected, abs=0.05)
