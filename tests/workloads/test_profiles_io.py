"""Tests for workload-profile JSON persistence."""

import json

import pytest

from repro.workloads.npb import FT_B, NPB_PROFILES
from repro.workloads.profiles_io import (
    load_profiles,
    profile_from_dict,
    profile_to_dict,
    save_profiles,
)


class TestRoundTrip:
    def test_single_profile(self):
        assert profile_from_dict(profile_to_dict(FT_B)) == FT_B

    def test_all_npb_profiles(self, tmp_path):
        path = tmp_path / "npb.json"
        save_profiles(list(NPB_PROFILES), path)
        loaded = load_profiles(path)
        assert tuple(loaded) == NPB_PROFILES

    def test_single_object_file(self, tmp_path):
        path = tmp_path / "one.json"
        path.write_text(json.dumps(profile_to_dict(FT_B)))
        assert load_profiles(path) == [FT_B]


class TestValidation:
    def test_unknown_field_rejected(self):
        data = profile_to_dict(FT_B)
        data["working_set"] = 123
        with pytest.raises(ValueError, match="unknown profile fields"):
            profile_from_dict(data)

    def test_profile_invariants_still_enforced(self):
        data = profile_to_dict(FT_B)
        data["p_hot"] = 0.9  # probabilities no longer sum to 1
        with pytest.raises(ValueError, match="sum"):
            profile_from_dict(data)

    def test_non_object_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('"just a string"')
        with pytest.raises(ValueError, match="expected a JSON"):
            load_profiles(path)
