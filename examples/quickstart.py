#!/usr/bin/env python3
"""Quickstart: solve a cache and a main-memory DRAM chip with CACTI-D.

Solves a 2 MB 8-way SRAM L2 cache at 32 nm, compares it against LP-DRAM
and COMM-DRAM implementations of the same cache, and solves a 1 Gb
commodity DRAM chip -- demonstrating the headline capability of the
paper: consistent modeling from SRAM caches through main-memory DRAMs.

Run:  python examples/quickstart.py
"""

from repro import CellTech, MainMemorySpec, MemorySpec, solve, solve_main_memory


def main() -> None:
    print("=" * 64)
    print("CACTI-D quickstart: one cache, three memory technologies")
    print("=" * 64)

    for cell_tech in (CellTech.SRAM, CellTech.LP_DRAM, CellTech.COMM_DRAM):
        spec = MemorySpec(
            capacity_bytes=2 << 20,
            block_bytes=64,
            associativity=8,
            node_nm=32.0,
            cell_tech=cell_tech,
        )
        solution = solve(spec)
        print(f"\n--- 2 MB 8-way cache in {cell_tech.value} ---")
        print(solution.summary())

    print("\n" + "=" * 64)
    print("A 1 Gb x8 commodity main-memory DRAM chip at 78 nm")
    print("=" * 64)
    chip = solve_main_memory(
        MainMemorySpec(capacity_bits=2**30, data_pins=8, burst_length=8),
        node_nm=78.0,
    )
    print(chip.summary())

    print("\nTakeaways (paper Table 1/3 in miniature):")
    print(" * COMM-DRAM is densest but slowest; its LSTP periphery makes")
    print("   leakage essentially vanish.")
    print(" * LP-DRAM halves SRAM's area at similar speed, but its 0.12 ms")
    print("   retention costs refresh power.")
    print(" * The main-memory chip trades everything for area efficiency.")


if __name__ == "__main__":
    main()
