"""Validation harness: run CACTI-D against the published targets.

Produces the paper's Table 2 (DRAM validation with per-metric errors) and
Figure 1 (SRAM cache solution bubbles vs the published design) from the
live model, so the benchmarks and EXPERIMENTS.md report measured, not
hard-coded, numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.array.mainmem import MainMemorySpec
from repro.core.cacti import MainMemorySolution, solve_main_memory
from repro.core.cacti import solve
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.results import Solution
from repro.tech.cells import CellTech
from repro.validation.targets import DDR3_TARGET, Ddr3Target, SramCacheTarget


def percent_error(model: float, actual: float) -> float:
    """Signed fractional error of the model against the actual value.

    A zero actual has no well-defined fractional error: an exactly-met
    zero target reports 0.0, and anything else raises :class:`ValueError`
    (not a bare ``ZeroDivisionError``) so the CLI can exit cleanly with
    the offending values instead of a traceback.
    """
    if actual == 0:
        if model == 0:
            return 0.0
        raise ValueError(
            f"percent error is undefined against a zero target "
            f"(model value {model!r})"
        )
    return (model - actual) / actual


@dataclass(frozen=True)
class Ddr3Validation:
    """Model-vs-actual comparison for the Micron DDR3 target."""

    solution: MainMemorySolution
    errors: dict[str, float]

    @property
    def mean_abs_error(self) -> float:
        return sum(abs(e) for e in self.errors.values()) / len(self.errors)

    def report(self) -> str:
        target = DDR3_TARGET
        rows = [
            ("Area efficiency", self.solution.area_efficiency,
             target.area_efficiency, "", 1.0),
            ("tRCD (ns)", self.solution.timing.t_rcd, target.t_rcd, "ns", 1e9),
            ("CAS latency (ns)", self.solution.timing.t_cas, target.t_cas,
             "ns", 1e9),
            ("tRC (ns)", self.solution.timing.t_rc, target.t_rc, "ns", 1e9),
            ("ACTIVATE energy (nJ)", self.solution.energies.e_activate,
             target.e_activate, "nJ", 1e9),
            ("READ energy (nJ)", self.solution.energies.e_read,
             target.e_read, "nJ", 1e9),
            ("WRITE energy (nJ)", self.solution.energies.e_write,
             target.e_write, "nJ", 1e9),
            ("Refresh power (mW)", self.solution.energies.p_refresh,
             target.p_refresh, "mW", 1e3),
        ]
        lines = [
            f"{'Metric':<24}{'Actual':>10}{'Model':>10}{'Error':>9}"
            f"{'Paper err':>11}"
        ]
        keys = list(self.errors)
        for (label, model, actual, _unit, scale), key in zip(rows, keys):
            paper = Ddr3Target.PAPER_ERRORS[key]
            lines.append(
                f"{label:<24}{actual * scale:>10.2f}{model * scale:>10.2f}"
                f"{self.errors[key] * 100:>8.1f}%{paper * 100:>10.1f}%"
            )
        lines.append(f"mean |error|: {self.mean_abs_error * 100:.1f}%")
        return "\n".join(lines)


def validate_ddr3(
    target: Ddr3Target | None = None,
    *,
    solve_cache=None,
    stats=None,
    jobs: int = 1,
    obs=None,
) -> Ddr3Validation:
    """Solve the Micron part and compute per-metric errors (Table 2).

    ``target`` defaults to the module's ``DDR3_TARGET`` resolved at call
    time (not bound at definition).  The keyword knobs (persistent
    ``solve_cache``, ``stats`` accumulator, worker ``jobs``, ``obs``
    tracer) pass straight through to
    :func:`~repro.core.cacti.solve_main_memory`, so the validation run is
    observable and cacheable exactly like any other solve.
    """
    if target is None:
        target = DDR3_TARGET
    spec = MainMemorySpec(
        capacity_bits=target.capacity_bits,
        nbanks=target.nbanks,
        data_pins=target.data_pins,
        burst_length=target.burst_length,
        page_bits=target.page_bits,
    )
    solution = solve_main_memory(
        spec,
        node_nm=target.node_nm,
        solve_cache=solve_cache,
        stats=stats,
        jobs=jobs,
        obs=obs,
    )
    errors = {
        "area_efficiency": percent_error(
            solution.area_efficiency, target.area_efficiency
        ),
        "t_rcd": percent_error(solution.timing.t_rcd, target.t_rcd),
        "t_cas": percent_error(solution.timing.t_cas, target.t_cas),
        "t_rc": percent_error(solution.timing.t_rc, target.t_rc),
        "e_activate": percent_error(
            solution.energies.e_activate, target.e_activate
        ),
        "e_read": percent_error(solution.energies.e_read, target.e_read),
        "e_write": percent_error(solution.energies.e_write, target.e_write),
        "p_refresh": percent_error(
            solution.energies.p_refresh, target.p_refresh
        ),
    }
    return Ddr3Validation(solution=solution, errors=errors)


@dataclass(frozen=True)
class SramBubble:
    """One point of the Figure 1 bubble chart."""

    label: str
    access_time: float  #: s
    dynamic_power: float  #: W at activity factor 1.0
    area: float  #: m^2
    leakage_power: float


@dataclass(frozen=True)
class SramValidation:
    """Figure 1 reproduction for one published SRAM cache."""

    target: SramCacheTarget
    target_bubbles: tuple[SramBubble, ...]
    solutions: tuple[SramBubble, ...]
    best_access_solution: Solution

    def mean_abs_error(self) -> float:
        """Mean |error| of the best-access-time solution across access
        time, area, and power -- the paper quotes ~20 % for this metric."""
        best = min(self.solutions, key=lambda b: b.access_time)
        t = self.target
        errors = [
            abs(percent_error(best.access_time, t.access_time)),
            abs(percent_error(best.area, t.area)),
            abs(
                percent_error(
                    best.dynamic_power + best.leakage_power,
                    min(t.dynamic_power) + t.leakage_power,
                )
            ),
        ]
        return sum(errors) / len(errors)


def validate_sram_cache(
    target: SramCacheTarget,
    constraint_sweep: tuple[OptimizationTarget, ...] | None = None,
) -> SramValidation:
    """Reproduce a Figure 1 bubble chart for one published SRAM cache.

    Sweeps the optimizer constraints within reasonable bounds (as the
    paper does) and reports each resulting solution as a bubble.
    """
    if constraint_sweep is None:
        constraint_sweep = tuple(
            OptimizationTarget(
                max_area_fraction=a,
                max_acctime_fraction=t,
                max_repeater_delay_penalty=r,
            )
            for a in (0.1, 0.3, 0.6)
            for t in (0.05, 0.3)
            for r in (0.0, 0.4)
        )
    spec = MemorySpec(
        capacity_bytes=target.capacity_bytes,
        block_bytes=target.block_bytes,
        associativity=target.associativity,
        nbanks=1,
        node_nm=target.node_nm,
        cell_tech=CellTech.SRAM,
        sleep_transistors=True,
    )
    bubbles = []
    best_solution: Solution | None = None
    # Activity factor 1.0: one access per cache clock.  Large shared L3s
    # run at half the core clock (the Xeon 7100's L3 pipeline), so that is
    # the reference frequency for the dynamic-power bubbles.
    cache_clock = target.clock_hz / 2.0
    for opt in constraint_sweep:
        solution = solve(spec, opt)
        dyn = solution.e_read * cache_clock
        bubble = SramBubble(
            label=f"a={opt.max_area_fraction} t={opt.max_acctime_fraction} "
            f"r={opt.max_repeater_delay_penalty}",
            access_time=solution.access_time,
            dynamic_power=dyn,
            area=solution.area,
            leakage_power=solution.p_leakage,
        )
        bubbles.append(bubble)
        if (
            best_solution is None
            or solution.access_time < best_solution.access_time
        ):
            best_solution = solution

    targets = tuple(
        SramBubble(
            label=f"{target.name} (quoted dyn #{i + 1})",
            access_time=target.access_time,
            dynamic_power=p,
            area=target.area,
            leakage_power=target.leakage_power,
        )
        for i, p in enumerate(target.dynamic_power)
    )
    assert best_solution is not None
    return SramValidation(
        target=target,
        target_bubbles=targets,
        solutions=tuple(bubbles),
        best_access_solution=best_solution,
    )
