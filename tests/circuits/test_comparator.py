"""Tests for the tag comparator circuit."""

import pytest

from repro.circuits.comparator import Comparator, way_select_delay
from repro.tech.devices import device

HP32 = device("hp-long-channel", 32)
F32 = 32e-9


class TestComparator:
    def test_delay_grows_with_tag_width(self):
        narrow = Comparator(HP32, F32, tag_bits=16)
        wide = Comparator(HP32, F32, tag_bits=40)
        assert wide.delay > narrow.delay

    def test_energy_roughly_linear_in_bits(self):
        a = Comparator(HP32, F32, tag_bits=16)
        b = Comparator(HP32, F32, tag_bits=32)
        assert b.energy == pytest.approx(2 * a.energy, rel=0.1)

    def test_delay_small_vs_array_access(self):
        """A 25-bit compare is a handful of FO4s, not nanoseconds."""
        c = Comparator(HP32, F32, tag_bits=25)
        assert c.delay < 20 * HP32.fo4

    def test_leakage_positive(self):
        assert Comparator(HP32, F32, tag_bits=25).leakage() > 0

    def test_match_line_cap_scales(self):
        a = Comparator(HP32, F32, tag_bits=10)
        b = Comparator(HP32, F32, tag_bits=20)
        assert b.match_line_cap == pytest.approx(2 * a.match_line_cap)


class TestWaySelect:
    def test_more_ways_more_delay(self):
        small = way_select_delay(HP32, F32, tag_bits=25, ways=2)
        big = way_select_delay(HP32, F32, tag_bits=25, ways=32)
        assert big > small

    def test_exceeds_bare_compare(self):
        c = Comparator(HP32, F32, tag_bits=25)
        assert way_select_delay(HP32, F32, 25, 8) > c.delay
