"""Unit tests for the row decoder model."""

import pytest

from repro.circuits.decoder import WordlineLoad, design_decoder
from repro.circuits.drivers import WireLoad
from repro.tech.devices import device

HP32 = device("hp-long-channel", 32)
F32 = 32e-9


def _wordline(voltage=None):
    return WordlineLoad(
        resistance=2e3,
        capacitance=30e-15,
        pitch=8.6 * F32,
        voltage=voltage if voltage is not None else HP32.vdd,
    )


def _predec_wire():
    return WireLoad(resistance=300.0, capacitance=10e-15)


class TestDecoder:
    def test_more_rows_costs_delay_and_area(self):
        small = design_decoder(HP32, F32, 64, _wordline(), _predec_wire())
        big = design_decoder(HP32, F32, 1024, _wordline(), _predec_wire())
        assert big.delay > small.delay
        assert big.area > small.area
        assert big.leakage > small.leakage

    def test_single_row_degenerate(self):
        d = design_decoder(HP32, F32, 1, _wordline(), _predec_wire())
        assert d.delay == d.wordline_delay
        assert d.energy > 0

    def test_boosted_wordline_more_energy(self):
        normal = design_decoder(HP32, F32, 256, _wordline(), _predec_wire())
        boosted = design_decoder(
            HP32, F32, 256, _wordline(voltage=2.6), _predec_wire()
        )
        assert boosted.energy > 2 * normal.energy

    def test_wordline_delay_within_total(self):
        d = design_decoder(HP32, F32, 256, _wordline(), _predec_wire())
        assert 0 < d.wordline_delay < d.delay

    def test_heavier_wordline_slower(self):
        light = design_decoder(HP32, F32, 256, _wordline(), _predec_wire())
        heavy_wl = WordlineLoad(
            resistance=20e3, capacitance=300e-15, pitch=8.6 * F32,
            voltage=HP32.vdd,
        )
        heavy = design_decoder(HP32, F32, 256, heavy_wl, _predec_wire())
        assert heavy.wordline_delay > light.wordline_delay

    def test_metrics_combine(self):
        a = design_decoder(HP32, F32, 64, _wordline(), _predec_wire())
        b = design_decoder(HP32, F32, 128, _wordline(), _predec_wire())
        combined = a + b
        assert combined.delay == max(a.delay, b.delay)
        assert combined.energy == pytest.approx(a.energy + b.energy)
        assert combined.area == pytest.approx(a.area + b.area)

    def test_energy_reasonable_magnitude(self):
        """A 256-row decode at 32 nm lands in the fJ-pJ band."""
        d = design_decoder(HP32, F32, 256, _wordline(), _predec_wire())
        assert 1e-15 < d.energy < 10e-12
