"""Shared fixtures for the benchmark harness.

Every table and figure of the paper's evaluation has a module here that
regenerates it.  The LLC-study figures (4a, 4b, 5a, 5b) share one
simulation matrix, cached per session.

Environment knobs:

* ``REPRO_BENCH_INSTRUCTIONS`` -- instructions per thread for study runs
  (default 60000; larger converges better, smaller runs faster).
* ``REPRO_BENCH_SOURCE`` -- ``paper`` (default) feeds the simulator the
  published Table 3 latencies/energies; ``cacti`` feeds it this
  reproduction's own CACTI-D solutions end-to-end.
"""

import os

import pytest

from repro.study.runner import run_study

INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "60000"))
SOURCE = os.environ.get("REPRO_BENCH_SOURCE", "paper")


@pytest.fixture(scope="session")
def study_result():
    """The full 8-app x 6-config LLC study matrix."""
    return run_study(
        source=SOURCE, instructions_per_thread=INSTRUCTIONS
    )


#: Every table also lands here, so figures survive output capture.
RESULTS_FILE = os.path.join(os.path.dirname(__file__), "results.txt")


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines)
    print(text)
    with open(RESULTS_FILE, "a") as fh:
        fh.write(text + "\n")
