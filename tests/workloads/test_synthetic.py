"""Unit tests for the synthetic workload generators."""

import itertools

import pytest

from repro.workloads.npb import BY_NAME, FT_B, NPB_PROFILES, UA_C
from repro.workloads.synthetic import LINE_BYTES, WorkloadProfile, event_stream


def drain(profile, tid=0, n_threads=32, seed=7):
    return list(event_stream(profile, tid, n_threads, seed=seed))


def small(profile, count=5000):
    return profile.with_instructions(count)


class TestProfiles:
    def test_all_profiles_valid(self):
        for p in NPB_PROFILES:
            assert 0 <= p.fp_fraction <= 1
            assert p.mem_per_instr > 0
            assert p.cpi >= 1.0

    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="sum"):
            WorkloadProfile(
                name="bad", instructions_per_thread=10, fp_fraction=0.5,
                mem_per_instr=0.1, write_fraction=0.3, hot_bytes=1024,
                warm_bytes=1024, cold_bytes=1024, p_hot=0.5, p_warm=0.2,
                p_cold=0.5,
            )

    def test_scaling_shrinks_regions(self):
        scaled = FT_B.scaled(16)
        assert scaled.hot_bytes == FT_B.hot_bytes // 16
        assert scaled.warm_bytes == FT_B.warm_bytes // 16
        assert scaled.mem_per_instr == FT_B.mem_per_instr

    def test_scaling_floors_tiny_regions(self):
        scaled = FT_B.scaled(1 << 30)
        assert scaled.hot_bytes >= LINE_BYTES * 8

    def test_by_name_complete(self):
        assert set(BY_NAME) == {
            "bt.C", "cg.C", "ft.B", "is.C", "lu.C", "mg.B", "sp.C", "ua.C"
        }


class TestEventStream:
    def test_instruction_budget_respected(self):
        events = drain(small(FT_B))
        instr = sum(e[1] for e in events if e[0] == "step")
        assert instr >= 5000
        assert instr < 5000 * 1.5

    def test_deterministic_per_seed(self):
        a = drain(small(FT_B), seed=42)
        b = drain(small(FT_B), seed=42)
        assert a == b

    def test_different_threads_differ(self):
        a = drain(small(FT_B), tid=0)
        b = drain(small(FT_B), tid=1)
        assert a != b

    def test_event_shapes(self):
        for event in itertools.islice(
            event_stream(small(FT_B), 0, 32), 200
        ):
            kind = event[0]
            assert kind in {"step", "barrier", "lock"}
            if kind == "step":
                __, n, cycles, address, is_write = event
                assert n >= 1 and cycles >= n  # CPI >= 1
                assert address % LINE_BYTES == 0
                assert isinstance(is_write, bool)

    def test_barriers_emitted(self):
        events = drain(small(FT_B, 20000))
        barriers = sum(1 for e in events if e[0] == "barrier")
        assert barriers >= FT_B.barriers // 2

    def test_locks_emitted_for_locky_profiles(self):
        events = drain(small(UA_C, 50000))
        assert any(e[0] == "lock" for e in events)

    def test_write_fraction_approximate(self):
        events = [e for e in drain(small(FT_B, 30000)) if e[0] == "step"]
        frac = sum(1 for e in events if e[4]) / len(events)
        assert abs(frac - FT_B.write_fraction) < 0.12

    def test_addresses_stay_in_declared_regions(self):
        profile = small(FT_B, 20000)
        total_span = (1 << 43)
        for e in drain(profile):
            if e[0] == "step":
                assert 0 < e[3] < total_span

    def test_hot_region_private_per_thread(self):
        """Thread-private hot regions must not overlap."""
        def hot_addresses(tid):
            return {
                e[3] for e in drain(small(FT_B, 8000), tid=tid)
                if e[0] == "step" and e[3] < (1 << 41)
            }

        assert not (hot_addresses(0) & hot_addresses(1))
