"""Solution objects returned by CACTI-D solves.

A :class:`Solution` composes the data-array metrics with (for caches) the
tag-array metrics under the requested access mode, and exposes the
headline quantities in convenient units (ns, nJ, mm^2, mW) alongside the
raw SI values.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.array.organization import ArrayMetrics
from repro.core.config import AccessMode, MemorySpec


@dataclass(frozen=True)
class Solution:
    """One solved memory/cache design point."""

    spec: MemorySpec
    data: ArrayMetrics
    tag: ArrayMetrics | None = None

    # ------------------------------------------------------------------ #
    # Timing

    @cached_property
    def _compare_delay(self) -> float:
        """Tag compare + way-select mux enable (s), from the sized
        comparator circuit."""
        from repro.circuits.comparator import way_select_delay
        from repro.tech.nodes import technology

        tech = technology(self.spec.node_nm)
        periph = tech.device(self.spec.periphery)
        return way_select_delay(
            periph,
            tech.feature_size,
            self.spec.tag_bits,
            self.spec.associativity or 1,
        )

    @cached_property
    def access_time(self) -> float:
        """Address-in to data-out latency of the full structure (s)."""
        if self.tag is None:
            return self.data.t_access
        tag_path = self.tag.t_access + self._compare_delay
        if self.spec.access_mode is AccessMode.SEQUENTIAL:
            return tag_path + self.data.t_access
        return max(self.data.t_access, tag_path)

    @cached_property
    def random_cycle_time(self) -> float:
        """Back-to-back access pitch to the same subbank (s)."""
        cycles = [self.data.t_random_cycle]
        if self.tag is not None:
            cycles.append(self.tag.t_random_cycle)
        return max(cycles)

    @cached_property
    def interleave_cycle_time(self) -> float:
        """Multisubbank interleave cycle time (s): the pitch at which
        accesses to *different* subbanks can be issued."""
        cycles = [self.data.t_interleave]
        if self.tag is not None:
            cycles.append(self.tag.t_interleave)
        return max(cycles)

    # ------------------------------------------------------------------ #
    # Energy and power

    @cached_property
    def e_read(self) -> float:
        """Dynamic energy of one read access (J)."""
        tag = self.tag.e_read_access if self.tag is not None else 0.0
        if (
            self.tag is not None
            and self.spec.access_mode is AccessMode.SEQUENTIAL
        ):
            # Sequential mode senses only the selected way's data.
            ways = self.spec.associativity or 1
            data = (
                self.data.e_activate / ways
                + self.data.e_read_column
                + self.data.e_precharge / ways
            )
            return tag + data
        return tag + self.data.e_read_access

    @cached_property
    def e_write(self) -> float:
        """Dynamic energy of one write access (J)."""
        tag = self.tag.e_read_access if self.tag is not None else 0.0
        return tag + self.data.e_write_access

    @cached_property
    def p_leakage(self) -> float:
        """Total static leakage power (W)."""
        tag = self.tag.p_leakage if self.tag is not None else 0.0
        return tag + self.data.p_leakage

    def p_leakage_at(self, temperature_k: float) -> float:
        """Leakage rescaled to a die temperature other than the default
        operating point (W)."""
        from repro.models.leakage import rescale_leakage

        return rescale_leakage(self.p_leakage, temperature_k)

    @cached_property
    def p_refresh(self) -> float:
        """Total DRAM refresh power (W); zero for SRAM."""
        tag = self.tag.p_refresh if self.tag is not None else 0.0
        return tag + self.data.p_refresh

    # ------------------------------------------------------------------ #
    # Geometry

    @cached_property
    def area(self) -> float:
        """Total area (m^2)."""
        tag = self.tag.area if self.tag is not None else 0.0
        return tag + self.data.area

    @cached_property
    def area_efficiency(self) -> float:
        """Memory-cell area as a fraction of total area."""
        cell_area = self.data.area_efficiency * self.data.area
        if self.tag is not None:
            cell_area += self.tag.area_efficiency * self.tag.area
        return cell_area / self.area

    # ------------------------------------------------------------------ #
    # Unit-friendly views

    @property
    def access_time_ns(self) -> float:
        return self.access_time * 1e9

    @property
    def random_cycle_ns(self) -> float:
        return self.random_cycle_time * 1e9

    @property
    def interleave_cycle_ns(self) -> float:
        return self.interleave_cycle_time * 1e9

    @property
    def e_read_nj(self) -> float:
        return self.e_read * 1e9

    @property
    def e_write_nj(self) -> float:
        return self.e_write * 1e9

    @property
    def p_leakage_mw(self) -> float:
        return self.p_leakage * 1e3

    @property
    def p_refresh_mw(self) -> float:
        return self.p_refresh * 1e3

    @property
    def area_mm2(self) -> float:
        return self.area * 1e6

    def run_report(self, *, store_stats: dict | None = None) -> dict:
        """Machine-readable report of this design point.

        Plain JSON types only (ints, floats, strings, dicts), stable
        key names: benchmark harnesses serialize this and diff runs
        against the recorded ``BENCH_*.json`` baselines, and the CLI's
        ``--metrics`` consumers join it with the metrics snapshot.

        ``store_stats`` -- a :meth:`~repro.core.solvecache.SolveCache.stats`
        dict from the solve cache that backed this run -- is attached
        verbatim under ``"store"`` when given, so a report can say not
        just what was solved but how the persistent store behaved.
        """
        report = {
            "kind": "cache" if self.tag is not None else "ram",
            "spec": {
                "capacity_bytes": self.spec.capacity_bytes,
                "block_bytes": self.spec.block_bytes,
                "associativity": self.spec.associativity,
                "nbanks": self.spec.nbanks,
                "node_nm": self.spec.node_nm,
                "cell_tech": self.spec.cell_tech.value,
                "cell_traits": self.spec.cell_tech.traits.as_dict(),
                "access_mode": self.spec.access_mode.value,
            },
            "organization": {
                "ndwl": self.data.org.ndwl,
                "ndbl": self.data.org.ndbl,
                "nspd": self.data.org.nspd,
                "ndcm": self.data.org.ndcm,
                "ndsam": self.data.org.ndsam,
                "rows": self.data.rows,
                "cols": self.data.cols,
            },
            "metrics": {
                "access_time_ns": self.access_time_ns,
                "random_cycle_ns": self.random_cycle_ns,
                "interleave_cycle_ns": self.interleave_cycle_ns,
                "e_read_nj": self.e_read_nj,
                "e_write_nj": self.e_write_nj,
                "p_leakage_mw": self.p_leakage_mw,
                "p_refresh_mw": self.p_refresh_mw,
                "area_mm2": self.area_mm2,
                "area_efficiency": self.area_efficiency,
            },
        }
        if self.tag is not None:
            report["tag"] = {
                "access_time_ns": self.tag.t_access * 1e9,
                "area_mm2": self.tag.area * 1e6,
                "cell_tech": self.tag.spec.cell_tech.value,
                "cell_traits": self.tag.spec.cell_tech.traits.as_dict(),
            }
        if store_stats is not None:
            report["store"] = dict(store_stats)
        return report

    def summary(self) -> str:
        """Human-readable one-design summary for examples and reports."""
        lines = [
            f"capacity        : {self.spec.capacity_bytes / 1024:.0f} KB",
            f"cell technology : {self.spec.cell_tech.value}",
            f"organization    : ndwl={self.data.org.ndwl} "
            f"ndbl={self.data.org.ndbl} nspd={self.data.org.nspd} "
            f"ndcm={self.data.org.ndcm} ndsam={self.data.org.ndsam}",
            f"subarray        : {self.data.rows} x {self.data.cols}",
            f"access time     : {self.access_time_ns:.3f} ns",
            f"random cycle    : {self.random_cycle_ns:.3f} ns",
            f"interleave cycle: {self.interleave_cycle_ns:.3f} ns",
            f"read energy     : {self.e_read_nj:.3f} nJ",
            f"write energy    : {self.e_write_nj:.3f} nJ",
            f"leakage power   : {self.p_leakage_mw:.2f} mW",
            f"refresh power   : {self.p_refresh_mw:.3f} mW",
            f"area            : {self.area_mm2:.2f} mm^2 "
            f"({self.area_efficiency * 100:.0f}% efficient)",
        ]
        return "\n".join(lines)
