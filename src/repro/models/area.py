"""Area breakdown reporting.

Decomposes a solved design's area into cells, decode, sensing, and
routing so studies can see *where* the area efficiency of each cell
technology goes -- the quantity behind paper Table 3's area-efficiency
column and the Figure 1 bubble sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.array.organization import ArrayMetrics, _Builder
from repro.tech.nodes import Technology


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area of one bank design (m^2, whole structure)."""

    cells: float
    wordline_drivers_and_decode: float
    sense_amps: float
    htree_wiring: float
    overhead: float
    total: float

    def fractions(self) -> dict[str, float]:
        return {
            "cells": self.cells / self.total,
            "decode": self.wordline_drivers_and_decode / self.total,
            "sense": self.sense_amps / self.total,
            "routing": self.htree_wiring / self.total,
            "overhead": self.overhead / self.total,
        }

    def report(self) -> str:
        rows = [
            ("cells", self.cells),
            ("decode + wordline drivers", self.wordline_drivers_and_decode),
            ("sense amplifiers", self.sense_amps),
            ("H-tree routing", self.htree_wiring),
            ("control/overhead", self.overhead),
            ("total", self.total),
        ]
        return "\n".join(
            f"{name:<28}{area * 1e6:>10.3f} mm^2" for name, area in rows
        )


def area_breakdown(tech: Technology, metrics: ArrayMetrics) -> AreaBreakdown:
    """Recompute the component areas of a solved design point."""
    builder = _Builder(tech, metrics.spec, metrics.org)
    sub = builder.subarray
    nsubs = metrics.org.ndwl * metrics.org.ndbl * metrics.spec.nbanks

    cells = nsubs * sub.cell_area
    decode = nsubs * sub.decoder.area
    # Sense strip: the height overhead times the array width.
    sense = nsubs * (sub.height - sub.cell_array_height) * sub.width
    routing = (
        builder.htree_in.wiring_area + builder.htree_out.wiring_area
    ) * 0.5 * metrics.spec.nbanks
    accounted = cells + decode + sense + routing
    overhead = max(metrics.area - accounted, 0.0)
    return AreaBreakdown(
        cells=cells,
        wordline_drivers_and_decode=decode,
        sense_amps=sense,
        htree_wiring=routing,
        overhead=overhead,
        total=metrics.area,
    )
