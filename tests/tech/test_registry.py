"""Unit tests for the pluggable memory-technology registry."""

import dataclasses
import pickle

import pytest

from repro.core.config import DEFAULT_PERIPHERY
from repro.tech.cells import SRAM_TRAITS, sram_cell
from repro.tech.registry import (
    CellTech,
    CellTraits,
    MemoryTechnology,
    SensingScheme,
    register,
    registered_names,
    traits,
    unregister,
)

TRIAD = ("sram", "lp-dram", "comm-dram")


class TestCellTechHandles:
    def test_lookup_by_name(self):
        assert CellTech("sram") is CellTech.SRAM
        assert CellTech("lp-dram") is CellTech.LP_DRAM
        assert CellTech("comm-dram") is CellTech.COMM_DRAM

    def test_handle_passthrough(self):
        assert CellTech(CellTech.SRAM) is CellTech.SRAM

    def test_name_normalized(self):
        assert CellTech(" SRAM ") is CellTech.SRAM

    def test_value_is_registry_name(self):
        assert CellTech.SRAM.value == "sram"
        assert str(CellTech.COMM_DRAM) == "comm-dram"

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="registered technologies"):
            CellTech("tape-drive")
        with pytest.raises(ValueError, match="sram"):
            CellTech("tape-drive")

    def test_unknown_attribute_lists_registered(self):
        with pytest.raises(AttributeError, match="registered technologies"):
            CellTech.TAPE_DRIVE

    def test_iteration_covers_registry(self):
        assert {t.value for t in CellTech} == set(registered_names())
        assert len(CellTech) == len(registered_names())

    def test_triad_and_stt_ram_registered(self):
        assert set(TRIAD) <= set(registered_names())
        assert "stt-ram" in registered_names()

    def test_pickle_reinterns(self):
        for tech in CellTech:
            assert pickle.loads(pickle.dumps(tech)) is tech

    def test_handles_immutable(self):
        with pytest.raises(AttributeError):
            CellTech.SRAM._name = "other"

    def test_is_dram_means_charge_share(self):
        for tech in CellTech:
            assert tech.is_dram == (
                tech.traits.sensing is SensingScheme.CHARGE_SHARE
            )


class TestRegistration:
    def _toy(self, name="toy-ram", **overrides):
        kwargs = dict(dataclasses.asdict(SRAM_TRAITS))
        kwargs["sensing"] = SRAM_TRAITS.sensing
        kwargs.update(overrides)
        def build(node_nm, periph_vdd):
            return dataclasses.replace(
                sram_cell(node_nm, periph_vdd), tech=CellTech(name)
            )

        return MemoryTechnology(
            name=name, traits=CellTraits(**kwargs), cell_builder=build
        )

    def test_register_unregister_round_trip(self):
        handle = register(self._toy())
        try:
            assert CellTech("toy-ram") is handle
            assert CellTech.TOY_RAM is handle
            assert "toy-ram" in registered_names()
            assert traits("toy-ram") == self._toy().traits
        finally:
            unregister("toy-ram")
        assert "toy-ram" not in registered_names()
        with pytest.raises(ValueError):
            CellTech("toy-ram")
        with pytest.raises(AttributeError):
            CellTech.TOY_RAM

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register(self._toy(name="sram"))

    def test_replace_opt_in(self):
        register(self._toy())
        try:
            register(self._toy(), replace=True)
        finally:
            unregister("toy-ram")

    def test_bad_names_rejected(self):
        for bad in ("STT-RAM", "3dxp", "a_b", ""):
            with pytest.raises(ValueError, match="lowercase"):
                register(self._toy(name=bad))

    def test_registered_cell_builder_used(self):
        register(self._toy())
        try:
            from repro.tech import registry

            cell = registry.get("toy-ram").build_cell(32.0, 0.9)
            assert cell.tech is CellTech("toy-ram")
        finally:
            unregister("toy-ram")

    def test_cell_tech_carried_by_builder(self):
        # The builder decides the CellParams.tech; register() does not
        # rewrite it, so a builder returning another technology's params
        # is a bug this assertion would catch in the built-ins.
        from repro.tech import registry

        for name in registered_names():
            cell = registry.get(name).build_cell(32.0, 0.9)
            assert cell.tech is CellTech(name), name


class TestCellTraits:
    def test_refresh_requires_destructive_read(self):
        kwargs = dataclasses.asdict(SRAM_TRAITS)
        kwargs["sensing"] = SRAM_TRAITS.sensing
        kwargs["needs_refresh"] = True  # but destructive_read stays False
        with pytest.raises(ValueError, match="needs_refresh"):
            CellTraits(**kwargs)

    def test_wire_plane_names_validated(self):
        kwargs = dataclasses.asdict(SRAM_TRAITS)
        kwargs["sensing"] = SRAM_TRAITS.sensing
        with pytest.raises(ValueError, match="bitline wire"):
            CellTraits(**{**kwargs, "bitline_wire": "copper"})
        with pytest.raises(ValueError, match="htree wire"):
            CellTraits(**{**kwargs, "htree_wire": "top-metal"})

    def test_as_dict_is_json_safe(self):
        import json

        for tech in CellTech:
            blob = json.dumps(tech.traits.as_dict())
            assert json.loads(blob)["sensing"] == tech.traits.sensing.value


class TestDefaultPeriphery:
    def test_tracks_registry(self):
        assert set(DEFAULT_PERIPHERY) == set(CellTech)
        for tech in CellTech:
            assert (
                DEFAULT_PERIPHERY[tech] == tech.traits.default_periphery
            )

    def test_accepts_names(self):
        assert DEFAULT_PERIPHERY["comm-dram"] == "lstp"

    def test_unknown_name_is_descriptive(self):
        # Regression: this used to be a bare KeyError naming nothing.
        with pytest.raises(ValueError, match="registered technologies"):
            DEFAULT_PERIPHERY["tape-drive"]
