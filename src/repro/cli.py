"""Command-line interface, in the spirit of the original CACTI tool.

Usage::

    python -m repro cache --capacity 2M --assoc 8 --tech lp-dram
    python -m repro cache --capacity 2M --cache sqlite:solves.db
    python -m repro cache info sqlite:solves.db
    python -m repro cache gc solves.json
    python -m repro cache migrate solves.json \
        "sqlite:solves.db?max_records=10000"
    python -m repro main-memory --capacity 1G --node 78 --pins 8
    python -m repro validate-ddr3
    python -m repro table3 --resume table3.journal
    python -m repro study --configs nol3,sram --on-error retry
    python -m repro sweep --capacity 2M --parameter capacity_bytes \
        --values 1M,2M,4M,8M
    python -m repro cachedb build db.json --capacities 64K,256K,1M \
        --nodes 32,45 --resume build.journal
    python -m repro cachedb query db.json --capacity 96K --node 38
    python -m repro cachedb info db.json

Sizes accept K/M/G suffixes (powers of two).  Long runs take
``--on-error {raise,skip,retry}``, ``--retries``, ``--task-timeout``,
and ``--resume PATH`` (checkpoint journal) fault-tolerance knobs.
"""

from __future__ import annotations

import argparse
import sys

from repro.array.mainmem import MainMemorySpec
from repro.core.cacti import solve, solve_main_memory
from repro.core.config import (
    DENSITY_OPTIMIZED,
    ENERGY_DELAY_OPTIMIZED,
    AccessMode,
    MemorySpec,
    OptimizationTarget,
)
from repro.core.optimizer import NoFeasibleSolution, SweepStats
from repro.core.resilience import ON_ERROR_POLICIES, Journal, ResiliencePolicy
from repro.core.solvecache import SolveCache
from repro.obs import Obs
from repro.tech.cells import CellTech
from repro.tech.registry import registered_names

_PRESETS = {
    "balanced": OptimizationTarget(),
    "density": DENSITY_OPTIMIZED,
    "energy-delay": ENERGY_DELAY_OPTIMIZED,
}


def parse_size(text: str) -> int:
    """Parse '32K', '2M', '1G' (powers of two) or a raw integer.

    Sizes must be positive: a zero or negative capacity would only
    surface later as a confusing arithmetic error deep in the solver.
    """
    text = text.strip().upper()
    multipliers = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    if text and text[-1] in multipliers:
        if text[-1] == text:
            raise ValueError(f"no number in size {text!r}")
        value = int(float(text[:-1]) * multipliers[text[-1]])
    else:
        value = int(text)
    if value <= 0:
        raise ValueError(f"size must be positive, got {text!r}")
    return value


def _size_arg(text: str) -> int:
    """argparse ``type=`` wrapper: surface parse_size's message verbatim.

    argparse swallows ValueError and prints a generic "invalid value";
    ArgumentTypeError keeps "size must be positive, got ..." visible.
    """
    try:
        return parse_size(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _jobs_arg(text: str) -> int | str:
    """argparse ``type=`` wrapper for ``--jobs``: an integer or ``auto``.

    ``auto`` defers the worker-count decision to
    :func:`repro.core.parallel.effective_jobs`, which weighs the
    machine and the workload (serial on one core or small sweeps,
    where process fan-out costs more than it saves).
    """
    if text.strip().lower() == "auto":
        return "auto"
    try:
        return int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CACTI-D reproduction: memory-hierarchy modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cache = sub.add_parser("cache", help="solve a cache or plain memory")
    # --capacity is required for solving but checked manually: the
    # store-maintenance subcommands below (info/gc/migrate) share this
    # parser and take a store argument instead.
    cache.add_argument("--capacity", type=_size_arg, default=None,
                       help="e.g. 32K, 2M, 192M (required to solve)")
    cache.add_argument("--block", type=_size_arg, default=64)
    cache.add_argument("--assoc", type=int, default=8,
                       help="associativity; 0 for a plain RAM")
    cache.add_argument("--banks", type=int, default=1)
    cache.add_argument("--node", type=float, default=32.0,
                       help="feature size in nm (32-90)")
    # Choices come from the technology registry, so a tech module
    # registered at import time (e.g. stt-ram) is solvable with no CLI
    # edits, and an unknown name exits 2 listing the registered ones.
    cache.add_argument("--tech", default="sram",
                       choices=sorted(registered_names()))
    cache.add_argument("--tag-tech", default=None, dest="tag_tech",
                       choices=sorted(registered_names()),
                       help="tag-array technology (default: same as "
                            "--tech)")
    cache.add_argument("--sequential", action="store_true",
                       help="tag-then-data access mode")
    cache.add_argument("--sleep-transistors", action="store_true")
    cache.add_argument("--optimize", default="balanced",
                       choices=sorted(_PRESETS))
    cache.add_argument("--cachedb", metavar="PATH", default=None,
                       help="precomputed design-space database; an exact "
                            "grid hit is served from it instead of solving")

    # Solve-store maintenance rides the cache command as optional
    # subcommands; `repro cache --capacity ...` keeps solving as before.
    cache_ops = cache.add_subparsers(
        dest="cache_command", required=False,
        metavar="{info,gc,migrate}",
    )
    cache_info = cache_ops.add_parser(
        "info", help="describe a solve store (backend, records, versions)"
    )
    cache_info.add_argument("store", help="store path or sqlite: URL")
    cache_gc = cache_ops.add_parser(
        "gc",
        help="reclaim a solve store: purge tombstoned records, drop "
             "stale-version sibling files (JSON) or superseded-version "
             "rows (sqlite), compact the file",
    )
    cache_gc.add_argument("store", help="store path or sqlite: URL")
    cache_migrate = cache_ops.add_parser(
        "migrate",
        help="copy every live record between stores, e.g. a grown JSON "
             "cache into a bounded sqlite store",
    )
    cache_migrate.add_argument("src", help="source store path or URL")
    cache_migrate.add_argument("dst", help="destination store path or URL")

    mm = sub.add_parser("main-memory", help="solve a main-memory DRAM chip")
    mm.add_argument("--capacity", required=True, type=_size_arg,
                    help="bits, e.g. 1G = 1 Gb")
    mm.add_argument("--node", type=float, default=32.0)
    mm.add_argument("--banks", type=int, default=8)
    mm.add_argument("--pins", type=int, default=8)
    mm.add_argument("--burst", type=int, default=8)
    mm.add_argument("--page", type=_size_arg, default=8192,
                    help="page size in bits")

    validate = sub.add_parser(
        "validate-ddr3", help="reproduce the paper's Table 2 validation"
    )
    table3 = sub.add_parser(
        "table3", help="solve the LLC study's Table 3 columns"
    )

    study = sub.add_parser(
        "study", help="run the LLC study matrix (apps x configurations)"
    )
    study.add_argument("--apps", default=None, metavar="A,B,...",
                       help="comma-separated app subset (default: all)")
    study.add_argument("--configs", default=None, metavar="C1,C2,...",
                       help="comma-separated configuration subset "
                            "(default: all six)")
    study.add_argument("--source", default="paper",
                       choices=("paper", "cacti"),
                       help="latency/energy source: published Table 3 "
                            "values or the live solver")
    study.add_argument("--scale", type=int, default=16,
                       help="capacity-scaling factor for tractable runs")
    study.add_argument("--instructions", type=int, default=None,
                       metavar="N", help="instructions per thread")
    study.add_argument("--seed", type=int, default=1234)
    study.add_argument("--cachedb", metavar="PATH", default=None,
                       help="precomputed design-space database serving the "
                            "--source cacti solves")

    sweep = sub.add_parser(
        "sweep", help="sensitivity sweep of one spec parameter"
    )
    sweep.add_argument("--capacity", required=True, type=_size_arg)
    sweep.add_argument("--block", type=_size_arg, default=64)
    sweep.add_argument("--assoc", type=int, default=8,
                       help="associativity; 0 for a plain RAM")
    sweep.add_argument("--banks", type=int, default=1)
    sweep.add_argument("--node", type=float, default=32.0)
    sweep.add_argument("--tech", default="sram",
                       choices=sorted(registered_names()))
    sweep.add_argument("--parameter", required=True,
                       help="spec field to sweep (e.g. capacity_bytes)")
    sweep.add_argument("--values", required=True, metavar="V1,V2,...",
                       help="comma-separated sweep values (sizes accept "
                            "K/M/G suffixes)")
    sweep.add_argument("--optimize", default="balanced",
                       choices=sorted(_PRESETS))

    cachedb = sub.add_parser(
        "cachedb",
        help="precomputed design-space database: build, query, inspect",
    )
    cdb_sub = cachedb.add_subparsers(dest="cachedb_command", required=True)

    cdb_build = cdb_sub.add_parser(
        "build", help="precompute a design-space grid into an artifact"
    )
    cdb_build.add_argument("path", help="artifact file to write (JSON)")
    cdb_build.add_argument("--capacities", required=True,
                           metavar="C1,C2,...",
                           help="comma-separated capacities (K/M/G sizes)")
    cdb_build.add_argument("--assocs", default="8", metavar="A1,A2,...",
                           help="associativities; 0 for a plain RAM")
    cdb_build.add_argument("--blocks", default="64", metavar="B1,B2,...",
                           help="block sizes in bytes")
    cdb_build.add_argument("--nodes", default="32", metavar="N1,N2,...",
                           help="feature sizes in nm (32-90)")
    cdb_build.add_argument("--techs", default=None, metavar="T1,T2,...",
                           help="technology registry names "
                                "(default: every registered technology)")
    cdb_build.add_argument("--optimize", default="balanced",
                           choices=sorted(_PRESETS))
    # Dense grids always contain infeasible corners; record them as
    # holes and keep building rather than failing the whole artifact.
    cdb_build.set_defaults(on_error="skip")

    cdb_query = cdb_sub.add_parser(
        "query", help="answer one design query from an artifact"
    )
    cdb_query.add_argument("path", help="artifact file (from cachedb build)")
    cdb_query.add_argument("--capacity", required=True, type=_size_arg)
    cdb_query.add_argument("--assoc", type=int, default=8,
                           help="associativity; 0 for a plain RAM")
    cdb_query.add_argument("--block", type=_size_arg, default=64)
    cdb_query.add_argument("--node", type=float, default=32.0)
    cdb_query.add_argument("--tech", default="sram",
                           choices=sorted(registered_names()))
    cdb_query.add_argument("--fallback", default="solve",
                           choices=("solve", "error", "nearest"),
                           help="what to do when the grid cannot answer: "
                                "solve live, fail, or snap to the nearest "
                                "grid point")

    cdb_info = cdb_sub.add_parser(
        "info", help="summarize an artifact (works across model versions)"
    )
    cdb_info.add_argument("path", help="artifact file to inspect")

    # Every subcommand ultimately runs the same solver, so every
    # subcommand gets the same solver knobs and observability outputs.
    for solver in (cache, mm, validate, table3, study, sweep, cdb_build):
        solver.add_argument(
            "--cache", metavar="STORE", default=None, dest="cache_path",
            help="persistent solve store; repeated identical solves are "
                 "served from it.  A plain path keeps the JSON-file "
                 "backend; 'sqlite:PATH[?max_records=N&shard_prefix=P]' "
                 "opens a bounded WAL-mode sqlite store",
        )
        solver.add_argument(
            "--stats", action="store_true",
            help="print optimizer sweep statistics (candidate counts, "
                 "cache hit rates, wall time)",
        )
        solver.add_argument(
            "--jobs", type=_jobs_arg, default="auto", metavar="N",
            help="worker processes for the candidate sweep (1 = serial, "
                 "0 = all cores, 'auto' = serial or all cores by machine "
                 "and workload; default auto); results are bit-identical "
                 "at any setting",
        )
        solver.add_argument(
            "--trace", metavar="FILE", default=None,
            help="write a Chrome trace-event JSON of the run "
                 "(open in chrome://tracing or Perfetto)",
        )
        solver.add_argument(
            "--metrics", metavar="FILE", default=None,
            help="write a JSON metrics snapshot of the run (counters, "
                 "gauges, latency histograms, cache hit rates)",
        )
    # Fault-tolerance knobs (the validate command solves a fixed small
    # set serially, so it keeps the plain fail-fast path).
    for solver in (cache, mm, table3, study, sweep, cdb_build):
        solver.add_argument(
            "--on-error", default="raise", choices=ON_ERROR_POLICIES,
            dest="on_error",
            help="task-failure policy: fail fast, skip the task "
                 "(recorded, run continues), or retry with backoff",
        )
        solver.add_argument(
            "--retries", type=int, default=2, metavar="N",
            help="retry attempts per task (with --on-error retry)",
        )
        solver.add_argument(
            "--task-timeout", type=float, default=None, metavar="SECONDS",
            dest="task_timeout",
            help="per-task wall-clock budget; overdue tasks are "
                 "cancelled (parallel runs only)",
        )
        solver.add_argument(
            "--resume", metavar="PATH", default=None,
            help="checkpoint journal: completed work is recorded here "
                 "and restored on the next run with the same --resume",
        )
    return parser


def _solver_knobs(args: argparse.Namespace) -> tuple:
    """The optional solve cache, stats accumulator, tracer, and
    resilience policy for a run."""
    solve_cache = (
        SolveCache(args.cache_path) if args.cache_path is not None else None
    )
    stats = SweepStats() if args.stats else None
    obs = Obs() if (args.trace or args.metrics) else None
    return solve_cache, stats, obs, _resilience_policy(args)


def _resilience_policy(args: argparse.Namespace) -> ResiliencePolicy | None:
    """A policy from the CLI flags, or None when every flag is default
    (the plain fail-fast engine, no journal)."""
    on_error = getattr(args, "on_error", "raise")
    timeout = getattr(args, "task_timeout", None)
    resume = getattr(args, "resume", None)
    if on_error == "raise" and timeout is None and resume is None:
        return None
    return ResiliencePolicy(
        on_error=on_error,
        max_retries=getattr(args, "retries", 2),
        timeout_s=timeout,
        journal=Journal(resume) if resume is not None else None,
    )


def _print_stats(stats: SweepStats | None) -> None:
    if stats is not None:
        print()
        print(stats.summary())


def _write_obs(args: argparse.Namespace, obs: Obs | None) -> None:
    """Write the requested trace/metrics files after a successful run."""
    if obs is None:
        return
    if args.trace:
        obs.tracer.write_chrome(args.trace)
    if args.metrics:
        obs.metrics.write(args.metrics)


def _run_cache_store(args: argparse.Namespace) -> int:
    """Store maintenance: ``repro cache {info,gc,migrate}``."""
    from repro.core.solvecache import open_solve_store
    from repro.store import migrate_store

    if args.cache_command == "migrate":
        src = open_solve_store(args.src)
        try:
            dst = open_solve_store(args.dst)
        except Exception:
            src.close()
            raise
        try:
            report = migrate_store(src, dst)
        finally:
            src.close()
            dst.close()
    else:
        store = open_solve_store(args.store)
        try:
            report = (store.info() if args.cache_command == "info"
                      else store.gc())
        finally:
            store.close()
    for key, value in report.items():
        print(f"{key:<20}: {value}")
    return 0


def _run_cache(args: argparse.Namespace) -> int:
    if args.cache_command is not None:
        return _run_cache_store(args)
    if args.capacity is None:
        raise ValueError(
            "--capacity is required to solve "
            "(store maintenance: repro cache {info,gc,migrate})"
        )
    spec = MemorySpec(
        capacity_bytes=args.capacity,
        block_bytes=args.block,
        associativity=args.assoc or None,
        nbanks=args.banks,
        node_nm=args.node,
        cell_tech=CellTech(args.tech),
        access_mode=(AccessMode.SEQUENTIAL if args.sequential
                     else AccessMode.NORMAL),
        sleep_transistors=args.sleep_transistors,
        tag_cell_tech=(
            CellTech(args.tag_tech) if args.tag_tech is not None else None
        ),
    )
    solve_cache, stats, obs, resilience = _solver_knobs(args)
    cachedb = None
    if args.cachedb is not None:
        from repro.cachedb import CacheDB

        cachedb = CacheDB(args.cachedb, obs=obs)
    solution = solve(
        spec,
        _PRESETS[args.optimize],
        solve_cache=solve_cache,
        stats=stats,
        jobs=args.jobs,
        obs=obs,
        resilience=resilience,
        cachedb=cachedb,
    )
    print(solution.summary())
    _print_stats(stats)
    _write_obs(args, obs)
    return 0


def _run_main_memory(args: argparse.Namespace) -> int:
    spec = MainMemorySpec(
        capacity_bits=args.capacity,
        nbanks=args.banks,
        data_pins=args.pins,
        burst_length=args.burst,
        page_bits=args.page,
    )
    solve_cache, stats, obs, resilience = _solver_knobs(args)
    solution = solve_main_memory(
        spec,
        node_nm=args.node,
        solve_cache=solve_cache,
        stats=stats,
        jobs=args.jobs,
        obs=obs,
        resilience=resilience,
    )
    print(solution.summary())
    _print_stats(stats)
    _write_obs(args, obs)
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    from repro.validation.compare import validate_ddr3

    solve_cache, stats, obs, _unused = _solver_knobs(args)
    validation = validate_ddr3(
        solve_cache=solve_cache, stats=stats, jobs=args.jobs, obs=obs
    )
    print(validation.report())
    _print_stats(stats)
    _write_obs(args, obs)
    return 0


def _run_table3(args: argparse.Namespace) -> int:
    from repro.study.table3 import solve_table3

    solve_cache, stats, obs, resilience = _solver_knobs(args)
    # Pass only the live knobs: a knob-free call keeps table3's memo of
    # already-solved rows (and a second `repro table3` stays fast).
    knobs = {}
    if solve_cache is not None:
        knobs["solve_cache"] = solve_cache
    if stats is not None:
        knobs["stats"] = stats
    if obs is not None:
        knobs["obs"] = obs
    # "auto" resolves per-sweep and almost always to serial at table3's
    # sizes, so it stays out of the knobs too -- the default invocation
    # remains knob-free and keeps table3's memo of solved rows.
    if args.jobs not in (1, "auto"):
        knobs["jobs"] = args.jobs
    if resilience is not None:
        knobs["resilience"] = resilience
    for name, row in solve_table3(**knobs).items():
        cap = row.capacity_bytes
        cap_str = (f"{cap >> 20}MB" if cap >= 1 << 20 else f"{cap >> 10}KB")
        print(
            f"{name:<12}{cap_str:>8}  access={row.access_cycles} cyc  "
            f"cycle={row.cycle_cycles} cyc  area/bank={row.area_mm2:.2f} mm2 "
            f"leak={row.leakage_w:.3f} W  refresh={row.refresh_w:.4f} W  "
            f"E_rd={row.e_read_nj:.2f} nJ"
        )
    _print_stats(stats)
    _write_obs(args, obs)
    return 0


def _print_failures(failed) -> None:
    if failed:
        print(f"warning: {len(failed)} task(s) failed:", file=sys.stderr)
        for failure in failed:
            print(f"  {failure}", file=sys.stderr)


def _run_study(args: argparse.Namespace) -> int:
    from repro.study.runner import run_study
    from repro.study.table3 import CONFIG_NAMES
    from repro.workloads.npb import NPB_PROFILES

    profiles = NPB_PROFILES
    if args.apps is not None:
        wanted = [a.strip() for a in args.apps.split(",") if a.strip()]
        known = {p.name: p for p in NPB_PROFILES}
        missing = [a for a in wanted if a not in known]
        if missing:
            raise ValueError(
                f"unknown app(s) {missing}; choose from {sorted(known)}"
            )
        profiles = tuple(known[a] for a in wanted)
    configs = CONFIG_NAMES
    if args.configs is not None:
        configs = tuple(
            c.strip() for c in args.configs.split(",") if c.strip()
        )
        unknown = [c for c in configs if c not in CONFIG_NAMES]
        if unknown:
            raise ValueError(
                f"unknown configuration(s) {unknown}; "
                f"choose from {list(CONFIG_NAMES)}"
            )
    _solve_cache, stats, obs, resilience = _solver_knobs(args)
    result = run_study(
        profiles=profiles,
        configs=configs,
        source=args.source,
        scale=args.scale,
        instructions_per_thread=args.instructions,
        seed=args.seed,
        jobs=args.jobs,
        obs=obs,
        resilience=resilience,
        stats=stats,
        cachedb=args.cachedb,
    )
    header = "app".ljust(10) + "".join(c.rjust(12) for c in configs)
    print(header)
    for app in result.app_names:
        cells = []
        for config in configs:
            run = result.results.get((app, config))
            cells.append("-".rjust(12) if run is None
                         else f"{run.ipc:.3f}".rjust(12))
        print(app.ljust(10) + "".join(cells))
    if "nol3" in configs and not result.failed:
        for config in configs:
            if config == "nol3":
                continue
            print(
                f"{config:<12} execution reduction "
                f"{result.mean_execution_reduction(config) * 100:+5.1f}%  "
                "energy-delay improvement "
                f"{result.mean_energy_delay_improvement(config) * 100:+5.1f}%"
            )
    _print_failures(result.failed)
    _print_stats(stats)
    _write_obs(args, obs)
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.study.sensitivity import SWEEPABLE, sweep

    if args.parameter not in SWEEPABLE:
        raise ValueError(
            f"cannot sweep {args.parameter!r}; choose one of {SWEEPABLE}"
        )
    raw = [v.strip() for v in args.values.split(",") if v.strip()]
    if not raw:
        raise ValueError("--values needs at least one value")
    if args.parameter in ("capacity_bytes", "block_bytes"):
        values = [parse_size(v) for v in raw]
    elif args.parameter == "node_nm":
        values = [float(v) for v in raw]
    elif args.parameter == "cell_tech":
        # Categorical: values are technology registry names.  CellTech
        # rejects unknown names here with the registered list, before
        # any solving starts.
        values = [CellTech(v).value for v in raw]
    else:
        values = [int(v) for v in raw]
    base = MemorySpec(
        capacity_bytes=args.capacity,
        block_bytes=args.block,
        associativity=args.assoc or None,
        nbanks=args.banks,
        node_nm=args.node,
        cell_tech=CellTech(args.tech),
    )
    solve_cache, stats, obs, resilience = _solver_knobs(args)
    result = sweep(
        base,
        args.parameter,
        values,
        _PRESETS[args.optimize],
        solve_cache=solve_cache,
        stats=stats,
        jobs=args.jobs,
        obs=obs,
        resilience=resilience,
    )
    for point in result.points:
        # Numeric sweep values print as numbers; categorical ones
        # (cell_tech registry names) are already strings.
        value = (f"{point.value:g}" if isinstance(point.value, float)
                 else str(point.value))
        if point.solution is None:
            print(f"{value:>14}  infeasible")
            continue
        s = point.solution
        print(
            f"{value:>14}  access={s.access_time * 1e9:.3f} ns  "
            f"E_rd={s.e_read_nj:.3f} nJ  area={s.area_mm2:.2f} mm2  "
            f"eff={s.area_efficiency * 100:.1f}%"
        )
    print()
    print(result.report())
    _print_failures(result.failed)
    _print_stats(stats)
    _write_obs(args, obs)
    return 0


def _split_list(text: str) -> list[str]:
    return [v.strip() for v in text.split(",") if v.strip()]


def _run_cachedb(args: argparse.Namespace) -> int:
    from repro.cachedb import CacheDB, GridSpec, build_cachedb

    if args.cachedb_command == "build":
        grid = GridSpec(
            capacities_bytes=tuple(
                parse_size(v) for v in _split_list(args.capacities)
            ),
            associativities=tuple(
                int(v) for v in _split_list(args.assocs)
            ),
            block_bytes=tuple(
                parse_size(v) for v in _split_list(args.blocks)
            ),
            nodes_nm=tuple(float(v) for v in _split_list(args.nodes)),
            technologies=(
                tuple(_split_list(args.techs))
                if args.techs is not None
                else ()
            ),
        )
        solve_cache, stats, obs, resilience = _solver_knobs(args)
        report = build_cachedb(
            args.path,
            grid,
            target=_PRESETS[args.optimize],
            jobs=args.jobs,
            resilience=resilience,
            solve_cache=solve_cache,
            stats=stats,
            obs=obs,
        )
        print(report.summary())
        _print_stats(stats)
        _write_obs(args, obs)
        return 0

    if args.cachedb_command == "query":
        db = CacheDB(args.path)
        result = db.query(
            args.capacity,
            associativity=args.assoc,
            block_bytes=args.block,
            node_nm=args.node,
            cell_tech=args.tech,
            fallback=args.fallback,
        )
        print(result.summary())
        return 0

    # info: inspectable even across model versions.
    db = CacheDB(args.path, check_model=False)
    for key, value in db.info().items():
        print(f"{key:<14}: {value}")
    return 0


_HANDLERS = {
    "cache": _run_cache,
    "main-memory": _run_main_memory,
    "validate-ddr3": _run_validate,
    "table3": _run_table3,
    "study": _run_study,
    "sweep": _run_sweep,
    "cachedb": _run_cachedb,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except (ValueError, NoFeasibleSolution, OSError) as exc:
        # NoFeasibleSolution subclasses RuntimeError, not ValueError: an
        # infeasible request must still exit cleanly, not dump a traceback.
        # OSError covers an unwritable --cache path.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
