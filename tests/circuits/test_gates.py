"""Unit tests for gate primitives and the analytical gate-area model."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits.gates import (
    folded_strip_area,
    horowitz,
    inverter,
    min_width,
    nand,
    nor,
)
from repro.tech.devices import device

HP32 = device("hp", 32)
F32 = 32e-9


class TestHorowitz:
    def test_step_input_reduces_to_log(self):
        tau = 10e-12
        import math

        assert horowitz(0.0, tau) == pytest.approx(tau * math.log(2))

    def test_slow_ramp_increases_delay(self):
        tau = 10e-12
        assert horowitz(40e-12, tau) > horowitz(0.0, tau)

    def test_zero_tau(self):
        assert horowitz(5e-12, 0.0) == 0.0

    @given(st.floats(min_value=0, max_value=1e-9),
           st.floats(min_value=1e-13, max_value=1e-9))
    def test_monotone_in_ramp(self, ramp, tau):
        assert horowitz(ramp + 1e-12, tau) >= horowitz(ramp, tau)


class TestGateElectricals:
    def test_inverter_input_cap_scales_with_width(self):
        small = inverter(HP32, 1e-6)
        big = inverter(HP32, 2e-6)
        assert big.c_in == pytest.approx(2 * small.c_in)

    def test_inverter_pmos_ratio(self):
        g = inverter(HP32, 1e-6)
        assert g.w_p == pytest.approx(HP32.n_to_p_ratio * 1e-6)

    def test_nand_preserves_pulldown_drive(self):
        """Upsized series NMOS keeps r_drive equal to the inverter's."""
        inv = inverter(HP32, 1e-6)
        g = nand(HP32, 2, 1e-6)
        assert g.r_drive == pytest.approx(inv.r_drive)

    def test_nand_costs_more_input_cap(self):
        assert nand(HP32, 3, 1e-6).c_in > inverter(HP32, 1e-6).c_in

    def test_nor_pmos_stack_upsized(self):
        g = nor(HP32, 2, 1e-6)
        assert g.w_p == pytest.approx(2 * HP32.n_to_p_ratio * 1e-6)

    def test_delay_increases_with_load(self):
        g = inverter(HP32, 1e-6)
        d1, _ = g.delay(1e-15)
        d2, _ = g.delay(10e-15)
        assert d2 > d1

    def test_fo4_delay_close_to_device_fo4(self):
        """An inverter driving 4 copies of itself ~ the device FO4."""
        g = inverter(HP32, 1e-6)
        load = 4 * g.c_in
        d, _ = g.delay(load)
        assert d == pytest.approx(HP32.fo4, rel=0.35)

    def test_switch_energy_scales_with_load(self):
        g = inverter(HP32, 1e-6)
        assert g.switch_energy(10e-15) > g.switch_energy(1e-15)

    def test_leakage_positive(self):
        assert inverter(HP32, 1e-6).leakage() > 0


class TestAreaModel:
    def test_unconstrained_area_scales_with_inputs(self):
        a2 = nand(HP32, 2, 1e-6).area(F32)
        a4 = nand(HP32, 4, 1e-6).area(F32)
        assert a4 > a2

    def test_folding_under_tight_pitch(self):
        """A wide transistor folded into a small pitch occupies more area
        than into a generous pitch -- the SRAM/DRAM pitch-match effect."""
        w_total = 4e-6
        tight, fingers_tight = folded_strip_area(w_total, 10 * F32, F32)
        loose, fingers_loose = folded_strip_area(w_total, 60 * F32, F32)
        assert fingers_tight > fingers_loose
        assert tight > loose / 2  # folding is not free

    def test_single_finger_when_fits(self):
        _, fingers = folded_strip_area(F32, 10 * F32, F32)
        assert fingers == 1

    @given(st.floats(min_value=1e-8, max_value=1e-4))
    def test_area_positive(self, w):
        area, fingers = folded_strip_area(w, 5 * F32, F32)
        assert area > 0 and fingers >= 1

    def test_gate_area_with_pitch_constraint(self):
        g = inverter(HP32, 5e-6)
        assert g.area(F32, pitch=4 * F32) > 0

    def test_min_width(self):
        assert min_width(HP32, F32) == pytest.approx(2 * F32)
