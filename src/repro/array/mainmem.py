"""Main-memory DRAM chip organization (paper section 2.1).

Maps a commodity DRAM part specification -- banks, data pins, internal
prefetch width, burst length, page size -- onto the generic bank
organization, and derives the main-memory timing interface (tRCD, CAS
latency, tRP, tRC, tRRD) and per-command energies from the array metrics.

The page-size concept is captured by constraining the total number of
sense amplifiers fired per activation to equal the page size; burst length
determines the bits moved by one READ/WRITE command and scales the column
and I/O energy accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.array.organization import ArrayMetrics, ArraySpec
from repro.tech.cells import CellTech

#: Interface/synchronization overhead of a DDR-style I/O path, one way (s):
#: read FIFO, serializer, and output launch synchronization.
DEFAULT_IO_OVERHEAD = 5.0e-9

#: Command capture, decode, and bank-control overhead of a synchronous
#: DRAM interface (roughly two interface clocks of a DDR3-1066 part),
#: added to tRCD, CAS latency, and tRP.
DEFAULT_COMMAND_OVERHEAD = 3.75e-9

#: Effective switched capacitance of the per-bit I/O path (F): output
#: driver, predriver, datapath clocking, and the on-die share of
#: termination.  I/O energy per bit is this capacitance times the core
#: supply squared, so older high-voltage parts pay quadratically more
#: (matching the IDD4R-derived ~15-23 pJ/bit of 1.5 V DDR3).
IO_EFFECTIVE_CAP_PER_BIT = 6.7e-12

#: Standby current of the always-on chip infrastructure (DLL, input
#: buffers, self-refresh control) as a power floor (W).
DEFAULT_STANDBY_FLOOR = 45e-3


@dataclass(frozen=True)
class MainMemorySpec:
    """A commodity main-memory DRAM chip, datasheet-style.

    ``cell_tech`` defaults to the commodity DRAM process; any registered
    page-mode technology is accepted.  The periphery defaults to the
    technology's registered ``default_periphery`` trait.
    """

    capacity_bits: int
    nbanks: int = 8
    data_pins: int = 8  #: x4/x8/x16 interface width
    burst_length: int = 8
    prefetch: int = 8  #: internal prefetch width, bits per pin
    page_bits: int = 8192
    io_overhead: float = DEFAULT_IO_OVERHEAD
    command_overhead: float = DEFAULT_COMMAND_OVERHEAD
    io_energy_per_bit: float | None = None  #: default: C_io * Vdd_cell^2
    standby_floor: float = DEFAULT_STANDBY_FLOOR
    cell_tech: CellTech = CellTech.COMM_DRAM
    periph_device_type: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "cell_tech", CellTech(self.cell_tech))
        if self.burst_length > self.prefetch:
            # One column command can only burst out what was prefetched.
            raise ValueError(
                f"burst length {self.burst_length} exceeds prefetch "
                f"{self.prefetch}"
            )

    @property
    def column_bits(self) -> int:
        """Bits moved between the array and I/O per column command."""
        return self.data_pins * self.prefetch

    @property
    def burst_bits(self) -> int:
        """Bits transferred on the pins by one READ/WRITE command."""
        return self.data_pins * self.burst_length

    def array_spec(self) -> ArraySpec:
        """The low-level array specification this chip maps to."""
        periph = (
            self.periph_device_type
            or self.cell_tech.traits.default_periphery
        )
        return ArraySpec(
            capacity_bits=self.capacity_bits,
            output_bits=self.column_bits,
            assoc=1,
            nbanks=self.nbanks,
            cell_tech=self.cell_tech,
            periph_device_type=periph,
            page_bits=self.page_bits,
        )


@dataclass(frozen=True)
class MainMemoryTiming:
    """The main-memory DRAM timing interface (all in seconds)."""

    t_rcd: float  #: ACTIVATE to READ/WRITE (row to column delay)
    t_cas: float  #: READ to first data (CAS latency)
    t_rp: float  #: PRECHARGE to ACTIVATE (row precharge)
    t_ras: float  #: ACTIVATE to PRECHARGE (row active minimum)
    t_rc: float  #: ACTIVATE to ACTIVATE, same bank (row cycle)
    t_rrd: float  #: ACTIVATE to ACTIVATE, different banks
    t_burst: float  #: data burst duration on the pins

    @property
    def random_access(self) -> float:
        """Latency of a row-miss access: tRCD + CAS (paper Table 3 note)."""
        return self.t_rcd + self.t_cas


@dataclass(frozen=True)
class MainMemoryEnergies:
    """Per-command energies and standby power of the chip."""

    e_activate: float  #: ACTIVATE + eventual PRECHARGE of the page (J)
    e_read: float  #: one READ burst (J)
    e_write: float  #: one WRITE burst (J)
    p_refresh: float  #: average refresh power (W)
    p_standby: float  #: standby/leakage power (W)


def derive_timing(
    spec: MainMemorySpec, metrics: ArrayMetrics, clock_period: float = 0.0
) -> MainMemoryTiming:
    """Build the chip timing interface from evaluated array metrics.

    ``clock_period`` optionally quantizes every parameter up to whole
    interface clocks, as a real datasheet would.
    """
    t_rcd = (
        spec.command_overhead
        + metrics.t_htree_in
        + metrics.t_decode
        + metrics.t_bitline
        + metrics.t_sense
    )
    t_cas = (
        spec.command_overhead
        + metrics.t_htree_in  # column address distribution
        + metrics.t_decode  # column decode is a decoder-class path
        + metrics.t_htree_out
        + spec.io_overhead
    )
    # Precharge must first drop the wordline, then equalize the bitlines.
    t_rp = (
        spec.command_overhead
        + metrics.t_htree_in
        + metrics.t_wordline
        + metrics.t_precharge
    )
    t_ras = t_rcd + metrics.t_writeback
    t_rc = t_ras + t_rp
    t_rrd = max(metrics.t_interleave, t_rc / spec.nbanks)
    # Burst duration: DDR moves 2 bits per pin per clock; express relative
    # to the column cycle the array can sustain.
    t_burst = max(
        metrics.t_interleave,
        spec.burst_length / spec.prefetch * metrics.t_interleave,
    )
    if clock_period > 0.0:

        def quantize(t: float) -> float:
            return math.ceil(t / clock_period) * clock_period

        return MainMemoryTiming(
            t_rcd=quantize(t_rcd),
            t_cas=quantize(t_cas),
            t_rp=quantize(t_rp),
            t_ras=quantize(t_ras),
            t_rc=quantize(t_rc),
            t_rrd=quantize(t_rrd),
            t_burst=quantize(t_burst),
        )
    return MainMemoryTiming(
        t_rcd=t_rcd,
        t_cas=t_cas,
        t_rp=t_rp,
        t_ras=t_ras,
        t_rc=t_rc,
        t_rrd=t_rrd,
        t_burst=t_burst,
    )


def derive_energies(
    spec: MainMemorySpec, metrics: ArrayMetrics, vdd_cell: float = 1.0
) -> MainMemoryEnergies:
    """Per-command energies; ACTIVATE includes the paired precharge, as in
    the Micron power calculator's ACT energy accounting."""
    e_activate = metrics.e_activate + metrics.e_precharge
    per_bit = spec.io_energy_per_bit
    if per_bit is None:
        per_bit = IO_EFFECTIVE_CAP_PER_BIT * vdd_cell * vdd_cell
    io = spec.burst_bits * per_bit
    e_read = metrics.e_read_column + io
    e_write = metrics.e_write_column + io
    return MainMemoryEnergies(
        e_activate=e_activate,
        e_read=e_read,
        e_write=e_write,
        p_refresh=metrics.p_refresh,
        p_standby=metrics.p_leakage + spec.standby_floor,
    )
