"""Tests for seed-replicated study runs."""

import pytest

from repro.study.replication import Replicated, replicate, speedup_interval
from repro.workloads.npb import FT_B

INSTR = 15_000
SEEDS = (7, 99)


@pytest.fixture(scope="module")
def nol3():
    return replicate(FT_B.with_instructions(INSTR), "nol3", seeds=SEEDS)


@pytest.fixture(scope="module")
def lp():
    return replicate(FT_B.with_instructions(INSTR), "lp_dram_ed",
                     seeds=SEEDS)


class TestReplicated:
    def test_runs_one_per_seed(self, nol3):
        assert len(nol3.runs) == len(SEEDS)

    def test_mean_between_extremes(self, nol3):
        values = [r.ipc for r in nol3.runs]
        assert min(values) <= nol3.mean("ipc") <= max(values)

    def test_std_nonnegative(self, nol3):
        assert nol3.std("ipc") >= 0.0

    def test_confidence_shrinks_with_more_seeds(self, nol3):
        half2 = nol3.confidence_half_width("ipc")
        three = Replicated(app=nol3.app, config=nol3.config,
                           runs=nol3.runs + (nol3.runs[0],))
        # Same dispersion-ish, more samples: narrower interval.
        assert three.confidence_half_width("ipc") <= half2 * 1.01

    def test_low_seed_sensitivity(self, nol3):
        """The synthetic streams are long enough that the coefficient of
        variation across seeds stays small."""
        assert nol3.cv("ipc") < 0.10

    def test_unknown_metric(self, nol3):
        with pytest.raises(ValueError, match="unknown metric"):
            nol3.mean("colour")


class TestSpeedupInterval:
    def test_l3_speedup_excludes_one(self, nol3, lp):
        """The ft.B L3 speedup must be significant: the whole interval
        sits above 1.0."""
        mean, low, high = speedup_interval(nol3, lp)
        assert low > 1.0
        assert low <= mean <= high

    def test_self_speedup_includes_one(self, nol3):
        mean, low, high = speedup_interval(nol3, nol3)
        assert low <= 1.0 <= high
