"""The fault-tolerant execution engine: policies, journal, fault plans.

Exercises :mod:`repro.core.resilience` through
:func:`repro.core.parallel.parallel_map` with cheap picklable tasks --
no solver involved -- so every failure mode (worker exception, hard
worker kill, hung task, interrupted run) is fast and deterministic.
"""

import json
import time

import pytest

from repro.core.optimizer import SweepStats
from repro.core.parallel import parallel_map
from repro.core.resilience import (
    JOURNAL_VERSION,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    Journal,
    ResiliencePolicy,
    TaskFailure,
    task_key,
)

# Module-level task functions: picklable for worker processes, and the
# in-process (jobs=1) engine calls them directly so module globals in
# the parent count executions.

_EXECUTIONS: list = []


def _double(x):
    return x * 2


def _counted_double(x):
    _EXECUTIONS.append(x)
    return x * 2


def _fail_on_negative(x):
    if x < 0:
        raise RuntimeError(f"bad payload {x}")
    return x * 2


def _sleep_then(payload):
    delay, value = payload
    time.sleep(delay)
    return value


# --------------------------------------------------------------------- #
# task_key


def test_task_key_is_stable_and_normalized():
    a = task_key("stage", {"node": 32, "cap": 1024})
    assert a == task_key("stage", {"node": 32, "cap": 1024})
    # Numeric normalization: 32 and 32.0 describe the same task.
    assert a == task_key("stage", {"node": 32.0, "cap": 1024.0})
    # Stage and content both separate keys.
    assert a != task_key("other", {"node": 32, "cap": 1024})
    assert a != task_key("stage", {"node": 45, "cap": 1024})


def test_task_key_handles_dataclasses_and_enums():
    from repro.core.config import MemorySpec, OptimizationTarget

    spec = MemorySpec(capacity_bytes=32 << 10, block_bytes=64,
                      associativity=8, node_nm=32.0)
    k1 = task_key("s", {"spec": spec, "target": OptimizationTarget()})
    k2 = task_key("s", {"spec": spec, "target": OptimizationTarget()})
    assert k1 == k2
    bigger = MemorySpec(capacity_bytes=64 << 10, block_bytes=64,
                        associativity=8, node_nm=32.0)
    assert k1 != task_key(
        "s", {"spec": bigger, "target": OptimizationTarget()}
    )


# --------------------------------------------------------------------- #
# Journal


def test_journal_round_trip(tmp_path):
    path = tmp_path / "run.journal"
    journal = Journal(path)
    journal.record("k1", "stage.a", {"answer": 42})
    journal.record("k2", "stage.b", (1, 2.5, "x"))
    journal.close()

    reloaded = Journal(path)
    assert len(reloaded) == 2
    assert "k1" in reloaded and "k2" in reloaded
    assert reloaded.result("k1") == {"answer": 42}
    assert reloaded.result("k2") == (1, 2.5, "x")
    assert reloaded.stages() == {"stage.a": 1, "stage.b": 1}


def test_journal_skips_torn_and_mismatched_lines(tmp_path):
    path = tmp_path / "run.journal"
    journal = Journal(path)
    journal.record("good", "s", 7)
    journal.close()
    with path.open("a") as fh:
        fh.write(json.dumps({"v": "other-version", "key": "bad",
                             "data": "eA=="}) + "\n")
        fh.write("not json at all\n")
        fh.write('{"v": "%s", "key": "torn", "da' % JOURNAL_VERSION)
    reloaded = Journal(path)
    assert len(reloaded) == 1
    assert reloaded.result("good") == 7


def test_journal_appends_across_sessions(tmp_path):
    path = tmp_path / "run.journal"
    first = Journal(path)
    first.record("k1", "s", "one")
    first.close()
    second = Journal(path)
    second.record("k2", "s", "two")
    second.close()
    assert len(Journal(path)) == 2


# --------------------------------------------------------------------- #
# FaultPlan


def test_fault_plan_fires_deterministically():
    plan = FaultPlan((FaultSpec("s", 1, "raise", trips=2),))
    plan.fire("s", 0, attempt=1)  # wrong index: no fire
    plan.fire("other", 1, attempt=1)  # wrong stage: no fire
    with pytest.raises(FaultInjected):
        plan.fire("s", 1, attempt=1)
    with pytest.raises(FaultInjected):
        plan.fire("s", 1, attempt=2)
    plan.fire("s", 1, attempt=3)  # past its trips: no fire


def test_kill_fault_degrades_to_exception_in_parent():
    # os._exit in the parent would take the whole run (and the test
    # runner) down; in-process the kill action must raise instead.
    plan = FaultPlan((FaultSpec("s", 0, "kill"),))
    with pytest.raises(FaultInjected):
        plan.fire("s", 0, attempt=1)


def test_fault_spec_rejects_unknown_action():
    with pytest.raises(ValueError):
        FaultSpec("s", 0, "explode")


# --------------------------------------------------------------------- #
# Policy validation


def test_policy_validates_inputs():
    with pytest.raises(ValueError):
        ResiliencePolicy(on_error="ignore")
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(timeout_s=0.0)


def test_retries_only_allowed_in_retry_mode():
    assert ResiliencePolicy(on_error="retry", max_retries=3).retries_allowed == 3
    assert ResiliencePolicy(on_error="skip", max_retries=3).retries_allowed == 0
    assert ResiliencePolicy(on_error="raise", max_retries=3).retries_allowed == 0


def test_journal_bearing_policy_requires_keys(tmp_path):
    policy = ResiliencePolicy(journal=Journal(tmp_path / "j"))
    with pytest.raises(ValueError):
        parallel_map(_double, [1, 2], 1, resilience=policy)


# --------------------------------------------------------------------- #
# Error policies through parallel_map


@pytest.mark.parametrize("jobs", [1, 2])
def test_skip_mode_records_failures_in_place(jobs):
    stats = SweepStats()
    out = parallel_map(
        _fail_on_negative,
        [1, -1, 3, -2],
        jobs,
        span_name="s",
        resilience=ResiliencePolicy(on_error="skip"),
        stats=stats,
    )
    assert out[0] == 2 and out[2] == 6
    assert isinstance(out[1], TaskFailure) and isinstance(out[3], TaskFailure)
    assert out[1].index == 1 and out[1].stage == "s"
    assert out[1].error_type == "RuntimeError"
    assert out[1].attempts == 1  # skip mode never retries
    assert stats.tasks_failed == 2
    assert stats.retries == 0


@pytest.mark.parametrize("jobs", [1, 2])
def test_raise_mode_propagates(jobs):
    with pytest.raises(RuntimeError, match="bad payload"):
        parallel_map(
            _fail_on_negative,
            [1, -1, 3],
            jobs,
            resilience=ResiliencePolicy(on_error="raise"),
        )


@pytest.mark.parametrize("jobs", [1, 2])
def test_retry_recovers_transient_faults(jobs):
    # The fault trips only the first attempt of task 1; the retry runs
    # clean and the map completes with full results.
    stats = SweepStats()
    policy = ResiliencePolicy(
        on_error="retry",
        max_retries=2,
        backoff_s=0.01,
        fault_plan=FaultPlan((FaultSpec("s", 1, "raise", trips=1),)),
    )
    out = parallel_map(
        _double, [10, 20, 30], jobs, span_name="s",
        resilience=policy, stats=stats,
    )
    assert out == [20, 40, 60]
    assert stats.retries == 1
    assert stats.tasks_failed == 0


@pytest.mark.parametrize("jobs", [1, 2])
def test_retry_exhaustion_degrades_to_failure(jobs):
    # trips above max_retries: every attempt fails, the task degrades
    # to a recorded TaskFailure after 1 + max_retries attempts.
    stats = SweepStats()
    policy = ResiliencePolicy(
        on_error="retry",
        max_retries=2,
        backoff_s=0.01,
        fault_plan=FaultPlan((FaultSpec("s", 0, "raise", trips=99),)),
    )
    out = parallel_map(
        _double, [10, 20], jobs, span_name="s",
        resilience=policy, stats=stats,
    )
    assert isinstance(out[0], TaskFailure)
    assert out[0].attempts == 3
    assert out[1] == 40
    assert stats.retries == 2
    assert stats.tasks_failed == 1


def test_kill_fault_triggers_pool_rebuild():
    # Task 1 hard-exits its worker on the first attempt, breaking the
    # pool.  The engine harvests survivors, re-runs the in-flight tasks
    # in the parent, rebuilds the pool, and completes every result.
    stats = SweepStats()
    policy = ResiliencePolicy(
        on_error="retry",
        max_retries=2,
        backoff_s=0.01,
        fault_plan=FaultPlan((FaultSpec("s", 1, "kill", trips=1),)),
    )
    out = parallel_map(
        _double, list(range(6)), 2, span_name="s",
        resilience=policy, stats=stats,
    )
    assert out == [0, 2, 4, 6, 8, 10]
    assert stats.pool_rebuilds >= 1


def test_timeout_cancels_hung_task():
    # Task 0 sleeps far past the budget; the engine cancels it by pool
    # rebuild and the innocents complete unscathed.
    stats = SweepStats()
    policy = ResiliencePolicy(on_error="skip", timeout_s=0.4)
    out = parallel_map(
        _sleep_then,
        [(5.0, "hung"), (0.0, "a"), (0.0, "b")],
        2,
        span_name="s",
        resilience=policy,
        stats=stats,
    )
    assert isinstance(out[0], TaskFailure)
    assert out[0].timed_out
    assert out[1] == "a" and out[2] == "b"
    assert stats.timeouts >= 1
    assert stats.pool_rebuilds >= 1


# --------------------------------------------------------------------- #
# Checkpoint / resume


def test_resume_executes_only_unfinished_tasks(tmp_path):
    path = tmp_path / "map.journal"
    payloads = [1, 2, 3, 4]
    keys = [task_key("s", {"x": p}) for p in payloads]

    # First run completes half the map, then the fault interrupts it.
    _EXECUTIONS.clear()
    policy = ResiliencePolicy(
        journal=Journal(path),
        fault_plan=FaultPlan((FaultSpec("s", 2, "raise", trips=99),)),
    )
    with pytest.raises(FaultInjected):
        parallel_map(
            _counted_double, payloads, 1, span_name="s",
            resilience=policy, keys=keys,
        )
    policy.journal.close()
    assert _EXECUTIONS == [1, 2]  # tasks 0 and 1 ran and were journaled
    assert len(Journal(path)) == 2

    # The resumed run restores those results and executes only the rest.
    _EXECUTIONS.clear()
    resumed = ResiliencePolicy(journal=Journal(path))
    out = parallel_map(
        _counted_double, payloads, 1, span_name="s",
        resilience=resumed, keys=keys,
    )
    resumed.journal.close()
    assert out == [2, 4, 6, 8]
    assert _EXECUTIONS == [3, 4]  # the journaled half never re-ran
    assert len(Journal(path)) == 4

    # A third run is a pure restore: zero executions.
    _EXECUTIONS.clear()
    final = ResiliencePolicy(journal=Journal(path))
    out = parallel_map(
        _counted_double, payloads, 1, span_name="s",
        resilience=final, keys=keys,
    )
    final.journal.close()
    assert out == [2, 4, 6, 8]
    assert _EXECUTIONS == []


def test_resume_across_job_counts(tmp_path):
    # A journal written by a parallel run restores into a serial run
    # (and vice versa): the task shape is identical in both modes.
    path = tmp_path / "map.journal"
    payloads = [5, 6, 7]
    keys = [task_key("s", {"x": p}) for p in payloads]
    policy = ResiliencePolicy(journal=Journal(path))
    out = parallel_map(
        _double, payloads, 2, span_name="s",
        resilience=policy, keys=keys,
    )
    policy.journal.close()
    assert out == [10, 12, 14]

    _EXECUTIONS.clear()
    resumed = ResiliencePolicy(journal=Journal(path))
    out = parallel_map(
        _counted_double, payloads, 1, span_name="s",
        resilience=resumed, keys=keys,
    )
    resumed.journal.close()
    assert out == [10, 12, 14]
    assert _EXECUTIONS == []  # fully restored, nothing executed
