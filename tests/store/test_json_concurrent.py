"""Concurrent-writer safety for the JSON-file backend.

The whole-file-rewrite save is a read-modify-write, so without the
advisory save lock two overlapping flushes could both load the same
disk state and the later ``os.replace`` would drop records the earlier
one added (a lost update).  These tests fork real writer processes
with overlapping flush windows and assert the union survives.
"""

import json
import multiprocessing

import pytest

from repro.store import JsonFileStore

VERSION = "concurrent-v1"

WRITERS = 4
RECORDS_PER_WRITER = 40
#: Keys shared by every writer (all writers put the same record there,
#: so any interleaving leaves a valid value).
SHARED_KEYS = 8


def _writer(path, writer_id, barrier):
    """One writer process: interleaved puts and frequent flushes."""
    store = JsonFileStore(path, version=VERSION)
    barrier.wait()  # maximize overlap: all writers start together
    for i in range(RECORDS_PER_WRITER):
        if i < SHARED_KEYS:
            store.put(f"shared-{i}", {"key": f"shared-{i}", "n": i})
        else:
            store.put(
                f"w{writer_id}-{i}", {"key": f"w{writer_id}-{i}", "n": i}
            )
        if i % 5 == 0:
            store.flush()
    store.close()


def _run_writers(path):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(WRITERS)
    procs = [
        ctx.Process(target=_writer, args=(path, writer_id, barrier))
        for writer_id in range(WRITERS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0, f"writer crashed with {p.exitcode}"


def expected_keys():
    keys = {f"shared-{i}" for i in range(SHARED_KEYS)}
    for writer_id in range(WRITERS):
        keys |= {
            f"w{writer_id}-{i}"
            for i in range(SHARED_KEYS, RECORDS_PER_WRITER)
        }
    return keys


@pytest.mark.slow
class TestConcurrentJsonWriters:
    def test_no_lost_records(self, tmp_path):
        """Every record every writer put must survive the interleaved
        whole-file rewrites: the save lock makes each rewrite's
        load-merge-replace atomic against the others."""
        path = tmp_path / "s.json"
        _run_writers(path)
        store = JsonFileStore(path, version=VERSION)
        scanned = dict(store.scan())
        assert set(scanned) == expected_keys()
        for key, record in scanned.items():
            assert record["key"] == key
        assert store.corrupt_records == 0
        store.close()

    def test_file_is_one_valid_payload(self, tmp_path):
        path = tmp_path / "s.json"
        _run_writers(path)
        payload = json.loads(path.read_text())
        assert payload["version"] == VERSION
        assert set(payload["records"]) == expected_keys()
