"""Technology modeling: ITRS devices, Ho wire projections, memory cells.

Importing this package registers the built-in memory technologies: the
paper's triad (``repro.tech.cells``) and the STT-RAM extensibility proof
(``repro.tech.stt_ram``).  Registration happens at import time so every
process -- including optimizer worker processes that unpickle specs --
resolves the same :class:`CellTech` handles.
"""

from repro.tech.cells import CellParams, CellTech
from repro.tech.devices import DEVICE_TYPES, NODES_NM, DeviceParams, device
from repro.tech.nodes import Technology, technology
from repro.tech.registry import (
    CellTraits,
    MemoryTechnology,
    SensingScheme,
    register,
    registered_names,
)
from repro.tech.wires import WireParams, global_wire, local_wire, semi_global_wire
from repro.tech import stt_ram as _stt_ram  # noqa: F401  (registers stt-ram)

__all__ = [
    "CellParams",
    "CellTech",
    "CellTraits",
    "DEVICE_TYPES",
    "DeviceParams",
    "MemoryTechnology",
    "NODES_NM",
    "SensingScheme",
    "Technology",
    "WireParams",
    "device",
    "global_wire",
    "local_wire",
    "register",
    "registered_names",
    "semi_global_wire",
    "technology",
]
