"""Tests for the Table 3 configuration machinery."""

import pytest

from repro.study.table3 import (
    CONFIG_NAMES,
    build_energy_model,
    build_system_config,
    paper_table3,
    solve_l1,
    solve_l2,
    solve_l3,
)


class TestPaperTable:
    def test_all_columns_present(self):
        rows = paper_table3()
        assert set(rows) == {
            "L1", "L2", "sram", "lp_dram_ed", "lp_dram_c", "cm_dram_ed",
            "cm_dram_c", "main",
        }

    def test_paper_values_spotcheck(self):
        rows = paper_table3()
        assert rows["sram"].leakage_w == pytest.approx(3.6)
        assert rows["cm_dram_c"].access_cycles == 21
        assert rows["main"].access_cycles == 61


class TestSolvedTable:
    """The live CACTI-D solves must land in the paper's bands."""

    def test_l1_l2_cycles(self):
        assert solve_l1().access_cycles <= 3
        assert solve_l2().access_cycles <= 4

    def test_sram_l3(self):
        row = solve_l3("sram")
        paper = paper_table3()["sram"]
        assert row.access_cycles <= paper.access_cycles + 2
        assert row.leakage_w == pytest.approx(paper.leakage_w, rel=0.5)
        assert row.e_read_nj == pytest.approx(paper.e_read_nj, rel=0.5)

    def test_lp_dram_leakage_below_sram(self):
        assert solve_l3("lp_dram_ed").leakage_w < solve_l3("sram").leakage_w

    def test_comm_dram_leakage_negligible(self):
        """Paper Table 3: 15-26 mW vs the SRAM L3's 3.6 W."""
        assert solve_l3("cm_dram_c").leakage_w < 0.2
        assert solve_l3("cm_dram_ed").leakage_w < 0.2

    def test_lp_refresh_exceeds_comm_refresh(self):
        """0.12 ms vs 64 ms retention (paper Table 1 -> Table 3)."""
        assert solve_l3("lp_dram_ed").refresh_w > solve_l3(
            "cm_dram_ed").refresh_w * 10

    def test_comm_slower_than_lp(self):
        assert (
            solve_l3("cm_dram_c").access_cycles
            > solve_l3("lp_dram_c").access_cycles
        )

    def test_bank_area_within_budget_band(self):
        """Per-bank area must sit near the 6.2 mm^2 stack budget."""
        for name in ("sram", "lp_dram_c", "cm_dram_c"):
            assert solve_l3(name).area_mm2 < 6.2 * 1.3


class TestSystemConfigs:
    @pytest.mark.parametrize("name", CONFIG_NAMES)
    def test_build_all(self, name):
        cfg = build_system_config(name, source="paper", scale=16)
        assert cfg.num_threads == 32
        if name == "nol3":
            assert cfg.l3 is None
        else:
            assert cfg.l3 is not None
            assert cfg.l3.capacity_bytes > 0

    def test_scaling_shrinks_caches(self):
        small = build_system_config("sram", scale=16)
        big = build_system_config("sram", scale=1)
        assert small.l3.capacity_bytes * 16 == big.l3.capacity_bytes

    def test_l3_capacity_ordering_preserved(self):
        caps = [
            build_system_config(n, scale=16).l3.capacity_bytes
            for n in CONFIG_NAMES[1:]
        ]
        assert caps == sorted(caps)


class TestEnergyModels:
    def test_nol3_has_no_l3(self):
        assert build_energy_model("nol3").l3 is None

    def test_sram_l3_leakiest(self):
        sram = build_energy_model("sram").l3
        comm = build_energy_model("cm_dram_c").l3
        assert sram.p_leakage > 20 * comm.p_leakage

    def test_memory_chip_energies_positive(self):
        m = build_energy_model("nol3").memory
        assert m.e_activate > 0 and m.e_read > 0
        assert m.num_chips == 16


class TestTable3Resume:
    """Row-level checkpointing in solve_table3 (stubbed row builders --
    the live solves are exercised elsewhere; this tests the journal)."""

    @pytest.fixture
    def stubbed_builders(self, monkeypatch):
        import repro.study.table3 as table3

        calls = []

        def fake_row(name):
            calls.append(name)
            return paper_table3()[name if name != "main_chip" else "main"]

        monkeypatch.setattr(
            table3, "solve_l1", lambda **k: fake_row("L1")
        )
        monkeypatch.setattr(
            table3, "solve_l2", lambda **k: fake_row("L2")
        )
        monkeypatch.setattr(
            table3, "solve_l3", lambda name, **k: fake_row(name)
        )
        monkeypatch.setattr(
            table3, "main_memory_row", lambda **k: fake_row("main")
        )
        return calls

    def test_interrupted_table_resumes_at_unfinished_row(
        self, stubbed_builders, tmp_path
    ):
        from repro.core.resilience import (
            FaultInjected,
            FaultPlan,
            FaultSpec,
            Journal,
            ResiliencePolicy,
        )
        from repro.study.table3 import solve_table3

        path = tmp_path / "table3.journal"
        interrupted = ResiliencePolicy(
            journal=Journal(path),
            fault_plan=FaultPlan(
                (FaultSpec("table3.row", 3, "raise", trips=99),)
            ),
        )
        with pytest.raises(FaultInjected):
            solve_table3(resilience=interrupted)
        interrupted.journal.close()
        assert stubbed_builders == ["L1", "L2", "sram"]
        assert len(Journal(path)) == 3

        stubbed_builders.clear()
        resumed = ResiliencePolicy(journal=Journal(path))
        rows = solve_table3(resilience=resumed)
        resumed.journal.close()
        # Only the five unfinished rows were built; the first three
        # restored from the journal.
        assert stubbed_builders == [
            "lp_dram_ed", "lp_dram_c", "cm_dram_ed", "cm_dram_c", "main"
        ]
        assert set(rows) == set(paper_table3())
        assert rows["sram"] == paper_table3()["sram"]
        assert len(Journal(path)) == 8
