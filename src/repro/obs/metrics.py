"""Named counters, gauges, and histograms for the solve pipeline.

A :class:`MetricsRegistry` is a flat namespace of instruments created on
first use (``registry.counter("solve_cache.hits")``), so call sites need
no registration ceremony and an un-exercised code path simply leaves no
metric behind.  Everything serializes through :meth:`MetricsRegistry.
snapshot` to plain JSON types.

Conventions:

* **Counters** are monotonically increasing event counts (candidates
  enumerated, cache hits).  Counter pairs named ``<base>.hits`` /
  ``<base>.misses`` get a derived ``<base>.hit_rate`` in the snapshot.
* **Gauges** are last-write-wins point-in-time values (worker
  utilization, records in a cache file).
* **Histograms** are streaming distributions keeping count / sum / min /
  max (per-phase latency distributions, per-chunk build times).

Registries merge: workers snapshot theirs into the stats payloads the
parallel engine ships home, and the parent :meth:`MetricsRegistry.
absorb`s them -- counters and histograms add, gauges keep the last
write.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins point-in-time value."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = None

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """A streaming distribution: count, sum, min, max, mean."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": None, "max": None,
                    "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def merge(self, d: dict) -> None:
        """Fold another histogram's ``to_dict()`` into this one."""
        if not d.get("count"):
            return
        self.count += d["count"]
        self.total += d["sum"]
        self.min = min(self.min, d["min"])
        self.max = max(self.max, d["max"])


class MetricsRegistry:
    """A flat, create-on-first-use namespace of metric instruments."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # Instrument access

    def counter(self, name: str) -> Counter:
        try:
            return self.counters[name]
        except KeyError:
            c = self.counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        try:
            return self.gauges[name]
        except KeyError:
            g = self.gauges[name] = Gauge()
            return g

    def histogram(self, name: str) -> Histogram:
        try:
            return self.histograms[name]
        except KeyError:
            h = self.histograms[name] = Histogram()
            return h

    # ------------------------------------------------------------------ #
    # Serialization and merging

    def snapshot(self) -> dict:
        """JSON-serializable snapshot of every instrument.

        Counter pairs ``<base>.hits`` / ``<base>.misses`` additionally
        produce ``<base>.hit_rate`` under ``"derived"`` (0.0 when the
        pair saw no lookups), so cache effectiveness reads directly off
        the file.
        """
        counters = {
            name: c.value for name, c in sorted(self.counters.items())
        }
        derived = {}
        for name, hits in counters.items():
            if not name.endswith(".hits"):
                continue
            base = name[: -len(".hits")]
            misses = counters.get(f"{base}.misses")
            if misses is None:
                continue
            total = hits + misses
            derived[f"{base}.hit_rate"] = hits / total if total else 0.0
        return {
            "counters": counters,
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self.histograms.items())
            },
            "derived": derived,
        }

    def absorb(self, snapshot: dict | None) -> None:
        """Merge another registry's ``snapshot()`` into this one.

        Counters and histograms accumulate; gauges keep the incoming
        value (last write wins); derived values are recomputed at the
        next snapshot, never merged.
        """
        if not snapshot:
            return
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(value)
        for name, d in (snapshot.get("histograms") or {}).items():
            self.histogram(name).merge(d)

    def write(self, path: str | os.PathLike) -> None:
        """Write the snapshot as a JSON file."""
        Path(path).write_text(json.dumps(self.snapshot(), indent=1))
