"""Unit tests for the main-memory controller model."""

import pytest

from repro.dram.page_policy import OpenPagePolicy
from repro.sim.dram_channel import MemoryController, MemoryTimingCycles

TIMING = MemoryTimingCycles(
    t_rcd=30, t_cas=31, t_rp=28, t_ras=70, t_rc=98, t_rrd=15, t_burst=5
)


def make(**kwargs):
    return MemoryController(TIMING, **kwargs)


class TestMapping:
    def test_lines_interleave_channels(self):
        mc = make()
        ch0 = mc._map(0)[0]
        ch1 = mc._map(64)[0]
        assert ch0 != ch1

    def test_rows_interleave_banks(self):
        mc = make()
        __, b0, __ = mc._map(0)
        __, b1, __ = mc._map(1024 * 2)  # next row on the same channel
        assert b0 != b1


class TestLatency:
    def test_closed_page_latency(self):
        mc = make()
        lat = mc.access(0.0, 0, False)
        assert lat == pytest.approx(
            TIMING.t_rcd + TIMING.t_cas + TIMING.t_burst
        )

    def test_bank_conflict_queues(self):
        mc = make()
        first = mc.access(0.0, 0, False)
        # Same bank, immediately afterward: must wait for the row cycle.
        second = mc.access(1.0, 0, False)
        assert second > first

    def test_different_banks_overlap(self):
        mc = make()
        mc.access(0.0, 0, False)
        other_bank = 1024 * 2  # same channel, next bank
        lat = mc.access(1.0, other_bank, False)
        assert lat <= TIMING.t_rcd + TIMING.t_cas + 2 * TIMING.t_burst

    def test_channel_bus_serializes_bursts(self):
        mc = make(banks_per_channel=8)
        base = mc.access(0.0, 0, False)
        # Different bank, same channel: data bursts share the bus.
        lat = mc.access(0.0, 2048, False)
        assert lat >= base  # second burst waits for the first

    def test_open_page_policy_hits(self):
        mc = make(policy=OpenPagePolicy())
        mc.access(0.0, 0, False)
        lat = mc.access(500.0, 0, False)  # same row
        assert lat == pytest.approx(TIMING.t_cas + TIMING.t_burst)
        assert mc.stats.row_hits == 1


class TestStats:
    def test_counters(self):
        mc = make()
        mc.access(0.0, 0, False)
        mc.access(200.0, 64, True)
        assert mc.stats.reads == 1
        assert mc.stats.writes == 1
        assert mc.stats.activates == 2


class TestRefreshInjection:
    def test_refresh_steals_bank_time(self):
        quiet = make()
        busy = make(refresh_interval=200.0)
        base = quiet.access(10_000.0, 0, False)
        delayed = busy.access(10_000.0, 0, False)
        # 50 refreshes were owed at t=10000; the bank must catch up.
        assert busy.stats.refreshes > 0
        assert delayed >= base

    def test_no_refresh_by_default(self):
        mc = make()
        mc.access(1e6, 0, False)
        assert mc.stats.refreshes == 0

    def test_refresh_pitch(self):
        mc = make(refresh_interval=1000.0)
        mc.access(5000.0, 0, False)
        # Refreshes owed at t=1000..5000 on this bank: 5.
        assert mc.stats.refreshes == 5
