"""Synthetic NPB-like workloads for the LLC study."""

from repro.workloads.npb import (
    BT_C,
    BY_NAME,
    CG_C,
    DEFAULT_INSTRUCTIONS,
    FT_B,
    IS_C,
    LU_C,
    MG_B,
    NPB_PROFILES,
    SP_C,
    UA_C,
)
from repro.workloads.micro import (
    MICRO_PROFILES,
    POINTER_CHASE,
    RESIDENT,
    STREAM,
    WRITE_SHARED,
)
from repro.workloads.profiles_io import load_profiles, save_profiles
from repro.workloads.synthetic import LINE_BYTES, WorkloadProfile, event_stream
from repro.workloads.trace import (
    TraceFormatError,
    load_trace,
    load_traces,
    save_trace,
    save_traces,
)

__all__ = [
    "BT_C",
    "BY_NAME",
    "CG_C",
    "DEFAULT_INSTRUCTIONS",
    "FT_B",
    "IS_C",
    "LINE_BYTES",
    "LU_C",
    "MG_B",
    "MICRO_PROFILES",
    "NPB_PROFILES",
    "POINTER_CHASE",
    "RESIDENT",
    "STREAM",
    "WRITE_SHARED",
    "SP_C",
    "TraceFormatError",
    "UA_C",
    "WorkloadProfile",
    "event_stream",
    "load_profiles",
    "load_trace",
    "load_traces",
    "save_profiles",
    "save_trace",
    "save_traces",
]
