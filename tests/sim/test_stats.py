"""Unit tests for simulation statistics containers."""

import pytest

from repro.sim.core import FP_CPI, OTHER_CPI, thread_cpi
from repro.sim.interconnect import Crossbar
from repro.sim.stats import (
    BREAKDOWN_CATEGORIES,
    AccessCounters,
    CycleBreakdown,
    SimStats,
)


class TestCycleBreakdown:
    def test_total_sums_categories(self):
        b = CycleBreakdown(instruction=10, l2=5, l3=3, memory=20,
                           barrier=2, lock=1)
        assert b.total == 41

    def test_add_accumulates(self):
        a = CycleBreakdown(instruction=10, memory=5)
        b = CycleBreakdown(instruction=1, l3=2)
        a.add(b)
        assert a.instruction == 11
        assert a.l3 == 2
        assert a.memory == 5

    def test_normalized_own_total(self):
        b = CycleBreakdown(instruction=25, memory=75)
        fractions = b.normalized()
        assert fractions["instruction"] == pytest.approx(0.25)
        assert fractions["memory"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_normalized_external_baseline(self):
        b = CycleBreakdown(instruction=50)
        assert b.normalized(200)["instruction"] == pytest.approx(0.25)

    def test_normalized_empty(self):
        fractions = CycleBreakdown().normalized()
        assert all(v == 0.0 for v in fractions.values())

    def test_categories_match_fields(self):
        b = CycleBreakdown()
        for name in BREAKDOWN_CATEGORIES:
            assert hasattr(b, name)


class TestAccessCounters:
    def test_add(self):
        a = AccessCounters(l1_reads=5, mem_reads=2)
        b = AccessCounters(l1_reads=1, l3_writes=4)
        a.add(b)
        assert a.l1_reads == 6
        assert a.l3_writes == 4
        assert a.mem_reads == 2


class TestSimStats:
    def test_ipc(self):
        stats = SimStats(cycles=100.0, instructions=250.0)
        assert stats.ipc == pytest.approx(2.5)

    def test_ipc_zero_cycles(self):
        assert SimStats().ipc == 0.0

    def test_average_read_latency(self):
        stats = SimStats(read_latency_sum=300.0, read_count=10)
        assert stats.average_read_latency == pytest.approx(30.0)

    def test_average_read_latency_no_reads(self):
        assert SimStats().average_read_latency == 0.0


class TestThreadCpi:
    def test_paper_recipe(self):
        """FP at 1 cycle, everything else at 4 (paper section 3.3)."""
        assert thread_cpi(1.0) == pytest.approx(FP_CPI)
        assert thread_cpi(0.0) == pytest.approx(OTHER_CPI)
        assert thread_cpi(0.5) == pytest.approx(2.5)


class TestCrossbar:
    def test_traverse_latency(self):
        xb = Crossbar(traverse_cycles=2)
        assert xb.traverse(10.0, port=0) == pytest.approx(12.0)

    def test_port_occupancy_serializes(self):
        xb = Crossbar(traverse_cycles=2, port_occupancy=3)
        first = xb.traverse(0.0, port=1)
        second = xb.traverse(0.0, port=1)
        assert second == first + 3

    def test_ports_independent(self):
        xb = Crossbar(traverse_cycles=2)
        a = xb.traverse(0.0, port=0)
        b = xb.traverse(0.0, port=7)
        assert a == b  # no interference across output ports

    def test_round_trip(self):
        xb = Crossbar(traverse_cycles=3)
        assert xb.round_trip(5.0, port=2) == pytest.approx(6.0)

    def test_transfer_count(self):
        xb = Crossbar(traverse_cycles=1)
        xb.traverse(0.0, 0)
        xb.traverse(0.0, 1)
        assert xb.transfers == 2
