"""Cross-interpreter determinism: simulation ignores PYTHONHASHSEED.

Python salts ``hash(str)`` per interpreter, so anything seeded through a
string hash silently differs between sessions -- and, under a spawn
start method, between a parent and its workers.  The workload
generators key their RNG streams by ``zlib.crc32(name)`` instead; these
tests run the same simulation in subprocesses under different hash
seeds and require bit-identical SimStats.
"""

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parents[2] / "src"

_SCRIPT = """
import dataclasses, json
from repro.study.runner import run_one
from repro.workloads.npb import BY_NAME

profile = BY_NAME["ua.C"].with_instructions(3000)
result = run_one(profile, "sram", source="paper", scale=64, seed=7)
print(json.dumps(dataclasses.asdict(result.stats), sort_keys=True))
"""


def _run_under_hashseed(seed: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.fspath(_SRC)
    env["PYTHONHASHSEED"] = seed
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout)


def test_simstats_identical_across_hash_seeds():
    first = _run_under_hashseed("0")
    second = _run_under_hashseed("1")
    third = _run_under_hashseed("4242")
    assert first == second == third


def test_event_stream_seeding_uses_no_string_hash():
    # Direct check on the generator: the first events of a stream are a
    # pure function of (profile, thread, seed) in this interpreter --
    # and the subprocess test above pins that across interpreters.
    from itertools import islice

    from repro.workloads.npb import BY_NAME
    from repro.workloads.synthetic import event_stream

    profile = BY_NAME["ft.B"].scaled(64)
    a = list(islice(event_stream(profile, 0, 16, seed=3), 50))
    b = list(islice(event_stream(profile, 0, 16, seed=3), 50))
    assert a == b
