"""Migration between backends is lossless and bit-exact.

The acceptance bar: ``cache migrate`` round-trips (JSON -> sqlite ->
JSON) must preserve every record field-for-field, floats included.
"""

import pytest

from repro.store import (
    JsonFileStore,
    SqliteStore,
    migrate_store,
    open_store,
)

VERSION = "mig-v2"
OLDER = ("mig-v1",)


def records(n):
    # Awkward floats on purpose: bit-exactness is the claim under test.
    return {
        f"key-{i:04d}": {
            "spec": {"n": i, "f": i * 0.1 + 0.2},
            "org": {"third": i / 3.0},
        }
        for i in range(n)
    }


def filled_json(tmp_path, name="src.json", n=25):
    store = JsonFileStore(tmp_path / name, version=VERSION,
                          older_versions=OLDER)
    for key, record in records(n).items():
        store.put(key, record)
    store.flush()
    return store


class TestMigrate:
    def test_json_to_sqlite_copies_everything(self, tmp_path):
        src = filled_json(tmp_path)
        dst = SqliteStore(tmp_path / "dst.db", version=VERSION)
        report = migrate_store(src, dst)
        assert report["migrated"] == 25
        assert report["destination_records"] == 25
        assert dict(dst.scan()) == records(25)
        src.close(), dst.close()

    def test_round_trip_bit_identity(self, tmp_path):
        """JSON -> sqlite -> JSON: every record field-for-field equal."""
        src = filled_json(tmp_path)
        middle = SqliteStore(tmp_path / "mid.db", version=VERSION)
        migrate_store(src, middle)
        back = JsonFileStore(tmp_path / "back.json", version=VERSION)
        migrate_store(middle, back)
        assert dict(back.scan()) == dict(src.scan()) == records(25)
        src.close(), middle.close(), back.close()

    def test_migration_is_one_flush(self, tmp_path):
        src = filled_json(tmp_path)
        dst = SqliteStore(tmp_path / "dst.db", version=VERSION)
        migrate_store(src, dst)
        assert dst.flush_writes == 1
        src.close(), dst.close()

    def test_same_store_rejected(self, tmp_path):
        src = filled_json(tmp_path)
        with pytest.raises(ValueError, match="same store"):
            migrate_store(src, src)
        src.close()

    def test_tombstoned_records_shed(self, tmp_path):
        src = filled_json(tmp_path)
        src.tombstone("key-0000")
        dst = SqliteStore(tmp_path / "dst.db", version=VERSION)
        report = migrate_store(src, dst)
        assert report["migrated"] == 24
        assert report["skipped_corrupt"] == 1
        assert dst.get("key-0000") is None
        src.close(), dst.close()

    def test_other_version_records_stay_behind(self, tmp_path):
        old = JsonFileStore(tmp_path / "src.json", version=OLDER[0])
        old.put("ancient", {"n": 0})
        old.flush()
        old.close()
        src = JsonFileStore(tmp_path / "src.json", version=VERSION,
                            older_versions=OLDER)
        dst = SqliteStore(tmp_path / "dst.db", version=VERSION)
        report = migrate_store(src, dst)
        assert report["migrated"] == 0
        assert len(dst) == 0
        src.close(), dst.close()

    def test_destination_bound_applies(self, tmp_path):
        """Migrating into a bounded store evicts down to the bound --
        the bound is the destination's contract, not the migration's."""
        src = filled_json(tmp_path, n=30)
        dst = SqliteStore(tmp_path / "dst.db", version=VERSION,
                          max_records=10)
        report = migrate_store(src, dst)
        assert report["migrated"] == 30
        assert len(dst) == 10
        assert dst.evictions == 20
        src.close(), dst.close()

    def test_existing_destination_records_preserved(self, tmp_path):
        src = filled_json(tmp_path, n=5)
        dst = SqliteStore(tmp_path / "dst.db", version=VERSION)
        dst.put("pre-existing", {"n": -1})
        dst.flush()
        migrate_store(src, dst)
        assert dst.get("pre-existing") == {"n": -1}
        assert len(dst) == 6
        src.close(), dst.close()

    def test_solve_store_migration_via_urls(self, tmp_path):
        """The CLI path: open both ends by URL with open_store."""
        src = filled_json(tmp_path, n=8)
        src.close()
        a = open_store(tmp_path / "src.json", version=VERSION)
        b = open_store(f"sqlite:{tmp_path / 'dst.db'}?max_records=100",
                       version=VERSION)
        report = migrate_store(a, b)
        assert report["migrated"] == 8
        assert "max_records=100" in report["destination"]
        a.close(), b.close()
