"""Lossless migration between store backends.

The upgrade path from a grown single-file ``--cache`` to a bounded
sqlite store (or back, for inspection) is a record-for-record copy:
:func:`migrate_store` scans every live current-version record of the
source and puts it into the destination, then flushes once.  Records
are JSON objects whose floats round-trip bit-exactly, so the golden
tests can assert field-for-field identity across a migration.

What does *not* migrate, by design:

* tombstoned (corrupt) records -- migration is the natural point to
  shed them;
* records at other model versions -- they would never be served at the
  current version, and the source keeps them for its own ``gc``.
"""

from __future__ import annotations

from repro.store.base import KVStore


def migrate_store(src: KVStore, dst: KVStore) -> dict:
    """Copy every live record from ``src`` into ``dst``.

    Existing destination records are preserved; a key present in both
    is overwritten with the source's record (the migration source is
    the authority).  Returns a report dict with the copied count and
    both stores' record totals.
    """
    if src.path.resolve() == dst.path.resolve():
        raise ValueError(
            f"source and destination are the same store: {src.url}"
        )
    copied = 0
    with dst:
        for key, record in src.scan():
            dst.put(key, record)
            copied += 1
    return {
        "migrated": copied,
        "skipped_corrupt": src.corrupt_records,
        "source": src.url,
        "destination": dst.url,
        "source_records": len(src),
        "destination_records": len(dst),
    }
