"""Unit tests for the bank organization builder."""

import pytest

from repro.array.organization import (
    ArraySpec,
    InfeasibleOrganization,
    OrgParams,
    build_organization,
    enumerate_orgs,
)
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)


def sram_spec(**kwargs):
    defaults = dict(
        capacity_bits=8 * (1 << 20),  # 1 MB
        output_bits=512,
        assoc=8,
        nbanks=1,
        cell_tech=CellTech.SRAM,
        periph_device_type="hp-long-channel",
    )
    defaults.update(kwargs)
    return ArraySpec(**defaults)


def dram_spec(**kwargs):
    defaults = dict(
        capacity_bits=8 * (8 << 20),  # 8 MB
        output_bits=512,
        assoc=8,
        nbanks=1,
        cell_tech=CellTech.COMM_DRAM,
        periph_device_type="lstp",
    )
    defaults.update(kwargs)
    return ArraySpec(**defaults)


class TestOrgParams:
    def test_power_of_two_enforced(self):
        with pytest.raises(InfeasibleOrganization):
            OrgParams(ndwl=3, ndbl=2, nspd=1.0)
        with pytest.raises(InfeasibleOrganization):
            OrgParams(ndwl=2, ndbl=2, nspd=1.0, ndsam=5)

    def test_positive_nspd(self):
        with pytest.raises(InfeasibleOrganization):
            OrgParams(ndwl=2, ndbl=2, nspd=0.0)


class TestGeometryDerivation:
    def test_capacity_conserved(self):
        spec = sram_spec()
        org = OrgParams(ndwl=4, ndbl=4, nspd=1.0, ndcm=8, ndsam=1)
        m = build_organization(TECH, spec, org)
        total = m.rows * m.cols * org.ndwl * org.ndbl * spec.nbanks
        assert total == spec.capacity_bits

    def test_dram_cannot_column_mux_before_sense(self):
        with pytest.raises(InfeasibleOrganization, match="senses every"):
            build_organization(
                TECH, dram_spec(), OrgParams(ndwl=4, ndbl=4, nspd=1.0, ndcm=4)
            )

    def test_dram_bitline_cap_512(self):
        spec = dram_spec()
        # 8 MB, ndbl=2 -> 4096 rows per subarray: over the DRAM limit.
        with pytest.raises(InfeasibleOrganization, match="sensing limit"):
            build_organization(
                TECH, spec, OrgParams(ndwl=16, ndbl=2, nspd=1.0, ndsam=16)
            )

    def test_way_select_requires_mux(self):
        spec = sram_spec(assoc=8)
        with pytest.raises(InfeasibleOrganization, match="one way"):
            build_organization(
                TECH, spec, OrgParams(ndwl=8, ndbl=8, nspd=1.0, ndcm=2,
                                      ndsam=2)
            )

    def test_page_constraint(self):
        spec = dram_spec(page_bits=4096, assoc=1, output_bits=64)
        org = OrgParams(ndwl=4, ndbl=32, nspd=64.0, ndsam=64)
        m = build_organization(TECH, spec, org)
        assert m.sensed_bits == 4096

    def test_page_mismatch_rejected(self):
        spec = dram_spec(page_bits=4096, assoc=1, output_bits=64)
        with pytest.raises(InfeasibleOrganization, match="page"):
            build_organization(
                TECH, spec, OrgParams(ndwl=4, ndbl=32, nspd=64.0, ndsam=32)
            )

    def test_page_on_sram_rejected(self):
        spec = sram_spec(page_bits=4096)
        with pytest.raises(InfeasibleOrganization,
                           match="page-mode technologies only"):
            build_organization(
                TECH, spec, OrgParams(ndwl=4, ndbl=4, nspd=1.0, ndcm=8,
                                      ndsam=1)
            )


class TestMetrics:
    @pytest.fixture(scope="class")
    def metrics(self):
        return build_organization(
            TECH, sram_spec(), OrgParams(ndwl=4, ndbl=8, nspd=1.0, ndcm=8,
                                         ndsam=1)
        )

    def test_all_timings_positive(self, metrics):
        for f in ("t_access", "t_random_cycle", "t_interleave", "t_decode",
                  "t_bitline", "t_sense", "t_precharge"):
            assert getattr(metrics, f) > 0, f

    def test_access_exceeds_components(self, metrics):
        assert metrics.t_access > metrics.t_decode
        assert metrics.t_access > metrics.t_htree_in + metrics.t_htree_out

    def test_interleave_below_random_cycle(self, metrics):
        assert metrics.t_interleave < metrics.t_random_cycle

    def test_energy_composition(self, metrics):
        assert metrics.e_read_access == pytest.approx(
            metrics.e_activate + metrics.e_read_column + metrics.e_precharge
        )
        assert metrics.e_write_access > 0

    def test_area_efficiency_in_range(self, metrics):
        assert 0.2 < metrics.area_efficiency < 0.95

    def test_sram_no_refresh(self, metrics):
        assert metrics.p_refresh == 0.0

    def test_dram_refresh_positive(self):
        m = build_organization(
            TECH, dram_spec(), OrgParams(ndwl=8, ndbl=32, nspd=1.0, ndsam=8)
        )
        assert m.p_refresh > 0

    def test_sleep_transistors_cut_leakage(self):
        org = OrgParams(ndwl=4, ndbl=8, nspd=1.0, ndcm=8, ndsam=1)
        base = build_organization(TECH, sram_spec(), org)
        slept = build_organization(
            TECH, sram_spec(sleep_transistors=True), org
        )
        assert slept.p_leakage < base.p_leakage
        assert slept.p_leakage > base.p_leakage * 0.45

    def test_nbanks_scale_area_and_leakage(self):
        org = OrgParams(ndwl=4, ndbl=4, nspd=1.0, ndcm=8, ndsam=1)
        one = build_organization(TECH, sram_spec(), org)
        two = build_organization(
            TECH,
            sram_spec(capacity_bits=16 * (1 << 20), nbanks=2),
            org,
        )
        assert two.area == pytest.approx(2 * one.area, rel=0.01)
        assert two.p_leakage == pytest.approx(2 * one.p_leakage, rel=0.01)


class TestEnumeration:
    def test_enumeration_covers_feasible_space(self):
        orgs = enumerate_orgs(sram_spec())
        assert len(orgs) > 100
        feasible = 0
        for org in orgs[:2000]:
            try:
                build_organization(TECH, sram_spec(), org)
                feasible += 1
            except Exception:
                pass
        assert feasible > 0

    def test_wide_page_extends_nspd(self):
        narrow = enumerate_orgs(dram_spec(assoc=1, output_bits=512))
        wide = enumerate_orgs(
            dram_spec(assoc=1, output_bits=64, page_bits=8192)
        )
        assert max(o.nspd for o in wide) > max(o.nspd for o in narrow)

    def test_capacity_divisibility_enforced(self):
        with pytest.raises(InfeasibleOrganization):
            ArraySpec(
                capacity_bits=1000,
                output_bits=512,
                assoc=8,
                cell_tech=CellTech.SRAM,
            )
