"""Tests for the 3D-stacked bank partitioning extension."""

import pytest

from repro.array.organization import ArraySpec, OrgParams, build_organization
from repro.array.stacking import StackedBank, stacking_sweep
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)


@pytest.fixture(scope="module")
def base():
    spec = ArraySpec(
        capacity_bits=8 * (16 << 20),
        output_bits=512,
        assoc=8,
        cell_tech=CellTech.COMM_DRAM,
        periph_device_type="lstp",
    )
    return build_organization(
        TECH, spec, OrgParams(ndwl=16, ndbl=64, nspd=2.0, ndsam=8)
    )


@pytest.fixture(scope="module")
def device():
    return TECH.device("lstp")


class TestStackedBank:
    def test_single_layer_is_identity(self, base, device):
        flat = StackedBank(base=base, layers=1, device=device)
        assert flat.access_time == pytest.approx(base.t_access)
        assert flat.footprint == pytest.approx(base.area)
        assert flat.speedup == pytest.approx(1.0)

    def test_footprint_shrinks_linearly(self, base, device):
        four = StackedBank(base=base, layers=4, device=device)
        assert four.footprint == pytest.approx(base.area / 4)

    def test_stacking_speeds_up_wire_bound_banks(self, base, device):
        """Folding a large COMM-DRAM bank must shorten its trees more than
        the TSV hops cost (the premise of stacked partitioning)."""
        four = StackedBank(base=base, layers=4, device=device)
        assert four.speedup > 1.0
        assert four.access_time < base.t_access

    def test_energy_reduced(self, base, device):
        four = StackedBank(base=base, layers=4, device=device)
        assert four.e_read_access < base.e_read_access

    def test_diminishing_returns(self, base, device):
        """Each doubling buys less: the subarray-local path is fixed."""
        sweep = stacking_sweep(base, device, max_layers=8)
        speedups = [s.speedup for s in sweep]
        gains = [b / a for a, b in zip(speedups, speedups[1:])]
        assert all(g >= 0.99 for g in gains)
        assert gains == sorted(gains, reverse=True)

    def test_invalid_layer_count(self, base, device):
        with pytest.raises(ValueError, match="power of two"):
            StackedBank(base=base, layers=3, device=device)

    def test_sweep_layers(self, base, device):
        sweep = stacking_sweep(base, device, max_layers=8)
        assert [s.layers for s in sweep] == [1, 2, 4, 8]
