"""Unit tests for the persistent solve cache."""

import json

import pytest

from repro.array.organization import ArraySpec
from repro.core.config import OptimizationTarget
from repro.core.solvecache import (
    CACHE_VERSION,
    SolveCache,
    metrics_from_dict,
    metrics_to_dict,
    solve_key,
)
from repro.core.optimizer import optimize
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)

SPEC = ArraySpec(
    capacity_bits=8 * (64 << 10),
    output_bits=512,
    assoc=8,
    cell_tech=CellTech.SRAM,
    periph_device_type="hp-long-channel",
)

TARGET = OptimizationTarget()


@pytest.fixture(scope="module")
def best():
    return optimize(TECH, SPEC, TARGET)


def put_and_flush(path, *args) -> SolveCache:
    """One persisted record: ``put`` only marks dirty, ``flush`` writes."""
    cache = SolveCache(path)
    cache.put(*args)
    cache.flush()
    return cache


class TestSerialization:
    def test_round_trip_identity(self, best):
        assert metrics_from_dict(metrics_to_dict(best)) == best

    def test_json_round_trip_identity(self, best):
        """Floats survive JSON encoding bit-exactly (shortest repr)."""
        blob = json.dumps(metrics_to_dict(best))
        assert metrics_from_dict(json.loads(blob)) == best


class TestSolveKey:
    def test_stable(self):
        assert solve_key(SPEC, TARGET, 32.0) == solve_key(SPEC, TARGET, 32.0)

    def test_sensitive_to_every_input(self):
        base = solve_key(SPEC, TARGET, 32.0)
        assert solve_key(SPEC, TARGET, 45.0) != base
        other_target = OptimizationTarget(max_area_fraction=0.1)
        assert solve_key(SPEC, other_target, 32.0) != base
        import dataclasses

        other_spec = dataclasses.replace(SPEC, output_bits=256)
        assert solve_key(other_spec, TARGET, 32.0) != base

    def test_numeric_type_insensitive(self):
        """``node_nm=32`` and ``node_nm=32.0`` are the same solve.

        Regression: JSON encodes ints and floats differently, so the raw
        payload used to hash the same physical request to two keys.
        """
        assert solve_key(SPEC, TARGET, 32) == solve_key(SPEC, TARGET, 32.0)

    def test_numeric_type_insensitive_in_nested_fields(self):
        int_target = OptimizationTarget(max_area_fraction=1)
        float_target = OptimizationTarget(max_area_fraction=1.0)
        assert solve_key(SPEC, int_target, 32.0) == solve_key(
            SPEC, float_target, 32.0
        )

    def test_bools_stay_distinct_from_ints(self):
        """Normalization must not collapse True onto 1.0."""
        from repro.core.solvecache import _normalize_numbers

        normalized = _normalize_numbers({"flag": True, "count": 1})
        assert normalized["flag"] is True
        assert isinstance(normalized["count"], float)


class TestSolveCache:
    def test_put_get(self, tmp_path, best):
        cache = SolveCache(tmp_path / "c.json")
        assert cache.get(SPEC, TARGET, 32.0) is None
        cache.put(SPEC, TARGET, 32.0, best)
        assert cache.get(SPEC, TARGET, 32.0) == best
        assert cache.hits == 1 and cache.misses == 1

    def test_persists_across_instances(self, tmp_path, best):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        assert SolveCache(path).get(SPEC, TARGET, 32.0) == best

    def test_missing_file_is_empty(self, tmp_path):
        cache = SolveCache(tmp_path / "nope" / "c.json")
        assert len(cache) == 0

    def test_corrupt_file_is_empty(self, tmp_path, best):
        path = tmp_path / "c.json"
        path.write_text("{ this is not json")
        cache = SolveCache(path)
        assert len(cache) == 0
        # And still usable for writes afterwards.
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        assert SolveCache(path).get(SPEC, TARGET, 32.0) == best

    def test_version_mismatch_discards_records(self, tmp_path, best):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        payload = json.loads(path.read_text())
        payload["version"] = "repro-solve-cache-v1"
        path.write_text(json.dumps(payload))
        assert len(SolveCache(path)) == 0

    def test_v2_cache_ignored_not_corrupted(self, tmp_path, best):
        """Migration contract for the v3 (registry) key-scheme bump: a
        v2 cache file loads as empty -- never an error, never served --
        and stays byte-identical on disk until the first flush rewrites
        it at v3."""
        path = tmp_path / "c.json"
        v2_payload = json.dumps({
            "version": "repro-solve-cache-v2",
            "records": {"deadbeef": {"rows": 64}},
        })
        path.write_text(v2_payload)
        cache = SolveCache(path)
        assert len(cache) == 0
        assert cache.get(SPEC, TARGET, 32.0) is None
        # Reads never touch the file: the v2 records are still intact.
        assert path.read_text() == v2_payload
        # The first flush rewrites at v3, dropping the stale records.
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        payload = json.loads(path.read_text())
        assert payload["version"] == CACHE_VERSION
        assert "deadbeef" not in payload["records"]
        assert SolveCache(path).get(SPEC, TARGET, 32.0) == best

    def test_version_stamp_written(self, tmp_path, best):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        assert json.loads(path.read_text())["version"] == CACHE_VERSION

    def test_truncated_record_is_a_miss(self, tmp_path, best):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        payload = json.loads(path.read_text())
        key = next(iter(payload["records"]))
        del payload["records"][key]["rows"]
        path.write_text(json.dumps(payload))
        assert SolveCache(path).get(SPEC, TARGET, 32.0) is None


class TestConcurrentWriters:
    """Two processes sharing one --cache path must never lose records."""

    def _other_spec(self, output_bits=256):
        import dataclasses

        return dataclasses.replace(SPEC, output_bits=output_bits)

    def test_interleaved_puts_merge_instead_of_truncating(
        self, tmp_path, best
    ):
        path = tmp_path / "c.json"
        # Both handles load the (empty) file before either writes --
        # the classic lost-update interleaving.
        writer_a = SolveCache(path)
        writer_b = SolveCache(path)
        writer_a.put(SPEC, TARGET, 32.0, best)
        writer_a.flush()
        writer_b.put(self._other_spec(), TARGET, 32.0, best)
        writer_b.flush()
        # The second save merged the first one's record from disk.
        fresh = SolveCache(path)
        assert fresh.get(SPEC, TARGET, 32.0) == best
        assert fresh.get(self._other_spec(), TARGET, 32.0) == best

    def test_refresh_picks_up_foreign_records(self, tmp_path, best):
        path = tmp_path / "c.json"
        reader = SolveCache(path)
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        assert len(reader) == 0
        reader.refresh()
        assert reader.get(SPEC, TARGET, 32.0) == best

    def test_save_leaves_no_temp_files(self, tmp_path, best):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        # The save-serializing lock file stays behind by design
        # (deleting it would race lock acquisition); no temp file may.
        assert sorted(q.name for q in tmp_path.iterdir()) == [
            "c.json", "c.json.lock",
        ]

    def test_atomic_write_via_os_replace(self, tmp_path, best, monkeypatch):
        """The records file itself is never opened for writing: a crash
        mid-save can only lose the temp file, not the cache."""
        import os as os_module

        replaced = []
        real_replace = os_module.replace

        def spy(src, dst):
            replaced.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.store.jsonfile.os.replace", spy)
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        assert len(replaced) == 1
        src, dst = replaced[0]
        assert dst == str(path)
        assert src != dst and str(os_module.getpid()) in src


def count_replaces(monkeypatch) -> list:
    """Spy on the cache's atomic-rename calls (one per file write)."""
    import os as os_module

    replaced = []
    real_replace = os_module.replace

    def spy(src, dst):
        replaced.append((str(src), str(dst)))
        return real_replace(src, dst)

    monkeypatch.setattr("repro.store.jsonfile.os.replace", spy)
    return replaced


class TestFlushSemantics:
    """put() marks dirty; flush() writes; ``with`` defers nested flushes."""

    def test_put_does_not_touch_disk(self, tmp_path, best):
        path = tmp_path / "c.json"
        cache = SolveCache(path)
        cache.put(SPEC, TARGET, 32.0, best)
        assert not path.exists()
        # The record is still served from memory before any flush.
        assert cache.get(SPEC, TARGET, 32.0) == best

    def test_flush_writes_once_then_noops(
        self, tmp_path, best, monkeypatch
    ):
        replaced = count_replaces(monkeypatch)
        cache = SolveCache(tmp_path / "c.json")
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        cache.flush()  # clean cache: nothing to write
        assert len(replaced) == 1

    def test_many_puts_one_write(self, tmp_path, best, monkeypatch):
        replaced = count_replaces(monkeypatch)
        cache = SolveCache(tmp_path / "c.json")
        for node in range(32, 64):
            cache.put(SPEC, TARGET, float(node), best)
        cache.flush()
        assert len(replaced) == 1
        assert len(SolveCache(cache.path)) == 32

    def test_context_manager_defers_nested_flushes(
        self, tmp_path, best, monkeypatch
    ):
        replaced = count_replaces(monkeypatch)
        cache = SolveCache(tmp_path / "c.json")
        with cache:
            for node in (32.0, 45.0):
                cache.put(SPEC, TARGET, node, best)
                cache.flush()  # the per-solve boundary flush, deferred
            assert len(replaced) == 0
        assert len(replaced) == 1
        assert len(SolveCache(cache.path)) == 2

    def test_nested_contexts_flush_at_outermost_exit(
        self, tmp_path, best, monkeypatch
    ):
        replaced = count_replaces(monkeypatch)
        cache = SolveCache(tmp_path / "c.json")
        with cache:  # batch boundary
            with cache:  # solve boundary
                cache.put(SPEC, TARGET, 32.0, best)
            assert len(replaced) == 0
        assert len(replaced) == 1

    def test_clean_context_exit_does_not_write(
        self, tmp_path, best, monkeypatch
    ):
        replaced = count_replaces(monkeypatch)
        cache = SolveCache(tmp_path / "c.json")
        with cache:
            assert cache.get(SPEC, TARGET, 32.0) is None
        assert replaced == []


class TestBatchWriteCount:
    """A whole batch of solves costs O(1) cache-file writes."""

    def test_solve_batch_single_write(self, tmp_path, best, monkeypatch):
        from repro.core import optimizer as optimizer_module
        from repro.core.cacti import solve_batch
        from repro.core.config import MemorySpec

        # The write-count contract is independent of what the sweep
        # finds, so skip the expensive candidate evaluation entirely.
        monkeypatch.setattr(
            optimizer_module,
            "feasible_designs",
            lambda tech, spec, **kwargs: [best],
        )
        replaced = count_replaces(monkeypatch)
        specs = [
            MemorySpec(
                capacity_bytes=(16 << 10) * (i + 1),
                block_bytes=64,
                associativity=None,
                node_nm=32.0,
            )
            for i in range(24)
        ]
        cache = SolveCache(tmp_path / "c.json")
        solutions = solve_batch(specs, solve_cache=cache, jobs=1)
        assert len(solutions) == 24
        assert len(replaced) == 1
        assert len(SolveCache(cache.path)) == 24


class TestForeignVersionPreserved:
    """A cache file written by an unrecognized (likely newer) build is
    never clobbered: reads warn and load empty, writes go to a
    version-suffixed sibling."""

    def _foreign_file(self, path):
        payload = json.dumps({
            "version": "repro-solve-cache-v99",
            "records": {"future-key": {"future-field": 1}},
        })
        path.write_text(payload)
        return payload

    def test_foreign_version_warns_and_loads_empty(self, tmp_path):
        path = tmp_path / "c.json"
        self._foreign_file(path)
        with pytest.warns(UserWarning, match="unrecognized version"):
            cache = SolveCache(path)
        assert len(cache) == 0

    def test_flush_writes_sibling_not_foreign_file(self, tmp_path, best):
        path = tmp_path / "c.json"
        foreign = self._foreign_file(path)
        with pytest.warns(UserWarning):
            cache = SolveCache(path)
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        # The newer build's file is byte-identical; ours sits alongside.
        assert path.read_text() == foreign
        sibling = path.with_name(f"{path.name}.{CACHE_VERSION}")
        assert json.loads(sibling.read_text())["version"] == CACHE_VERSION
        with pytest.warns(UserWarning):
            fresh = SolveCache(path)
        assert fresh.get(SPEC, TARGET, 32.0) == best

    def test_known_older_version_still_rewritten_in_place(
        self, tmp_path, best, recwarn
    ):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({
            "version": "repro-solve-cache-v2",
            "records": {"deadbeef": {"rows": 64}},
        }))
        cache = SolveCache(path)  # migration path: no warning
        assert len(recwarn) == 0
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        assert json.loads(path.read_text())["version"] == CACHE_VERSION
        assert sorted(q.name for q in tmp_path.iterdir()) == [
            "c.json", "c.json.lock",  # no version-suffixed sibling
        ]


class TestCorruptRecordsDropped:
    """Corrupt records are dropped on sight -- counted, never re-parsed,
    never re-persisted."""

    def _corrupt_one_record(self, path):
        payload = json.loads(path.read_text())
        key = next(iter(payload["records"]))
        del payload["records"][key]["rows"]
        path.write_text(json.dumps(payload))
        return key

    def test_truncated_record_dropped_and_counted(self, tmp_path, best):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        self._corrupt_one_record(path)
        cache = SolveCache(path)
        assert cache.get(SPEC, TARGET, 32.0) is None
        assert cache.corrupt_records == 1
        assert cache.stats()["corrupt_records"] == 1
        # Dropped, not just missed: the record is gone from memory and
        # a repeat lookup does not re-parse (the counter stays put).
        assert len(cache) == 0
        assert cache.get(SPEC, TARGET, 32.0) is None
        assert cache.corrupt_records == 1
        assert cache.misses == 2

    def test_flush_purges_corrupt_record_from_disk(self, tmp_path, best):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        key = self._corrupt_one_record(path)
        cache = SolveCache(path)
        assert cache.get(SPEC, TARGET, 32.0) is None
        cache.flush()
        assert key not in json.loads(path.read_text())["records"]

    def test_structurally_corrupt_record_dropped_at_load(
        self, tmp_path, best
    ):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        payload = json.loads(path.read_text())
        payload["records"]["garbage"] = "not even a dict"
        path.write_text(json.dumps(payload))
        cache = SolveCache(path)
        assert cache.corrupt_records == 1
        # The good record is untouched.
        assert cache.get(SPEC, TARGET, 32.0) == best

    def test_refresh_does_not_resurrect_dropped_records(
        self, tmp_path, best
    ):
        path = tmp_path / "c.json"
        put_and_flush(path, SPEC, TARGET, 32.0, best)
        self._corrupt_one_record(path)
        cache = SolveCache(path)
        assert cache.get(SPEC, TARGET, 32.0) is None
        cache.refresh()  # merge-on-load must honor the tombstones
        assert len(cache) == 0
        assert cache.get(SPEC, TARGET, 32.0) is None


class TestSqliteBackedSolveCache:
    """The facade behaves identically over the sqlite backend."""

    def _url(self, tmp_path, options=""):
        return f"sqlite:{tmp_path / 'c.db'}{options}"

    def test_put_get_and_persistence(self, tmp_path, best):
        url = self._url(tmp_path)
        cache = SolveCache(url)
        assert cache.get(SPEC, TARGET, 32.0) is None
        cache.put(SPEC, TARGET, 32.0, best)
        assert cache.get(SPEC, TARGET, 32.0) == best
        assert cache.hits == 1 and cache.misses == 1
        cache.close()
        reopened = SolveCache(url)
        assert reopened.get(SPEC, TARGET, 32.0) == best
        reopened.close()

    def test_url_round_trip_preserves_options(self, tmp_path):
        url = self._url(tmp_path, "?max_records=5")
        cache = SolveCache(url)
        assert cache.url == url
        assert cache.store.max_records == 5
        cache.close()

    def test_eviction_bound_through_facade(self, tmp_path, best):
        cache = SolveCache(self._url(tmp_path, "?max_records=3"))
        for node in range(32, 40):
            cache.put(SPEC, TARGET, float(node), best)
        cache.flush()
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 5
        cache.close()

    def test_older_version_records_are_misses(self, tmp_path, best):
        from repro.core.solvecache import (
            _OLDER_VERSIONS,
            metrics_to_dict,
            solve_key,
        )
        from repro.store import SqliteStore

        old = SqliteStore(tmp_path / "c.db", version=_OLDER_VERSIONS[-1])
        old.put(solve_key(SPEC, TARGET, 32.0), metrics_to_dict(best))
        old.flush()
        old.close()
        cache = SolveCache(self._url(tmp_path))
        assert cache.get(SPEC, TARGET, 32.0) is None
        assert cache.misses == 1
        cache.close()

    def test_kvstore_instance_accepted_directly(self, tmp_path, best):
        from repro.core.solvecache import open_solve_store

        store = open_solve_store(self._url(tmp_path))
        cache = SolveCache(store)
        assert cache.store is store
        cache.put(SPEC, TARGET, 32.0, best)
        assert cache.get(SPEC, TARGET, 32.0) == best
        cache.close()


class TestStoreAccounting:
    """drain_events() hands per-interval deltas to the metric sinks."""

    def test_drain_events_never_double_counts(self, tmp_path, best):
        cache = SolveCache(tmp_path / "c.json")
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        cache.get(SPEC, TARGET, 32.0)
        deltas, gauges = cache.drain_events()
        assert deltas["flush_writes"] == 1
        assert deltas["hits"] == 1
        assert gauges["records"] == 1
        # A second drain with no new activity is all zeros.
        deltas, _gauges = cache.drain_events()
        assert all(v == 0 for v in deltas.values())

    def test_account_store_feeds_stats_and_obs(self, tmp_path, best):
        from repro.core.optimizer import SweepStats
        from repro.core.solvecache import account_store
        from repro.obs import Obs

        cache = SolveCache(tmp_path / "c.json")
        stats, obs = SweepStats(), Obs()
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        account_store(cache, stats, obs)
        account_store(cache, stats, obs)  # idempotent when idle
        assert stats.store_flush_writes == 1
        assert obs.metrics.counter("store.flush_writes").value == 1
        assert obs.metrics.counter("store.misses").value == 0
        snapshot = obs.metrics.snapshot()
        assert snapshot["gauges"]["store.records"] == 1

    def test_account_store_tolerates_missing_sinks(self, tmp_path, best):
        from repro.core.solvecache import account_store

        account_store(None, None, None)  # no cache: nothing to do
        cache = SolveCache(tmp_path / "c.json")
        account_store(cache, None, None)  # no sinks: must not drain
        cache.put(SPEC, TARGET, 32.0, best)
        cache.flush()
        deltas, _ = cache.drain_events()
        assert deltas["flush_writes"] == 1

    def test_stats_summary_shows_store_line(self, tmp_path, best,
                                            monkeypatch):
        """A solve through a store surfaces flush counts in --stats."""
        from repro.core import optimizer as optimizer_module
        from repro.core.cacti import solve
        from repro.core.config import MemorySpec
        from repro.core.optimizer import SweepStats

        monkeypatch.setattr(
            optimizer_module,
            "feasible_designs",
            lambda tech, spec, **kwargs: [best],
        )
        stats = SweepStats()
        cache = SolveCache(tmp_path / "c.json")
        solve(
            MemorySpec(
                capacity_bytes=64 << 10,
                block_bytes=64,
                associativity=None,
                node_nm=32.0,
                cell_tech=CellTech.SRAM,
            ),
            TARGET,
            solve_cache=cache,
            stats=stats,
        )
        assert stats.store_flush_writes == 1
        assert "solve store" in stats.summary()
        cache.close()
