"""Tests for the microbenchmark presets: each probes its mechanism."""

import pytest

from repro.sim.cache import CacheConfig
from repro.sim.dram_channel import MemoryTimingCycles
from repro.sim.system import SystemConfig, run_workload
from repro.workloads.micro import (
    MICRO_PROFILES,
    POINTER_CHASE,
    RESIDENT,
    STREAM,
    WRITE_SHARED,
)
from repro.workloads.synthetic import event_stream


def run(profile, scale=64, instructions=6000):
    config = SystemConfig(
        name="micro",
        l1=CacheConfig(2048, 64, 4, 2),
        l2=CacheConfig(16 << 10, 64, 8, 3),
        l3=None,
        memory=MemoryTimingCycles(30, 31, 28, 70, 98, 15, 5),
        num_cores=2,
        threads_per_core=2,
    )
    scaled = profile.scaled(scale).with_instructions(instructions)
    return run_workload(
        config,
        lambda tid: event_stream(scaled, tid, config.num_threads),
    )


class TestPresets:
    def test_all_valid(self):
        for p in MICRO_PROFILES:
            assert p.instructions_per_thread > 0
            assert 0 <= p.fp_fraction <= 1

    def test_resident_has_highest_ipc(self):
        ipcs = {p.name: run(p).ipc for p in MICRO_PROFILES}
        assert ipcs["micro.resident"] == max(ipcs.values())

    def test_chase_is_latency_bound(self):
        stats = run(POINTER_CHASE)
        assert stats.breakdown.memory > stats.breakdown.instruction

    def test_resident_barely_touches_memory(self):
        resident = run(RESIDENT)
        stream = run(STREAM)
        assert resident.counters.mem_reads < stream.counters.mem_reads / 3

    def test_write_shared_generates_coherence(self):
        stats = run(WRITE_SHARED, scale=16)
        assert stats.counters.coherence_invalidations > 0
        assert stats.counters.mem_writes > 0

    def test_stream_spatial_locality_hits_l1(self):
        """Long sequential runs: most references hit the just-fetched
        line's neighbours only on new lines -- with 64 B lines and runs of
        ~32, L1 misses per reference stay well below the chase kernel."""
        stream = run(STREAM)
        chase = run(POINTER_CHASE)
        stream_l1_mr = (stream.counters.l2_reads + stream.counters.l2_writes) / (
            stream.counters.l1_reads + stream.counters.l1_writes
        )
        chase_l1_mr = (chase.counters.l2_reads + chase.counters.l2_writes) / (
            chase.counters.l1_reads + chase.counters.l1_writes
        )
        assert stream_l1_mr < chase_l1_mr
