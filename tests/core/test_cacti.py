"""Integration tests for the public CACTI-D solve API."""

import pytest

from repro.core.cacti import CactiD, solve, solve_main_memory
from repro.core.config import AccessMode, MemorySpec
from repro.array.mainmem import MainMemorySpec
from repro.tech.cells import CellTech


@pytest.fixture(scope="module")
def sram_1mb():
    return solve(MemorySpec(capacity_bytes=1 << 20, block_bytes=64,
                            associativity=8, node_nm=32.0))


@pytest.fixture(scope="module")
def lp_8mb():
    return solve(MemorySpec(capacity_bytes=8 << 20, block_bytes=64,
                            associativity=8, node_nm=32.0,
                            cell_tech=CellTech.LP_DRAM))


@pytest.fixture(scope="module")
def comm_8mb():
    return solve(MemorySpec(capacity_bytes=8 << 20, block_bytes=64,
                            associativity=8, node_nm=32.0,
                            cell_tech=CellTech.COMM_DRAM))


class TestCacheSolve:
    def test_cache_has_tag_array(self, sram_1mb):
        assert sram_1mb.tag is not None
        assert sram_1mb.tag.area < sram_1mb.data.area

    def test_plain_ram_has_no_tag(self):
        s = solve(MemorySpec(capacity_bytes=1 << 20, associativity=None,
                             node_nm=32.0))
        assert s.tag is None

    def test_headline_metrics_sane(self, sram_1mb):
        assert 0.1e-9 < sram_1mb.access_time < 10e-9
        assert 0.01e-9 < sram_1mb.e_read < 10e-9
        assert 0.5e-6 < sram_1mb.area < 20e-6
        assert sram_1mb.p_refresh == 0.0

    def test_summary_renders(self, sram_1mb):
        text = sram_1mb.summary()
        assert "access time" in text


class TestTechnologyOrdering:
    """The headline CACTI-D contrasts between the three technologies."""

    def test_density(self, sram_1mb, lp_8mb, comm_8mb):
        """Same capacity: COMM < LP < SRAM area (Table 1 cell sizes)."""
        sram_8mb = solve(
            MemorySpec(capacity_bytes=8 << 20, block_bytes=64,
                       associativity=8, node_nm=32.0)
        )
        assert comm_8mb.area < lp_8mb.area < sram_8mb.area

    def test_leakage(self, lp_8mb, comm_8mb):
        """LSTP-periphery COMM-DRAM leaks orders less than LP-DRAM."""
        assert comm_8mb.p_leakage < lp_8mb.p_leakage / 20

    def test_speed(self, lp_8mb, comm_8mb):
        """COMM-DRAM is substantially slower than LP-DRAM (paper: ~3x)."""
        assert comm_8mb.access_time > 1.5 * lp_8mb.access_time

    def test_dram_refresh_ordering(self, lp_8mb, comm_8mb):
        """LP-DRAM's 0.12 ms retention costs far more refresh power than
        COMM-DRAM's 64 ms at similar capacity."""
        assert lp_8mb.p_refresh > 10 * comm_8mb.p_refresh

    def test_dram_random_cycle_penalty(self, lp_8mb):
        """Destructive readout: DRAM random cycle exceeds access-path
        cycle of SRAM of the same organization class."""
        assert lp_8mb.random_cycle_time > lp_8mb.interleave_cycle_time


class TestAccessModes:
    def test_sequential_slower_but_lower_energy(self):
        base = dict(capacity_bytes=4 << 20, block_bytes=64, associativity=8,
                    node_nm=32.0)
        normal = solve(MemorySpec(**base, access_mode=AccessMode.NORMAL))
        seq = solve(MemorySpec(**base, access_mode=AccessMode.SEQUENTIAL))
        assert seq.access_time > normal.access_time
        assert seq.e_read < normal.e_read


class TestMainMemoryPeripheryLookup:
    def test_vdd_cell_follows_spec_periphery(self, monkeypatch):
        """solve_main_memory must look up vdd_cell with the array spec's
        own periphery device type, not a hardcoded 'lstp'.  SRAM cells
        inherit the peripheral supply, so an SRAM-cell override with 'hp'
        periphery makes the lookup observable."""
        from repro.array.organization import ArraySpec
        from repro.core import cacti as cacti_mod
        from repro.tech.nodes import technology

        class HpSramMainMemory(MainMemorySpec):
            def array_spec(self):
                return ArraySpec(
                    capacity_bits=self.capacity_bits,
                    output_bits=self.column_bits,
                    assoc=1,
                    nbanks=self.nbanks,
                    cell_tech=CellTech.SRAM,
                    periph_device_type="hp",
                )

        captured = {}
        real = cacti_mod.derive_energies

        def spy(spec, metrics, vdd_cell):
            captured["vdd"] = vdd_cell
            return real(spec, metrics, vdd_cell)

        monkeypatch.setattr(cacti_mod, "derive_energies", spy)
        cacti_mod.solve_main_memory(
            HpSramMainMemory(capacity_bits=1 << 20), node_nm=32.0
        )
        tech = technology(32.0)
        assert captured["vdd"] == tech.cell(CellTech.SRAM, "hp").vdd_cell
        assert captured["vdd"] != tech.cell(CellTech.SRAM, "lstp").vdd_cell


class TestMainMemory:
    def test_solve_at_32nm(self):
        mm = solve_main_memory(
            MainMemorySpec(capacity_bits=8 * 2**30), node_nm=32.0
        )
        assert mm.timing.t_rc > 20e-9
        assert mm.energies.e_activate > 0.1e-9
        assert mm.area_efficiency > 0.4

    def test_facade(self):
        tool = CactiD(node_nm=32.0)
        s = tool.solve(MemorySpec(capacity_bytes=256 << 10, node_nm=32.0))
        assert s.access_time > 0

    def test_facade_rejects_node_mismatch(self):
        tool = CactiD(node_nm=32.0)
        with pytest.raises(ValueError, match="facade"):
            tool.solve(MemorySpec(capacity_bytes=256 << 10, node_nm=45.0))
