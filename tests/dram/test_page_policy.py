"""Unit tests for page policies and the open/closed crossover."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.page_policy import (
    ClosedPagePolicy,
    OpenPagePolicy,
    crossover_hit_ratio,
    expected_access_latency,
)

T_RCD, T_CAS, T_RP = 13e-9, 13e-9, 13e-9


class TestPolicies:
    def test_open_never_closes(self):
        assert not OpenPagePolicy().close_after_access(0.0)

    def test_closed_always_closes(self):
        assert ClosedPagePolicy().close_after_access(1.0)


class TestExpectedLatency:
    def test_closed_independent_of_hit_ratio(self):
        p = ClosedPagePolicy()
        a = expected_access_latency(T_RCD, T_CAS, T_RP, 0.0, p)
        b = expected_access_latency(T_RCD, T_CAS, T_RP, 0.9, p)
        assert a == b == pytest.approx(T_RCD + T_CAS)

    def test_open_wins_at_high_hit_ratio(self):
        open_lat = expected_access_latency(
            T_RCD, T_CAS, T_RP, 0.95, OpenPagePolicy()
        )
        closed_lat = expected_access_latency(
            T_RCD, T_CAS, T_RP, 0.95, ClosedPagePolicy()
        )
        assert open_lat < closed_lat

    def test_closed_wins_at_low_hit_ratio(self):
        """The paper's LLC argument: random interleaved requests have a
        very low page-hit ratio, so proactive closing is better."""
        open_lat = expected_access_latency(
            T_RCD, T_CAS, T_RP, 0.05, OpenPagePolicy()
        )
        closed_lat = expected_access_latency(
            T_RCD, T_CAS, T_RP, 0.05, ClosedPagePolicy()
        )
        assert closed_lat < open_lat


class TestCrossover:
    def test_formula(self):
        h = crossover_hit_ratio(T_RCD, T_CAS, T_RP)
        assert h == pytest.approx(T_RP / (T_RP + T_RCD))

    @given(
        rcd=st.floats(min_value=1e-9, max_value=50e-9),
        rp=st.floats(min_value=1e-9, max_value=50e-9),
    )
    def test_latencies_equal_at_crossover(self, rcd, rp):
        h = crossover_hit_ratio(rcd, T_CAS, rp)
        open_lat = expected_access_latency(rcd, T_CAS, rp, h,
                                           OpenPagePolicy())
        closed_lat = expected_access_latency(rcd, T_CAS, rp, h,
                                             ClosedPagePolicy())
        assert open_lat == pytest.approx(closed_lat, rel=1e-9)

    @given(
        rcd=st.floats(min_value=1e-9, max_value=50e-9),
        rp=st.floats(min_value=1e-9, max_value=50e-9),
        h=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_policy_choice_consistent_with_crossover(self, rcd, rp, h):
        crossover = crossover_hit_ratio(rcd, T_CAS, rp)
        open_lat = expected_access_latency(rcd, T_CAS, rp, h,
                                           OpenPagePolicy())
        closed_lat = expected_access_latency(rcd, T_CAS, rp, h,
                                             ClosedPagePolicy())
        if h > crossover + 1e-9:
            assert open_lat <= closed_lat
        elif h < crossover - 1e-9:
            assert closed_lat <= open_lat
