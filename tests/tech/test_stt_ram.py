"""STT-RAM end-to-end: a technology added purely through the registry.

``repro.tech.stt_ram`` registers a 1T1MTJ technology -- non-destructive
current-latch read, slow asymmetric write pulse, no refresh -- without
touching ``repro/array/`` or ``repro/models/``.  These tests drive it
through the whole stack (spec -> optimizer -> solution -> report -> CLI)
and check the solved numbers express the declared traits.
"""

import pytest

from repro.cli import main
from repro.core.cacti import solve
from repro.core.config import MemorySpec
from repro.tech.cells import cell
from repro.tech.registry import CellTech, SensingScheme
from repro.tech.stt_ram import STT_RAM_TRAITS, STT_WRITE_PULSE


@pytest.fixture(scope="module")
def solution():
    return solve(MemorySpec(capacity_bytes=256 << 10, associativity=8,
                            cell_tech="stt-ram"))


class TestRegistration:
    def test_traits_resolve_by_name(self):
        assert CellTech("stt-ram").traits is STT_RAM_TRAITS

    def test_declared_behavior(self):
        t = STT_RAM_TRAITS
        assert t.sensing is SensingScheme.CURRENT_LATCH
        assert not t.destructive_read
        assert not t.needs_refresh
        assert t.write_pulse_time == STT_WRITE_PULSE
        assert t.column_mux_allowed

    def test_cell_parameters_scale_with_node(self):
        for node in (90, 65, 45, 32):
            params = cell("stt-ram", float(node), periph_vdd=0.9)
            assert params.tech is CellTech.STT_RAM
            assert params.area_f2 == 40.0
            assert params.retention_time is None  # no refresh


class TestSolvedPhysics:
    def test_solves_end_to_end(self, solution):
        assert solution.data.spec.cell_tech is CellTech.STT_RAM
        assert solution.access_time > 0
        assert solution.area > 0

    def test_no_refresh_power(self, solution):
        assert solution.p_refresh == 0.0

    def test_write_pulse_extends_row_cycle_not_access(self, solution):
        """The MTJ write pulse holds the row for ~10 ns: the random
        cycle absorbs it but the read access path does not."""
        assert solution.data.t_writeback == STT_WRITE_PULSE
        assert solution.data.t_random_cycle >= STT_WRITE_PULSE
        assert solution.access_time < STT_WRITE_PULSE

    def test_report_names_the_technology(self, solution):
        report = solution.run_report()
        assert report["spec"]["cell_tech"] == "stt-ram"
        traits = report["spec"]["cell_traits"]
        assert traits["sensing"] == "current-latch"
        assert traits["needs_refresh"] is False
        assert traits["write_pulse_time"] == STT_WRITE_PULSE


class TestCli:
    def test_cache_solve(self, capsys):
        assert main(["cache", "--capacity", "64K", "--tech",
                     "stt-ram"]) == 0
        out = capsys.readouterr().out
        assert "stt-ram" in out
        assert "refresh power   : 0.000 mW" in out

    def test_stt_ram_tags(self, capsys):
        assert main(["cache", "--capacity", "64K", "--tech", "sram",
                     "--tag-tech", "stt-ram"]) == 0

    def test_technology_sweep(self, capsys):
        assert main(["sweep", "--capacity", "64K",
                     "--parameter", "cell_tech",
                     "--values", "sram,stt-ram"]) == 0
        out = capsys.readouterr().out
        assert "stt-ram" in out

    def test_unknown_technology_exits_2_listing_names(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "--capacity", "64K", "--tech", "pcm"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "stt-ram" in err and "sram" in err
