"""Unit tests for the H-tree distribution network."""

import pytest

from repro.array.htree import design_htree
from repro.tech.nodes import technology

TECH = technology(32)
HP = TECH.device("hp-long-channel")


def make(width=2e-3, height=2e-3, wires=512, mats=16):
    return design_htree(TECH, HP, width, height, wires, mats)


class TestHTree:
    def test_delay_grows_with_bank_size(self):
        assert make(4e-3, 4e-3).delay > make(1e-3, 1e-3).delay

    def test_path_length_half_perimeter(self):
        t = make(3e-3, 1e-3)
        assert t.path_length == pytest.approx(2e-3)

    def test_occupancy_below_delay(self):
        t = make(mats=64)
        assert t.occupancy < t.delay

    def test_more_mats_more_levels(self):
        assert make(mats=64).levels > make(mats=4).levels

    def test_energy_scales_with_bits(self):
        t = make()
        assert t.energy(512) == pytest.approx(2 * t.energy(256))
        assert t.energy() == pytest.approx(t.energy(512))

    def test_leakage_scales_with_wires(self):
        assert make(wires=512).leakage > make(wires=64).leakage

    def test_buffer_delay_included(self):
        t = make(mats=64)
        assert t.buffer_delay > 0
        assert t.delay > t.design.delay(t.path_length)

    def test_wiring_area_positive(self):
        assert make().wiring_area > 0

    def test_derated_htree_saves_energy(self):
        base = design_htree(TECH, HP, 2e-3, 2e-3, 512, 16)
        derated = design_htree(
            TECH, HP, 2e-3, 2e-3, 512, 16, max_repeater_delay_penalty=0.5
        )
        assert derated.energy() <= base.energy()
