"""Persistent solve-record cache over a pluggable backend store.

Design-space exploration workloads re-solve the same arrays over and
over -- across processes, sweeps, and sessions.  In the spirit of the
Accelergy CACTI wrapper's records file, :class:`SolveCache` maps a
stable hash of ``(ArraySpec, OptimizationTarget, node)`` to the winning
:class:`~repro.array.organization.ArrayMetrics`, so a repeated query
costs a dictionary (or indexed-row) lookup instead of a sweep.

Persistence is delegated to a :class:`~repro.store.KVStore` backend:

* a plain path (``"solves.json"``) keeps the original single-JSON-file
  format, bit-compatible with every cache file written before the
  store refactor;
* a ``sqlite:`` URL (``"sqlite:solves.db?max_records=10000"``) opens a
  WAL-mode sqlite store -- bounded record count with LRU eviction,
  O(dirty-records) flushes, safe under heavy concurrent writers;
* an already-open :class:`~repro.store.KVStore` is used as-is.

Round-trips are bit-identical on every backend: records travel as JSON,
Python's ``json`` emits the shortest ``repr`` of each float (which
parses back to the exact same IEEE-754 value), and the regression tests
assert field-for-field equality.

Records are version-stamped.  ``CACHE_VERSION`` must be bumped whenever
the model changes numbers (any change to the circuit or array models).
*Known-older* records are never served (the JSON backend rewrites the
file at the current version on flush; the sqlite backend keeps rows
per-version until ``gc``).  An *unrecognized* version -- most likely
written by a newer build -- is never served from and never clobbered
(the JSON backend redirects writes to a version-suffixed sibling; the
sqlite backend stores versions side by side).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, fields

from repro.array.organization import ArrayMetrics, ArraySpec, OrgParams
from repro.core.config import OptimizationTarget
from repro.store import KVStore, open_store
from repro.tech.cells import CellTech

#: Bump on any model change that alters solved numbers, or any change
#: to the key scheme (v2: numeric key fields are normalized to float;
#: v3: the technology axis is registry-backed -- cell technologies are
#: identified by registry name in keys and records, and new
#: technologies such as stt-ram may appear).  Old v2 cache files are
#: *ignored*, never corrupted: a version mismatch loads as an empty
#: record set and the next flush rewrites the file at v3.
CACHE_VERSION = "repro-solve-cache-v3"

#: Versions this build recognizes as its own ancestors.  Files stamped
#: with one of these are safe to ignore-and-rewrite (their key scheme
#: or numbers are superseded).  Anything else that still parses as a
#: cache file is treated as foreign -- likely a newer build's -- and is
#: preserved, never overwritten.
_OLDER_VERSIONS = ("repro-solve-cache-v1", "repro-solve-cache-v2")

#: ArrayMetrics scalar fields (everything except the nested spec/org).
_METRIC_FIELDS = tuple(
    f.name for f in fields(ArrayMetrics) if f.name not in ("spec", "org")
)


def spec_to_dict(spec: ArraySpec) -> dict:
    d = asdict(spec)
    d["cell_tech"] = spec.cell_tech.value
    return d


def spec_from_dict(d: dict) -> ArraySpec:
    d = dict(d)
    d["cell_tech"] = CellTech(d["cell_tech"])
    return ArraySpec(**d)


def metrics_to_dict(metrics: ArrayMetrics) -> dict:
    d = {name: getattr(metrics, name) for name in _METRIC_FIELDS}
    d["spec"] = spec_to_dict(metrics.spec)
    d["org"] = asdict(metrics.org)
    return d


def metrics_from_dict(d: dict) -> ArrayMetrics:
    d = dict(d)
    spec = spec_from_dict(d.pop("spec"))
    org = OrgParams(**d.pop("org"))
    return ArrayMetrics(spec=spec, org=org, **d)


def _normalize_numbers(value):
    """Coerce every numeric leaf to float so equal values hash equally.

    ``json.dumps`` encodes ``32`` and ``32.0`` differently, so without
    normalization the same physical solve (``node_nm=32`` vs ``32.0``)
    would hash to two keys, silently missing the cache and duplicating
    records.  Bools are ints in Python but identity-relevant, so they
    pass through untouched.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, dict):
        return {k: _normalize_numbers(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize_numbers(v) for v in value]
    return value


def solve_key(
    spec: ArraySpec, target: OptimizationTarget, node_nm: float
) -> str:
    """Stable content hash of one solve request."""
    payload = _normalize_numbers({
        "version": CACHE_VERSION,
        "node_nm": node_nm,
        "spec": spec_to_dict(spec),
        "target": asdict(target),
    })
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _record_shape_ok(record: dict) -> bool:
    """Structural screen: a solve record must carry its spec and org."""
    return "spec" in record and "org" in record


def open_solve_store(spec: str | os.PathLike, **options) -> KVStore:
    """Open a solve-record store (any backend) at the solve-cache
    version, with solve-record screening installed."""
    return open_store(
        spec,
        version=CACHE_VERSION,
        older_versions=_OLDER_VERSIONS,
        validate=_record_shape_ok,
        **options,
    )


class SolveCache:
    """Solve-keyed facade over a persistent :class:`~repro.store.KVStore`.

    Opt-in: pass a path or store URL to
    :class:`~repro.core.cacti.CactiD` via ``cache_path`` or to the CLI
    via ``--cache``.  Unreadable, corrupt, or version-mismatched
    records are treated as misses, never as errors.

    Safe to share one store across processes (the batch-solve engine
    does): the JSON backend merges concurrently-written records through
    atomic whole-file replaces; the sqlite backend serializes row
    upserts on the database's own write lock.  A killed process cannot
    corrupt the records, and two concurrent writers cannot truncate
    each other's entries.

    Writes are batched: :meth:`put` only stages the record, and
    :meth:`flush` performs the backend save.  The solve pipeline
    flushes at solve and batch boundaries, so a thousand-record sweep
    costs O(1) store writes instead of O(n^2) disk I/O.  Using the
    cache as a context manager defers flushes until the ``with`` block
    exits::

        with cache:            # flushes once on exit, however many puts
            for spec in specs:
                ...
                cache.put(...)
                cache.flush()  # deferred: records only a pending flush
    """

    def __init__(self, store: str | os.PathLike | KVStore):
        if isinstance(store, KVStore):
            self.store = store
        else:
            self.store = open_solve_store(store)
        self.hits = 0
        self.misses = 0
        #: Event counts already drained to an observability sink (see
        #: :meth:`drain_events`).
        self._drained: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Store delegation

    @property
    def path(self):
        """Primary on-disk location of the backing store."""
        return self.store.path

    @property
    def url(self) -> str:
        """Round-trippable store spec: ``SolveCache(cache.url)`` in any
        process opens the same store with the same backend options."""
        return self.store.url

    def __len__(self) -> int:
        return len(self.store)

    @property
    def corrupt_records(self) -> int:
        """Distinct corrupt/truncated records dropped so far."""
        return self.store.corrupt_records

    def flush(self) -> None:
        """Write pending records to the store (no-op when unchanged).

        Inside a ``with cache:`` block the flush is deferred to the
        block exit, so nested solve/batch boundaries collapse to one
        store write per batch.
        """
        self.store.flush()

    def refresh(self) -> None:
        """Pick up records another process has written since we loaded."""
        self.store.refresh()

    def __enter__(self) -> "SolveCache":
        self.store.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.store.__exit__(exc_type, exc, tb)

    def close(self) -> None:
        self.store.close()

    # ------------------------------------------------------------------ #
    # Solve-keyed access

    def get(
        self, spec: ArraySpec, target: OptimizationTarget, node_nm: float
    ) -> ArrayMetrics | None:
        key = solve_key(spec, target, node_nm)
        record = self.store.get(key)
        if record is None:
            self.misses += 1
            return None
        try:
            metrics = metrics_from_dict(record)
        except (KeyError, TypeError, ValueError):
            # A hand-edited or truncated record: a miss, and tombstoned
            # so it is never re-parsed or re-persisted (the next flush
            # purges it from disk too).
            self.store.tombstone(key)
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put(
        self,
        spec: ArraySpec,
        target: OptimizationTarget,
        node_nm: float,
        metrics: ArrayMetrics,
    ) -> None:
        self.store.put(
            solve_key(spec, target, node_nm), metrics_to_dict(metrics)
        )

    # ------------------------------------------------------------------ #
    # Observability

    def stats(self) -> dict:
        """Facade hit/miss counters plus the backend's ``store.*`` stats."""
        return {"hits": self.hits, "misses": self.misses,
                **self.store.stats()}

    def drain_events(self) -> tuple[dict[str, int], dict[str, int]]:
        """Event-count deltas since the last drain, plus point-in-time
        gauges.

        Counters are cumulative for the cache's lifetime; observability
        sinks (worker-local ``Obs`` registries that ship home and merge
        by addition) need per-interval increments instead.  Returns
        ``(deltas, gauges)`` where ``deltas`` covers hits / misses /
        evictions / flush_writes / corrupt_records and ``gauges``
        covers records / bytes_on_disk.
        """
        store_stats = self.store.stats()
        current = {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": store_stats["evictions"],
            "flush_writes": store_stats["flush_writes"],
            "corrupt_records": store_stats["corrupt_records"],
        }
        deltas = {
            name: value - self._drained.get(name, 0)
            for name, value in current.items()
        }
        self._drained = current
        gauges = {
            "records": store_stats["records"],
            "bytes_on_disk": store_stats["bytes_on_disk"],
        }
        return deltas, gauges


def account_store(solve_cache, stats, obs) -> None:
    """Drain a solve cache's backend events into the run's sinks.

    Emits the ``store.*`` metric family into ``obs`` (counters for
    hits / misses / evictions / flush_writes / corrupt_records -- the
    hits/misses pair yields a derived ``store.hit_rate`` in snapshots
    -- and gauges for records / bytes_on_disk), and accumulates
    eviction / flush-write counts into ``stats`` (a
    :class:`~repro.core.optimizer.SweepStats`).  Safe to call at every
    solve boundary: counts are drained as deltas, never double-counted.
    """
    if solve_cache is None or (stats is None and obs is None):
        return
    deltas, gauges = solve_cache.drain_events()
    if obs is not None:
        for name, delta in deltas.items():
            counter = obs.metrics.counter(f"store.{name}")
            if delta:
                counter.inc(delta)
        for name, value in gauges.items():
            obs.gauge(f"store.{name}", value)
    if stats is not None:
        stats.store_evictions += deltas["evictions"]
        stats.store_flush_writes += deltas["flush_writes"]
