"""Technology node registry and interpolation.

A :class:`Technology` bundles everything the circuit and array models need
at one feature size: the four ITRS device types, the wire planes, and
constructors for the three memory-cell technologies.  Nodes between the
four modeled ITRS points (90/65/45/32 nm) are produced by log-linear
interpolation of every device and wire parameter -- the paper's DRAM
validation target is a 78 nm Micron part, which requires exactly this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.tech import devices as _devices
from repro.tech import wires as _wires
from repro.tech.cells import CellParams, CellTech, cell
from repro.tech.devices import NODES_NM, DeviceParams, interpolate_devices
from repro.tech.wires import WireParams


@dataclass(frozen=True)
class Technology:
    """All technology data at one feature size."""

    node_nm: float
    devices: dict[str, DeviceParams]
    semi_global: WireParams
    global_: WireParams
    local: WireParams
    local_tungsten: WireParams

    @property
    def feature_size(self) -> float:
        """F in metres."""
        return self.node_nm * 1e-9

    def device(self, device_type: str) -> DeviceParams:
        """Look up a device family: hp, hp-long-channel, lstp, or lop."""
        try:
            return self.devices[device_type]
        except KeyError:
            raise ValueError(
                f"unknown device type {device_type!r}; "
                f"expected one of {tuple(self.devices)}"
            ) from None

    def cell(self, tech: CellTech, periph_device: str) -> CellParams:
        """Build cell parameters; logic-supply cells share the peripheral
        supply."""
        return cell(tech, self.node_nm, self.device(periph_device).vdd)

    def bitline_wire(self, cell_tech: CellTech) -> WireParams:
        """Array bitline wiring, per the technology's declared wire plane."""
        if CellTech(cell_tech).traits.bitline_wire == "local-tungsten":
            return self.local_tungsten
        return self.local

    def htree_wire(self, cell_tech: CellTech) -> WireParams:
        """Bank-routing wiring, per the technology's declared wire plane."""
        if CellTech(cell_tech).traits.htree_wire == "semi-global":
            return self.semi_global
        return self.global_


@lru_cache(maxsize=None)
def _exact_node(node_nm: int) -> Technology:
    return Technology(
        node_nm=float(node_nm),
        devices={
            name: builder(node_nm)
            for name, builder in _devices.DEVICE_BUILDERS.items()
        },
        semi_global=_wires.semi_global_wire(node_nm),
        global_=_wires.global_wire(node_nm),
        local=_wires.local_wire(node_nm),
        local_tungsten=_wires.local_wire(node_nm, tungsten=True),
    )


#: Cap on memory-resident *interpolated* technologies.  The four exact
#: ITRS nodes stay cached forever (there are only four), but a dense
#: fractional-node sweep -- a ``cachedb build`` over hundreds of nodes
#: -- would otherwise pin every full Technology object (devices, wires,
#: cells) in memory for the life of the process.
_INTERPOLATED_CACHE_SIZE = 128


def technology(node_nm: float) -> Technology:
    """Return the :class:`Technology` at ``node_nm``, interpolating if needed.

    Raises ValueError outside the modeled 32-90 nm range.  Repeated
    calls with the same node return the same object: exact ITRS nodes
    are cached unboundedly, fractional nodes in a bounded LRU
    (:data:`_INTERPOLATED_CACHE_SIZE` entries).
    """
    lo, hi = min(NODES_NM), max(NODES_NM)
    if not lo <= node_nm <= hi:
        raise ValueError(
            f"node {node_nm} nm outside modeled ITRS range {lo}-{hi} nm"
        )
    if float(node_nm).is_integer() and int(node_nm) in NODES_NM:
        return _exact_node(int(node_nm))
    return _interpolated_node(float(node_nm))


@lru_cache(maxsize=_INTERPOLATED_CACHE_SIZE)
def _interpolated_node(node_nm: float) -> Technology:
    nodes = sorted(NODES_NM)
    below = max(n for n in nodes if n < node_nm)
    above = min(n for n in nodes if n > node_nm)
    # Fraction runs from the *larger* feature size toward the smaller, in
    # log space, mirroring the geometric progression of scaling trends.
    frac = (math.log(above) - math.log(node_nm)) / (
        math.log(above) - math.log(below)
    )
    coarse, fine = _exact_node(above), _exact_node(below)
    interpolated = {
        name: interpolate_devices(coarse.devices[name], fine.devices[name], frac)
        for name in coarse.devices
    }
    return Technology(
        node_nm=float(node_nm),
        devices=interpolated,
        semi_global=_wires.semi_global_wire(node_nm),
        global_=_wires.global_wire(node_nm),
        local=_wires.local_wire(node_nm),
        local_tungsten=_wires.local_wire(node_nm, tungsten=True),
    )
