"""Unit tests for the persistent solve cache."""

import json

import pytest

from repro.array.organization import ArraySpec
from repro.core.config import OptimizationTarget
from repro.core.solvecache import (
    CACHE_VERSION,
    SolveCache,
    metrics_from_dict,
    metrics_to_dict,
    solve_key,
)
from repro.core.optimizer import optimize
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)

SPEC = ArraySpec(
    capacity_bits=8 * (64 << 10),
    output_bits=512,
    assoc=8,
    cell_tech=CellTech.SRAM,
    periph_device_type="hp-long-channel",
)

TARGET = OptimizationTarget()


@pytest.fixture(scope="module")
def best():
    return optimize(TECH, SPEC, TARGET)


class TestSerialization:
    def test_round_trip_identity(self, best):
        assert metrics_from_dict(metrics_to_dict(best)) == best

    def test_json_round_trip_identity(self, best):
        """Floats survive JSON encoding bit-exactly (shortest repr)."""
        blob = json.dumps(metrics_to_dict(best))
        assert metrics_from_dict(json.loads(blob)) == best


class TestSolveKey:
    def test_stable(self):
        assert solve_key(SPEC, TARGET, 32.0) == solve_key(SPEC, TARGET, 32.0)

    def test_sensitive_to_every_input(self):
        base = solve_key(SPEC, TARGET, 32.0)
        assert solve_key(SPEC, TARGET, 45.0) != base
        other_target = OptimizationTarget(max_area_fraction=0.1)
        assert solve_key(SPEC, other_target, 32.0) != base
        import dataclasses

        other_spec = dataclasses.replace(SPEC, output_bits=256)
        assert solve_key(other_spec, TARGET, 32.0) != base


class TestSolveCache:
    def test_put_get(self, tmp_path, best):
        cache = SolveCache(tmp_path / "c.json")
        assert cache.get(SPEC, TARGET, 32.0) is None
        cache.put(SPEC, TARGET, 32.0, best)
        assert cache.get(SPEC, TARGET, 32.0) == best
        assert cache.hits == 1 and cache.misses == 1

    def test_persists_across_instances(self, tmp_path, best):
        path = tmp_path / "c.json"
        SolveCache(path).put(SPEC, TARGET, 32.0, best)
        assert SolveCache(path).get(SPEC, TARGET, 32.0) == best

    def test_missing_file_is_empty(self, tmp_path):
        cache = SolveCache(tmp_path / "nope" / "c.json")
        assert len(cache) == 0

    def test_corrupt_file_is_empty(self, tmp_path, best):
        path = tmp_path / "c.json"
        path.write_text("{ this is not json")
        cache = SolveCache(path)
        assert len(cache) == 0
        # And still usable for writes afterwards.
        cache.put(SPEC, TARGET, 32.0, best)
        assert SolveCache(path).get(SPEC, TARGET, 32.0) == best

    def test_version_mismatch_discards_records(self, tmp_path, best):
        path = tmp_path / "c.json"
        SolveCache(path).put(SPEC, TARGET, 32.0, best)
        payload = json.loads(path.read_text())
        payload["version"] = "some-older-version"
        path.write_text(json.dumps(payload))
        assert len(SolveCache(path)) == 0

    def test_version_stamp_written(self, tmp_path, best):
        path = tmp_path / "c.json"
        SolveCache(path).put(SPEC, TARGET, 32.0, best)
        assert json.loads(path.read_text())["version"] == CACHE_VERSION

    def test_truncated_record_is_a_miss(self, tmp_path, best):
        path = tmp_path / "c.json"
        SolveCache(path).put(SPEC, TARGET, 32.0, best)
        payload = json.loads(path.read_text())
        key = next(iter(payload["records"]))
        del payload["records"][key]["rows"]
        path.write_text(json.dumps(payload))
        assert SolveCache(path).get(SPEC, TARGET, 32.0) is None


class TestConcurrentWriters:
    """Two processes sharing one --cache path must never lose records."""

    def _other_spec(self, output_bits=256):
        import dataclasses

        return dataclasses.replace(SPEC, output_bits=output_bits)

    def test_interleaved_puts_merge_instead_of_truncating(
        self, tmp_path, best
    ):
        path = tmp_path / "c.json"
        # Both handles load the (empty) file before either writes --
        # the classic lost-update interleaving.
        writer_a = SolveCache(path)
        writer_b = SolveCache(path)
        writer_a.put(SPEC, TARGET, 32.0, best)
        writer_b.put(self._other_spec(), TARGET, 32.0, best)
        # The second save merged the first one's record from disk.
        fresh = SolveCache(path)
        assert fresh.get(SPEC, TARGET, 32.0) == best
        assert fresh.get(self._other_spec(), TARGET, 32.0) == best

    def test_refresh_picks_up_foreign_records(self, tmp_path, best):
        path = tmp_path / "c.json"
        reader = SolveCache(path)
        SolveCache(path).put(SPEC, TARGET, 32.0, best)
        assert len(reader) == 0
        reader.refresh()
        assert reader.get(SPEC, TARGET, 32.0) == best

    def test_save_leaves_no_temp_files(self, tmp_path, best):
        path = tmp_path / "c.json"
        SolveCache(path).put(SPEC, TARGET, 32.0, best)
        assert [p.name for p in tmp_path.iterdir()] == ["c.json"]

    def test_atomic_write_via_os_replace(self, tmp_path, best, monkeypatch):
        """The records file itself is never opened for writing: a crash
        mid-save can only lose the temp file, not the cache."""
        import os as os_module

        replaced = []
        real_replace = os_module.replace

        def spy(src, dst):
            replaced.append((str(src), str(dst)))
            return real_replace(src, dst)

        monkeypatch.setattr("repro.core.solvecache.os.replace", spy)
        path = tmp_path / "c.json"
        SolveCache(path).put(SPEC, TARGET, 32.0, best)
        assert len(replaced) == 1
        src, dst = replaced[0]
        assert dst == str(path)
        assert src != dst and str(os_module.getpid()) in src
