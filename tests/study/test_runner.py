"""Integration tests for the LLC study runner (reduced-size runs)."""

import dataclasses

import pytest

from repro.core.resilience import (
    FaultInjected,
    FaultPlan,
    FaultSpec,
    Journal,
    ResiliencePolicy,
    TaskFailure,
)
from repro.study.runner import run_one, run_study
from repro.workloads.npb import CG_C, FT_B, UA_C

INSTR = 30_000  # small but long enough to warm the scaled caches

FAST_INSTR = 4_000  # enough for the fault-tolerance plumbing tests


@pytest.fixture(scope="module")
def ft_nol3():
    return run_one(FT_B.with_instructions(INSTR), "nol3")


@pytest.fixture(scope="module")
def ft_lp():
    return run_one(FT_B.with_instructions(INSTR), "lp_dram_ed")


class TestRunOne:
    def test_basic_results(self, ft_nol3):
        assert ft_nol3.ipc > 0
        assert ft_nol3.stats.average_read_latency > 0
        assert ft_nol3.power.total > 0
        assert ft_nol3.system.core == pytest.approx(22.3, rel=0.1)

    def test_l3_improves_cache_friendly_app(self, ft_nol3, ft_lp):
        """ft.B's working set fits the L3: IPC must rise (Figure 4a)."""
        assert ft_lp.ipc > ft_nol3.ipc * 1.2

    def test_l3_cuts_memory_traffic(self, ft_nol3, ft_lp):
        assert (
            ft_lp.stats.counters.mem_reads
            < ft_nol3.stats.counters.mem_reads
        )

    def test_breakdown_accounts_for_stalls(self, ft_nol3):
        b = ft_nol3.stats.breakdown
        assert b.memory > 0
        assert b.instruction > 0
        assert b.l3 == 0  # no L3 in this configuration

    def test_power_has_no_l3_terms_without_l3(self, ft_nol3):
        assert ft_nol3.power.l3_leak == 0
        assert ft_nol3.power.crossbar_dyn == 0

    def test_lp_config_has_l3_and_refresh_power(self, ft_lp):
        assert ft_lp.power.l3_leak > 0
        assert ft_lp.power.l3_refresh > 0
        assert ft_lp.stats.breakdown.l3 > 0


class TestRunStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_study(
            profiles=(FT_B, CG_C),
            configs=("nol3", "sram", "cm_dram_c"),
            instructions_per_thread=INSTR,
        )

    def test_matrix_complete(self, study):
        assert set(study.results) == {
            (a, c) for a in ("ft.B", "cg.C")
            for c in ("nol3", "sram", "cm_dram_c")
        }

    def test_normalization_baseline_is_one(self, study):
        assert study.normalized_cycles("ft.B", "nol3") == pytest.approx(1.0)
        assert study.normalized_energy_delay(
            "cg.C", "nol3") == pytest.approx(1.0)

    def test_ft_gets_faster_cg_does_not(self, study):
        """The paper's application grouping in miniature."""
        ft_gain = 1 - study.normalized_cycles("ft.B", "cm_dram_c")
        cg_gain = 1 - study.normalized_cycles("cg.C", "cm_dram_c")
        assert ft_gain > 0.25
        assert cg_gain < ft_gain

    def test_sram_l3_raises_hierarchy_power(self, study):
        """Figure 5a: the SRAM L3's leakage raises hierarchy power."""
        assert study.mean_hierarchy_power_increase("sram") > 0.1

    def test_comm_l3_power_increase_small(self, study):
        sram = study.mean_hierarchy_power_increase("sram")
        comm = study.mean_hierarchy_power_increase("cm_dram_c")
        assert comm < sram / 2

    def test_insensitive_app_flat(self):
        result = run_study(
            profiles=(UA_C,),
            configs=("nol3", "cm_dram_c"),
            instructions_per_thread=INSTR,
        )
        assert abs(1 - result.normalized_cycles("ua.C", "cm_dram_c")) < 0.35


class TestStudyResilience:
    def test_duplicate_profile_names_raise(self):
        with pytest.raises(ValueError, match="duplicate profile"):
            run_study(
                profiles=(UA_C, UA_C),
                configs=("nol3",),
                instructions_per_thread=FAST_INSTR,
            )

    def test_duplicate_config_names_raise(self):
        with pytest.raises(ValueError, match="duplicate config"):
            run_study(
                profiles=(UA_C,),
                configs=("nol3", "sram", "nol3"),
                instructions_per_thread=FAST_INSTR,
            )

    def test_skip_mode_yields_partial_matrix(self):
        # Cell 1 (ua.C x sram) fails terminally; the rest of the matrix
        # completes and the failure is recorded, not raised.
        policy = ResiliencePolicy(
            on_error="skip",
            fault_plan=FaultPlan(
                (FaultSpec("study.cell", 1, "raise", trips=99),)
            ),
        )
        result = run_study(
            profiles=(UA_C,),
            configs=("nol3", "sram", "cm_dram_c"),
            instructions_per_thread=FAST_INSTR,
            resilience=policy,
        )
        assert set(result.results) == {
            ("ua.C", "nol3"), ("ua.C", "cm_dram_c")
        }
        assert len(result.failed) == 1
        assert isinstance(result.failed[0], TaskFailure)
        assert result.failed[0].stage == "study.cell"

    def test_interrupted_study_resumes_unfinished_cells(self, tmp_path):
        path = tmp_path / "study.journal"
        kwargs = dict(
            profiles=(UA_C,),
            configs=("nol3", "sram"),
            instructions_per_thread=FAST_INSTR,
        )

        # The fault interrupts the matrix after cell 0 completes.
        interrupted = ResiliencePolicy(
            journal=Journal(path),
            fault_plan=FaultPlan(
                (FaultSpec("study.cell", 1, "raise", trips=99),)
            ),
        )
        with pytest.raises(FaultInjected):
            run_study(resilience=interrupted, **kwargs)
        interrupted.journal.close()
        assert len(Journal(path)) == 1

        # The resumed run keeps the same fault plan on cell 1's *first*
        # attempt slot: if cell 0 were re-executed... it isn't -- only
        # the unfinished cell runs, with a plan that no longer trips it.
        resumed = ResiliencePolicy(journal=Journal(path))
        result = run_study(resilience=resumed, **kwargs)
        resumed.journal.close()
        assert len(Journal(path)) == 2
        assert set(result.results) == {("ua.C", "nol3"), ("ua.C", "sram")}
        assert result.failed == ()

        # Resumed results are bit-identical to an unjournaled run.
        plain = run_study(**kwargs)
        for cell, run in plain.results.items():
            restored = result.results[cell]
            assert dataclasses.asdict(restored.stats) == dataclasses.asdict(
                run.stats
            )

        # A fully journaled matrix restores without executing any cell:
        # a fault on every index proves nothing runs.
        restored_only = ResiliencePolicy(
            journal=Journal(path),
            fault_plan=FaultPlan(tuple(
                FaultSpec("study.cell", i, "raise", trips=99)
                for i in range(2)
            )),
        )
        again = run_study(resilience=restored_only, **kwargs)
        restored_only.journal.close()
        assert set(again.results) == set(result.results)
