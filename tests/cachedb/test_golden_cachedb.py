"""Golden equivalence for cachedb answers.

Two contracts anchor the database to the live model:

* an **on-grid** query is *bit-identical* to solving the same spec live
  -- same records, same headline metrics, for every registered
  technology (the database is a cache, not an approximation); and
* an **interpolated** answer stays within the closed interval of its
  bracketing grid points for every metric, on both continuous axes
  (capacity and node) -- log-linear interpolation cannot overshoot its
  endpoints.
"""

import json

import pytest

from repro.cachedb import CacheDB, GridSpec, build_cachedb, grid_spec_for
from repro.cachedb.schema import DB_METRICS
from repro.core.cacti import solve
from repro.core.solvecache import metrics_to_dict
from repro.tech.registry import registered_names

#: Grid shared by every test in this module: both continuous axes have
#: two points, so interior queries interpolate, and 1M/2M solve cleanly
#: for every registered technology (comm-dram included).
CAPS = (1 << 20, 2 << 20)
NODES = (32.0, 45.0)


def reencode(payload):
    """One JSON round trip: equality after it is bit-identity."""
    return json.loads(json.dumps(payload))


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    path = tmp_path_factory.mktemp("golden-cachedb") / "db.json"
    grid = GridSpec(capacities_bytes=CAPS, nodes_nm=NODES)
    report = build_cachedb(path, grid, jobs="auto")
    assert report.holes == 0, "golden grid must solve completely"
    return CacheDB(path)


@pytest.mark.parametrize("tech", registered_names())
def test_on_grid_query_bit_identical_to_live_solve(db, tech):
    spec = grid_spec_for(tech, 32.0, CAPS[0], 64, 8)
    live = solve(spec)
    served = db.query(
        CAPS[0], cell_tech=tech, node_nm=32.0, materialize=True
    )
    assert served.source == "exact" and not served.interpolated
    assert reencode(metrics_to_dict(served.solution.data)) == reencode(
        metrics_to_dict(live.data)
    )
    assert reencode(metrics_to_dict(served.solution.tag)) == reencode(
        metrics_to_dict(live.tag)
    )
    assert served.metrics == {
        name: extract(live) for name, extract in DB_METRICS.items()
    }


@pytest.mark.parametrize("tech", registered_names())
def test_lookup_exact_bit_identical_to_live_solve(db, tech):
    spec = grid_spec_for(tech, 32.0, CAPS[0], 64, 8)
    served = db.lookup_exact(spec)
    assert served is not None
    live = solve(spec)
    assert reencode(metrics_to_dict(served.data)) == reencode(
        metrics_to_dict(live.data)
    )


def _assert_bounded(between, lo, hi):
    """Every metric of ``between`` lies within its endpoints' interval."""
    for name in DB_METRICS:
        low, high = sorted((lo.metrics[name], hi.metrics[name]))
        assert low <= between.metrics[name] <= high, (
            f"{name}: {between.metrics[name]} outside "
            f"[{low}, {high}]"
        )


@pytest.mark.parametrize("tech", registered_names())
def test_capacity_interpolation_monotone_between_brackets(db, tech):
    lo = db.query(CAPS[0], cell_tech=tech, node_nm=32.0)
    hi = db.query(CAPS[1], cell_tech=tech, node_nm=32.0)
    mid = db.query(
        (3 * CAPS[0]) // 2, cell_tech=tech, node_nm=32.0, fallback="error"
    )
    assert mid.interpolated
    _assert_bounded(mid, lo, hi)


@pytest.mark.parametrize("tech", registered_names())
def test_node_interpolation_monotone_between_brackets(db, tech):
    lo = db.query(CAPS[0], cell_tech=tech, node_nm=NODES[0])
    hi = db.query(CAPS[0], cell_tech=tech, node_nm=NODES[1])
    mid = db.query(
        CAPS[0], cell_tech=tech, node_nm=38.0, fallback="error"
    )
    assert mid.interpolated
    _assert_bounded(mid, lo, hi)


def test_bilinear_interpolation_bounded_by_all_corners(db):
    corners = [
        db.query(cap, cell_tech="sram", node_nm=node)
        for cap in CAPS
        for node in NODES
    ]
    mid = db.query(
        (3 * CAPS[0]) // 2, cell_tech="sram", node_nm=38.0,
        fallback="error",
    )
    assert mid.interpolated
    for name in DB_METRICS:
        values = [c.metrics[name] for c in corners]
        assert min(values) <= mid.metrics[name] <= max(values)
