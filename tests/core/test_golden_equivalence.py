"""Golden-equivalence regression: the optimizer fast path changes nothing.

The fast path is three layers -- structural pre-filter fused into
enumeration, cross-candidate EvalCache memoization, and the persistent
solve cache -- and every one of them must be numerically invisible.
These tests compare against the naive path (full construction of every
enumerated candidate, no caches) field for field, for SRAM, LP-DRAM, and
COMM-DRAM arrays at 32 and 78 nm.
"""

import dataclasses

import pytest

from repro.array.organization import (
    ArraySpec,
    EvalCache,
    enumerate_feasible_orgs,
    enumerate_orgs,
    prefilter_grid,
    prefilter_org,
)
from repro.core.config import DENSITY_OPTIMIZED, OptimizationTarget
from repro.core.optimizer import SweepStats, feasible_designs, optimize
from repro.core.solvecache import SolveCache
from repro.obs import Obs
from repro.tech.cells import CellTech
from repro.tech.nodes import technology


def sram_spec(capacity_kb: int = 128) -> ArraySpec:
    return ArraySpec(
        capacity_bits=capacity_kb * 1024 * 8,
        output_bits=512,
        assoc=8,
        cell_tech=CellTech.SRAM,
        periph_device_type="hp-long-channel",
    )


def lp_dram_spec(capacity_kb: int = 256) -> ArraySpec:
    return ArraySpec(
        capacity_bits=capacity_kb * 1024 * 8,
        output_bits=512,
        assoc=8,
        cell_tech=CellTech.LP_DRAM,
        periph_device_type="hp-long-channel",
    )


def comm_dram_spec(capacity_mbit: int = 64) -> ArraySpec:
    return ArraySpec(
        capacity_bits=capacity_mbit << 20,
        output_bits=64,
        assoc=1,
        nbanks=8,
        cell_tech=CellTech.COMM_DRAM,
        periph_device_type="lstp",
        page_bits=8192,
    )


GRID = [
    pytest.param(spec, node, target, id=f"{name}-{node}nm")
    for node in (32.0, 78.0)
    for name, spec, target in (
        ("sram", sram_spec(), OptimizationTarget()),
        ("lp-dram", lp_dram_spec(), OptimizationTarget()),
        ("comm-dram", comm_dram_spec(), DENSITY_OPTIMIZED),
    )
]


def assert_metrics_identical(a, b):
    """Field-for-field (bit-identical float) equality of two metrics."""
    for f in dataclasses.fields(type(a)):
        assert getattr(a, f.name) == getattr(b, f.name), f.name


@pytest.mark.parametrize("spec,node,target", GRID)
def test_fast_path_matches_naive(spec, node, target):
    tech = technology(node)
    naive = feasible_designs(tech, spec, cache=None, prefilter=False)
    fast = feasible_designs(tech, spec, cache=EvalCache(), prefilter=True)
    assert len(naive) == len(fast)
    for a, b in zip(naive, fast):
        assert_metrics_identical(a, b)


@pytest.mark.parametrize("spec,node,target", GRID)
def test_fused_enumeration_matches_filtered_enumeration(spec, node, target):
    """enumerate_feasible_orgs == prefilter_org over enumerate_orgs,
    including candidate order (ranking ties break by that order)."""
    fused = [org for org, _ in enumerate_feasible_orgs(spec)]
    filtered = [
        org for org in enumerate_orgs(spec)
        if prefilter_org(spec, org) is not None
    ]
    assert fused == filtered


@pytest.mark.parametrize("spec,node,target", GRID)
def test_vectorized_grid_matches_fused_enumeration(spec, node, target):
    """The numpy batch pre-filter produces exactly the fused scalar
    enumeration: same survivors, same geometries, same order."""
    assert prefilter_grid(spec) == list(enumerate_feasible_orgs(spec))


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("spec,node,target", GRID)
def test_parallel_optimize_is_bit_identical(spec, node, target, jobs):
    """optimize(jobs=N) returns field-for-field identical ArrayMetrics
    to the serial path: sharded workers with worker-local caches change
    wall time only, never numbers or ranking tie-breaks."""
    tech = technology(node)
    serial = optimize(tech, spec, target)
    sharded = optimize(tech, spec, target, jobs=jobs)
    assert_metrics_identical(serial, sharded)


def _store_spec(backend, tmp_path) -> str:
    """A solve-store spec for ``backend`` under ``tmp_path``."""
    if backend == "json":
        return str(tmp_path / "solves.json")
    return f"sqlite:{tmp_path / 'solves.db'}"


@pytest.mark.parametrize("backend", ["json", "sqlite"])
@pytest.mark.parametrize("spec,node,target", GRID)
def test_solve_cache_round_trip_is_bit_identical(
    spec, node, target, backend, tmp_path
):
    tech = technology(node)
    direct = optimize(tech, spec, target)

    store = _store_spec(backend, tmp_path)
    cache = SolveCache(store)
    first = optimize(tech, spec, target, solve_cache=cache)
    assert_metrics_identical(first, direct)
    cache.close()

    # A fresh cache object re-reads the backend: the disk round trip
    # must reproduce every float exactly on either backend.
    reread = SolveCache(store)
    cached = optimize(tech, spec, target, solve_cache=reread)
    assert reread.hits == 1
    assert_metrics_identical(cached, direct)
    reread.close()


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("backend", ["json", "sqlite"])
def test_solve_batch_bit_identical_on_both_backends(
    backend, jobs, tmp_path
):
    """solve_batch x {json, sqlite} x jobs {1,2,4}: worker processes
    sharing either store produce field-for-field the numbers of the
    cache-free serial path, and a second batch is served entirely from
    the store -- still bit-identical."""
    from repro.core.cacti import solve_batch
    from repro.core.config import MemorySpec

    specs = [
        MemorySpec(
            capacity_bytes=capacity_kb << 10,
            block_bytes=64,
            associativity=8,
            node_nm=32.0,
            cell_tech=CellTech.SRAM,
        )
        for capacity_kb in (16, 32, 64, 128)
    ]
    baseline = solve_batch(specs, jobs=1)

    cache = SolveCache(_store_spec(backend, tmp_path))
    first = solve_batch(specs, solve_cache=cache, jobs=jobs)
    for a, b in zip(baseline, first):
        assert_metrics_identical(a.data, b.data)
        assert_metrics_identical(a.tag, b.tag)

    cache.refresh()
    assert len(cache) == 2 * len(specs)  # data + tag arrays per spec
    again = solve_batch(specs, solve_cache=cache, jobs=1)
    assert cache.hits == 2 * len(specs)
    for a, b in zip(baseline, again):
        assert_metrics_identical(a.data, b.data)
        assert_metrics_identical(a.tag, b.tag)
    cache.close()


@pytest.mark.parametrize("backend", ["json", "sqlite"])
def test_migrated_store_serves_bit_identical_records(backend, tmp_path):
    """Solve into one backend, migrate to the other, re-solve from the
    migrated store: every record survives the migration bit-exactly."""
    from repro.core.solvecache import open_solve_store
    from repro.store import migrate_store

    spec, target = sram_spec(), OptimizationTarget()
    tech = technology(32.0)
    src_spec = _store_spec(backend, tmp_path)
    other = "sqlite" if backend == "json" else "json"
    dst_spec = _store_spec(other, tmp_path)

    cache = SolveCache(src_spec)
    direct = optimize(tech, spec, target, solve_cache=cache)
    cache.close()

    src = open_solve_store(src_spec)
    dst = open_solve_store(dst_spec)
    report = migrate_store(src, dst)
    assert report["migrated"] == 1
    src.close(), dst.close()

    migrated = SolveCache(dst_spec)
    served = optimize(tech, spec, target, solve_cache=migrated)
    assert migrated.hits == 1
    assert_metrics_identical(served, direct)
    migrated.close()


@pytest.mark.parametrize("spec,node,target", GRID)
def test_tracing_is_numerically_invisible(spec, node, target):
    """Observability's determinism contract: a traced solve returns
    bit-identical metrics to an untraced one.  Spans read the clock
    around existing work; they never reorder or perturb it."""
    tech = technology(node)
    plain = optimize(tech, spec, target)
    obs = Obs()
    traced = optimize(tech, spec, target, obs=obs)
    assert_metrics_identical(plain, traced)
    assert len(obs.tracer) > 0  # the trace actually recorded the run


@pytest.mark.parametrize("jobs", [1, 2, 4])
def test_tracing_is_invisible_at_any_job_count(jobs):
    """Trace on/off x jobs {1,2,4}: same numbers every way, including
    the worker-span shipping path."""
    spec, target = sram_spec(), OptimizationTarget()
    tech = technology(32.0)
    plain = optimize(tech, spec, target, jobs=jobs)
    obs = Obs()
    traced = optimize(tech, spec, target, jobs=jobs, obs=obs)
    assert_metrics_identical(plain, traced)


def test_faulted_retry_optimize_is_bit_identical():
    """Fault tolerance's determinism contract: a sweep whose workers
    crash mid-run under ``on_error="retry"`` -- one chunk raising, one
    chunk hard-killing its worker process -- completes with
    field-for-field identical metrics to the unfaulted serial run.  A
    retried chunk rebuilds the same designs from the same candidates,
    and the merge is still candidate-ordered."""
    from repro.core.resilience import FaultPlan, FaultSpec, ResiliencePolicy

    spec, target = sram_spec(), OptimizationTarget()
    tech = technology(32.0)
    serial = optimize(tech, spec, target)
    plan = FaultPlan((
        FaultSpec("optimizer.chunk", 0, "raise", trips=1),
        FaultSpec("optimizer.chunk", 2, "kill", trips=1),
    ))
    stats = SweepStats()
    policy = ResiliencePolicy(
        on_error="retry", max_retries=2, backoff_s=0.01, fault_plan=plan
    )
    faulted = optimize(
        tech, spec, target, jobs=2, stats=stats, resilience=policy
    )
    assert_metrics_identical(serial, faulted)
    assert stats.retries >= 1  # the raise fault cost one retry
    assert stats.pool_rebuilds >= 1  # the kill fault broke a pool
    assert stats.tasks_failed == 0  # every chunk eventually completed


def test_every_sink_together_is_invisible(tmp_path):
    """obs + stats + solve cache + workers all at once, still golden."""
    spec, target = sram_spec(), OptimizationTarget()
    tech = technology(32.0)
    direct = optimize(tech, spec, target)
    kitchen_sink = optimize(
        tech,
        spec,
        target,
        solve_cache=SolveCache(tmp_path / "solves.json"),
        stats=SweepStats(),
        jobs=2,
        obs=Obs(),
    )
    assert_metrics_identical(direct, kitchen_sink)
