"""Paper Figure 4(b): normalized execution-cycle breakdown."""

from conftest import print_table

from repro.sim.stats import BREAKDOWN_CATEGORIES
from repro.study.table3 import CONFIG_NAMES


def test_figure4b(study_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for app in study_result.app_names:
        base = study_result.get(app, "nol3").stats
        base_total = base.breakdown.total
        for config in CONFIG_NAMES:
            stats = study_result.get(app, config).stats
            fractions = stats.breakdown.normalized(base_total)
            rows.append([
                app, config,
                f"{study_result.normalized_cycles(app, config):.2f}",
                *(f"{fractions[c]:.2f}" for c in BREAKDOWN_CATEGORIES),
            ])
    print_table(
        "Figure 4(b): execution-cycle breakdown, normalized to nol3",
        ["app", "config", "total", *BREAKDOWN_CATEGORIES],
        rows,
    )

    s = study_result
    # Memory access time occupies the majority of execution for the
    # memory-bound apps without an L3 (paper: "memory access time occupies
    # the majority of the execution cycles").
    for app in ("bt.C", "cg.C", "ft.B", "lu.C"):
        b = s.get(app, "nol3").stats.breakdown
        assert b.memory > b.instruction

    # Introducing an L3 reduces the memory component for the apps it can
    # filter; for cg.C (no locality beyond L2) the misses persist and pick
    # up the extra L3/crossbar latency, exactly the paper's "all L3 caches
    # fail to filter the memory requests" case.
    for app in ("bt.C", "ft.B", "is.C", "lu.C", "mg.B", "sp.C"):
        nol3_mem = s.get(app, "nol3").stats.breakdown.memory
        l3_mem = s.get(app, "cm_dram_c").stats.breakdown.memory
        assert l3_mem < nol3_mem
    cg_ratio = (
        s.get("cg.C", "cm_dram_c").stats.breakdown.memory
        / s.get("cg.C", "nol3").stats.breakdown.memory
    )
    assert cg_ratio > 0.6  # the L3 cannot filter cg.C

    # The average execution-time reduction of the COMM-DRAM L3s lands in
    # the paper's band (39 % and 43 % for ED and C respectively).
    for config, paper_value in (("cm_dram_ed", 0.39), ("cm_dram_c", 0.43)):
        measured = s.mean_execution_reduction(config)
        print(f"mean execution-time reduction {config}: {measured:.0%} "
              f"(paper: {paper_value:.0%})")
        assert 0.15 < measured < 0.60
