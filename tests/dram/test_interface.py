"""Unit tests for embedded-DRAM interfaces and line mapping."""

import pytest

from repro.array.organization import ArraySpec, OrgParams, build_organization
from repro.dram.interface import (
    LineMapping,
    interleaving_speedup,
    main_memory_like,
    page_hit_ratio,
    sram_like,
    subbank_conflict_ratio,
)
from repro.dram.page_policy import ClosedPagePolicy, OpenPagePolicy
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)


@pytest.fixture(scope="module")
def lp_metrics():
    spec = ArraySpec(
        capacity_bits=8 * (8 << 20),
        output_bits=512,
        assoc=8,
        cell_tech=CellTech.LP_DRAM,
        periph_device_type="hp-long-channel",
    )
    return build_organization(
        TECH, spec, OrgParams(ndwl=8, ndbl=32, nspd=1.0, ndsam=8)
    )


class TestSramLikeInterface:
    def test_fields_from_metrics(self, lp_metrics):
        iface = sram_like(lp_metrics, num_subbanks=32)
        assert iface.access_time == lp_metrics.t_access
        assert iface.random_cycle == lp_metrics.t_random_cycle
        assert iface.interleave_cycle < iface.random_cycle

    def test_effective_cycle_interpolates(self, lp_metrics):
        iface = sram_like(lp_metrics, num_subbanks=32)
        none = iface.effective_cycle(0.0)
        all_ = iface.effective_cycle(1.0)
        mid = iface.effective_cycle(0.5)
        assert none < mid < all_
        assert none == pytest.approx(iface.interleave_cycle)
        assert all_ == pytest.approx(iface.random_cycle)

    def test_peak_bandwidth_positive(self, lp_metrics):
        iface = sram_like(lp_metrics, num_subbanks=32)
        assert iface.peak_bandwidth_accesses > 1.0 / iface.random_cycle


class TestMainMemoryLikeInterface:
    def test_open_page_hit_faster_than_miss(self, lp_metrics):
        iface = main_memory_like(lp_metrics, OpenPagePolicy())
        assert iface.expected_latency(1.0) < iface.expected_latency(0.0)

    def test_closed_flat(self, lp_metrics):
        iface = main_memory_like(lp_metrics, ClosedPagePolicy())
        assert iface.expected_latency(0.0) == iface.expected_latency(1.0)

    def test_timings_positive(self, lp_metrics):
        iface = main_memory_like(lp_metrics, OpenPagePolicy())
        assert iface.t_rcd > 0 and iface.t_cas > 0 and iface.t_rp > 0


class TestInterleaving:
    def test_speedup_exceeds_one(self, lp_metrics):
        s = interleaving_speedup(
            lp_metrics.t_random_cycle, lp_metrics.t_interleave, 32
        )
        assert s > 1.5

    def test_single_subbank_no_speedup(self):
        assert interleaving_speedup(10e-9, 1e-9, 1) == pytest.approx(1.0)

    def test_conflict_ratio_bounds(self):
        assert subbank_conflict_ratio(1, 4) == 1.0
        assert 0 < subbank_conflict_ratio(32, 4) < 1
        assert subbank_conflict_ratio(32, 64) == 1.0


class TestLineMapping:
    """Paper section 3.4: why DRAM caches see almost no page hits."""

    def test_sequential_access_kills_set_per_page(self):
        h = page_hit_ratio(
            LineMapping.SET_PER_PAGE, page_bits=8192, line_bits=512,
            assoc=16, sequential_access=True, spatial_locality=0.8,
        )
        assert h == 0.0

    def test_multiple_sets_per_page_helps_normal_access(self):
        few_ways = page_hit_ratio(
            LineMapping.SET_PER_PAGE, page_bits=16384, line_bits=512,
            assoc=8, sequential_access=False, spatial_locality=0.8,
        )
        assert few_ways > 0

    def test_striping_diluted_by_associativity(self):
        low_assoc = page_hit_ratio(
            LineMapping.STRIPED, 8192, 512, assoc=2,
            sequential_access=False, spatial_locality=0.8,
        )
        high_assoc = page_hit_ratio(
            LineMapping.STRIPED, 8192, 512, assoc=16,
            sequential_access=False, spatial_locality=0.8,
        )
        assert high_assoc < low_assoc

    def test_both_mappings_poor_for_random_traffic(self):
        """With no spatial locality (interleaved LLC traffic), neither
        mapping yields page hits -- the paper's justification for the
        SRAM-like interface."""
        for mapping in LineMapping:
            h = page_hit_ratio(
                mapping, 8192, 512, assoc=16,
                sequential_access=False, spatial_locality=0.0,
            )
            assert h == pytest.approx(0.0)
