"""Driver chains: logical-effort-sized buffer chains driving RC loads.

Used for wordline drivers, predecoder drivers, bitline-mux drivers, output
drivers, and H-tree branch drivers.  A chain is sized with
:mod:`repro.circuits.logical_effort`, realized as concrete gates, and then
evaluated for delay (Horowitz, slope-propagated), dynamic energy, leakage,
and layout area (optionally pitch-matched/folded).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits import logical_effort as le
from repro.circuits.gates import Gate, horowitz, inverter, min_width, nand
from repro.tech.devices import DeviceParams


@dataclass(frozen=True)
class ChainMetrics:
    """Evaluated properties of a sized driver chain."""

    delay: float  #: input-to-load-switched delay (s)
    ramp_out: float  #: output ramp time, for slope propagation (s)
    energy: float  #: dynamic energy per switching event (J)
    leakage: float  #: static leakage power (W)
    area: float  #: layout area (m^2)
    num_stages: int
    c_in: float  #: input capacitance presented to the previous stage (F)


@dataclass(frozen=True)
class WireLoad:
    """A distributed RC wire hanging off the chain output."""

    resistance: float  #: total wire resistance (ohm)
    capacitance: float  #: total wire capacitance (F)

    @property
    def elmore(self) -> float:
        """Distributed-RC 50% delay contribution of the wire itself (s)."""
        return 0.38 * self.resistance * self.capacitance


def _widths_from_cap(device: DeviceParams, c_in: float) -> float:
    """NMOS width of an inverter whose total input cap is ``c_in``."""
    return c_in / (device.c_gate * (1.0 + device.n_to_p_ratio))


def build_chain(
    device: DeviceParams,
    feature_size: float,
    c_load: float,
    wire: WireLoad | None = None,
    first_gate_inputs: int = 1,
    pitch: float | None = None,
    c_in_floor: float | None = None,
    voltage_swing: float | None = None,
) -> ChainMetrics:
    """Size and evaluate a buffer chain driving ``c_load`` (+ optional wire).

    ``first_gate_inputs`` > 1 makes the first stage a NAND of that many
    inputs (decoder row gates, enable-gated drivers).  ``pitch`` folds every
    stage into the given layout pitch.  ``voltage_swing`` overrides the
    energy swing (e.g. a boosted DRAM wordline at VPP).
    """
    w_min = min_width(device, feature_size)
    c_unit = w_min * device.c_gate * (1.0 + device.n_to_p_ratio)
    c_in = max(c_unit, c_in_floor or 0.0)

    c_total = c_load + (wire.capacitance if wire else 0.0)
    g_first = le.le_nand(first_gate_inputs) if first_gate_inputs > 1 else 1.0
    sized = le.size_path(c_total, c_in, logical_efforts=(g_first,))

    gates: list[Gate] = []
    for i, cap in enumerate(sized.input_caps):
        if i == 0 and first_gate_inputs > 1:
            # NAND input cap per input = (n*w + 2w) c_gate with stack sizing.
            w = cap / (device.c_gate * (first_gate_inputs + device.n_to_p_ratio))
            gates.append(nand(device, first_gate_inputs, max(w, w_min)))
        else:
            gates.append(inverter(device, max(_widths_from_cap(device, cap),
                                              w_min)))

    delay = 0.0
    ramp = 0.0
    for i, gate in enumerate(gates):
        if i + 1 < len(gates):
            stage_load = gates[i + 1].c_in
            d, ramp = gate.delay(stage_load, ramp)
            delay += d
        else:
            # Final stage drives the wire + load through the wire resistance.
            r_wire = wire.resistance if wire else 0.0
            c_wire = wire.capacitance if wire else 0.0
            tau = gate.r_drive * (gate.c_out + c_wire + c_load)
            tau += r_wire * (c_wire / 2.0 + c_load)
            d = horowitz(ramp, tau)
            delay += d
            ramp = 2.0 * d

    vdd = device.vdd
    swing = voltage_swing if voltage_swing is not None else vdd
    c_switched = sum(g.c_in + g.c_out for g in gates)
    c_switched += wire.capacitance if wire else 0.0
    c_switched += c_load
    energy = c_switched * swing * swing

    leakage = sum(g.leakage() for g in gates)
    area = sum(g.area(feature_size, pitch) for g in gates)
    return ChainMetrics(
        delay=delay,
        ramp_out=ramp,
        energy=energy,
        leakage=leakage,
        area=area,
        num_stages=len(gates),
        c_in=gates[0].c_in,
    )
