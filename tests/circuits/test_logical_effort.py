"""Unit tests for the method-of-logical-effort sizing."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits.logical_effort import (
    le_nand,
    le_nor,
    optimal_stages,
    size_path,
)


class TestLogicalEfforts:
    def test_nand_efforts(self):
        assert le_nand(2) == pytest.approx(4 / 3)
        assert le_nand(3) == pytest.approx(5 / 3)

    def test_nor_worse_than_nand(self):
        for n in (2, 3, 4):
            assert le_nor(n) > le_nand(n)


class TestOptimalStages:
    def test_small_efforts_one_stage(self):
        assert optimal_stages(1.0) == 1
        assert optimal_stages(0.5) == 1

    def test_effort_four_one_stage(self):
        assert optimal_stages(4.0) == 1

    def test_effort_grows_logarithmically(self):
        assert optimal_stages(64.0) == 3
        assert optimal_stages(4.0**5) == 5


class TestSizePath:
    def test_endpoint_caps(self):
        path = size_path(100e-15, 1e-15, logical_efforts=(1.0,))
        # First stage input cap equals roughly the path input spec.
        assert path.input_caps[0] >= 0.9e-15
        assert path.input_caps[-1] < 100e-15

    def test_caps_monotonically_increase(self):
        path = size_path(1e-12, 1e-15, logical_efforts=(1.0,))
        caps = path.input_caps
        assert all(a < b for a, b in zip(caps, caps[1:]))

    def test_includes_requested_gates(self):
        path = size_path(1e-13, 1e-15, logical_efforts=(le_nand(3), le_nand(2)))
        assert path.num_stages >= 2

    def test_invalid_caps_raise(self):
        with pytest.raises(ValueError):
            size_path(0.0, 1e-15, logical_efforts=())
        with pytest.raises(ValueError):
            size_path(1e-13, -1e-15, logical_efforts=())

    @given(
        c_load=st.floats(min_value=1e-15, max_value=1e-11),
        c_in=st.floats(min_value=1e-16, max_value=1e-14),
    )
    def test_stage_effort_bounded(self, c_load, c_in):
        """Per-stage effort stays within a sane band around 4."""
        path = size_path(c_load, c_in, logical_efforts=(1.0,))
        if path.path_effort > 1.5:
            assert 1.0 < path.stage_effort < 10.0

    @given(st.floats(min_value=1e-14, max_value=1e-11))
    def test_path_effort_conserved(self, c_load):
        c_in = 1e-15
        path = size_path(c_load, c_in, logical_efforts=(1.0,))
        expected = max(c_load / c_in, 1.0)
        assert path.path_effort == pytest.approx(expected, rel=0.01)
