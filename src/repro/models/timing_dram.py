"""DDR interface speed grades and datasheet quantization.

Maps the continuous timing produced by the array model onto discrete DDR
speed grades (clock periods and transfer rates), the way a datasheet
expresses tCK-quantized parameters.  Used by the Table 2 validation
(DDR3-1066) and the LLC study's DDR4-3200 main memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.array.mainmem import MainMemoryTiming


@dataclass(frozen=True)
class SpeedGrade:
    """One DDR speed grade."""

    name: str
    transfers_per_s: float  #: MT/s * 1e6

    @property
    def clock_hz(self) -> float:
        """Interface clock; DDR transfers twice per clock."""
        return self.transfers_per_s / 2.0

    @property
    def clock_period(self) -> float:
        return 1.0 / self.clock_hz

    def cycles(self, t: float) -> int:
        """Datasheet cycle count for an analogue timing parameter."""
        return math.ceil(t / self.clock_period - 1e-12)

    def burst_time(self, burst_length: int) -> float:
        """Pin time of one burst (s): BL transfers at 2 per clock."""
        return burst_length / self.transfers_per_s * 1.0


DDR3_1066 = SpeedGrade("DDR3-1066", 1066e6)
DDR3_1333 = SpeedGrade("DDR3-1333", 1333e6)
DDR4_2400 = SpeedGrade("DDR4-2400", 2400e6)
DDR4_3200 = SpeedGrade("DDR4-3200", 3200e6)


@dataclass(frozen=True)
class DatasheetTiming:
    """A timing interface quantized to a speed grade."""

    grade: SpeedGrade
    cl: int  #: CAS latency, cycles
    trcd: int
    trp: int
    tras: int
    trc: int
    trrd: int

    @property
    def t_rcd(self) -> float:
        return self.trcd * self.grade.clock_period

    @property
    def t_cas(self) -> float:
        return self.cl * self.grade.clock_period

    @property
    def t_rp(self) -> float:
        return self.trp * self.grade.clock_period

    @property
    def t_rc(self) -> float:
        return self.trc * self.grade.clock_period

    def label(self) -> str:
        return f"{self.grade.name} {self.cl}-{self.trcd}-{self.trp}"


def quantize(timing: MainMemoryTiming, grade: SpeedGrade) -> DatasheetTiming:
    """Round the analogue timing up to whole interface clocks."""
    return DatasheetTiming(
        grade=grade,
        cl=grade.cycles(timing.t_cas),
        trcd=grade.cycles(timing.t_rcd),
        trp=grade.cycles(timing.t_rp),
        tras=grade.cycles(timing.t_ras),
        trc=grade.cycles(timing.t_rc),
        trrd=grade.cycles(timing.t_rrd),
    )


def to_main_memory_timing(
    sheet: DatasheetTiming, burst_length: int
) -> MainMemoryTiming:
    """Rebuild an analogue timing view from a quantized datasheet."""
    period = sheet.grade.clock_period
    return MainMemoryTiming(
        t_rcd=sheet.trcd * period,
        t_cas=sheet.cl * period,
        t_rp=sheet.trp * period,
        t_ras=sheet.tras * period,
        t_rc=sheet.trc * period,
        t_rrd=sheet.trrd * period,
        t_burst=sheet.grade.burst_time(burst_length),
    )
