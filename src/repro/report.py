"""Text rendering of study results: tables and ASCII charts.

The benchmarks regenerate the paper's *figures*; without a plotting
dependency, grouped bar charts render as unicode block rows so the shape
of Figure 4(a)/5(b) is visible directly in the bench output.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar(value: float, max_value: float, width: int = 32) -> str:
    """Render ``value`` as a block bar scaled to ``max_value``."""
    if max_value <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / max_value))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * (len(_BLOCKS) - 1))].rstrip()
    return "█" * full + (partial if full < width else "")


def grouped_bar_chart(
    data: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 32,
    value_format: str = "{:.2f}",
) -> str:
    """Render ``{group: {series: value}}`` as grouped ASCII bars.

    Groups are the outer keys (e.g. applications); series the inner keys
    (e.g. configurations).  All bars share one scale.
    """
    lines = [f"=== {title} ===" if title else ""]
    max_value = max(
        (v for series in data.values() for v in series.values()),
        default=0.0,
    )
    series_width = max(
        (len(s) for series in data.values() for s in series), default=0
    )
    for group, series in data.items():
        lines.append(f"{group}")
        for name, value in series.items():
            rendered = bar(value, max_value, width)
            lines.append(
                f"  {name:<{series_width}} {rendered:<{width}} "
                f"{value_format.format(value)}"
            )
    return "\n".join(line for line in lines if line != "")


def comparison_line(
    label: str, measured: float, paper: float, fmt: str = "{:+.1%}"
) -> str:
    """One-line measured-vs-paper comparison."""
    return (
        f"{label}: {fmt.format(measured)} "
        f"(paper: {fmt.format(paper)})"
    )
