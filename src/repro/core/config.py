"""User-facing input specifications for CACTI-D solves.

Mirrors the CACTI input model: a cache or plain memory is specified by
capacity, block size, associativity, bank count, technology node, cell
technology, and access mode; the optimizer is steered by the constraint
and weight structure of paper section 2.4 (max area constraint, max access
time constraint, normalized weighted objective, max repeater delay
constraint).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass
from enum import Enum

from repro.tech import registry as _registry
from repro.tech.cells import CellTech


class AccessMode(Enum):
    """How tags and data are accessed in a cache.

    NORMAL reads tags and data concurrently and late-selects the way;
    SEQUENTIAL reads data only after the tag lookup, saving energy by
    sensing a single way at the cost of serialized latency.
    """

    NORMAL = "normal"
    SEQUENTIAL = "sequential"


class _DefaultPeriphery(Mapping):
    """Live view of each registered technology's default periphery trait.

    Replaces the former hardcoded triad dict (which raised a bare
    ``KeyError`` for any technology outside it): lookups now come from
    the registry, cover every registered technology automatically, and
    unknown keys raise a ``ValueError`` naming the registered
    technologies (via ``CellTech``'s name resolution).
    """

    def __getitem__(self, cell_tech: CellTech) -> str:
        return CellTech(cell_tech).traits.default_periphery

    def __iter__(self):
        return iter(CellTech)

    def __len__(self) -> int:
        return len(_registry.registered_names())


#: Default peripheral/global circuitry per cell technology (paper Table 1):
#: SRAM and LP-DRAM use long-channel ITRS HP devices, COMM-DRAM uses LSTP.
#: Backed by the technology registry's ``default_periphery`` trait.
DEFAULT_PERIPHERY = _DefaultPeriphery()

#: Physical address width assumed when sizing tag arrays.
PHYSICAL_ADDRESS_BITS = 40

#: Coherence/valid/dirty state bits stored alongside each tag.
TAG_STATUS_BITS = 2


@dataclass(frozen=True)
class MemorySpec:
    """A cache or plain memory to be solved.

    Set ``associativity`` to None for a plain RAM (no tag array); the
    ``block_bytes`` is then simply the access width.
    """

    capacity_bytes: int
    block_bytes: int = 64
    associativity: int | None = 8
    nbanks: int = 1
    node_nm: float = 32.0
    cell_tech: CellTech = CellTech.SRAM
    periph_device_type: str | None = None
    access_mode: AccessMode = AccessMode.NORMAL
    sleep_transistors: bool = False
    tag_cell_tech: CellTech | None = None  #: defaults to ``cell_tech``
    ecc: bool = False  #: SEC-DED on the data array (8 check bits / 64)

    def __post_init__(self) -> None:
        # Accept registry names for the technologies; unknown names raise
        # a ValueError listing the registered technologies.
        object.__setattr__(self, "cell_tech", CellTech(self.cell_tech))
        if self.tag_cell_tech is not None:
            object.__setattr__(
                self, "tag_cell_tech", CellTech(self.tag_cell_tech)
            )
        if self.capacity_bytes <= 0 or self.block_bytes <= 0:
            raise ValueError("capacity and block size must be positive")
        if self.capacity_bytes % (self.nbanks * self.block_bytes):
            raise ValueError("banks x blocks must divide capacity")
        if self.associativity is not None and self.associativity < 1:
            raise ValueError("associativity must be >= 1 (or None for RAM)")
        ways = self.associativity or 1
        if self.capacity_bytes % (self.nbanks * self.block_bytes * ways):
            raise ValueError(
                "capacity must divide into whole sets per bank "
                f"({self.nbanks} banks x {ways} ways x "
                f"{self.block_bytes} B blocks)"
            )

    @property
    def is_cache(self) -> bool:
        return self.associativity is not None

    @property
    def periphery(self) -> str:
        """Peripheral device family: explicit override, else the cell
        technology's registered ``default_periphery`` trait."""
        if self.periph_device_type is not None:
            return self.periph_device_type
        return self.cell_tech.traits.default_periphery

    @property
    def tag_technology(self) -> CellTech:
        return self.tag_cell_tech if self.tag_cell_tech else self.cell_tech

    @property
    def sets(self) -> int:
        ways = self.associativity or 1
        return self.capacity_bytes // (self.block_bytes * ways)

    @property
    def tag_bits(self) -> int:
        """Tag width per block, including status bits."""
        index_bits = math.ceil(math.log2(max(self.sets, 2)))
        offset_bits = math.ceil(math.log2(self.block_bytes))
        return PHYSICAL_ADDRESS_BITS - index_bits - offset_bits + TAG_STATUS_BITS


@dataclass(frozen=True)
class OptimizationTarget:
    """Optimizer steering (paper section 2.4).

    Filtering proceeds in stages: candidates within ``max_area_fraction``
    of the best-area solution, then within ``max_acctime_fraction`` of the
    best access time among those, then ranked by the weighted sum of
    normalized dynamic energy, leakage power, random cycle time, and
    multisubbank interleave cycle time.
    """

    max_area_fraction: float = 0.5
    max_acctime_fraction: float = 0.5
    weight_dynamic: float = 1.0
    weight_leakage: float = 1.0
    weight_cycle: float = 1.0
    weight_interleave: float = 1.0
    max_repeater_delay_penalty: float = 0.0

    def __post_init__(self) -> None:
        if self.max_area_fraction < 0 or self.max_acctime_fraction < 0:
            raise ValueError("constraint fractions must be non-negative")
        weights = (
            self.weight_dynamic,
            self.weight_leakage,
            self.weight_cycle,
            self.weight_interleave,
        )
        if any(w < 0 for w in weights):
            raise ValueError("objective weights must be non-negative")
        if not any(weights):
            raise ValueError("at least one objective weight must be positive")


#: Optimization preset favouring density, used for commodity parts where
#: price per bit puts a premium on area efficiency (paper section 2.5).
DENSITY_OPTIMIZED = OptimizationTarget(
    max_area_fraction=0.02,
    max_acctime_fraction=0.5,
)

#: Optimization preset favouring energy and delay over capacity density
#: (the paper's "config ED" cache selections).
ENERGY_DELAY_OPTIMIZED = OptimizationTarget(
    max_area_fraction=0.7,
    max_acctime_fraction=0.1,
    weight_dynamic=2.0,
)
