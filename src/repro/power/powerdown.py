"""DRAM power-down modes (the paper's concluding suggestion).

The paper closes by observing that standby power dominates main-memory
power in memory-rich systems and that "appropriate use of DRAM power-down
modes, combined with supporting operating system policies, may
significantly reduce main memory power."  This module implements that
future-work item: the standard DDR power states, their per-chip standby
powers and wake latencies, and a policy model that converts an idle-time
distribution into average standby power and average added latency.

States follow the DDR taxonomy:

* ACTIVE_STANDBY -- banks open or clock running, full standby power;
* PRECHARGE_POWERDOWN -- CKE low with banks precharged, fast exit;
* SELF_REFRESH -- clock stopped, on-chip refresh, slowest exit, lowest
  power.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class PowerState(Enum):
    ACTIVE_STANDBY = "active-standby"
    PRECHARGE_POWERDOWN = "precharge-powerdown"
    SELF_REFRESH = "self-refresh"


#: Standby power relative to active standby, and exit latency, per state.
#: Fractions follow DDR3/DDR4 datasheet IDD ratios (IDD3N : IDD2P : IDD6).
STATE_POWER_FRACTION = {
    PowerState.ACTIVE_STANDBY: 1.00,
    PowerState.PRECHARGE_POWERDOWN: 0.35,
    PowerState.SELF_REFRESH: 0.12,
}

STATE_EXIT_LATENCY = {
    PowerState.ACTIVE_STANDBY: 0.0,
    PowerState.PRECHARGE_POWERDOWN: 10e-9,  # tXP-class
    PowerState.SELF_REFRESH: 500e-9,  # tXS-class
}


@dataclass(frozen=True)
class PowerDownPolicy:
    """Timeout-based power-state policy for one rank.

    After ``powerdown_timeout`` of idleness the rank enters precharge
    power-down; after ``self_refresh_timeout`` it drops to self-refresh.
    Disable a transition with ``None``.
    """

    powerdown_timeout: float | None = 100e-9
    self_refresh_timeout: float | None = 100e-6

    def state_for_idle(self, idle_time: float) -> PowerState:
        if (
            self.self_refresh_timeout is not None
            and idle_time >= self.self_refresh_timeout
        ):
            return PowerState.SELF_REFRESH
        if (
            self.powerdown_timeout is not None
            and idle_time >= self.powerdown_timeout
        ):
            return PowerState.PRECHARGE_POWERDOWN
        return PowerState.ACTIVE_STANDBY


@dataclass(frozen=True)
class PowerDownOutcome:
    """Average effect of a policy on one rank."""

    average_standby_power: float  #: W
    average_added_latency: float  #: s per request
    time_fractions: dict[PowerState, float]

    def savings_vs_active(self, active_standby_power: float) -> float:
        """Fractional standby-power saving vs always-active."""
        return 1.0 - self.average_standby_power / active_standby_power


def evaluate_policy(
    policy: PowerDownPolicy,
    active_standby_power: float,
    idle_intervals: list[float],
) -> PowerDownOutcome:
    """Average a policy over an observed idle-interval distribution.

    Each idle interval is spent in progressively deeper states as the
    timeouts expire; the next request pays the exit latency of whatever
    state the rank reached.
    """
    if not idle_intervals:
        return PowerDownOutcome(
            average_standby_power=active_standby_power,
            average_added_latency=0.0,
            time_fractions={PowerState.ACTIVE_STANDBY: 1.0},
        )

    total_time = 0.0
    weighted_power = 0.0
    added_latency = 0.0
    time_in_state = {state: 0.0 for state in PowerState}

    for idle in idle_intervals:
        boundaries = [(PowerState.ACTIVE_STANDBY, 0.0)]
        if policy.powerdown_timeout is not None:
            boundaries.append(
                (PowerState.PRECHARGE_POWERDOWN, policy.powerdown_timeout)
            )
        if policy.self_refresh_timeout is not None:
            boundaries.append(
                (PowerState.SELF_REFRESH, policy.self_refresh_timeout)
            )
        final_state = policy.state_for_idle(idle)
        for (state, start), nxt in zip(
            boundaries, boundaries[1:] + [(None, idle)]
        ):
            span = max(0.0, min(idle, nxt[1]) - start)
            time_in_state[state] += span
            weighted_power += (
                span * STATE_POWER_FRACTION[state] * active_standby_power
            )
        total_time += idle
        added_latency += STATE_EXIT_LATENCY[final_state]

    fractions = {
        state: t / total_time for state, t in time_in_state.items() if t > 0
    }
    return PowerDownOutcome(
        average_standby_power=weighted_power / total_time,
        average_added_latency=added_latency / len(idle_intervals),
        time_fractions=fractions,
    )


def idle_intervals_from_rate(
    request_rate: float, duration: float, num_intervals: int = 1000
) -> list[float]:
    """Exponential idle-gap distribution for a Poisson request stream.

    A convenience for studies that only know the average request rate:
    returns ``num_intervals`` quantile-sampled gaps of an exponential
    distribution with mean ``1/request_rate``.  The gaps represent the
    *distribution* (evaluate_policy weights states by time spent, so the
    sample size is immaterial); a non-positive rate returns one gap of
    the full ``duration``.
    """
    import math

    if request_rate <= 0:
        return [duration]
    mean_gap = 1.0 / request_rate
    return [
        -mean_gap * math.log(1.0 - (i + 0.5) / num_intervals)
        for i in range(num_intervals)
    ]
