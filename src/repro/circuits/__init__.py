"""Circuit models: logical effort, gates, decoders, sensing, wires."""

from repro.circuits.comparator import Comparator, way_select_delay
from repro.circuits.crossbar import CrossbarMetrics, design_crossbar
from repro.circuits.decoder import DecoderMetrics, WordlineLoad, design_decoder
from repro.circuits.drivers import ChainMetrics, WireLoad, build_chain
from repro.circuits.gates import Gate, folded_strip_area, horowitz, inverter, nand, nor
from repro.circuits.logical_effort import SizedPath, optimal_stages, size_path
from repro.circuits.repeaters import (
    RepeatedWireDesign,
    optimal_repeated_wire,
    repeated_wire,
)
from repro.circuits.senseamp import SenseAmp, charge_share_signal

__all__ = [
    "ChainMetrics",
    "Comparator",
    "CrossbarMetrics",
    "DecoderMetrics",
    "Gate",
    "RepeatedWireDesign",
    "SenseAmp",
    "SizedPath",
    "WireLoad",
    "WordlineLoad",
    "build_chain",
    "charge_share_signal",
    "design_crossbar",
    "design_decoder",
    "folded_strip_area",
    "horowitz",
    "inverter",
    "nand",
    "nor",
    "optimal_repeated_wire",
    "optimal_stages",
    "repeated_wire",
    "size_path",
    "way_select_delay",
]
