"""AST lint: no hard-coded cell-technology branches outside the registry.

The technology axis is pluggable: every per-technology behavior lives in
``repro.tech`` as a :class:`~repro.tech.registry.CellTraits` field, and
model code dispatches on traits.  A branch like ``if spec.cell_tech is
CellTech.LP_DRAM`` or ``if cell.is_dram`` silently breaks the next
registered technology (it worked for the triad, falls through for
stt-ram), so this lint fails CI when one reappears.

Flagged outside ``src/repro/tech/``:

* any comparison (``is``, ``is not``, ``==``, ``!=``, ``in``,
  ``not in``) with an operand that is a ``CellTech`` attribute
  (``CellTech.SRAM``, ``cells.CellTech.LP_DRAM``, ...),
* any ``.is_dram`` attribute access.

Plain *uses* of a ``CellTech`` attribute (constructing a spec with
``cell_tech=CellTech.SRAM``) are fine -- naming a technology is not
branching on one.  Tests are also exempt: they pin specific
technologies to assert specific numbers.

Usage::

    python tools/lint_tech_branches.py [ROOT ...]

Exits 0 when clean, 1 with a ``path:line: message`` report otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Directory whose modules are allowed to branch on technology: the
#: registry itself and the trait/cell definitions that feed it.
ALLOWED_PREFIX = ("src", "repro", "tech")

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


def _is_celltech_attribute(node: ast.AST) -> bool:
    """``CellTech.X`` or ``<module>.CellTech.X``."""
    if not isinstance(node, ast.Attribute):
        return False
    value = node.value
    if isinstance(value, ast.Name):
        return value.id == "CellTech"
    if isinstance(value, ast.Attribute):
        return value.attr == "CellTech"
    return False


class _TechBranchFinder(ast.NodeVisitor):
    def __init__(self, path: Path):
        self.path = path
        self.problems: list[tuple[Path, int, str]] = []

    def _report(self, node: ast.AST, message: str) -> None:
        self.problems.append((self.path, node.lineno, message))

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        # ``x in (CellTech.A, CellTech.B)`` hides the members one level
        # down in a container literal.
        for op in list(operands):
            if isinstance(op, (ast.Tuple, ast.List, ast.Set)):
                operands.extend(op.elts)
        if any(_is_celltech_attribute(op) for op in operands):
            self._report(
                node,
                "comparison against a CellTech member; dispatch on "
                "cell_tech.traits instead",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "is_dram":
            self._report(
                node,
                ".is_dram branch; query the specific trait "
                "(traits.sensing, traits.needs_refresh, ...) instead",
            )
        self.generic_visit(node)


def _is_allowed(path: Path) -> bool:
    parts = path.parts
    for i in range(len(parts) - len(ALLOWED_PREFIX) + 1):
        if parts[i:i + len(ALLOWED_PREFIX)] == ALLOWED_PREFIX:
            return True
    return False


def lint_file(path: Path) -> list[tuple[Path, int, str]]:
    tree = ast.parse(path.read_text(), filename=str(path))
    finder = _TechBranchFinder(path)
    finder.visit(tree)
    return finder.problems


def lint(roots: list[Path]) -> list[tuple[Path, int, str]]:
    problems = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            if _is_allowed(path.resolve()):
                continue
            problems.extend(lint_file(path))
    return problems


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv] or [DEFAULT_ROOT]
    problems = lint(roots)
    for path, line, message in problems:
        print(f"{path}:{line}: {message}")
    if problems:
        print(f"{len(problems)} technology branch(es) outside repro/tech")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
