"""Unit tests for the staged solution optimizer (paper section 2.4)."""

import pytest

from repro.array.organization import ArraySpec, EvalCache
from repro.core.config import OptimizationTarget
from repro.core.optimizer import (
    NoFeasibleSolution,
    SweepStats,
    feasible_designs,
    filter_constraints,
    optimize,
    pareto_solutions,
    rank,
    rank_floors,
)
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)

SPEC = ArraySpec(
    capacity_bits=8 * (256 << 10),  # 256 KB
    output_bits=512,
    assoc=8,
    cell_tech=CellTech.SRAM,
    periph_device_type="hp-long-channel",
)


@pytest.fixture(scope="module")
def designs():
    return feasible_designs(TECH, SPEC)


class TestFeasibleDesigns:
    def test_multiple_solutions(self, designs):
        assert len(designs) > 5

    def test_tradeoffs_exist(self, designs):
        """The solution cloud spans meaningful area and delay ranges."""
        areas = [d.area for d in designs]
        times = [d.t_access for d in designs]
        assert max(areas) > 1.2 * min(areas)
        assert max(times) > 1.5 * min(times)

    def test_infeasible_spec_raises(self):
        tiny = ArraySpec(
            capacity_bits=512,
            output_bits=512,
            assoc=1,
            cell_tech=CellTech.SRAM,
        )
        with pytest.raises(NoFeasibleSolution):
            feasible_designs(TECH, tiny)


class TestStagedFiltering:
    def test_area_constraint_respected(self, designs):
        target = OptimizationTarget(max_area_fraction=0.2)
        kept = filter_constraints(designs, target)
        best_area = min(d.area for d in designs)
        assert all(d.area <= best_area * 1.2 + 1e-18 for d in kept)

    def test_acctime_constraint_is_relative_to_area_filtered_set(self,
                                                                 designs):
        """The access-time filter applies within the area-filtered set,
        not the full cloud -- the staged semantics of section 2.4."""
        target = OptimizationTarget(max_area_fraction=0.1,
                                    max_acctime_fraction=0.05)
        kept = filter_constraints(designs, target)
        best_area = min(d.area for d in designs)
        within_area = [d for d in designs if d.area <= best_area * 1.1]
        best_t = min(d.t_access for d in within_area)
        assert all(d.t_access <= best_t * 1.05 + 1e-18 for d in kept)
        assert kept

    def test_loose_constraints_keep_everything(self, designs):
        target = OptimizationTarget(max_area_fraction=1e9,
                                    max_acctime_fraction=1e9)
        assert len(filter_constraints(designs, target)) == len(designs)


class TestEmptyDesignLists:
    def test_filter_constraints_empty_raises_no_feasible(self):
        with pytest.raises(NoFeasibleSolution):
            filter_constraints([], OptimizationTarget())

    def test_rank_empty_raises_no_feasible(self):
        with pytest.raises(NoFeasibleSolution):
            rank([], OptimizationTarget())


class TestSweepStats:
    def test_counters_account_for_every_candidate(self):
        stats = SweepStats()
        designs = feasible_designs(TECH, SPEC, stats=stats)
        assert stats.enumerated > 0
        assert stats.enumerated == stats.prefiltered + stats.built
        assert stats.feasible == len(designs)
        assert stats.built == stats.feasible + stats.infeasible_at_build

    def test_eval_cache_hits_counted(self):
        stats = SweepStats()
        cache = EvalCache()
        feasible_designs(TECH, SPEC, cache=cache, stats=stats)
        assert stats.subarray_hits + stats.subarray_misses == stats.built
        assert stats.subarray_hits > 0
        assert stats.htree_hits > 0
        assert 0.0 < stats.subarray_hit_rate < 1.0

    def test_stats_accumulate_across_solves(self):
        stats = SweepStats()
        optimize(TECH, SPEC, OptimizationTarget(), stats=stats)
        first = stats.enumerated
        optimize(TECH, SPEC, OptimizationTarget(), stats=stats)
        assert stats.enumerated == 2 * first
        assert stats.wall_time_s > 0.0

    def test_summary_and_dict_expose_counts(self):
        stats = SweepStats()
        optimize(TECH, SPEC, OptimizationTarget(), stats=stats)
        text = stats.summary()
        assert "candidates enumerated" in text
        assert "wall time" in text
        d = stats.as_dict()
        assert d["enumerated"] == stats.enumerated
        assert "subarray_hit_rate" in d

    def test_shared_eval_cache_speeds_second_solve(self):
        cache = EvalCache()
        feasible_designs(TECH, SPEC, cache=cache)
        misses = cache.subarray_misses
        feasible_designs(TECH, SPEC, cache=cache)
        # Second identical sweep creates no new subarray designs.
        assert cache.subarray_misses == misses


class TestRanking:
    def test_rank_orders_by_weighted_objective(self, designs):
        target = OptimizationTarget()
        ranked = rank(designs, target)
        assert len(ranked) == len(designs)
        # The first element minimizes the score by construction; spot-check
        # that the ordering is consistent for a recomputed score.
        min_dyn = min(d.e_read_access for d in designs)
        min_leak = min(d.p_leakage + d.p_refresh for d in designs)
        min_cyc = min(d.t_random_cycle for d in designs)
        min_int = min(d.t_interleave for d in designs)

        def score(d):
            return (
                d.e_read_access / min_dyn
                + (d.p_leakage + d.p_refresh) / min_leak
                + d.t_random_cycle / min_cyc
                + d.t_interleave / min_int
            )

        scores = [score(d) for d in ranked]
        assert scores == sorted(scores)

    def test_rank_floors_match_per_metric_minima(self, designs):
        min_dyn, min_leak, min_cyc, min_int = rank_floors(designs)
        assert min_dyn == min(d.e_read_access for d in designs)
        assert min_leak == min(d.p_leakage + d.p_refresh for d in designs)
        assert min_cyc == min(d.t_random_cycle for d in designs)
        assert min_int == min(d.t_interleave for d in designs)

    def test_rank_floors_clamp_nonpositive_minima(self, designs):
        import dataclasses

        refresh_free = [
            dataclasses.replace(d, p_refresh=0.0, p_leakage=0.0)
            for d in designs[:3]
        ]
        floors = rank_floors(refresh_free)
        assert floors[1] == 1e-30

    def test_rank_floors_empty_raises_no_feasible(self):
        with pytest.raises(NoFeasibleSolution):
            rank_floors([])

    def test_precomputed_floors_leave_ranking_unchanged(self, designs):
        """The hoisted-floors fast path must reproduce the recomputing
        path's ordering exactly (same objects, same order)."""
        target = OptimizationTarget(weight_leakage=3.0, weight_cycle=2.0)
        baseline = rank(designs, target)
        hoisted = rank(designs, target, floors=rank_floors(designs))
        assert [id(d) for d in hoisted] == [id(d) for d in baseline]

    def test_weights_steer_selection(self, designs):
        """Cranking the leakage weight must not pick a leakier design than
        cranking the dynamic-energy weight picks."""
        leak_first = rank(
            designs, OptimizationTarget(weight_leakage=50.0)
        )[0]
        dyn_first = rank(
            designs, OptimizationTarget(weight_dynamic=50.0)
        )[0]
        assert leak_first.p_leakage <= dyn_first.p_leakage * 1.001


class TestOptimize:
    def test_returns_single_best(self):
        best = optimize(TECH, SPEC, OptimizationTarget())
        assert best.t_access > 0

    def test_pareto_solutions_sorted_and_bounded(self):
        target = OptimizationTarget(max_area_fraction=0.3)
        cloud = pareto_solutions(TECH, SPEC, target)
        assert len(cloud) >= 1
        best_area = min(d.area for d in feasible_designs(TECH, SPEC))
        assert all(d.area <= best_area * 1.3 + 1e-18 for d in cloud)

    def test_repeater_penalty_threads_through(self):
        loose = optimize(
            TECH, SPEC,
            OptimizationTarget(max_repeater_delay_penalty=0.5),
        )
        assert loose.spec.max_repeater_delay_penalty == 0.5
