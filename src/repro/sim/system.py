"""The simulated system: 8 multithreaded cores, private L1/L2 with MESI,
an optional shared 8-banked stacked L3 behind a crossbar, and dual-channel
main memory (paper Figure 2).

The simulator is trace-driven and event-ordered: the thread with the
earliest local clock executes its next workload event; shared resources
(L3 banks, crossbar ports, DRAM banks, channel buses) are busy-time
queues.  Synchronization (barriers, locks) follows the COTSon-style
constraint replay the paper describes.

Capacities can be scaled down by ``scale`` (with workloads scaled to
match) so runs finish in seconds of Python while preserving the
capacity/locality relationships that drive the paper's results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.dram.page_policy import PagePolicy
from repro.sim.cache import Cache, CacheConfig, MesiState
from repro.sim.coherence import MesiDirectory
from repro.sim.core import Event, ThreadContext
from repro.sim.dram_channel import MemoryController, MemoryTimingCycles
from repro.sim.interconnect import Crossbar
from repro.sim.stats import AccessCounters, SimStats

#: Latency of an L2 cache-to-cache transfer beyond the L2 hit time.
_C2C_EXTRA_CYCLES = 8


@dataclass(frozen=True)
class L3Config:
    """The shared stacked L3 as the simulator sees it.

    With ``subbanks`` > 1 the multisubbank interleaving of paper section
    2.3.4 is modeled explicitly: accesses to *different* subbanks of a
    bank pitch at ``bank_cycle`` (the interleave cycle), while a second
    access to a *busy subbank* waits out ``subbank_cycle`` (the random
    cycle -- for DRAM, the full destructive-read row cycle).
    """

    capacity_bytes: int
    associativity: int
    access_cycles: int  #: bank access latency (CPU cycles, Table 3)
    bank_cycle: int  #: issue pitch per bank (interleave cycle)
    nbanks: int = 8
    block_bytes: int = 64
    subbanks: int = 1  #: subbanks per bank sharing the address/data bus
    subbank_cycle: int = 0  #: same-subbank reuse pitch (random cycle)


@dataclass(frozen=True)
class SystemConfig:
    """Everything the timing simulator needs for one system configuration."""

    name: str
    l1: CacheConfig
    l2: CacheConfig
    l3: L3Config | None
    memory: MemoryTimingCycles
    num_cores: int = 8
    threads_per_core: int = 4
    crossbar_cycles: int = 2
    cpu_hz: float = 2e9
    page_policy: PagePolicy | None = None  #: default: closed page

    @property
    def num_threads(self) -> int:
        return self.num_cores * self.threads_per_core


class System:
    """One simulated machine executing one multithreaded workload."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.l1s = [Cache(config.l1) for _ in range(config.num_cores)]
        self.l2s = [Cache(config.l2) for _ in range(config.num_cores)]
        self.directory = MesiDirectory(self.l2s, config.l2.block_bytes)
        self.l3: Cache | None = None
        self._l3_bank_ready: list[float] = []
        self._l3_subbank_ready: list[list[float]] = []
        if config.l3 is not None:
            self.l3 = Cache(
                CacheConfig(
                    capacity_bytes=config.l3.capacity_bytes,
                    block_bytes=config.l3.block_bytes,
                    associativity=config.l3.associativity,
                    access_cycles=config.l3.access_cycles,
                    cycle_time=config.l3.bank_cycle,
                )
            )
            self._l3_bank_ready = [0.0] * config.l3.nbanks
            self._l3_subbank_ready = [
                [0.0] * max(config.l3.subbanks, 1)
                for _ in range(config.l3.nbanks)
            ]
        self.crossbar = Crossbar(traverse_cycles=config.crossbar_cycles)
        self.memory = MemoryController(config.memory,
                                       policy=config.page_policy)
        self.counters = AccessCounters()
        self._locks: dict[int, float] = {}
        self._barrier_arrivals: list[ThreadContext] = []
        self._lat_sum = 0.0
        self._lat_count = 0

    # ------------------------------------------------------------------ #
    # Memory hierarchy walk

    def _l3_bank(self, address: int) -> int:
        assert self.config.l3 is not None
        line = address // self.config.l3.block_bytes
        return line % self.config.l3.nbanks

    def _access_l3(self, now: float, address: int, is_write: bool
                   ) -> tuple[float, bool]:
        """Crossbar + L3 bank access; returns (latency, hit)."""
        assert self.l3 is not None and self.config.l3 is not None
        bank = self._l3_bank(address)
        arrive = self.crossbar.traverse(now, bank)
        self.counters.crossbar_transfers += 1
        start = max(arrive, self._l3_bank_ready[bank])
        cfg = self.config.l3
        if cfg.subbanks > 1 and cfg.subbank_cycle > cfg.bank_cycle:
            # Multisubbank interleaving: the shared bus pitches at the
            # interleave cycle, but a busy subbank (mid row-cycle) stalls
            # the request for the remainder of its random cycle.
            sub = (address // cfg.block_bytes // cfg.nbanks) % cfg.subbanks
            ready = self._l3_subbank_ready[bank]
            start = max(start, ready[sub])
            ready[sub] = start + cfg.subbank_cycle
        self._l3_bank_ready[bank] = start + cfg.bank_cycle
        line = self.l3.access(address, is_write)
        finish = start + self.config.l3.access_cycles
        if is_write:
            self.counters.l3_writes += 1
        else:
            self.counters.l3_reads += 1
        latency = finish + self.config.crossbar_cycles - now
        return latency, line is not None

    def _memory_access(self, now: float, address: int, is_write: bool
                       ) -> float:
        return self.memory.access(now, address, is_write)

    def _fill_l3(self, address: int) -> None:
        assert self.l3 is not None
        victim = self.l3.fill(address, MesiState.EXCLUSIVE)
        if victim is not None:
            victim_addr, dirty = victim
            # Inclusive L3: back-invalidate the private caches.
            for core, l2 in enumerate(self.l2s):
                if l2.invalidate(victim_addr):
                    dirty = True
                self.directory.evicted(core, victim_addr)
                self.l1s[core].invalidate(victim_addr)
            if dirty:
                self.memory.access(0.0, victim_addr, True)

    def _fill_l2(self, core: int, address: int, state: MesiState) -> None:
        victim = self.l2s[core].fill(address, state)
        if victim is not None:
            victim_addr, dirty = victim
            self.directory.evicted(core, victim_addr)
            self.l1s[core].invalidate(victim_addr)
            if dirty:
                if self.l3 is not None:
                    line = self.l3.lookup(victim_addr)
                    if line is not None:
                        line.state = MesiState.MODIFIED
                        self.counters.l3_writes += 1
                    else:
                        self.memory.access(0.0, victim_addr, True)
                else:
                    self.memory.access(0.0, victim_addr, True)

    def service_memory_request(
        self, thread: ThreadContext, address: int, is_write: bool
    ) -> None:
        """Walk the hierarchy for one reference, charging the thread."""
        core = thread.core_id
        now = thread.time
        l1 = self.l1s[core]
        if is_write:
            self.counters.l1_writes += 1
        else:
            self.counters.l1_reads += 1

        l1_line = l1.access(address, is_write)
        if l1_line is not None and not (
            is_write and l1_line.state is MesiState.SHARED
        ):
            # L1 hit: the stall is hidden by the pipeline, but the hit
            # still counts toward the average read latency of Figure 4(a).
            self._read_latency(
                thread, float(self.config.l1.access_cycles), is_write
            )
            return

        # L1 miss (or write upgrade): go to the private L2.
        latency = float(self.config.l1.access_cycles)
        if is_write:
            self.counters.l2_writes += 1
        else:
            self.counters.l2_reads += 1
        l2_line = self.l2s[core].access(address, is_write)
        upgrade_needed = (
            is_write
            and l2_line is not None
            and l2_line.state is MesiState.SHARED
        )
        if l2_line is not None and not upgrade_needed:
            latency += self.config.l2.access_cycles
            thread.breakdown.l2 += latency
            thread.time += latency
            self._read_latency(thread, latency, is_write)
            l1.fill(address, l2_line.state)
            return

        latency += self.config.l2.access_cycles  # miss detection
        if upgrade_needed:
            outcome = self.directory.write(core, address)
            self.counters.coherence_invalidations += outcome.invalidated
            self.l2s[core].set_state(address, MesiState.MODIFIED)
            latency += _C2C_EXTRA_CYCLES
            thread.breakdown.l2 += latency
            thread.time += latency
            self._read_latency(thread, latency, is_write)
            l1.fill(address, MesiState.MODIFIED)
            return

        # True L2 miss: resolve coherence among peers.
        outcome = (
            self.directory.write(core, address)
            if is_write
            else self.directory.read(core, address)
        )
        self.counters.coherence_invalidations += outcome.invalidated
        if outcome.source_core is not None:
            # Cache-to-cache transfer between private L2s.
            c2c = self.config.l2.access_cycles + _C2C_EXTRA_CYCLES
            latency += c2c
            thread.breakdown.l2 += latency
            thread.time += latency
            self._read_latency(thread, latency, is_write)
            state = (
                MesiState.MODIFIED if is_write else MesiState.SHARED
            )
            self._fill_l2(core, address, state)
            self.l1s[core].fill(address, state)
            return

        # Go to the L3 (or straight to memory).
        if self.l3 is not None:
            l3_latency, hit = self._access_l3(
                thread.time + latency, address, is_write
            )
            latency += l3_latency
            if hit:
                thread.breakdown.l3 += latency
            else:
                mem_latency = self._memory_access(
                    thread.time + latency, address, is_write
                )
                latency += mem_latency + self.config.crossbar_cycles
                thread.breakdown.memory += latency
                self._fill_l3(address)
        else:
            mem_latency = self._memory_access(
                thread.time + latency, address, is_write
            )
            latency += mem_latency
            thread.breakdown.memory += latency

        thread.time += latency
        self._read_latency(thread, latency, is_write)
        state = self.directory.state_for_fill(core, address, is_write)
        self._fill_l2(core, address, state)
        self.l1s[core].fill(address, state)

    def _read_latency(self, thread: ThreadContext, latency: float,
                      is_write: bool) -> None:
        if not is_write:
            self._lat_sum += latency
            self._lat_count += 1

    # ------------------------------------------------------------------ #
    # Execution loop

    def run(self, event_streams: list[Iterator[Event]]) -> SimStats:
        """Execute one event stream per hardware thread to completion."""
        config = self.config
        if len(event_streams) != config.num_threads:
            raise ValueError(
                f"need {config.num_threads} event streams, got "
                f"{len(event_streams)}"
            )
        threads = [
            ThreadContext(
                thread_id=i,
                core_id=i // config.threads_per_core,
                events=iter(stream),
            )
            for i, stream in enumerate(event_streams)
        ]
        self._lat_sum = 0.0
        self._lat_count = 0

        heap = [(t.time, t.thread_id) for t in threads]
        heapq.heapify(heap)
        runnable = len(threads)

        while heap:
            _, tid = heapq.heappop(heap)
            thread = threads[tid]
            if thread.done or thread.waiting_barrier:
                continue
            event = next(thread.events, None)
            if event is None:
                thread.done = True
                runnable -= 1
                self._maybe_release_barrier(threads, heap)
                continue
            kind = event[0]
            if kind == "step":
                _, instructions, cycles, address, is_write = event
                thread.retire(instructions, cycles)
                self.service_memory_request(thread, address, is_write)
            elif kind == "compute":
                _, instructions, cycles = event
                thread.retire(instructions, cycles)
            elif kind == "mem":
                _, address, is_write = event
                self.service_memory_request(thread, address, is_write)
            elif kind == "barrier":
                thread.waiting_barrier = True
                self._barrier_arrivals.append(thread)
                self._maybe_release_barrier(threads, heap)
                continue
            elif kind == "lock":
                _, lock_id, hold = event
                ready = self._locks.get(lock_id, 0.0)
                wait = max(0.0, ready - thread.time)
                thread.breakdown.lock += wait
                thread.time += wait + hold
                thread.breakdown.instruction += hold
                self._locks[lock_id] = thread.time
            else:
                raise ValueError(f"unknown workload event {kind!r}")
            heapq.heappush(heap, (thread.time, tid))

        return self._collect(threads)

    def _maybe_release_barrier(
        self, threads: list[ThreadContext], heap: list
    ) -> None:
        waiting = self._barrier_arrivals
        pending = [t for t in threads if not t.done and not t.waiting_barrier]
        if pending or not waiting:
            return
        release = max(t.time for t in waiting)
        for t in waiting:
            t.breakdown.barrier += release - t.time
            t.time = release
            t.waiting_barrier = False
            heapq.heappush(heap, (t.time, t.thread_id))
        self._barrier_arrivals = []

    def _collect(self, threads: list[ThreadContext]) -> SimStats:
        stats = SimStats()
        stats.cycles = max(t.time for t in threads)
        stats.instructions = sum(t.instructions for t in threads)
        for t in threads:
            stats.breakdown.add(t.breakdown)
        stats.counters = self.counters
        stats.counters.mem_activates = self.memory.stats.activates
        stats.counters.mem_reads = self.memory.stats.reads
        stats.counters.mem_writes = self.memory.stats.writes
        stats.read_latency_sum = self._lat_sum
        stats.read_count = self._lat_count
        return stats


def run_workload(
    config: SystemConfig,
    stream_factory: Callable[[int], Iterator[Event]],
) -> SimStats:
    """Convenience: build a system and run one stream per thread."""
    system = System(config)
    streams = [stream_factory(i) for i in range(config.num_threads)]
    return system.run(streams)
