"""LLC study runner: executes app x configuration and aggregates results.

Produces the data behind paper Figures 4(a), 4(b), 5(a), and 5(b): IPC
and average read latency, normalized execution-cycle breakdowns,
memory-hierarchy power breakdowns, and normalized system energy-delay.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import partial

from repro.core import parallel
from repro.core.resilience import ResiliencePolicy, TaskFailure, task_key
from repro.obs import Obs, maybe_span
from repro.power.hierarchy import PowerBreakdown, hierarchy_power
from repro.power.system import SystemPower, scaled_core_power
from repro.sim.stats import SimStats
from repro.sim.system import run_workload
from repro.study.table3 import (
    CONFIG_NAMES,
    CPU_HZ,
    build_energy_model,
    build_system_config,
)
from repro.workloads.npb import NPB_PROFILES
from repro.workloads.synthetic import WorkloadProfile, event_stream

#: Default capacity-scaling factor for tractable pure-Python runs.
DEFAULT_SCALE = 16


@dataclass(frozen=True)
class RunResult:
    """One (application, configuration) outcome."""

    app: str
    config: str
    stats: SimStats
    power: PowerBreakdown
    system: SystemPower

    @property
    def ipc(self) -> float:
        return self.stats.ipc

    @property
    def execution_seconds(self) -> float:
        return self.stats.cycles / CPU_HZ


@dataclass(frozen=True)
class StudyResult:
    """The full app x config matrix.

    Under a skip/retry :class:`~repro.core.resilience.ResiliencePolicy`
    the matrix may be partial: cells whose tasks failed terminally are
    absent from ``results`` and recorded as
    :class:`~repro.core.resilience.TaskFailure` entries in ``failed``.
    """

    results: dict[tuple[str, str], RunResult]
    config_names: tuple[str, ...]
    app_names: tuple[str, ...]
    failed: tuple[TaskFailure, ...] = ()

    def get(self, app: str, config: str) -> RunResult:
        return self.results[(app, config)]

    def normalized_cycles(self, app: str, config: str) -> float:
        """Execution cycles relative to the nol3 baseline (Figure 4b)."""
        base = self.get(app, "nol3").stats.cycles
        return self.get(app, config).stats.cycles / base

    def normalized_energy_delay(self, app: str, config: str) -> float:
        """System energy-delay relative to nol3 (Figure 5b)."""
        base = self.get(app, "nol3").system.energy_delay
        return self.get(app, config).system.energy_delay / base

    def mean_execution_reduction(self, config: str) -> float:
        """Average execution-time reduction vs nol3 across apps."""
        ratios = [
            self.normalized_cycles(app, config) for app in self.app_names
        ]
        return 1.0 - sum(ratios) / len(ratios)

    def mean_energy_delay_improvement(self, config: str) -> float:
        ratios = [
            self.normalized_energy_delay(app, config)
            for app in self.app_names
        ]
        return 1.0 - sum(ratios) / len(ratios)

    def mean_hierarchy_power_increase(self, config: str) -> float:
        """Average memory-hierarchy power increase vs nol3 (Figure 5a)."""
        increases = []
        for app in self.app_names:
            base = self.get(app, "nol3").power.total
            increases.append(self.get(app, config).power.total / base - 1.0)
        return sum(increases) / len(increases)


def run_one(
    profile: WorkloadProfile,
    config_name: str,
    source: str = "paper",
    scale: int = DEFAULT_SCALE,
    seed: int = 1234,
    config=None,
    energy_model=None,
    cachedb=None,
) -> RunResult:
    """Simulate one application on one configuration.

    ``config`` and ``energy_model`` accept pre-built objects so a study
    matrix builds each configuration once, not once per application.
    ``cachedb`` (a :class:`~repro.cachedb.CacheDB`) serves the
    ``source="cacti"`` solves from the precomputed database when they
    are on its grid.
    """
    if config is None:
        config = build_system_config(
            config_name, source=source, scale=scale, cachedb=cachedb
        )
    scaled_profile = profile.scaled(scale)
    stats = run_workload(
        config,
        partial(
            event_stream,
            scaled_profile,
            num_threads=config.num_threads,
            seed=seed,
        ),
    )
    duration = stats.cycles / CPU_HZ
    if energy_model is None:
        energy_model = build_energy_model(
            config_name, source=source, cachedb=cachedb
        )
    breakdown = hierarchy_power(energy_model, stats, duration)
    system = SystemPower(
        core=scaled_core_power(),
        memory_hierarchy=breakdown,
        execution_time=duration,
    )
    return RunResult(
        app=profile.name,
        config=config_name,
        stats=stats,
        power=breakdown,
        system=system,
    )


#: Per-process memo of built configurations and energy models, so a
#: worker builds each configuration once no matter how many apps it
#: simulates (the serial path gets the same reuse via the dicts below).
_TASK_CONFIGS: dict = {}
_TASK_ENERGY_MODELS: dict = {}


def _run_one_task(payload: tuple) -> RunResult:
    """Worker task: one (application, configuration) cell of the matrix.

    Simulation is fully seeded, so the result is identical no matter
    which process runs the cell.  ``cachedb_path`` travels as a path
    (readers are not picklable) and is opened once per process through
    the reader memo.
    """
    profile, config_name, source, scale, seed, cachedb_path = payload
    cachedb = None
    if cachedb_path is not None:
        from repro.cachedb import open_cachedb

        cachedb = open_cachedb(cachedb_path)
    config_key = (config_name, source, scale, cachedb_path)
    config = _TASK_CONFIGS.get(config_key)
    if config is None:
        config = build_system_config(
            config_name, source=source, scale=scale, cachedb=cachedb
        )
        _TASK_CONFIGS[config_key] = config
    energy_key = (config_name, source, cachedb_path)
    energy_model = _TASK_ENERGY_MODELS.get(energy_key)
    if energy_model is None:
        energy_model = build_energy_model(
            config_name, source=source, cachedb=cachedb
        )
        _TASK_ENERGY_MODELS[energy_key] = energy_model
    return run_one(
        profile,
        config_name,
        source=source,
        scale=scale,
        seed=seed,
        config=config,
        energy_model=energy_model,
    )


def run_study(
    profiles: tuple[WorkloadProfile, ...] = NPB_PROFILES,
    configs: tuple[str, ...] = CONFIG_NAMES,
    source: str = "paper",
    scale: int = DEFAULT_SCALE,
    instructions_per_thread: int | None = None,
    seed: int = 1234,
    jobs: int | str = 1,
    obs: Obs | None = None,
    resilience: ResiliencePolicy | None = None,
    stats=None,
    cachedb=None,
) -> StudyResult:
    """Run the full study matrix.

    Each configuration (and its energy model, which may invoke the
    CACTI-D solver when ``source="cacti"``) is built once per process
    and shared across all applications.  ``jobs > 1`` runs the
    app x config cells concurrently in worker processes; every cell's
    simulation is seeded, so the matrix is identical at any job count.
    ``obs`` traces the matrix (one ``study.cell`` span per cell when
    serial, one enclosing span when parallel) and counts cells run.

    ``resilience`` makes the matrix fault tolerant: failed cells are
    retried/skipped/raised per the policy, a journal checkpoints each
    completed cell so an interrupted matrix resumed against the same
    journal re-runs only the unfinished cells, and terminal failures
    land in ``StudyResult.failed`` instead of aborting the run.
    ``stats`` (a :class:`~repro.core.optimizer.SweepStats`) accumulates
    the resilience counters (retries, timeouts, failures, rebuilds).
    ``cachedb`` (an artifact path) serves each worker's
    ``source="cacti"`` solves from the precomputed database.

    Duplicate profile names or repeated configuration names would
    silently overwrite each other's matrix cells, so both raise.
    """
    if instructions_per_thread is not None:
        profiles = tuple(
            p.with_instructions(instructions_per_thread) for p in profiles
        )
    names = [p.name for p in profiles]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate profile names in study: {dupes}")
    if len(set(configs)) != len(configs):
        dupes = sorted({c for c in configs if tuple(configs).count(c) > 1})
        raise ValueError(f"duplicate configurations in study: {dupes}")
    cachedb_path = os.fspath(cachedb) if cachedb is not None else None
    payloads = [
        (profile, config_name, source, scale, seed, cachedb_path)
        for profile in profiles
        for config_name in configs
    ]
    # Cell-level parallelism is coarse: ``auto`` only needs two cells
    # (and more than one core) to be worth a pool.
    jobs = parallel.effective_jobs(jobs, len(payloads), min_tasks=2)
    keys = None
    if resilience is not None and resilience.journal is not None:
        # The cachedb serves bit-identical results, so it is not part
        # of a cell's identity: journals written without one resume
        # runs that use one, and vice versa.
        keys = [
            task_key(
                "study.cell",
                {
                    "profile": profile,
                    "config": config_name,
                    "source": source,
                    "scale": scale,
                    "seed": seed,
                },
            )
            for profile, config_name, source, scale, seed, _ in payloads
        ]
    with maybe_span(
        obs,
        "study",
        apps=len(profiles),
        configs=len(configs),
        cells=len(payloads),
        jobs=jobs,
    ):
        outcomes = parallel.parallel_map(
            _run_one_task,
            payloads,
            jobs,
            obs=obs,
            span_name="study.cell",
            resilience=resilience,
            keys=keys,
            stats=stats,
        )
    if obs is not None:
        obs.inc("study.cells", len(payloads))
    results = {}
    failures = []
    for (profile, config_name, *_), outcome in zip(payloads, outcomes):
        if isinstance(outcome, TaskFailure):
            failures.append(outcome)
            continue
        results[(profile.name, config_name)] = outcome
    return StudyResult(
        results=results,
        config_names=tuple(configs),
        app_names=tuple(p.name for p in profiles),
        failed=tuple(failures),
    )
