"""Ablation: where do a DRAM cache's tags live?

The paper's DRAM L3s store tags in the same technology as the data (a
giant 192 MB cache carries ~10 MB of tags -- too large for SRAM within
the stacking budget); Black et al.'s earlier stacked-DRAM study kept SRAM
tags on the core die instead.  This bench quantifies the choice for the
192 MB COMM-DRAM L3: access time (tags gate the way select), leakage
(SRAM tags leak), and area.
"""

from conftest import print_table

from repro.core.cacti import solve
from repro.core.config import DENSITY_OPTIMIZED, MemorySpec
from repro.tech.cells import CellTech


def solve_tag_options():
    out = {}
    for tag_tech in (None, CellTech.SRAM, CellTech.LP_DRAM):
        spec = MemorySpec(
            capacity_bytes=192 << 20,
            block_bytes=64,
            associativity=24,
            nbanks=8,
            node_nm=32.0,
            cell_tech=CellTech.COMM_DRAM,
            tag_cell_tech=tag_tech,
        )
        label = (tag_tech.value if tag_tech else "comm-dram (paper)")
        out[label] = solve(spec, DENSITY_OPTIMIZED)
    return out


def test_tag_technology(benchmark):
    solutions = benchmark.pedantic(solve_tag_options, rounds=1,
                                   iterations=1)
    rows = []
    for label, s in solutions.items():
        rows.append([
            label,
            f"{s.tag.t_access * 1e9:.2f}",
            f"{s.access_time * 1e9:.2f}",
            f"{s.tag.p_leakage:.3f}",
            f"{s.tag.area * 1e6:.2f}",
        ])
    print_table(
        "Tag technology for the 192 MB COMM-DRAM L3",
        ["tags in", "tag access ns", "cache access ns", "tag leak W",
         "tag area mm2"],
        rows,
    )

    comm = solutions["comm-dram (paper)"]
    sram = solutions["sram"]
    # SRAM tags are much faster to probe...
    assert sram.tag.t_access < comm.tag.t_access
    # ...but leak orders of magnitude more than LSTP-periphery tags.
    assert sram.tag.p_leakage > 20 * comm.tag.p_leakage
    # Tag arrays are megabyte-scale at 192 MB: a real budget item.
    assert comm.tag.area > 0.5e-6  # > 0.5 mm^2
