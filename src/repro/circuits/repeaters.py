"""Optimally repeated wires, with the max-repeater-delay derating knob.

Long H-tree and crossbar wires are driven through inserted repeaters.  The
classic closed forms give the delay-optimal repeater size and spacing; the
``max_repeater_delay_penalty`` optimization variable (paper section 2.4)
lets the optimizer trade delay for energy by shrinking and spreading the
repeaters as long as the resulting delay stays within the allowed
percentage of the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.gates import MIN_WIDTH_F
from repro.tech.devices import DeviceParams
from repro.tech.wires import WireParams

#: Elmore weighting constants for a repeater segment.
_KD = 0.69
_KW = 0.38

#: Grid explored when derating repeaters for energy (size and spacing
#: multipliers relative to the delay-optimal design).
_DERATE_SIZES = (1.0, 0.8, 0.65, 0.5, 0.4, 0.3, 0.22, 0.16)
_DERATE_SPACINGS = (1.0, 1.25, 1.6, 2.0, 2.5, 3.2, 4.0)


@dataclass(frozen=True)
class RepeatedWireDesign:
    """A repeated-wire design: per-metre delay, energy, leakage, area."""

    device: DeviceParams
    wire: WireParams
    repeater_width: float  #: NMOS+PMOS total width of each repeater (m)
    spacing: float  #: distance between repeaters (m)
    delay_per_m: float  #: s/m
    energy_per_m: float  #: J/m per full-swing transition
    leakage_per_m: float  #: W/m
    area_per_m: float  #: repeater layout area per metre of wire (m^2/m)

    def delay(self, length: float) -> float:
        return self.delay_per_m * length

    def energy(self, length: float) -> float:
        return self.energy_per_m * length

    def leakage(self, length: float) -> float:
        return self.leakage_per_m * length

    def area(self, length: float) -> float:
        return self.area_per_m * length


def _segment_delay(device: DeviceParams, wire: WireParams, width: float,
                   spacing: float) -> float:
    """Elmore delay of one repeater segment of the given design (s)."""
    r_d = device.r_eff / (width / (1.0 + device.n_to_p_ratio))
    c_g = width * device.c_gate
    c_d = width * device.c_drain
    r_w = wire.r_per_m * spacing
    c_w = wire.c_per_m * spacing
    return _KD * r_d * (c_d + c_w + c_g) + _KW * r_w * c_w + _KD * r_w * c_g


def _evaluate(device: DeviceParams, wire: WireParams, width: float,
              spacing: float, feature_size: float) -> RepeatedWireDesign:
    delay_per_m = _segment_delay(device, wire, width, spacing) / spacing
    vdd = device.vdd
    c_rep_per_m = width * (device.c_gate + device.c_drain) / spacing
    energy_per_m = (wire.c_per_m + c_rep_per_m) * vdd * vdd
    leak_per_m = device.leakage_power(width / 2.0) / spacing
    # Each repeater is an inverter folded into a standard-cell row.
    rep_area = width * 4.0 * feature_size
    return RepeatedWireDesign(
        device=device,
        wire=wire,
        repeater_width=width,
        spacing=spacing,
        delay_per_m=delay_per_m,
        energy_per_m=energy_per_m,
        leakage_per_m=leak_per_m,
        area_per_m=rep_area / spacing,
    )


def optimal_repeated_wire(
    device: DeviceParams, wire: WireParams, feature_size: float
) -> RepeatedWireDesign:
    """Delay-optimal repeater size and spacing for ``wire`` (closed form)."""
    # Width-normalized driver quantities: R_d = r_eff_inv / W, C = c * W.
    r_unit = device.r_eff * (1.0 + device.n_to_p_ratio)
    c_gd = device.c_gate + device.c_drain
    spacing = math.sqrt(
        2.0 * r_unit * c_gd / (wire.r_per_m * wire.c_per_m)
    )
    width = math.sqrt(
        r_unit * wire.c_per_m / (wire.r_per_m * device.c_gate)
    )
    width = max(width, MIN_WIDTH_F * feature_size)
    return _evaluate(device, wire, width, spacing, feature_size)


#: Memo table for :func:`repeated_wire`.  The function is pure and its
#: arguments are frozen dataclasses and floats, so designs are shared
#: across every candidate organization (and every solve in the process)
#: that asks for the same (device, wire, node, penalty) combination.
_WIRE_CACHE: dict[tuple, RepeatedWireDesign] = {}


def repeated_wire(
    device: DeviceParams,
    wire: WireParams,
    feature_size: float,
    max_delay_penalty: float = 0.0,
) -> RepeatedWireDesign:
    """Minimum-energy repeated wire within ``max_delay_penalty`` of optimal.

    ``max_delay_penalty`` is fractional (0.3 allows 30 % worse delay than
    the best-delay repeater solution) -- the paper's
    ``max_repeater_delay_constraint`` internal variable.
    """
    key = (device, wire, feature_size, max_delay_penalty)
    cached = _WIRE_CACHE.get(key)
    if cached is not None:
        return cached
    design = _design_repeated_wire(
        device, wire, feature_size, max_delay_penalty
    )
    _WIRE_CACHE[key] = design
    return design


def _design_repeated_wire(
    device: DeviceParams,
    wire: WireParams,
    feature_size: float,
    max_delay_penalty: float,
) -> RepeatedWireDesign:
    best = optimal_repeated_wire(device, wire, feature_size)
    if max_delay_penalty <= 0.0:
        return best
    budget = best.delay_per_m * (1.0 + max_delay_penalty)
    chosen = best
    for s in _DERATE_SIZES:
        for m in _DERATE_SPACINGS:
            width = max(best.repeater_width * s,
                        MIN_WIDTH_F * feature_size)
            cand = _evaluate(device, wire, width, best.spacing * m,
                             feature_size)
            if cand.delay_per_m <= budget and (
                cand.energy_per_m < chosen.energy_per_m
            ):
                chosen = cand
    return chosen
