"""Method of logical effort, used (following Amrutur & Horowitz) to size
decoder chains and drivers.

CACTI-D adopted logical-effort sizing from the Amrutur/Horowitz fast
low-power decoder work: given a path's total effort (logical effort x
branching x electrical effort), the near-optimal number of stages is
``log4(F)`` and each stage bears effort ``F ** (1/N)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Target effort per stage; 4 minimizes delay for typical parasitics.
STAGE_EFFORT = 4.0

#: Logical efforts of common gates with a 2:1 P:N ratio.
LE_INVERTER = 1.0


def le_nand(num_inputs: int) -> float:
    """Logical effort of an n-input NAND gate."""
    return (num_inputs + 2.0) / 3.0


def le_nor(num_inputs: int) -> float:
    """Logical effort of an n-input NOR gate."""
    return (2.0 * num_inputs + 1.0) / 3.0


def optimal_stages(path_effort: float) -> int:
    """Number of stages minimizing delay for a given path effort."""
    if path_effort <= 1.0:
        return 1
    return max(1, round(math.log(path_effort) / math.log(STAGE_EFFORT)))


@dataclass(frozen=True)
class SizedPath:
    """Result of sizing a logic path with the method of logical effort."""

    num_stages: int
    stage_effort: float
    input_caps: tuple[float, ...]  #: input capacitance of each stage (F)

    @property
    def path_effort(self) -> float:
        return self.stage_effort**self.num_stages


def size_path(
    c_load: float,
    c_in: float,
    logical_efforts: tuple[float, ...],
    branching: tuple[float, ...] = (),
) -> SizedPath:
    """Size a path of the given gate types from ``c_in`` to ``c_load``.

    ``logical_efforts`` lists the fixed gates the path must contain (e.g. a
    predecode NAND and a row-gating NAND); inverters are appended to bring
    the stage count to the logical-effort optimum.  ``branching`` lists
    per-stage branch factors (default 1).  Returns per-stage input caps so
    callers can derive widths, areas, and energies.
    """
    if c_in <= 0.0 or c_load <= 0.0:
        raise ValueError("capacitances must be positive")
    g_path = math.prod(logical_efforts) if logical_efforts else 1.0
    b_path = math.prod(branching) if branching else 1.0
    h_path = c_load / c_in
    f_path = max(g_path * b_path * h_path, 1.0)

    n = max(optimal_stages(f_path), len(logical_efforts))
    stage_effort = f_path ** (1.0 / n)

    # Walk backwards from the load, assigning each stage its input cap:
    # c_in[i] = g[i] * b[i] * c_out[i] / stage_effort.
    efforts = list(logical_efforts) + [LE_INVERTER] * (n - len(logical_efforts))
    branches = list(branching) + [1.0] * (n - len(branching))
    caps = [0.0] * n
    c_out = c_load
    for i in range(n - 1, -1, -1):
        caps[i] = efforts[i] * branches[i] * c_out / stage_effort
        c_out = caps[i]
    return SizedPath(num_stages=n, stage_effort=stage_effort,
                     input_caps=tuple(caps))
