"""3D-stacked bank partitioning (extension; cf. 3DCacti, paper section 5).

The paper's study stacks whole L3 banks face-to-face on the core die and
cites 3DCacti and Puttaswamy/Loh for the further step of partitioning a
single array *across* layers.  This module adds that analysis on top of a
solved design: folding a bank onto N layers shrinks its footprint by ~N
and its H-tree span by ~sqrt(N), trading wire delay and energy for TSV
hops.

Face-to-face through-silicon vias have sub-FO4 communication delay
(paper section 3.1, citing Puttaswamy/Loh), so the dominant effect is the
shorter 2D span per layer; TSV capacitance adds a small per-crossing
energy term.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.array.organization import ArrayMetrics
from repro.tech.devices import DeviceParams

#: TSV electrical parameters for face-to-face microbump stacks.
TSV_CAPACITANCE = 20e-15  #: F per crossing
TSV_RESISTANCE = 0.5  #: ohm per crossing

#: Delay of one TSV crossing as a fraction of an FO4 (sub-FO4 per paper).
TSV_DELAY_FO4_FRACTION = 0.5


@dataclass(frozen=True)
class StackedBank:
    """A solved bank folded onto ``layers`` stacked dies."""

    base: ArrayMetrics
    layers: int
    device: DeviceParams

    def __post_init__(self) -> None:
        if self.layers < 1 or self.layers & (self.layers - 1):
            raise ValueError("layer count must be a positive power of two")

    # ------------------------------------------------------------------ #

    @property
    def footprint(self) -> float:
        """Per-layer silicon footprint (m^2)."""
        return self.base.area / self.layers

    @property
    def wire_shrink(self) -> float:
        """H-tree span shrink factor: the 2D extent folds by sqrt(N)."""
        return 1.0 / math.sqrt(self.layers)

    @property
    def tsv_hops(self) -> float:
        """Average vertical crossings per access (half the stack)."""
        return (self.layers - 1) / 2.0

    @property
    def tsv_delay(self) -> float:
        return self.tsv_hops * TSV_DELAY_FO4_FRACTION * self.device.fo4

    @property
    def access_time(self) -> float:
        """Access time with folded H-trees plus TSV hops (s).

        Only the H-tree components scale; the subarray-local path
        (decode, bitline, sense) is unchanged by stacking.
        """
        htree = self.base.t_htree_in + self.base.t_htree_out
        local = self.base.t_access - htree
        return local + htree * self.wire_shrink + self.tsv_delay

    @property
    def e_read_access(self) -> float:
        """Read energy with shorter trees plus TSV charging (J)."""
        # H-tree energy is folded into the activate/read-column terms; the
        # wire-dominated share scales with the span.
        wire_share = 0.5  # fraction of column-path energy in tree wires
        e_wire = self.base.e_read_column * wire_share
        e_rest = self.base.e_read_access - e_wire
        vdd = self.device.vdd
        e_tsv = (
            self.tsv_hops
            * self.base.spec.output_bits
            * TSV_CAPACITANCE
            * vdd
            * vdd
        )
        return e_rest + e_wire * self.wire_shrink + e_tsv

    @property
    def speedup(self) -> float:
        return self.base.t_access / self.access_time


def stacking_sweep(
    base: ArrayMetrics, device: DeviceParams, max_layers: int = 8
) -> list[StackedBank]:
    """Evaluate 1..max_layers (powers of two) stacked partitions."""
    layers = 1
    options = []
    while layers <= max_layers:
        options.append(StackedBank(base=base, layers=layers, device=device))
        layers *= 2
    return options
