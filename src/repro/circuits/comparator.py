"""Tag comparator: the hit-detection circuit of a cache access.

A set-associative cache compares the stored tags of every way against the
request tag and uses the match to steer the output mux (normal access) or
to gate the data access (sequential access).  The standard circuit is a
per-bit XNOR onto a precharged match line (a dynamic wide-NOR), followed
by a match buffer: delay grows with tag width through the match-line
capacitance, and every compare discharges ~half its XNOR outputs.

Replaces the fixed few-FO4 estimate with a sized circuit so wide tags
(small caches) and narrow tags (giant LLCs) price differently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.gates import horowitz
from repro.tech.devices import DeviceParams

#: Transistor width of one XNOR pull-down on the match line, in metres of
#: device width per feature size (sized ~3 minimum widths).
_XNOR_WIDTH_F = 6.0

#: Match-line wire capacitance per compared bit (short local wire).
_MATCHLINE_WIRE_CAP_PER_BIT = 0.08e-15


@dataclass(frozen=True)
class Comparator:
    """One ``tag_bits``-wide comparator in a given technology."""

    device: DeviceParams
    feature_size: float
    tag_bits: int

    @property
    def _w_xnor(self) -> float:
        return _XNOR_WIDTH_F * self.feature_size

    @property
    def match_line_cap(self) -> float:
        """Capacitance of the precharged match line (F)."""
        per_bit = (
            self.device.c_drain * self._w_xnor
            + _MATCHLINE_WIRE_CAP_PER_BIT
        )
        return self.tag_bits * per_bit

    @property
    def delay(self) -> float:
        """Evaluate delay: one pull-down discharging the match line, plus
        the match buffer (s)."""
        r_pull = self.device.r_eff / self._w_xnor
        tau = r_pull * self.match_line_cap
        evaluate = horowitz(0.0, tau)
        buffer = 2.0 * self.device.fo4
        return evaluate + buffer

    @property
    def energy(self) -> float:
        """Energy per compare (J): precharge + ~half the XNOR outputs
        toggling + the match line swing."""
        vdd = self.device.vdd
        xnor_internal = (
            0.5
            * self.tag_bits
            * self._w_xnor
            * (self.device.c_gate + self.device.c_drain)
            * vdd
            * vdd
        )
        match_line = self.match_line_cap * vdd * vdd
        return xnor_internal + match_line

    def leakage(self) -> float:
        """Static leakage of the comparator (W)."""
        return self.device.leakage_power(self.tag_bits * self._w_xnor) * 0.5


def way_select_delay(
    device: DeviceParams, feature_size: float, tag_bits: int, ways: int
) -> float:
    """Tag compare plus way-select mux enable for an ``ways``-way set (s).

    All comparators evaluate in parallel; the winner's output must then
    drive the select of a ``ways``-input mux.
    """
    comparator = Comparator(device, feature_size, tag_bits)
    mux_load = ways * 4.0 * feature_size * device.c_gate
    mux_tau = device.r_eff / (4.0 * feature_size) * mux_load
    return comparator.delay + horowitz(0.0, mux_tau)
