"""DRAM command-level operational model (paper sections 2.3.4-2.3.5).

Main-memory DRAM chips are operated with ACTIVATE, READ, WRITE, and
PRECHARGE commands against per-bank row state.  This module provides the
command/state machinery shared by the memory-controller model in
:mod:`repro.sim.dram_channel` and by the embedded-DRAM interface study:
given a bank's state and the chip timing, it computes when a request's
commands can issue and when its data arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.array.mainmem import MainMemoryTiming


class Command(Enum):
    ACTIVATE = "activate"
    READ = "read"
    WRITE = "write"
    PRECHARGE = "precharge"
    REFRESH = "refresh"


@dataclass
class BankState:
    """Row-buffer state of one DRAM bank."""

    open_row: int | None = None  #: row currently latched, None if precharged
    ready_at: float = 0.0  #: earliest time the bank accepts a new command
    active_since: float = 0.0  #: when the current row was activated

    @property
    def is_open(self) -> bool:
        return self.open_row is not None


@dataclass
class AccessResult:
    """Outcome of servicing one request at a bank."""

    issue_time: float  #: when the first command issued
    data_time: float  #: when the first data beat appears
    finish_time: float  #: when the bank can accept the next request
    row_hit: bool
    activated: bool  #: an ACTIVATE was required
    precharged: bool  #: a PRECHARGE was required first


@dataclass
class DramBank:
    """One bank executing the command protocol with datasheet timing."""

    timing: MainMemoryTiming
    state: BankState = field(default_factory=BankState)

    def access(
        self,
        now: float,
        row: int,
        is_write: bool,
        close_after: bool,
    ) -> AccessResult:
        """Service a READ/WRITE to ``row``, issuing ACT/PRE as needed.

        ``close_after`` implements the closed-page policy: the page is
        precharged immediately after the column burst, hiding tRP from a
        subsequent row miss at the cost of losing row hits.
        """
        t = self.timing
        start = max(now, self.state.ready_at)
        issue = start
        precharged = False
        activated = False
        row_hit = self.state.is_open and self.state.open_row == row

        if self.state.is_open and not row_hit:
            # Row conflict: precharge (respecting tRAS), then activate.
            pre_ok = max(start, self.state.active_since + t.t_ras)
            start = pre_ok + t.t_rp
            precharged = True
        if not self.state.is_open or not row_hit:
            activated = True
            self.state.open_row = row
            self.state.active_since = start
            start += t.t_rcd

        data = start + t.t_cas
        burst_done = data + t.t_burst
        finish = burst_done
        if close_after:
            pre_at = max(burst_done, self.state.active_since + t.t_ras)
            finish = pre_at + t.t_rp
            self.state.open_row = None
        self.state.ready_at = finish if close_after else burst_done
        del is_write  # reads and writes share this simplified timing
        return AccessResult(
            issue_time=issue,
            data_time=data,
            finish_time=finish,
            row_hit=row_hit,
            activated=activated,
            precharged=precharged,
        )

    def refresh(self, now: float) -> float:
        """Issue a REFRESH; returns when the bank is usable again."""
        t = self.timing
        start = max(now, self.state.ready_at)
        if self.state.is_open:
            start = max(start, self.state.active_since + t.t_ras) + t.t_rp
            self.state.open_row = None
        done = start + t.t_rc
        self.state.ready_at = done
        return done
