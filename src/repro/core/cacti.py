"""Public CACTI-D solve API.

Entry points:

* :func:`solve` -- solve a cache or plain memory described by a
  :class:`~repro.core.config.MemorySpec`; caches get a tag array solved
  alongside the data array and composed per the access mode.
* :func:`solve_batch` -- solve many independent specs, optionally
  across worker processes, sharing one persistent solve cache.
* :func:`solve_main_memory` -- solve a commodity main-memory DRAM chip
  described by a :class:`~repro.array.mainmem.MainMemorySpec`, returning
  the datasheet-style timing interface and per-command energies.
* :class:`CactiD` -- a small facade caching the technology object across
  solves at one node.

Every entry point takes ``jobs``: ``1`` (the default) is the plain
serial path, ``N > 1`` fans work out over ``N`` worker processes,
``<= 0`` means all available cores, and ``"auto"`` picks serial or all
cores from the machine and the workload size (worker processes cost
more than they save on one core or tiny batches).  Results are
bit-identical at any job count -- parallelism only changes wall time.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

from repro.array.mainmem import (
    MainMemoryEnergies,
    MainMemorySpec,
    MainMemoryTiming,
    derive_energies,
    derive_timing,
)
from repro.array.organization import ArrayMetrics, ArraySpec, EvalCache
from repro.core.config import (
    DENSITY_OPTIMIZED,
    MemorySpec,
    OptimizationTarget,
)
from repro.core import parallel
from repro.core.optimizer import SweepStats, optimize
from repro.core.resilience import ResiliencePolicy, TaskFailure, task_key
from repro.core.results import Solution
from repro.core.solvecache import SolveCache, account_store as _account_store
from repro.obs import Obs, maybe_span
from repro.tech.nodes import Technology, technology


#: SEC-DED ECC width: 8 check bits per 64 data bits.
_ECC_FACTOR_NUM, _ECC_FACTOR_DEN = 9, 8


def data_array_spec(spec: MemorySpec) -> ArraySpec:
    """The low-level data-array specification of a memory spec.

    With ``ecc`` enabled the array stores and moves 72 bits per 64 data
    bits (SEC-DED); tags are assumed parity-protected and unchanged.
    """
    capacity_bits = spec.capacity_bytes * 8
    output_bits = spec.block_bytes * 8
    if spec.ecc:
        capacity_bits = capacity_bits * _ECC_FACTOR_NUM // _ECC_FACTOR_DEN
        output_bits = output_bits * _ECC_FACTOR_NUM // _ECC_FACTOR_DEN
    return ArraySpec(
        capacity_bits=capacity_bits,
        output_bits=output_bits,
        assoc=spec.associativity or 1,
        nbanks=spec.nbanks,
        cell_tech=spec.cell_tech,
        periph_device_type=spec.periphery,
        sleep_transistors=spec.sleep_transistors,
    )


def tag_array_spec(spec: MemorySpec) -> ArraySpec:
    """The low-level tag-array specification of a cache spec."""
    if not spec.is_cache:
        raise ValueError("plain memories have no tag array")
    ways = spec.associativity or 1
    tag_bits = spec.tag_bits
    return ArraySpec(
        capacity_bits=spec.sets * ways * tag_bits,
        output_bits=ways * tag_bits,
        assoc=1,
        nbanks=spec.nbanks,
        cell_tech=spec.tag_technology,
        periph_device_type=spec.periphery,
        sleep_transistors=spec.sleep_transistors,
    )


def solve(
    spec: MemorySpec,
    target: OptimizationTarget | None = None,
    *,
    eval_cache: EvalCache | None = None,
    solve_cache: SolveCache | None = None,
    stats: SweepStats | None = None,
    jobs: int | str = 1,
    obs: Obs | None = None,
    resilience: ResiliencePolicy | None = None,
    cachedb=None,
) -> Solution:
    """Solve ``spec``, returning the optimizer's best design point.

    ``eval_cache`` shares circuit designs across candidates and solves
    (a fresh one spanning the data and tag sweeps is created when
    omitted); ``solve_cache`` short-circuits whole repeated solves from
    disk (flushed once at the solve boundary); ``stats`` accumulates
    :class:`~repro.core.optimizer.SweepStats` counters; ``jobs``
    parallelizes candidate construction inside each array sweep;
    ``obs`` records a ``solve`` span with nested data/tag array sweeps;
    ``resilience`` governs worker-chunk failures inside parallel
    sweeps.  ``cachedb`` (a :class:`~repro.cachedb.CacheDB`) is
    consulted first: an exact precomputed hit -- bit-identical to
    solving live -- returns in microseconds, anything else falls
    through to the solver.  None of them changes the returned numbers.
    """
    target = target or OptimizationTarget()
    if cachedb is not None:
        precomputed = cachedb.lookup_exact(spec, target, obs=obs)
        if precomputed is not None:
            return precomputed
    tech = technology(spec.node_nm)
    if eval_cache is None:
        eval_cache = EvalCache()
    with maybe_span(
        obs,
        "solve",
        capacity_bytes=spec.capacity_bytes,
        cell_tech=spec.cell_tech.value,
        node_nm=spec.node_nm,
        kind="cache" if spec.is_cache else "ram",
    ):
        # Hold the solve cache open so the data and tag sweeps flush
        # once, at this solve boundary, not once per optimize.
        with solve_cache if solve_cache is not None else nullcontext():
            with maybe_span(obs, "data_array"):
                data = optimize(
                    tech,
                    data_array_spec(spec),
                    target,
                    eval_cache=eval_cache,
                    solve_cache=solve_cache,
                    stats=stats,
                    jobs=jobs,
                    obs=obs,
                    resilience=resilience,
                )
            tag = None
            if spec.is_cache:
                with maybe_span(obs, "tag_array"):
                    tag = optimize(
                        tech,
                        tag_array_spec(spec),
                        target,
                        eval_cache=eval_cache,
                        solve_cache=solve_cache,
                        stats=stats,
                        jobs=jobs,
                        obs=obs,
                        resilience=resilience,
                    )
        # The boundary flush just ran (unless an enclosing batch defers
        # it further); drain its store events into the run's sinks.
        _account_store(solve_cache, stats, obs)
    return Solution(spec=spec, data=data, tag=tag)


class BatchOutcome(list):
    """A ``list`` of solutions that also carries partial-failure facts.

    Behaves exactly like the plain list :func:`solve_batch` always
    returned (indexing, iteration, equality), with one addition: under
    a skip/retry resilience policy, slots whose solves failed
    terminally hold ``None`` and the corresponding
    :class:`~repro.core.resilience.TaskFailure` records live in
    ``failed`` (empty on a fully successful batch).
    """

    def __init__(self, solutions, failed=()):
        super().__init__(solutions)
        self.failed: tuple[TaskFailure, ...] = tuple(failed)


def _solve_batch_task(payload: tuple) -> tuple[Solution, dict]:
    """Worker task: one full spec solve with worker-local caches.

    The worker keeps one :class:`SolveCache` per shared path for its
    whole life (safe: saves are atomic and merge concurrently-written
    records; worker-local memoization means the JSON records parse once
    per worker, not once per task) and ships its :class:`SweepStats`
    home as a plain dict -- with its local spans/metrics under
    ``"obs"`` when the parent traces.
    """
    spec, target, cache_path, with_obs = payload
    stats = SweepStats()
    obs = Obs() if with_obs else None
    solve_cache = parallel.worker_solve_cache(cache_path)
    solution = solve(
        spec,
        target,
        eval_cache=parallel.worker_eval_cache(),
        solve_cache=solve_cache,
        stats=stats,
        obs=obs,
    )
    stats_dict = stats.as_dict()
    if obs is not None:
        stats_dict["obs"] = obs.export_payload()
    return solution, stats_dict


def solve_batch(
    specs: Sequence[MemorySpec],
    target: OptimizationTarget | Sequence[OptimizationTarget] | None = None,
    *,
    eval_cache: EvalCache | None = None,
    solve_cache: SolveCache | None = None,
    stats: SweepStats | None = None,
    jobs: int | str = 1,
    obs: Obs | None = None,
    resilience: ResiliencePolicy | None = None,
) -> list[Solution]:
    """Solve independent specs, returning solutions in spec order.

    ``target`` is one target for the whole batch or a sequence matching
    ``specs``.  With ``jobs > 1`` the specs are solved concurrently in
    worker processes; each worker shares the persistent ``solve_cache``
    by path (atomic merge-on-save writes make concurrent writers safe)
    and ships its sweep stats -- and spans/metrics when ``obs`` is
    given -- back for absorption.  The serial path defers solve-cache
    flushes to the batch boundary, so the cache file is rewritten once
    per batch, not once per record.  The returned solutions are
    bit-identical to the serial path at any job count.

    ``resilience`` makes the batch fault tolerant: failed solves are
    retried/skipped/raised per the policy, a journal checkpoints each
    completed spec (resume re-solves only the unfinished ones), and in
    skip/retry mode the returned :class:`BatchOutcome` carries ``None``
    at failed slots plus the failures in ``.failed``.
    """
    specs = list(specs)
    if target is None or isinstance(target, OptimizationTarget):
        targets = [target] * len(specs)
    else:
        targets = list(target)
        if len(targets) != len(specs):
            raise ValueError(
                f"{len(specs)} specs but {len(targets)} targets"
            )
    # Spec-level parallelism is coarse, so ``auto`` only needs two
    # specs (and more than one core) to be worth a pool.
    jobs = parallel.effective_jobs(jobs, len(specs), min_tasks=2)
    t0 = time.perf_counter()
    if resilience is not None:
        return _solve_batch_resilient(
            specs, targets, solve_cache, stats, jobs, obs, resilience, t0
        )
    with maybe_span(
        obs, "batch", specs=len(specs), jobs=jobs
    ) as batch_span:
        if jobs == 1 or len(specs) <= 1:
            # Serial: one EvalCache spans the whole batch, so repeated
            # subarray/H-tree problems are solved once across specs;
            # one deferred flush spans it too (O(1) writes per batch).
            if eval_cache is None:
                eval_cache = EvalCache()
            with solve_cache if solve_cache is not None else nullcontext():
                solutions = [
                    solve(
                        spec,
                        tgt,
                        eval_cache=eval_cache,
                        solve_cache=solve_cache,
                        stats=stats,
                        obs=obs,
                    )
                    for spec, tgt in zip(specs, targets)
                ]
            # Drain the batch-boundary flush that the context exit
            # above just performed.
            _account_store(solve_cache, stats, obs)
        else:
            cache_path = (
                solve_cache.url if solve_cache is not None else None
            )
            results = parallel.parallel_map(
                _solve_batch_task,
                [
                    (spec, tgt, cache_path, obs is not None)
                    for spec, tgt in zip(specs, targets)
                ],
                jobs,
            )
            solutions = []
            worker_wall = 0.0
            for solution, worker_stats in results:
                solutions.append(solution)
                worker_wall += worker_stats.get("wall_time_s", 0.0)
                if stats is not None:
                    stats.absorb_worker(worker_stats)
                if obs is not None:
                    obs.absorb_worker(worker_stats.get("obs"))
            if solve_cache is not None:
                # Pick up the records the workers just wrote to disk.
                solve_cache.refresh()
                # Counter deltas arrived inside the worker stats; this
                # refreshes the parent-side records/bytes gauges.
                _account_store(solve_cache, stats, obs)
            if obs is not None and batch_span is not None:
                elapsed = time.perf_counter() - t0
                if elapsed > 0:
                    obs.gauge(
                        "parallel.worker_utilization",
                        worker_wall / (elapsed * jobs),
                    )
    if stats is not None:
        stats.add_phase_time("batch", time.perf_counter() - t0)
    if obs is not None:
        obs.observe("phase.batch_s", time.perf_counter() - t0)
    return solutions


def _solve_batch_resilient(
    specs, targets, solve_cache, stats, jobs, obs, resilience, t0
) -> BatchOutcome:
    """The fault-tolerant batch path (any job count).

    Every spec runs through the same worker-task shape at every job
    count, so a journal written by a parallel run resumes a serial one
    and vice versa; in-process execution reuses the process-local
    eval/solve caches exactly as a worker would.
    """
    cache_path = (
        solve_cache.url if solve_cache is not None else None
    )
    keys = None
    if resilience.journal is not None:
        keys = [
            task_key(
                "batch.solve",
                {"spec": spec, "target": tgt or OptimizationTarget()},
            )
            for spec, tgt in zip(specs, targets)
        ]
    with maybe_span(obs, "batch", specs=len(specs), jobs=jobs):
        outcomes = parallel.parallel_map(
            _solve_batch_task,
            [
                (spec, tgt, cache_path, obs is not None)
                for spec, tgt in zip(specs, targets)
            ],
            jobs,
            obs=obs,
            span_name="batch.solve",
            resilience=resilience,
            keys=keys,
            stats=stats,
        )
    solutions = []
    failures = []
    for outcome in outcomes:
        if isinstance(outcome, TaskFailure):
            failures.append(outcome)
            solutions.append(None)
            continue
        solution, worker_stats = outcome
        solutions.append(solution)
        if stats is not None:
            stats.absorb_worker(worker_stats)
        if obs is not None:
            obs.absorb_worker(worker_stats.get("obs"))
    if solve_cache is not None:
        solve_cache.refresh()
        _account_store(solve_cache, stats, obs)
    if stats is not None:
        stats.add_phase_time("batch", time.perf_counter() - t0)
    if obs is not None:
        obs.observe("phase.batch_s", time.perf_counter() - t0)
    return BatchOutcome(solutions, failures)


@dataclass(frozen=True)
class MainMemorySolution:
    """A solved main-memory DRAM chip: array + interface views."""

    spec: MainMemorySpec
    metrics: ArrayMetrics
    timing: MainMemoryTiming
    energies: MainMemoryEnergies

    @property
    def area_mm2(self) -> float:
        return self.metrics.area * 1e6

    @property
    def area_efficiency(self) -> float:
        return self.metrics.area_efficiency

    def summary(self) -> str:
        t, e = self.timing, self.energies
        gb = self.spec.capacity_bits / 2**30
        lines = [
            f"capacity        : {gb:.0f} Gb x{self.spec.data_pins}, "
            f"{self.spec.nbanks} banks, BL{self.spec.burst_length}",
            f"area efficiency : {self.area_efficiency * 100:.0f}%",
            f"tRCD            : {t.t_rcd * 1e9:.1f} ns",
            f"CAS latency     : {t.t_cas * 1e9:.1f} ns",
            f"tRP             : {t.t_rp * 1e9:.1f} ns",
            f"tRC             : {t.t_rc * 1e9:.1f} ns",
            f"tRRD            : {t.t_rrd * 1e9:.1f} ns",
            f"ACTIVATE energy : {e.e_activate * 1e9:.2f} nJ",
            f"READ energy     : {e.e_read * 1e9:.2f} nJ",
            f"WRITE energy    : {e.e_write * 1e9:.2f} nJ",
            f"refresh power   : {e.p_refresh * 1e3:.2f} mW",
            f"standby power   : {e.p_standby * 1e3:.2f} mW",
        ]
        return "\n".join(lines)

    def run_report(self) -> dict:
        """Machine-readable report of this solved chip.

        Plain JSON types only, so benchmark harnesses can serialize it
        and diff runs against recorded ``BENCH_*.json`` baselines.
        """
        t, e = self.timing, self.energies
        return {
            "kind": "main_memory",
            "spec": {
                "capacity_bits": self.spec.capacity_bits,
                "nbanks": self.spec.nbanks,
                "data_pins": self.spec.data_pins,
                "burst_length": self.spec.burst_length,
                "page_bits": self.spec.page_bits,
                "cell_tech": self.spec.cell_tech.value,
                "cell_traits": self.spec.cell_tech.traits.as_dict(),
            },
            "organization": {
                "ndwl": self.metrics.org.ndwl,
                "ndbl": self.metrics.org.ndbl,
                "nspd": self.metrics.org.nspd,
                "ndcm": self.metrics.org.ndcm,
                "ndsam": self.metrics.org.ndsam,
            },
            "timing_ns": {
                "t_rcd": t.t_rcd * 1e9,
                "t_cas": t.t_cas * 1e9,
                "t_rp": t.t_rp * 1e9,
                "t_ras": t.t_ras * 1e9,
                "t_rc": t.t_rc * 1e9,
                "t_rrd": t.t_rrd * 1e9,
            },
            "energy_nj": {
                "e_activate": e.e_activate * 1e9,
                "e_read": e.e_read * 1e9,
                "e_write": e.e_write * 1e9,
            },
            "power_mw": {
                "p_refresh": e.p_refresh * 1e3,
                "p_standby": e.p_standby * 1e3,
            },
            "area_mm2": self.area_mm2,
            "area_efficiency": self.area_efficiency,
        }


def solve_main_memory(
    spec: MainMemorySpec,
    node_nm: float,
    target: OptimizationTarget | None = None,
    clock_period: float = 0.0,
    *,
    eval_cache: EvalCache | None = None,
    solve_cache: SolveCache | None = None,
    stats: SweepStats | None = None,
    jobs: int | str = 1,
    obs: Obs | None = None,
    resilience: ResiliencePolicy | None = None,
) -> MainMemorySolution:
    """Solve a main-memory DRAM chip at ``node_nm``.

    Commodity parts default to the density-optimized preset because of the
    premium on price per bit (paper section 2.5).
    """
    target = target or DENSITY_OPTIMIZED
    tech = technology(node_nm)
    array_spec = spec.array_spec()
    with maybe_span(
        obs,
        "solve_main_memory",
        capacity_bits=spec.capacity_bits,
        node_nm=node_nm,
    ):
        metrics = optimize(
            tech,
            array_spec,
            target,
            eval_cache=eval_cache,
            solve_cache=solve_cache,
            stats=stats,
            jobs=jobs,
            obs=obs,
            resilience=resilience,
        )
        with maybe_span(obs, "derive_interface"):
            timing = derive_timing(spec, metrics, clock_period)
            vdd_cell = tech.cell(
                array_spec.cell_tech, array_spec.periph_device_type
            ).vdd_cell
            energies = derive_energies(spec, metrics, vdd_cell)
    return MainMemorySolution(
        spec=spec, metrics=metrics, timing=timing, energies=energies
    )


class CactiD:
    """Facade for repeated solves at one technology node.

    Holds an :class:`~repro.array.organization.EvalCache` so circuit
    designs (subarrays, H-trees, repeated wires) are shared across every
    solve issued through the facade, and -- when ``cache_path`` is given
    -- a persistent :class:`~repro.core.solvecache.SolveCache` so whole
    repeated solves are served from disk across processes.  ``stats``
    accumulates sweep observability counters over the facade's
    lifetime; pass ``obs`` (an :class:`~repro.obs.Obs`) to also record
    tracing spans and metrics across every solve issued through it.

    ``cachedb`` -- a :class:`~repro.cachedb.CacheDB` or an artifact
    path -- puts a precomputed design-space database in front of the
    solver: every solve issued through the facade checks it for an
    exact (bit-identical) hit first.
    """

    def __init__(
        self,
        node_nm: float = 32.0,
        cache_path=None,
        obs: Obs | None = None,
        resilience: ResiliencePolicy | None = None,
        cachedb=None,
    ):
        self.node_nm = node_nm
        self.eval_cache = EvalCache()
        self.solve_cache = (
            SolveCache(cache_path) if cache_path is not None else None
        )
        self.stats = SweepStats()
        self.obs = obs
        self.resilience = resilience
        if cachedb is not None and not hasattr(cachedb, "lookup_exact"):
            # A path: open it through the per-process reader memo.
            from repro.cachedb import open_cachedb

            cachedb = open_cachedb(cachedb)
        self.cachedb = cachedb

    @cached_property
    def technology(self) -> Technology:
        return technology(self.node_nm)

    def solve(
        self,
        spec: MemorySpec,
        target: OptimizationTarget | None = None,
        jobs: int | str = 1,
    ) -> Solution:
        self._check_node(spec)
        return solve(
            spec,
            target,
            eval_cache=self.eval_cache,
            solve_cache=self.solve_cache,
            stats=self.stats,
            jobs=jobs,
            obs=self.obs,
            resilience=self.resilience,
            cachedb=self.cachedb,
        )

    def solve_batch(
        self,
        specs: Sequence[MemorySpec],
        target: (
            OptimizationTarget | Sequence[OptimizationTarget] | None
        ) = None,
        jobs: int | str = 1,
    ) -> list[Solution]:
        """Solve many specs at this node, optionally across processes.

        Serial batches reuse the facade's EvalCache; parallel batches
        share the facade's persistent solve cache by path, and every
        worker's sweep counters land in ``self.stats``.
        """
        for spec in specs:
            self._check_node(spec)
        return solve_batch(
            specs,
            target,
            eval_cache=self.eval_cache,
            solve_cache=self.solve_cache,
            stats=self.stats,
            jobs=jobs,
            obs=self.obs,
            resilience=self.resilience,
        )

    def solve_main_memory(
        self,
        spec: MainMemorySpec,
        target: OptimizationTarget | None = None,
        clock_period: float = 0.0,
        jobs: int | str = 1,
    ) -> MainMemorySolution:
        return solve_main_memory(
            spec,
            self.node_nm,
            target,
            clock_period,
            eval_cache=self.eval_cache,
            solve_cache=self.solve_cache,
            stats=self.stats,
            jobs=jobs,
            obs=self.obs,
            resilience=self.resilience,
        )

    def _check_node(self, spec: MemorySpec) -> None:
        if spec.node_nm != self.node_nm:
            raise ValueError(
                f"spec is at {spec.node_nm} nm, facade at {self.node_nm} nm"
            )
