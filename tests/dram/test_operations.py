"""Unit tests for the DRAM command/state model."""

import pytest

from repro.array.mainmem import MainMemoryTiming
from repro.dram.operations import BankState, DramBank

TIMING = MainMemoryTiming(
    t_rcd=13e-9,
    t_cas=13e-9,
    t_rp=13e-9,
    t_ras=36e-9,
    t_rc=49e-9,
    t_rrd=7.5e-9,
    t_burst=7.5e-9,
)


def make_bank():
    return DramBank(timing=TIMING)


class TestOpenPage:
    def test_first_access_activates(self):
        bank = make_bank()
        r = bank.access(0.0, row=5, is_write=False, close_after=False)
        assert r.activated and not r.precharged and not r.row_hit
        assert r.data_time == pytest.approx(TIMING.t_rcd + TIMING.t_cas)

    def test_row_hit_pays_cas_only(self):
        bank = make_bank()
        first = bank.access(0.0, row=5, is_write=False, close_after=False)
        second = bank.access(first.finish_time, row=5, is_write=False,
                             close_after=False)
        assert second.row_hit
        latency = second.data_time - second.issue_time
        assert latency == pytest.approx(TIMING.t_cas)

    def test_row_conflict_pays_precharge(self):
        bank = make_bank()
        first = bank.access(0.0, row=5, is_write=False, close_after=False)
        # Arrive long after tRAS so the precharge can start immediately.
        late = first.finish_time + TIMING.t_ras
        conflict = bank.access(late, row=9, is_write=False,
                               close_after=False)
        assert conflict.precharged and conflict.activated
        latency = conflict.data_time - conflict.issue_time
        assert latency == pytest.approx(
            TIMING.t_rp + TIMING.t_rcd + TIMING.t_cas
        )

    def test_tras_respected_on_early_conflict(self):
        bank = make_bank()
        bank.access(0.0, row=1, is_write=False, close_after=False)
        conflict = bank.access(1e-9, row=2, is_write=False,
                               close_after=False)
        # Precharge could not begin before tRAS expired.
        assert conflict.data_time >= (
            TIMING.t_ras + TIMING.t_rp + TIMING.t_rcd + TIMING.t_cas - 1e-12
        )


class TestClosedPage:
    def test_always_activates(self):
        bank = make_bank()
        first = bank.access(0.0, row=5, is_write=False, close_after=True)
        second = bank.access(first.finish_time, row=5, is_write=False,
                             close_after=True)
        assert not second.row_hit
        assert second.activated

    def test_closed_latency_is_rcd_cas(self):
        bank = make_bank()
        first = bank.access(0.0, row=5, is_write=False, close_after=True)
        second = bank.access(first.finish_time, row=7, is_write=False,
                             close_after=True)
        latency = second.data_time - second.issue_time
        assert latency == pytest.approx(TIMING.t_rcd + TIMING.t_cas)


class TestRefresh:
    def test_refresh_occupies_trc(self):
        bank = make_bank()
        done = bank.refresh(0.0)
        assert done == pytest.approx(TIMING.t_rc)
        assert not bank.state.is_open

    def test_refresh_closes_open_row(self):
        bank = make_bank()
        bank.access(0.0, row=3, is_write=False, close_after=False)
        assert bank.state.is_open
        bank.refresh(100e-9)
        assert not bank.state.is_open


class TestBankState:
    def test_defaults(self):
        s = BankState()
        assert not s.is_open
        assert s.ready_at == 0.0
