"""Simulation statistics: cycle breakdown and event counters.

The paper's Figure 4(b) splits execution cycles into six categories --
instruction processing, L2 service, L3 service, main-memory service,
barrier wait, and lock wait -- and Figure 5 needs per-level access counts
to turn CACTI-D energies into power.  Both views live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Cycle-breakdown categories in the paper's Figure 4(b) order.
BREAKDOWN_CATEGORIES = (
    "instruction",
    "l2",
    "l3",
    "memory",
    "barrier",
    "lock",
)


@dataclass
class CycleBreakdown:
    """Per-thread (or aggregated) cycle attribution."""

    instruction: float = 0.0
    l2: float = 0.0
    l3: float = 0.0
    memory: float = 0.0
    barrier: float = 0.0
    lock: float = 0.0

    @property
    def total(self) -> float:
        return (self.instruction + self.l2 + self.l3 + self.memory
                + self.barrier + self.lock)

    def add(self, other: "CycleBreakdown") -> None:
        for name in BREAKDOWN_CATEGORIES:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def normalized(self, baseline_total: float | None = None
                   ) -> dict[str, float]:
        """Fractions of a reference total (defaults to own total)."""
        ref = baseline_total if baseline_total else self.total
        if ref <= 0:
            return {name: 0.0 for name in BREAKDOWN_CATEGORIES}
        return {
            name: getattr(self, name) / ref for name in BREAKDOWN_CATEGORIES
        }


@dataclass
class AccessCounters:
    """Event counts the power model consumes."""

    l1_reads: int = 0
    l1_writes: int = 0
    l2_reads: int = 0
    l2_writes: int = 0
    l3_reads: int = 0
    l3_writes: int = 0
    crossbar_transfers: int = 0
    mem_activates: int = 0
    mem_reads: int = 0
    mem_writes: int = 0
    coherence_invalidations: int = 0

    def add(self, other: "AccessCounters") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class SimStats:
    """Complete result of one simulation run."""

    cycles: float = 0.0  #: wall-clock CPU cycles of the run
    instructions: float = 0.0
    breakdown: CycleBreakdown = field(default_factory=CycleBreakdown)
    counters: AccessCounters = field(default_factory=AccessCounters)
    read_latency_sum: float = 0.0  #: total read latency (cycles)
    read_count: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def average_read_latency(self) -> float:
        """Mean latency of memory reads that left the core (cycles)."""
        return (
            self.read_latency_sum / self.read_count if self.read_count else 0.0
        )
