"""repro.store: pluggable persistent stores for solve records.

The one persistence primitive behind every caching layer
(:class:`~repro.core.solvecache.SolveCache`, worker-local caches, the
future batch-solve server) is a :class:`KVStore`: get/put/scan/flush of
version-stamped JSON records with corrupt-record tombstoning.  Two
backends implement it -- :class:`JsonFileStore` (the original
single-file format, bit-compatible with existing ``--cache`` files) and
:class:`SqliteStore` (WAL mode, bounded record count with LRU eviction,
O(dirty) flushes, safe under concurrent writers).

:func:`open_store` picks the backend from a store spec:

* ``"solves.json"`` -- a plain path opens the JSON-file backend;
* ``"sqlite:solves.db"`` -- the ``sqlite:`` scheme opens the sqlite
  backend; options ride a query string
  (``"sqlite:solves.db?max_records=10000&shard_prefix=2"``);
* a plain path whose existing file starts with the sqlite magic bytes
  opens the sqlite backend anyway -- a JSON-backend write would
  otherwise destroy the database.

:func:`~repro.store.migrate.migrate_store` moves every record between
backends losslessly (JSON floats round-trip bit-exactly), which is the
upgrade path from a grown ``--cache`` file to a bounded sqlite store.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.store.base import KVStore, Validator
from repro.store.jsonfile import JsonFileStore
from repro.store.migrate import migrate_store
from repro.store.sqlite import SqliteStore

__all__ = [
    "KVStore",
    "JsonFileStore",
    "SqliteStore",
    "StoreSpec",
    "Validator",
    "migrate_store",
    "open_store",
    "parse_store_url",
]

#: First bytes of every sqlite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"

#: Recognized option keys in a ``sqlite:`` URL query string, with their
#: coercions.
_SQLITE_OPTIONS = {"max_records": int, "shard_prefix": int}


@dataclass(frozen=True)
class StoreSpec:
    """A parsed store URL: backend, path, and backend options."""

    backend: str  #: ``"json"`` or ``"sqlite"``
    path: str
    options: dict = field(default_factory=dict)


def _sniff_sqlite(path: str) -> bool:
    """True when ``path`` exists and holds a sqlite database."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


def parse_store_url(spec: str | os.PathLike) -> StoreSpec:
    """Parse a store spec into ``(backend, path, options)``.

    ``sqlite:PATH[?opt=v&...]`` and ``json:PATH`` select a backend
    explicitly; a bare path defaults to the JSON backend unless the
    file already holds a sqlite database (sniffed by magic bytes), in
    which case the sqlite backend is chosen -- rewriting a database as
    a JSON file would destroy it.
    """
    text = os.fspath(spec)
    if text.startswith("sqlite:"):
        rest = text[len("sqlite:"):]
        path, _, query = rest.partition("?")
        if not path:
            raise ValueError(f"no path in store url {text!r}")
        options = {}
        if query:
            for pair in query.split("&"):
                key, _, value = pair.partition("=")
                if key not in _SQLITE_OPTIONS:
                    raise ValueError(
                        f"unknown store option {key!r} in {text!r}; "
                        f"expected one of {sorted(_SQLITE_OPTIONS)}"
                    )
                try:
                    options[key] = _SQLITE_OPTIONS[key](value)
                except ValueError as exc:
                    raise ValueError(
                        f"bad value for store option {key!r} in {text!r}"
                    ) from exc
        return StoreSpec("sqlite", path, options)
    if text.startswith("json:"):
        path = text[len("json:"):]
        if not path:
            raise ValueError(f"no path in store url {text!r}")
        return StoreSpec("json", path)
    if _sniff_sqlite(text):
        return StoreSpec("sqlite", text)
    return StoreSpec("json", text)


def open_store(
    spec: str | os.PathLike,
    *,
    version: str,
    older_versions: tuple[str, ...] = (),
    validate: Validator | None = None,
    max_records: int | None = None,
) -> KVStore:
    """Open the store named by ``spec`` (see :func:`parse_store_url`).

    ``version``/``older_versions``/``validate`` configure record
    stamping and screening identically on every backend.
    ``max_records`` bounds the sqlite backend (URL options win over the
    keyword); the JSON backend is unbounded and rejects a bound rather
    than silently ignoring it.
    """
    parsed = parse_store_url(spec)
    if parsed.backend == "sqlite":
        options = dict(parsed.options)
        if max_records is not None:
            options.setdefault("max_records", max_records)
        return SqliteStore(
            parsed.path,
            version=version,
            older_versions=older_versions,
            validate=validate,
            **options,
        )
    if max_records is not None:
        raise ValueError(
            "max_records needs the sqlite backend "
            f"(got JSON store {parsed.path!r}); "
            f"use 'sqlite:{parsed.path}'"
        )
    return JsonFileStore(
        Path(parsed.path),
        version=version,
        older_versions=older_versions,
        validate=validate,
    )
