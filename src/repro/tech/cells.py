"""Built-in memory-cell technologies: SRAM, LP-DRAM, and COMM-DRAM.

Encodes paper Table 1 ("Key characteristics of SRAM, LP-DRAM, and
COMM-DRAM technologies") twice over: the *behavioral* side as
:class:`~repro.tech.registry.CellTraits` bundles registered with the
technology registry, and the *electrical* side as :class:`CellParams`
builders (cell geometry, access-device drive/leakage, storage
capacitance, boosted wordline voltage, retention period).

Cell areas follow the paper: ~146 F^2 for the 6T SRAM cell, 30 F^2 for the
1T1C LP-DRAM cell (within the 19-26 F^2 range of the cited 180-65 nm cells,
with margin for scaling pessimism), and 6 F^2 for the COMM-DRAM trench/
stack cell.  Storage capacitance is held constant across nodes (20 fF
LP-DRAM, 30 fF COMM-DRAM) since cell capacitance must be maintained for
signal-to-noise and retention as VDD scales.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.tech.registry import (
    CellTech,
    CellTraits,
    MemoryTechnology,
    SensingScheme,
    register,
)
from repro.tech import registry as _registry

__all__ = [
    "CellParams",
    "CellTech",
    "CellTraits",
    "MemoryTechnology",
    "SensingScheme",
    "cell",
    "comm_dram_cell",
    "lp_dram_cell",
    "sram_cell",
]


@dataclass(frozen=True)
class CellParams:
    """Geometry and electricals of one memory cell technology at one node."""

    tech: CellTech
    feature_size: float  #: F (m)
    area_f2: float  #: cell area in F^2
    width_f: float  #: cell extent along the wordline, in F (bitline pitch)
    height_f: float  #: cell extent along the bitline, in F (wordline pitch)
    vdd_cell: float  #: storage/core supply voltage (V)
    access_width_f: float  #: access transistor width in F
    access_i_on: float  #: access device drive current per width (A/m)
    access_i_off: float  #: access device subthreshold leakage per width (A/m)
    access_c_drain: float  #: access device drain capacitance per width (F/m)
    access_c_junction: float  #: fixed bitline-contact junction cap per cell (F)
    access_r_channel: float  #: access device channel resistance x width (ohm*m)
    storage_cap: float | None = None  #: DRAM storage capacitance (F)
    vpp: float | None = None  #: boosted wordline voltage (V)
    retention_time: float | None = None  #: refresh period (s)

    @property
    def traits(self) -> CellTraits:
        return self.tech.traits

    @property
    def is_dram(self) -> bool:
        return self.tech.is_dram

    @property
    def area(self) -> float:
        """Physical cell area (m^2)."""
        return self.area_f2 * self.feature_size**2

    @property
    def width(self) -> float:
        """Cell width along the wordline direction (m)."""
        return self.width_f * self.feature_size

    @property
    def height(self) -> float:
        """Cell height along the bitline direction (m)."""
        return self.height_f * self.feature_size

    @property
    def access_width(self) -> float:
        """Access transistor width (m)."""
        return self.access_width_f * self.feature_size

    @property
    def read_current(self) -> float:
        """Current available to discharge/charge the bitline on a read (A).

        For actively-driven (current-latch) cells this is the series
        access + driver stack, derated to half the nominal access-device
        saturation current.  For charge-share cells reads are passive,
        so this is only used for writeback timing.
        """
        return 0.5 * self.access_i_on * self.access_width

    @property
    def wordline_voltage(self) -> float:
        """Voltage swung on the wordline when selecting this cell (V)."""
        return self.vpp if self.vpp is not None else self.vdd_cell

    def retention_leakage_budget(self) -> float | None:
        """Maximum cell leakage current compatible with the retention spec (A).

        A refreshed cell must retain > ~half its stored charge over a
        retention period: I_max = Cs * (VDD/2) / t_ret.  Returns None for
        technologies that do not need refresh.
        """
        if not self.tech.traits.needs_refresh:
            return None
        assert self.storage_cap is not None and self.retention_time is not None
        return self.storage_cap * (self.vdd_cell / 2.0) / self.retention_time


def _f(node_nm: float) -> float:
    return node_nm * 1e-9


def _loglin(table: dict[int, float], node_nm: float) -> float:
    """Log-linear interpolation of a per-node voltage table."""
    nodes = sorted(table)
    node_nm = min(max(node_nm, nodes[0]), nodes[-1])
    if node_nm in table:
        return table[int(node_nm)]
    for lo, hi in zip(nodes, nodes[1:]):
        if lo <= node_nm <= hi:
            frac = (math.log(node_nm) - math.log(lo)) / (
                math.log(hi) - math.log(lo)
            )
            return math.exp(
                (1 - frac) * math.log(table[lo]) + frac * math.log(table[hi])
            )
    raise AssertionError("unreachable")


#: DRAM core supply scaling: commodity parts ran 1.8 V (DDR2-era 90 nm)
#: down to the 1.0 V the paper projects at 32 nm (Table 1); LP-DRAM starts
#: lower and converges to the same 1.0 V.
_COMM_VDD = {90: 1.8, 65: 1.45, 45: 1.2, 32: 1.0}
_LP_VDD = {90: 1.2, 65: 1.2, 45: 1.1, 32: 1.0}

#: Boosted wordline offset above the core supply: VPP must exceed VDD by a
#: full (high) cell Vth plus margin.  At 32 nm these reproduce Table 1's
#: 2.6 V (COMM) and 1.5 V (LP).
_COMM_VPP_OFFSET = 1.6
_LP_VPP_OFFSET = 0.5


#: SRAM cell-transistor subthreshold leakage per width at 25 C (A/m),
#: per node: long-channel devices, but thinning oxides and shrinking Vth
#: still raise leakage each generation.
_SRAM_CELL_IOFF = {90: 0.020, 65: 0.028, 45: 0.036, 32: 0.045}


def sram_cell(node_nm: float, vdd: float) -> CellParams:
    """6T SRAM cell on long-channel ITRS HP devices (paper Table 1)."""
    return CellParams(
        tech=CellTech("sram"),
        feature_size=_f(node_nm),
        area_f2=146.0,
        width_f=17.0,
        height_f=8.6,
        vdd_cell=vdd,
        access_width_f=1.31,
        access_i_on=1400.0,  # A/m; long-channel HP-class cell device
        access_i_off=_loglin(_SRAM_CELL_IOFF, node_nm),
        access_c_drain=0.4e-9,
        access_c_junction=0.05e-15,
        access_r_channel=2.0e-3,  # ohm*m
    )


def lp_dram_cell(node_nm: float) -> CellParams:
    """1T1C logic-process DRAM cell, intermediate-oxide access device.

    20 fF storage, VPP = 1.5 V, 0.12 ms retention (paper Table 1).  The thin
    intermediate oxide gives a fast access device at the cost of high cell
    leakage, hence the short retention period.
    """
    vdd = _loglin(_LP_VDD, node_nm)
    return CellParams(
        tech=CellTech("lp-dram"),
        feature_size=_f(node_nm),
        area_f2=30.0,
        width_f=6.0,
        height_f=5.0,
        vdd_cell=vdd,
        access_width_f=1.5,
        access_i_on=900.0,
        access_i_off=1.5e-3,  # sized to just meet the 0.12 ms retention
        access_c_drain=0.45e-9,
        access_c_junction=0.10e-15,
        access_r_channel=3.5e-3,
        storage_cap=20e-15,
        vpp=vdd + _LP_VPP_OFFSET,
        retention_time=0.12e-3,
    )


def comm_dram_cell(node_nm: float) -> CellParams:
    """1T1C commodity DRAM cell, thick conventional-oxide access device.

    30 fF storage, VPP = 2.6 V, 64 ms retention (paper Table 1).  The thick
    oxide and high Vth make the access device slow but extremely low
    leakage, enabling the long retention period.
    """
    vdd = _loglin(_COMM_VDD, node_nm)
    return CellParams(
        tech=CellTech("comm-dram"),
        feature_size=_f(node_nm),
        area_f2=6.0,
        width_f=3.0,
        height_f=2.0,
        vdd_cell=vdd,
        access_width_f=1.0,
        access_i_on=320.0,
        access_i_off=2e-8,
        access_c_drain=0.35e-9,
        access_c_junction=0.20e-15,
        # Channel resistance x width improves with scaling (structured
        # cells, higher mobility) roughly in proportion to F, keeping the
        # absolute access resistance -- and hence tRC -- nearly constant
        # across generations, as commodity parts exhibit.
        access_r_channel=9.0e-3 * (node_nm / 78.0),
        storage_cap=30e-15,
        vpp=vdd + _COMM_VPP_OFFSET,
        retention_time=64e-3,
    )


#: The 6T SRAM cell: actively-driven differential bitlines, latch sensing,
#: non-destructive reads, two inverter leakage paths per cell, column
#: muxing legal, peripheral (logic) supply and top-metal routing.
SRAM_TRAITS = CellTraits(
    sensing=SensingScheme.CURRENT_LATCH,
    destructive_read=False,
    folded_bitline=False,
    wordline_gates_per_cell=2.0,
    sense_strip_height_f=20.0,
    column_mux_allowed=True,
    supports_page_mode=False,
    max_bitline_cells=None,
    needs_refresh=False,
    cell_leak_paths=2.0,
    precharge_swing_fraction=0.10,
    precise_precharge=False,
    write_swing_fraction=1.0,
    write_pulse_time=0.0,
    bitline_wire="local",
    htree_wire="global",
    default_periphery="hp-long-channel",
    sleep_transistors_effective=True,
)

#: Shared 1T1C DRAM behavior: destructive charge-share readout on folded
#: bitlines with a 512-cell sensing limit, VDD/2 precharge to reference
#: precision, restore-as-write-back, refresh, no column muxing (the open
#: row *is* the page).
_DRAM_TRAITS = dict(
    sensing=SensingScheme.CHARGE_SHARE,
    destructive_read=True,
    folded_bitline=True,
    wordline_gates_per_cell=1.0,
    sense_strip_height_f=40.0,
    column_mux_allowed=False,
    supports_page_mode=True,
    max_bitline_cells=512,
    needs_refresh=True,
    cell_leak_paths=0.0,
    precharge_swing_fraction=0.5,
    precise_precharge=True,
    write_swing_fraction=0.5,
    write_pulse_time=0.0,
)

#: LP-DRAM embeds in a logic process: copper bitlines, fast top-metal
#: H-tree, HP long-channel periphery (paper Table 1).
LP_DRAM_TRAITS = CellTraits(
    bitline_wire="local",
    htree_wire="global",
    default_periphery="hp-long-channel",
    sleep_transistors_effective=False,
    **_DRAM_TRAITS,
)

#: COMM-DRAM is a commodity DRAM process: tungsten bitlines, semi-global
#: (intermediate-plane) H-tree at best, LSTP periphery (paper Table 1).
COMM_DRAM_TRAITS = CellTraits(
    bitline_wire="local-tungsten",
    htree_wire="semi-global",
    default_periphery="lstp",
    sleep_transistors_effective=False,
    **_DRAM_TRAITS,
)


register(MemoryTechnology(
    name="sram",
    traits=SRAM_TRAITS,
    cell_builder=lambda node_nm, periph_vdd: sram_cell(node_nm, periph_vdd),
))
register(MemoryTechnology(
    name="lp-dram",
    traits=LP_DRAM_TRAITS,
    # DRAM cells use their own core supply regardless of the periphery.
    cell_builder=lambda node_nm, periph_vdd: lp_dram_cell(node_nm),
))
register(MemoryTechnology(
    name="comm-dram",
    traits=COMM_DRAM_TRAITS,
    cell_builder=lambda node_nm, periph_vdd: comm_dram_cell(node_nm),
))


@lru_cache(maxsize=None)
def cell(tech: CellTech, node_nm: float, periph_vdd: float) -> CellParams:
    """Build the cell parameters for ``tech`` at a node.

    Cached: parameters are pure functions of the arguments and
    :class:`CellParams` is frozen, so every candidate organization in an
    optimizer sweep shares one instance.

    ``periph_vdd`` is the peripheral-circuit supply; technologies whose
    cells share the logic supply adopt it (paper Table 1 lists 0.9 V at
    32 nm for SRAM, the HP supply), while technologies with their own
    core supply (both DRAMs) ignore it.
    """
    return _registry.get(tech).build_cell(node_nm, periph_vdd)
