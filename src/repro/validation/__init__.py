"""Validation against published targets (paper section 2.5)."""

from repro.validation.compare import (
    Ddr3Validation,
    SramBubble,
    SramValidation,
    percent_error,
    validate_ddr3,
    validate_sram_cache,
)
from repro.validation.targets import (
    DDR3_TARGET,
    SPARC_L2,
    XEON_L3,
    Ddr3Target,
    SramCacheTarget,
)

__all__ = [
    "DDR3_TARGET",
    "Ddr3Target",
    "Ddr3Validation",
    "SPARC_L2",
    "SramBubble",
    "SramCacheTarget",
    "SramValidation",
    "XEON_L3",
    "percent_error",
    "validate_ddr3",
    "validate_sram_cache",
]
