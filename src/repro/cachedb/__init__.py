"""Precomputed design-space database with interpolated lookup.

The cachedb is the serving tier over the solver: ``build_cachedb``
precomputes the optimizer's winning design point for every cell of a
(technology x node x capacity x block x associativity) grid using the
existing parallel/resilient sweep engine, and :class:`CacheDB` answers
queries from the resulting versioned artifact -- on-grid queries by
exact hit in ~microseconds (bit-identical to a live solve), off-grid
queries by log-linear interpolation between neighboring grid points,
with ``fallback="solve"|"error"|"nearest"`` for everything the grid
cannot answer.  See ``docs/MODELING.md`` section 16.
"""

from repro.cachedb.builder import BuildReport, build_cachedb
from repro.cachedb.reader import (
    FALLBACKS,
    CacheDB,
    CacheDBError,
    CacheDBMiss,
    CacheDBResult,
    open_cachedb,
)
from repro.cachedb.schema import (
    DB_FORMAT_VERSION,
    DB_METRICS,
    GridSpec,
    grid_key,
    grid_spec_for,
)

__all__ = [
    "BuildReport",
    "CacheDB",
    "CacheDBError",
    "CacheDBMiss",
    "CacheDBResult",
    "DB_FORMAT_VERSION",
    "DB_METRICS",
    "FALLBACKS",
    "GridSpec",
    "build_cachedb",
    "grid_key",
    "grid_spec_for",
    "open_cachedb",
]
