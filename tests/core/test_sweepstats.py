"""Unit tests for SweepStats itself: rates, serialization, absorption.

The optimizer integration tests (test_optimizer.py) cover counters
during real sweeps; these cover the dataclass's own arithmetic,
including the division edge cases and worker-payload absorption the
parallel engine relies on.
"""

import time

import pytest

from repro.array.organization import EvalCache
from repro.core.optimizer import SweepStats


class TestRateEdgeCases:
    def test_zero_candidates_prefilter_rate_is_zero(self):
        assert SweepStats().prefilter_rate == 0.0

    def test_zero_lookups_hit_rates_are_zero(self):
        stats = SweepStats()
        assert stats.subarray_hit_rate == 0.0
        assert stats.htree_hit_rate == 0.0

    def test_rates_with_counts(self):
        stats = SweepStats(
            enumerated=100,
            prefiltered=75,
            subarray_hits=3,
            subarray_misses=1,
            htree_hits=1,
            htree_misses=3,
        )
        assert stats.prefilter_rate == 0.75
        assert stats.subarray_hit_rate == 0.75
        assert stats.htree_hit_rate == 0.25


class TestAsDictAndSummary:
    def test_as_dict_round_trips_every_counter(self):
        stats = SweepStats(enumerated=10, prefiltered=4, built=6, feasible=5)
        d = stats.as_dict()
        assert d["enumerated"] == 10
        assert d["prefiltered"] == 4
        assert d["built"] == 6
        assert d["feasible"] == 5
        assert d["prefilter_rate"] == 0.4
        assert d["phase_times"] == {}
        assert d["workers_absorbed"] == 0

    def test_empty_stats_summary_renders(self):
        text = SweepStats().summary()
        assert "candidates enumerated : 0" in text
        assert "(0.0%)" in text
        assert "workers" not in text

    def test_summary_shows_workers_and_phases_when_present(self):
        stats = SweepStats()
        stats.absorb_worker({"built": 1, "worker_wall_time_s": 0.5})
        stats.add_phase_time("build", 0.25)
        text = stats.summary()
        assert "workers" in text
        assert "phase build" in text

    def test_as_dict_phase_times_is_a_copy(self):
        stats = SweepStats()
        stats.add_phase_time("build", 1.0)
        stats.as_dict()["phase_times"]["build"] = 99.0
        assert stats.phase_times["build"] == 1.0


class TestPhaseTimers:
    def test_phase_times_accumulate(self):
        stats = SweepStats()
        stats.add_phase_time("build", 0.5)
        stats.add_phase_time("build", 0.25)
        stats.add_phase_time("rank", 0.1)
        assert stats.phase_times == {"build": 0.75, "rank": 0.1}

    def test_phase_context_manager_measures_wall_time(self):
        stats = SweepStats()
        with stats.phase("sleep"):
            time.sleep(0.01)
        assert stats.phase_times["sleep"] >= 0.01

    def test_phase_records_even_on_exception(self):
        stats = SweepStats()
        try:
            with stats.phase("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert "boom" in stats.phase_times


class TestAbsorbWorker:
    def test_counters_sum_across_payloads(self):
        stats = SweepStats()
        stats.absorb_worker(
            {"built": 10, "infeasible_at_build": 2, "subarray_hits": 5}
        )
        stats.absorb_worker(
            {"built": 7, "infeasible_at_build": 1, "subarray_misses": 3}
        )
        assert stats.built == 17
        assert stats.infeasible_at_build == 3
        assert stats.subarray_hits == 5
        assert stats.subarray_misses == 3
        assert stats.workers_absorbed == 2

    def test_worker_wall_time_lands_in_worker_time(self):
        stats = SweepStats()
        stats.absorb_worker({"worker_wall_time_s": 0.5})
        stats.absorb_worker({"wall_time_s": 0.25})  # full as_dict payload
        assert stats.worker_time_s == 0.75
        assert stats.wall_time_s == 0.0

    def test_absorbing_full_as_dict_payload(self):
        worker = SweepStats(
            enumerated=100,
            prefiltered=60,
            built=40,
            feasible=30,
            infeasible_at_build=10,
            solve_cache_hits=1,
            solve_cache_misses=2,
        )
        worker.add_phase_time("build", 0.5)
        parent = SweepStats(enumerated=5)
        parent.absorb_worker(worker.as_dict())
        assert parent.enumerated == 105
        assert parent.feasible == 30
        assert parent.solve_cache_hits == 1
        assert parent.solve_cache_misses == 2
        # Worker phase CPU is reported separately; it must never land
        # in the parent's wall-clock phase timers (concurrent workers
        # would sum to more CPU than elapsed wall time).
        assert parent.worker_phase_times["build"] == 0.5
        assert "build" not in parent.phase_times

    def test_worker_phase_times_stay_off_parent_wall_clock(self):
        """Regression: at jobs=N the parent's ``phase_times`` used to
        accumulate every worker's per-phase CPU, reporting e.g. a
        1.73 s build phase against 0.66 s of actual wall time."""
        parent = SweepStats()
        parent.add_phase_time("build", 0.66)  # parent-measured wall time
        for _ in range(4):  # four concurrent workers' CPU payloads
            parent.absorb_worker({"phase_times": {"build": 0.43}})
        assert parent.phase_times["build"] == 0.66
        assert parent.worker_phase_times["build"] == pytest.approx(1.72)
        payload = parent.as_dict()
        assert payload["phase_times"]["build"] == 0.66
        assert payload["worker_phase_times"]["build"] == pytest.approx(1.72)

    def test_nested_worker_phase_times_forward(self):
        """A mid-level worker forwards absorbed sub-worker phase CPU
        under ``worker_phase_times``; it stays worker-side upstream."""
        mid = SweepStats()
        mid.absorb_worker({"phase_times": {"build": 0.2}})
        top = SweepStats()
        top.absorb_worker(mid.as_dict())
        assert top.worker_phase_times["build"] == 0.2
        assert top.phase_times == {}

    def test_unknown_keys_ignored(self):
        stats = SweepStats()
        stats.absorb_worker({"pid": 1234, "prefilter_rate": 0.9})
        assert stats.as_dict()["enumerated"] == 0

    def test_nested_absorption_counts_forward(self):
        """A worker that itself absorbed sub-workers reports a payload
        whose counts survive one more absorption."""
        mid = SweepStats()
        mid.absorb_worker({"built": 3, "worker_wall_time_s": 0.1})
        top = SweepStats()
        top.absorb_worker(mid.as_dict())
        assert top.built == 3
        assert top.worker_time_s == 0.1
        assert top.workers_absorbed == 2  # mid itself + its sub-worker

    def test_eval_cache_marks_unaffected_by_absorb(self):
        stats = SweepStats()
        cache = EvalCache()
        stats._mark_eval_cache(cache)
        stats.absorb_worker({"subarray_hits": 4})
        cache.subarray_hits += 1
        stats._absorb_eval_cache(cache)
        assert stats.subarray_hits == 5
