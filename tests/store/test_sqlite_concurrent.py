"""Concurrent-writer safety for the sqlite backend (satellite of the
store refactor): N processes hammering one database with overlapping
keys must lose no records, corrupt nothing, and respect the eviction
bound.

The processes are real (``multiprocessing`` with the fork context --
no pickling of test-module functions needed on Linux), the keys
deliberately overlap between writers, and every writer flushes many
times so the BEGIN IMMEDIATE upsert path sees genuine lock contention.
"""

import json
import multiprocessing
import sqlite3

import pytest

from repro.store import SqliteStore

VERSION = "concurrent-v1"

#: Writers x records: small enough to run in seconds, large enough that
#: interleaved flushes genuinely contend for the write lock.
WRITERS = 4
RECORDS_PER_WRITER = 60
#: Keys shared by every writer (all writers put the same record there,
#: so any interleaving leaves a valid value).
SHARED_KEYS = 10


def _writer(path, writer_id, bound, barrier):
    """One writer process: interleaved puts and frequent flushes."""
    store = SqliteStore(
        path, version=VERSION, max_records=bound
    )
    barrier.wait()  # maximize overlap: all writers start together
    for i in range(RECORDS_PER_WRITER):
        if i < SHARED_KEYS:
            # Overlapping keys: every writer writes the same record.
            store.put(f"shared-{i}", {"key": f"shared-{i}", "n": i})
        else:
            store.put(
                f"w{writer_id}-{i}", {"key": f"w{writer_id}-{i}", "n": i}
            )
        if i % 7 == 0:
            store.flush()
    store.close()


def _run_writers(path, bound):
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(WRITERS)
    procs = [
        ctx.Process(target=_writer, args=(path, writer_id, bound, barrier))
        for writer_id in range(WRITERS)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0, f"writer crashed with {p.exitcode}"


def expected_keys():
    keys = {f"shared-{i}" for i in range(SHARED_KEYS)}
    for writer_id in range(WRITERS):
        keys |= {
            f"w{writer_id}-{i}"
            for i in range(SHARED_KEYS, RECORDS_PER_WRITER)
        }
    return keys


@pytest.mark.slow
class TestConcurrentWriters:
    def test_unbounded_no_lost_records(self, tmp_path):
        """Without an eviction bound, every record every writer put must
        be present and intact afterwards."""
        path = tmp_path / "s.db"
        _run_writers(path, bound=None)
        store = SqliteStore(path, version=VERSION)
        scanned = dict(store.scan())
        assert set(scanned) == expected_keys()
        # Every record is intact and self-consistent.
        for key, record in scanned.items():
            assert record["key"] == key
        assert store.corrupt_records == 0
        store.close()

    def test_bounded_respects_eviction_bound(self, tmp_path):
        """With a bound smaller than the total write volume, the store
        must stay at (or under) the bound -- and every surviving record
        must still be intact."""
        bound = 50
        path = tmp_path / "s.db"
        _run_writers(path, bound=bound)
        store = SqliteStore(path, version=VERSION, max_records=bound)
        assert 0 < len(store) <= bound
        for key, record in store.scan():
            assert record["key"] == key
        store.close()

    def test_database_integrity_after_contention(self, tmp_path):
        path = tmp_path / "s.db"
        _run_writers(path, bound=None)
        conn = sqlite3.connect(path)
        (verdict,) = conn.execute("PRAGMA integrity_check").fetchone()
        assert verdict == "ok"
        # Raw rows are all parseable JSON at the expected version.
        for value, version in conn.execute(
            "SELECT value, version FROM records"
        ):
            assert version == VERSION
            json.loads(value)
        conn.close()
