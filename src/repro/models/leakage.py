"""Leakage-power modeling helpers (eCACTI lineage).

CACTI 4/5 adopted eCACTI's leakage methodology; CACTI-D adds the sleep-
transistor option used to match the 65 nm Xeon L3 (inactive mats' leakage
halved) and evaluates subthreshold leakage at operating temperature.
This module exposes the temperature scaling and sleep accounting as
standalone utilities for studies that post-process solved designs.
"""

from __future__ import annotations

import math

from repro.tech.devices import TEMPERATURE_LEAKAGE_FACTOR

#: Reference temperatures of the built-in leakage factor (K).
ROOM_TEMPERATURE = 300.0
OPERATING_TEMPERATURE = 360.0

#: Subthreshold leakage doubles roughly every this many kelvin.
_DOUBLING_KELVIN = (OPERATING_TEMPERATURE - ROOM_TEMPERATURE) / math.log2(
    TEMPERATURE_LEAKAGE_FACTOR
)


def temperature_factor(temperature_k: float) -> float:
    """Leakage multiplier at ``temperature_k`` relative to 300 K.

    Exponential in temperature, anchored so the built-in operating point
    reproduces :data:`TEMPERATURE_LEAKAGE_FACTOR`.
    """
    return 2.0 ** ((temperature_k - ROOM_TEMPERATURE) / _DOUBLING_KELVIN)


def rescale_leakage(
    p_leakage: float, temperature_k: float
) -> float:
    """Rescale a solved leakage power to a different die temperature."""
    return (
        p_leakage
        * temperature_factor(temperature_k)
        / TEMPERATURE_LEAKAGE_FACTOR
    )


def sleep_transistor_leakage(
    p_active_fraction: float, p_leakage_raw: float, sleep_factor: float = 0.5
) -> float:
    """Leakage with sleep transistors on inactive mats.

    ``p_active_fraction`` is the fraction of mats awake during an access;
    sleeping mats leak ``sleep_factor`` of their nominal value (the paper
    models the Xeon's mechanism as cutting leakage in half).
    """
    awake = p_active_fraction
    return p_leakage_raw * (awake + sleep_factor * (1.0 - awake))
