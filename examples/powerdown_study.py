#!/usr/bin/env python3
"""Following the paper's conclusion: DRAM power-down modes.

The paper closes with: "the high percentage of main memory system power we
observed due to standby power suggests that appropriate use of DRAM
power-down modes, combined with supporting operating system policies, may
significantly reduce main memory power."

This example quantifies the suggestion end to end: it simulates one
application on the nol3 and cm_dram_c systems, extracts the realized
main-memory request rate, converts it into an idle-gap distribution, and
evaluates a timeout-based power-down policy — showing how the big stacked
COMM-DRAM L3, by starving the DIMMs of traffic, *enables* deep power-down
on top of its direct benefits.

Run:  python examples/powerdown_study.py
"""

from repro.power.powerdown import (
    PowerDownPolicy,
    evaluate_policy,
    idle_intervals_from_rate,
)
from repro.study.runner import run_one
from repro.study.table3 import CPU_HZ, paper_table3
from repro.workloads.npb import FT_B, UA_C

INSTRUCTIONS = 40_000


def main() -> None:
    standby_per_chip = paper_table3()["main"].leakage_w
    num_chips = 16
    policy = PowerDownPolicy(powerdown_timeout=100e-9,
                             self_refresh_timeout=100e-6)

    print(f"{'app':<8}{'config':<12}{'req/s/rank':>12}{'always-on W':>13}"
          f"{'managed W':>11}{'saving':>8}{'added ns':>10}")
    rates = {}
    for app in (FT_B, UA_C):
        for config in ("nol3", "cm_dram_c"):
            result = run_one(app.with_instructions(INSTRUCTIONS), config)
            seconds = result.stats.cycles / CPU_HZ
            requests = (result.stats.counters.mem_reads
                        + result.stats.counters.mem_writes)
            rate = requests / seconds / 2  # two single-ranked DIMMs
            rates[(app.name, config)] = rate
            gaps = idle_intervals_from_rate(rate, seconds)
            outcome = evaluate_policy(policy, standby_per_chip, gaps)
            always_on = standby_per_chip * num_chips
            managed = outcome.average_standby_power * num_chips
            print(
                f"{app.name:<8}{config:<12}{rate:>12.2e}{always_on:>13.3f}"
                f"{managed:>11.3f}"
                f"{outcome.savings_vs_active(standby_per_chip):>8.0%}"
                f"{outcome.average_added_latency * 1e9:>10.0f}"
            )

    # Memory-bound phases keep the ranks awake; OS policies that batch
    # traffic (or simply quieter phases) unlock the deep states.  Sweep
    # the ua.C/cm_dram_c rate downward to show the available headroom.
    base_rate = rates[("ua.C", "cm_dram_c")]
    print("\nHeadroom as traffic thins (ua.C on cm_dram_c, rate / N):")
    print(f"{'divisor':>8}{'req/s/rank':>13}{'saving':>8}{'added ns':>10}")
    for divisor in (1, 10, 100, 1000):
        gaps = idle_intervals_from_rate(base_rate / divisor, 1.0)
        outcome = evaluate_policy(policy, standby_per_chip, gaps)
        print(f"{divisor:>8}{base_rate / divisor:>13.2e}"
              f"{outcome.savings_vs_active(standby_per_chip):>8.0%}"
              f"{outcome.average_added_latency * 1e9:>10.0f}")

    print("\nThe larger the stacked L3 and the quieter the phase, the")
    print("deeper the DIMMs can sleep: the paper's closing observation,")
    print("quantified.")


if __name__ == "__main__":
    main()
