"""Memory-hierarchy power accounting (paper Figure 5(a)).

Combines CACTI-D's per-structure energies and static powers with the
simulator's event counts to produce the paper's power breakdown: L1, L2,
crossbar, and L3 leakage + dynamic power, L3 refresh, and main-memory
chip dynamic, standby, refresh, and bus power.

The paper assumes a memory bus power of 2 mW/Gb/s (2013-era signaling),
i.e. 2 pJ per transferred bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimStats

#: Paper assumption: 2 mW/Gb/s of memory bus bandwidth = 2 pJ/bit.
BUS_ENERGY_PER_BIT = 2e-12

#: Command/address overhead of a line transfer, as extra bus bits.
_BUS_OVERHEAD_BITS = 64


@dataclass(frozen=True)
class LevelEnergy:
    """Energy/power figures of one cache level (whole structure)."""

    e_read: float  #: J per read access
    e_write: float  #: J per write access
    p_leakage: float  #: W, all banks/instances
    p_refresh: float = 0.0  #: W (DRAM caches)


@dataclass(frozen=True)
class MainMemoryEnergy:
    """Per-chip figures plus DIMM organization."""

    e_activate: float  #: J per ACTIVATE (+precharge), one chip
    e_read: float  #: J per READ burst, one chip
    e_write: float  #: J per WRITE burst, one chip
    p_standby: float  #: W per chip
    p_refresh: float  #: W per chip
    chips_per_access: int = 8  #: x8 devices making a 64-bit channel
    num_chips: int = 16  #: two single-ranked DIMMs of 8 devices


@dataclass(frozen=True)
class HierarchyEnergyModel:
    """Everything Figure 5(a) needs, per system configuration."""

    l1: LevelEnergy  #: all 16 L1 instances (8 I + 8 D)
    l2: LevelEnergy  #: all 8 private L2s
    crossbar_e_transfer: float  #: J per crossbar line transfer
    crossbar_p_leakage: float
    l3: LevelEnergy | None
    memory: MainMemoryEnergy
    line_bytes: int = 64


@dataclass(frozen=True)
class PowerBreakdown:
    """Figure 5(a): component powers in watts."""

    l1_leak: float
    l1_dyn: float
    l2_leak: float
    l2_dyn: float
    crossbar_leak: float
    crossbar_dyn: float
    l3_leak: float
    l3_dyn: float
    l3_refresh: float
    main_chip_dyn: float
    main_standby: float
    main_refresh: float
    main_bus: float

    @property
    def total(self) -> float:
        return sum(
            getattr(self, f) for f in self.__dataclass_fields__
        )

    @property
    def main_memory_total(self) -> float:
        return (self.main_chip_dyn + self.main_standby + self.main_refresh
                + self.main_bus)

    def as_dict(self) -> dict[str, float]:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


def hierarchy_power(
    model: HierarchyEnergyModel, stats: SimStats, duration_s: float
) -> PowerBreakdown:
    """Average memory-hierarchy power over a simulated interval."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    c = stats.counters

    def dyn(reads: int, writes: int, level: LevelEnergy) -> float:
        return (reads * level.e_read + writes * level.e_write) / duration_s

    l1_dyn = dyn(c.l1_reads, c.l1_writes, model.l1)
    l2_dyn = dyn(c.l2_reads, c.l2_writes, model.l2)
    xbar_dyn = c.crossbar_transfers * model.crossbar_e_transfer / duration_s

    if model.l3 is not None:
        l3_dyn = dyn(c.l3_reads, c.l3_writes, model.l3)
        l3_leak = model.l3.p_leakage
        l3_refresh = model.l3.p_refresh
    else:
        l3_dyn = l3_leak = l3_refresh = 0.0

    mem = model.memory
    accesses = c.mem_reads + c.mem_writes
    chip_energy = (
        c.mem_activates * mem.e_activate * mem.chips_per_access
        + c.mem_reads * mem.e_read * mem.chips_per_access
        + c.mem_writes * mem.e_write * mem.chips_per_access
    )
    main_chip_dyn = chip_energy / duration_s
    bus_bits = accesses * (model.line_bytes * 8 + _BUS_OVERHEAD_BITS)
    main_bus = bus_bits * BUS_ENERGY_PER_BIT / duration_s

    return PowerBreakdown(
        l1_leak=model.l1.p_leakage,
        l1_dyn=l1_dyn,
        l2_leak=model.l2.p_leakage,
        l2_dyn=l2_dyn,
        crossbar_leak=model.crossbar_p_leakage if model.l3 else 0.0,
        crossbar_dyn=xbar_dyn if model.l3 else 0.0,
        l3_leak=l3_leak,
        l3_dyn=l3_dyn,
        l3_refresh=l3_refresh,
        main_chip_dyn=main_chip_dyn,
        main_standby=mem.p_standby * mem.num_chips,
        main_refresh=mem.p_refresh * mem.num_chips,
        main_bus=main_bus,
    )
