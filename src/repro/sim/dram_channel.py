"""Main-memory channels: controller, banks, and page policy.

The target system has two memory channels, each with a single-ranked DIMM
of x8 devices (paper section 3.1).  Requests interleave across channels on
cache-line granularity and across the 8 banks of each rank on row
granularity.  Banks follow the command protocol of
:mod:`repro.dram.operations`; the controller adds queueing at the channel
data bus.

All times are in CPU cycles (the simulator's unit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.array.mainmem import MainMemoryTiming
from repro.dram.operations import DramBank
from repro.dram.page_policy import ClosedPagePolicy, PagePolicy


@dataclass(frozen=True)
class MemoryTimingCycles:
    """Chip timing interface converted to CPU cycles."""

    t_rcd: float
    t_cas: float
    t_rp: float
    t_ras: float
    t_rc: float
    t_rrd: float
    t_burst: float

    @classmethod
    def from_chip(cls, timing: MainMemoryTiming, cpu_hz: float
                  ) -> "MemoryTimingCycles":
        s = cpu_hz
        return cls(
            t_rcd=timing.t_rcd * s,
            t_cas=timing.t_cas * s,
            t_rp=timing.t_rp * s,
            t_ras=timing.t_ras * s,
            t_rc=timing.t_rc * s,
            t_rrd=timing.t_rrd * s,
            t_burst=timing.t_burst * s,
        )

    def to_chip_timing(self) -> MainMemoryTiming:
        return MainMemoryTiming(
            t_rcd=self.t_rcd,
            t_cas=self.t_cas,
            t_rp=self.t_rp,
            t_ras=self.t_ras,
            t_rc=self.t_rc,
            t_rrd=self.t_rrd,
            t_burst=self.t_burst,
        )


@dataclass
class MemoryStats:
    activates: int = 0
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    refreshes: int = 0


class MemoryController:
    """Two-channel, multi-bank main memory with a page policy."""

    def __init__(
        self,
        timing: MemoryTimingCycles,
        num_channels: int = 2,
        banks_per_channel: int = 8,
        row_bytes: int = 1024,
        line_bytes: int = 64,
        policy: PagePolicy | None = None,
        refresh_interval: float = 0.0,
    ):
        """``refresh_interval`` > 0 injects per-bank REFRESH operations at
        that pitch (in CPU cycles, the tREFI analogue), stealing bank time
        from demand requests as real controllers do."""
        self.timing = timing
        self.num_channels = num_channels
        self.banks_per_channel = banks_per_channel
        self.row_bytes = row_bytes
        self.line_bytes = line_bytes
        self.policy = policy or ClosedPagePolicy()
        self.refresh_interval = refresh_interval
        chip = timing.to_chip_timing()
        self.banks = [
            [DramBank(timing=chip) for _ in range(banks_per_channel)]
            for _ in range(num_channels)
        ]
        self._bus_ready = [0.0] * num_channels
        self._next_refresh = [
            [refresh_interval] * banks_per_channel
            for _ in range(num_channels)
        ]
        self.stats = MemoryStats()

    # ------------------------------------------------------------------ #

    def _map(self, address: int) -> tuple[int, int, int]:
        """Address to (channel, bank, row): lines interleave channels,
        rows interleave banks."""
        line = address // self.line_bytes
        channel = line % self.num_channels
        row_global = address // (self.row_bytes * self.num_channels)
        bank = row_global % self.banks_per_channel
        row = row_global // self.banks_per_channel
        return channel, bank, row

    def access(self, now: float, address: int, is_write: bool) -> float:
        """Service one cache-line request; returns its total latency
        (CPU cycles, request to first data)."""
        channel, bank_idx, row = self._map(address)
        bank = self.banks[channel][bank_idx]
        if self.refresh_interval > 0.0:
            while self._next_refresh[channel][bank_idx] <= now:
                bank.refresh(self._next_refresh[channel][bank_idx])
                self._next_refresh[channel][bank_idx] += (
                    self.refresh_interval
                )
                self.stats.refreshes += 1
        close = self.policy.close_after_access(0.0)
        result = bank.access(now, row, is_write, close_after=close)

        # Channel data bus: one burst occupies it; serialize bursts.
        data_start = max(result.data_time, self._bus_ready[channel])
        self._bus_ready[channel] = data_start + self.timing.t_burst

        self.stats.reads += 0 if is_write else 1
        self.stats.writes += 1 if is_write else 0
        self.stats.activates += 1 if result.activated else 0
        self.stats.row_hits += 1 if result.row_hit else 0
        return data_start + self.timing.t_burst - now
