#!/usr/bin/env python3
"""DRAM model validation against the 78 nm Micron DDR3-1066 x8 part.

Reproduces paper Table 2: solves the 1 Gb chip at the interpolated 78 nm
node, prints actual vs modeled timing/power with per-metric errors, and
compares each error against the error CACTI-D itself reported.  Also
shows the datasheet view: the analogue timing quantized to DDR3-1066
clocks.

Run:  python examples/ddr3_validation.py
"""

from repro.models import DDR3_1066, quantize
from repro.validation import validate_ddr3


def main() -> None:
    validation = validate_ddr3()
    print(validation.report())

    solution = validation.solution
    print("\nChosen organization:")
    m = solution.metrics
    print(f"  ndwl={m.org.ndwl} ndbl={m.org.ndbl} nspd={m.org.nspd} "
          f"ndsam={m.org.ndsam}")
    print(f"  subarray {m.rows} x {m.cols}, {m.nact} activated per row, "
          f"{m.sensed_bits} sense amps per page")

    sheet = quantize(solution.timing, DDR3_1066)
    print(f"\nDatasheet view: {sheet.label()}  "
          f"(tRAS={sheet.tras}, tRC={sheet.trc} cycles)")
    print("The real Micron part is DDR3-1066 7-7-7.")


if __name__ == "__main__":
    main()
