"""Shared fixtures for the test suite."""

import pytest

from repro.tech.cells import CellTech
from repro.tech.nodes import technology


@pytest.fixture(scope="session")
def tech32():
    return technology(32)


@pytest.fixture(scope="session")
def tech90():
    return technology(90)


@pytest.fixture(scope="session", params=[90, 65, 45, 32])
def any_node(request):
    return technology(request.param)


@pytest.fixture(scope="session", params=list(CellTech))
def any_cell_tech(request):
    return request.param
