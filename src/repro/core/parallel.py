"""Multi-process batch execution engine for design-space sweeps.

CACTI-D's value is sweeping *many* configurations: the full
(ndwl, ndbl, nspd, ndcm, ndsam) grid inside one solve, batches of
independent solves across a study matrix, and sensitivity sweeps around
a base point.  All three are embarrassingly parallel, and this module
gives them one engine:

* :func:`parallel_map` -- an order-preserving ``ProcessPoolExecutor``
  map with a worker initializer that installs a worker-local
  :class:`~repro.array.organization.EvalCache`;
* :func:`chunk_evenly` -- deterministic, contiguous, order-preserving
  sharding of a candidate list;
* :func:`build_designs_parallel` -- the optimizer's inner loop: shards
  surviving candidates into chunks, evaluates each chunk in a worker
  with that worker's cache, and merges results in candidate order.

Determinism is the contract.  Chunks are contiguous slices merged back
in submission order, so the concatenated design list is *identical* --
same designs, same order -- to the serial sweep, and ranking tie-breaks
(which resolve by enumeration order) are bit-identical.  Worker-local
eval caches cannot change numbers either: cached and uncached
construction produce the same frozen objects performing the same
computations.

Workers ship their counters home as plain dicts (picklable, no shared
state), which the parent absorbs into its
:class:`~repro.core.optimizer.SweepStats` via ``absorb_worker``.
``jobs=1`` everywhere falls back to the plain serial path with no
executor, no forks, and no pickling.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.obs import maybe_span

#: Target chunks per worker: smaller chunks load-balance across workers,
#: larger chunks amortize task pickling overhead.
OVERSUBSCRIBE = 4

#: Worker-local cross-candidate cache, created by the pool initializer
#: (one per worker process, reused across every chunk that worker runs).
_WORKER_EVAL_CACHE = None


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a worker-count request.

    ``None`` or a non-positive count means "all available cores"
    (respecting CPU affinity where the platform exposes it); any
    positive count is taken literally.
    """
    if jobs is None or jobs <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return int(jobs)


def chunk_evenly(
    items: Sequence, jobs: int, oversubscribe: int = OVERSUBSCRIBE
) -> list[list]:
    """Shard ``items`` into contiguous, order-preserving chunks.

    Produces about ``jobs * oversubscribe`` equal slices (never empty
    ones), so stragglers rebalance while concatenating the per-chunk
    results in chunk order reproduces the input order exactly.
    """
    items = list(items)
    if not items:
        return []
    nchunks = min(len(items), max(1, jobs * oversubscribe))
    size = -(-len(items) // nchunks)
    return [items[i : i + size] for i in range(0, len(items), size)]


def _init_worker() -> None:
    global _WORKER_EVAL_CACHE
    from repro.array.organization import EvalCache

    _WORKER_EVAL_CACHE = EvalCache()


def worker_eval_cache():
    """The calling process's worker-local EvalCache (created on demand,
    so worker task functions also run unchanged in the parent)."""
    if _WORKER_EVAL_CACHE is None:
        _init_worker()
    return _WORKER_EVAL_CACHE


def parallel_map(
    fn: Callable,
    payloads: Sequence,
    jobs: int,
    *,
    obs=None,
    span_name: str | None = None,
) -> list:
    """Order-preserving map over worker processes.

    ``jobs=1`` (or a single payload) runs ``fn`` serially in-process --
    no executor, no pickling.  Results always come back in payload
    order, never completion order, so downstream merges are
    deterministic.  A worker exception propagates to the caller.

    ``obs`` + ``span_name`` trace the map: the serial path records one
    ``span_name`` span per task, the parallel path one enclosing
    ``<span_name>.map`` span (per-task spans inside workers are the
    task function's job to ship home).
    """
    payloads = list(payloads)
    jobs = min(resolve_jobs(jobs), len(payloads))
    if jobs <= 1:
        if obs is None or span_name is None:
            return [fn(p) for p in payloads]
        results = []
        for i, p in enumerate(payloads):
            with obs.span(span_name, index=i):
                results.append(fn(p))
        return results
    with maybe_span(
        obs,
        f"{span_name}.map" if span_name else "parallel_map",
        jobs=jobs,
        tasks=len(payloads),
    ):
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker
        ) as pool:
            return list(pool.map(fn, payloads))


# --------------------------------------------------------------------- #
# The optimizer's parallel inner loop.


def _eval_chunk(payload: tuple) -> tuple[list, dict]:
    """Worker task: build every candidate of one chunk.

    Returns the feasible :class:`~repro.array.organization.ArrayMetrics`
    in candidate order plus a stats payload (counter deltas of this
    chunk only, so the parent can sum payloads without double counting).
    When the parent traces, the payload also carries an ``"obs"`` entry
    -- this worker's local spans and metrics, recorded against its own
    clock -- which the parent stitches into its trace with this
    worker's pid at the correct time offset.
    """
    from repro.array.organization import (
        InfeasibleOrganization,
        InfeasibleSubarray,
        build_organization,
    )
    from repro.tech.nodes import technology

    node_nm, spec, chunk, with_obs = payload
    t0 = time.perf_counter()
    obs = None
    if with_obs:
        from repro.obs import Obs

        obs = Obs()
    cache = worker_eval_cache()
    tech = technology(node_nm)
    before = (
        cache.subarray_hits,
        cache.subarray_misses,
        cache.htree_hits,
        cache.htree_misses,
    )
    designs = []
    infeasible = 0
    with maybe_span(obs, "chunk", candidates=len(chunk), pid=os.getpid()):
        for org, geometry in chunk:
            try:
                designs.append(
                    build_organization(
                        tech, spec, org, cache=cache, geometry=geometry
                    )
                )
            except (InfeasibleOrganization, InfeasibleSubarray):
                infeasible += 1
    after = (
        cache.subarray_hits,
        cache.subarray_misses,
        cache.htree_hits,
        cache.htree_misses,
    )
    deltas = [now - then for now, then in zip(after, before)]
    worker_wall = time.perf_counter() - t0
    stats = {
        "built": len(chunk),
        "infeasible_at_build": infeasible,
        "subarray_hits": deltas[0],
        "subarray_misses": deltas[1],
        "htree_hits": deltas[2],
        "htree_misses": deltas[3],
        "worker_wall_time_s": worker_wall,
        "pid": os.getpid(),
    }
    if obs is not None:
        obs.inc("optimizer.built", len(chunk))
        obs.inc("optimizer.infeasible_at_build", infeasible)
        obs.inc("eval_cache.subarray.hits", deltas[0])
        obs.inc("eval_cache.subarray.misses", deltas[1])
        obs.inc("eval_cache.htree.hits", deltas[2])
        obs.inc("eval_cache.htree.misses", deltas[3])
        obs.observe("parallel.chunk_s", worker_wall)
        stats["obs"] = obs.export_payload()
    return designs, stats


def build_designs_parallel(
    node_nm: float,
    spec,
    candidates: Sequence,
    jobs: int,
    *,
    with_obs: bool = False,
) -> tuple[list, list[dict]]:
    """Evaluate pre-filtered ``(OrgParams, OrgGeometry)`` candidates
    across worker processes.

    Returns the feasible designs *in candidate order* (chunks are
    contiguous and merged in submission order) and the per-chunk worker
    stats payloads.  Workers rebuild the (lru-cached) technology object
    from ``node_nm`` rather than unpickling it.  ``with_obs`` asks each
    worker to record local spans/metrics into its payload (under
    ``"obs"``) for the parent to stitch into its trace.
    """
    chunks = chunk_evenly(candidates, jobs)
    out = parallel_map(
        _eval_chunk,
        [(node_nm, spec, chunk, with_obs) for chunk in chunks],
        jobs,
    )
    designs: list = []
    stats_payloads: list[dict] = []
    for chunk_designs, chunk_stats in out:
        designs.extend(chunk_designs)
        stats_payloads.append(chunk_stats)
    return designs, stats_payloads
