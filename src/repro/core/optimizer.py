"""Solution optimization (paper section 2.4).

CACTI 5 changed the optimization flow: rather than a single fixed figure
of merit, the tool first collects *all* feasible organizations, keeps the
ones whose area is within a user-supplied percentage of the most
area-efficient solution (max area constraint), narrows to those whose
access time is within a percentage of the fastest remaining solution (max
access time constraint), and finally ranks that subset by a normalized,
weighted combination of dynamic energy, leakage power, random cycle time,
and multisubbank interleave cycle time.

The sweep has a fast path that changes none of the numbers:

* a cheap structural pre-filter (:func:`~repro.array.organization.
  prefilter_org`) rejects most candidate tuples from spec arithmetic
  alone, before any circuit object is built;
* an :class:`~repro.array.organization.EvalCache` shares subarray and
  H-tree designs across candidates (and, via the
  :class:`~repro.core.cacti.CactiD` facade, across solves);
* an optional persistent :class:`~repro.core.solvecache.SolveCache`
  short-circuits whole repeated solves from disk.

:class:`SweepStats` counts what each layer did so speedups are
measurable.
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.array.organization import (
    ArrayMetrics,
    ArraySpec,
    EvalCache,
    InfeasibleOrganization,
    InfeasibleSubarray,
    build_organization,
    enumerate_orgs,
    org_grid_size,
    prefilter_grid,
    prefilter_org,
)
from repro.array import kernels
from repro.core import parallel
from repro.core.config import OptimizationTarget
from repro.core.solvecache import account_store as _account_store
from repro.obs import Obs, maybe_span
from repro.obs import phase as obs_phase
from repro.tech.nodes import Technology


class NoFeasibleSolution(RuntimeError):
    """No partitioning tuple could realize the requested array."""


@dataclass
class SweepStats:
    """Observability counters for one or more optimizer sweeps.

    Accumulates in place: pass the same instance to several solves (as
    the :class:`~repro.core.cacti.CactiD` facade does) to get totals.
    """

    enumerated: int = 0  #: candidate tuples enumerated
    prefiltered: int = 0  #: rejected by the cheap structural pre-filter
    built: int = 0  #: full circuit constructions attempted
    infeasible_at_build: int = 0  #: rejected by electrical checks at build
    feasible: int = 0  #: designs that survived to ranking
    subarray_hits: int = 0  #: subarray designs reused from the eval cache
    subarray_misses: int = 0
    htree_hits: int = 0  #: H-tree designs reused from the eval cache
    htree_misses: int = 0
    solve_cache_hits: int = 0  #: whole solves served from the disk cache
    solve_cache_misses: int = 0
    store_evictions: int = 0  #: records LRU-evicted by a bounded store
    store_flush_writes: int = 0  #: store saves actually written to disk
    retries: int = 0  #: task attempts re-run under a resilience policy
    pool_rebuilds: int = 0  #: worker pools torn down and rebuilt
    timeouts: int = 0  #: tasks cancelled for exceeding their wall clock
    tasks_failed: int = 0  #: tasks that failed terminally (skip/retry)
    wall_time_s: float = 0.0  #: total optimizer wall time
    worker_time_s: float = 0.0  #: wall time summed across worker processes
    workers_absorbed: int = 0  #: worker stats payloads merged in
    phase_times: dict = field(default_factory=dict)  #: named phase timers
    #: Phase timers absorbed from worker payloads.  Kept separate from
    #: ``phase_times`` so the parent's phase report stays wall-clock
    #: true: at jobs=N a build phase runs its workers concurrently, and
    #: summing their per-phase CPU into the parent's timers used to
    #: report build=1.73 s against 0.66 s of actual wall time.
    worker_phase_times: dict = field(default_factory=dict)
    _eval_marks: dict = field(default_factory=dict, repr=False)

    #: Counter fields summable across worker payloads.
    _ABSORBABLE = (
        "enumerated",
        "prefiltered",
        "built",
        "infeasible_at_build",
        "feasible",
        "subarray_hits",
        "subarray_misses",
        "htree_hits",
        "htree_misses",
        "solve_cache_hits",
        "solve_cache_misses",
        "store_evictions",
        "store_flush_writes",
        "retries",
        "pool_rebuilds",
        "timeouts",
        "tasks_failed",
    )

    @property
    def prefilter_rate(self) -> float:
        return self.prefiltered / self.enumerated if self.enumerated else 0.0

    @property
    def subarray_hit_rate(self) -> float:
        total = self.subarray_hits + self.subarray_misses
        return self.subarray_hits / total if total else 0.0

    @property
    def htree_hit_rate(self) -> float:
        total = self.htree_hits + self.htree_misses
        return self.htree_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "enumerated": self.enumerated,
            "prefiltered": self.prefiltered,
            "built": self.built,
            "infeasible_at_build": self.infeasible_at_build,
            "feasible": self.feasible,
            "subarray_hits": self.subarray_hits,
            "subarray_misses": self.subarray_misses,
            "htree_hits": self.htree_hits,
            "htree_misses": self.htree_misses,
            "solve_cache_hits": self.solve_cache_hits,
            "solve_cache_misses": self.solve_cache_misses,
            "store_evictions": self.store_evictions,
            "store_flush_writes": self.store_flush_writes,
            "retries": self.retries,
            "pool_rebuilds": self.pool_rebuilds,
            "timeouts": self.timeouts,
            "tasks_failed": self.tasks_failed,
            "prefilter_rate": self.prefilter_rate,
            "subarray_hit_rate": self.subarray_hit_rate,
            "htree_hit_rate": self.htree_hit_rate,
            "wall_time_s": self.wall_time_s,
            "worker_time_s": self.worker_time_s,
            "workers_absorbed": self.workers_absorbed,
            "phase_times": dict(self.phase_times),
            "worker_phase_times": dict(self.worker_phase_times),
        }

    def summary(self) -> str:
        """Human-readable multi-line report, printable from the CLI."""
        lines = [
            f"candidates enumerated : {self.enumerated}",
            f"pre-filtered (cheap)  : {self.prefiltered} "
            f"({self.prefilter_rate * 100:.1f}%)",
            f"built                 : {self.built}",
            f"infeasible at build   : {self.infeasible_at_build}",
            f"feasible designs      : {self.feasible}",
            f"subarray cache        : {self.subarray_hits} hits / "
            f"{self.subarray_misses} misses "
            f"({self.subarray_hit_rate * 100:.1f}%)",
            f"h-tree cache          : {self.htree_hits} hits / "
            f"{self.htree_misses} misses "
            f"({self.htree_hit_rate * 100:.1f}%)",
            f"solve cache           : {self.solve_cache_hits} hits / "
            f"{self.solve_cache_misses} misses",
            f"wall time             : {self.wall_time_s * 1e3:.1f} ms",
        ]
        if self.store_flush_writes or self.store_evictions:
            lines.insert(
                -1,
                f"solve store           : {self.store_flush_writes} flush "
                f"writes, {self.store_evictions} evictions",
            )
        if self.retries or self.timeouts or self.tasks_failed \
                or self.pool_rebuilds:
            lines.append(
                f"resilience            : {self.retries} retries, "
                f"{self.timeouts} timeouts, {self.tasks_failed} failed, "
                f"{self.pool_rebuilds} pool rebuilds"
            )
        if self.workers_absorbed:
            lines.append(
                f"workers               : {self.workers_absorbed} payloads, "
                f"{self.worker_time_s * 1e3:.1f} ms worker wall time"
            )
        for name, seconds in self.phase_times.items():
            lines.append(f"phase {name:<16}: {seconds * 1e3:.1f} ms")
        for name, seconds in self.worker_phase_times.items():
            lines.append(
                f"worker phase {name:<9}: {seconds * 1e3:.1f} ms (CPU)"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #

    def add_phase_time(self, name: str, seconds: float) -> None:
        """Accumulate wall time into the named phase timer."""
        self.phase_times[name] = self.phase_times.get(name, 0.0) + seconds

    def add_worker_phase_time(self, name: str, seconds: float) -> None:
        """Accumulate worker CPU time into the named worker phase timer."""
        self.worker_phase_times[name] = (
            self.worker_phase_times.get(name, 0.0) + seconds
        )

    @contextmanager
    def phase(self, name: str):
        """Context manager timing one phase of a sweep by wall clock."""
        t0 = time.perf_counter()
        try:
            yield self
        finally:
            self.add_phase_time(name, time.perf_counter() - t0)

    def absorb_worker(self, payload: dict) -> None:
        """Merge a stats payload shipped back from a worker process.

        Accepts either a per-chunk delta dict (from the parallel build
        loop) or a full ``as_dict()`` snapshot of a worker-side
        SweepStats (from batch solves).  Unknown keys -- derived rates,
        pids -- are ignored; worker wall time lands in
        ``worker_time_s``, never ``wall_time_s``, and worker phase
        timers land in ``worker_phase_times``, never ``phase_times``,
        so the parent's own wall-clock measurements stay meaningful
        (concurrent workers sum to more CPU than wall time).
        """
        for name in self._ABSORBABLE:
            value = payload.get(name, 0)
            if value:
                setattr(self, name, getattr(self, name) + value)
        self.worker_time_s += payload.get(
            "worker_wall_time_s", payload.get("wall_time_s", 0.0)
        )
        self.worker_time_s += payload.get("worker_time_s", 0.0)
        for name, seconds in (payload.get("phase_times") or {}).items():
            self.add_worker_phase_time(name, seconds)
        # A worker that itself absorbed sub-workers forwards their
        # phase CPU under this key; it stays worker-side here too.
        for name, seconds in (
            payload.get("worker_phase_times") or {}
        ).items():
            self.add_worker_phase_time(name, seconds)
        self.workers_absorbed += 1 + payload.get("workers_absorbed", 0)

    def _mark_eval_cache(self, cache: EvalCache) -> None:
        """Remember the cache's counters so deltas can be accumulated."""
        self._eval_marks[id(cache)] = (
            cache.subarray_hits,
            cache.subarray_misses,
            cache.htree_hits,
            cache.htree_misses,
        )

    def _absorb_eval_cache(self, cache: EvalCache) -> None:
        """Add the cache's counter deltas since the matching mark."""
        sh0, sm0, hh0, hm0 = self._eval_marks.pop(id(cache), (0, 0, 0, 0))
        self.subarray_hits += cache.subarray_hits - sh0
        self.subarray_misses += cache.subarray_misses - sm0
        self.htree_hits += cache.htree_hits - hh0
        self.htree_misses += cache.htree_misses - hm0


def feasible_designs(
    tech: Technology,
    spec: ArraySpec,
    orgs: Iterable | None = None,
    *,
    cache: EvalCache | None = None,
    stats: SweepStats | None = None,
    prefilter: bool = True,
    jobs: int | str = 1,
    obs: Obs | None = None,
    resilience=None,
    candidates: list | None = None,
) -> list[ArrayMetrics]:
    """Evaluate every feasible partitioning of ``spec``.

    ``prefilter=False`` disables the cheap structural pre-filter and
    forces full construction of every candidate (the naive path, kept for
    equivalence testing); ``cache`` shares circuit designs across
    candidates; ``jobs > 1`` shards the surviving candidates across
    worker processes (worker-local caches, candidate-order-preserving
    merge) with ``jobs=1`` the plain serial path and ``jobs="auto"``
    choosing serial or all-cores from the machine and survivor count
    (:func:`~repro.core.parallel.effective_jobs`); ``obs`` records
    prefilter/build spans and candidate/cache metrics.  None of them
    affects the returned metrics: the design list is bit-identical in
    every mode, including its order.

    ``candidates`` lets a caller that already ran the vectorized
    pre-filter inject the surviving ``(OrgParams, OrgGeometry)`` list
    (it must be exactly what ``prefilter_grid(spec)`` returns); the
    prefilter phase is then neither re-run nor re-timed here, but the
    grid-level enumerated/prefiltered accounting still happens.

    ``resilience`` (a :class:`~repro.core.resilience.ResiliencePolicy`)
    applies to the parallel build only: crashed or hung candidate
    chunks are retried per the policy (a retried chunk rebuilds the
    same designs, so the sweep stays bit-identical), and in skip mode a
    terminally failed chunk's candidates are dropped from the feasible
    set -- narrowing the search space, never corrupting it.
    """
    if stats is not None and cache is not None:
        stats._mark_eval_cache(cache)
    eval_before = None
    if obs is not None and cache is not None:
        eval_before = (
            cache.subarray_hits,
            cache.subarray_misses,
            cache.htree_hits,
            cache.htree_misses,
        )
    designs = []
    if orgs is None and prefilter:
        # The structural pre-filter runs as one vectorized batch over
        # the grid (scalar fused enumeration when numpy is missing), so
        # rejected tuples cost a few arithmetic ops and no objects.
        # The worker count is decided *after* it, so ``jobs="auto"``
        # can weigh the actual survivor count.
        if candidates is None:
            with obs_phase("prefilter", obs, stats):
                candidates = prefilter_grid(spec)
        njobs = parallel.effective_jobs(jobs, len(candidates))
        grid = org_grid_size(spec)
        if stats is not None:
            stats.enumerated += grid
            stats.prefiltered += grid - len(candidates)
        if obs is not None:
            obs.inc("optimizer.enumerated", grid)
            obs.inc("optimizer.prefiltered", grid - len(candidates))
        if njobs != 1:
            # Parallel path: shard the survivors into contiguous
            # chunks, merge in candidate order.
            with obs_phase(
                "build", obs, stats, candidates=len(candidates), jobs=njobs
            ) as build_span:
                designs, worker_stats = parallel.build_designs_parallel(
                    tech.node_nm, spec, candidates, njobs,
                    with_obs=obs is not None,
                    resilience=resilience, stats=stats, obs=obs,
                )
            if stats is not None:
                for payload in worker_stats:
                    stats.absorb_worker(payload)
            if obs is not None:
                obs.inc("parallel.chunks", len(worker_stats))
                for payload in worker_stats:
                    obs.absorb_worker(payload.get("obs"))
                worker_wall = sum(
                    p.get("worker_wall_time_s", 0.0) for p in worker_stats
                )
                if build_span is not None and build_span.duration_s > 0:
                    obs.gauge(
                        "parallel.worker_utilization",
                        worker_wall / (build_span.duration_s * njobs),
                    )
        else:
            infeasible = 0
            with obs_phase("build", obs, stats, candidates=len(candidates)):
                for org, geometry in candidates:
                    try:
                        designs.append(
                            build_organization(
                                tech, spec, org, cache=cache,
                                geometry=geometry,
                            )
                        )
                    except (InfeasibleOrganization, InfeasibleSubarray):
                        infeasible += 1
                        continue
            if stats is not None:
                stats.built += len(candidates)
                stats.infeasible_at_build += infeasible
            if obs is not None:
                obs.inc("optimizer.built", len(candidates))
                obs.inc("optimizer.infeasible_at_build", infeasible)
    else:
        enumerated = prefiltered = built = infeasible = 0
        with obs_phase("build", obs, stats):
            for org in orgs if orgs is not None else enumerate_orgs(spec):
                enumerated += 1
                geometry = None
                if prefilter:
                    geometry = prefilter_org(spec, org)
                    if geometry is None:
                        prefiltered += 1
                        continue
                built += 1
                try:
                    designs.append(
                        build_organization(
                            tech, spec, org, cache=cache, geometry=geometry
                        )
                    )
                except (InfeasibleOrganization, InfeasibleSubarray):
                    infeasible += 1
                    continue
        if stats is not None:
            stats.enumerated += enumerated
            stats.prefiltered += prefiltered
            stats.built += built
            stats.infeasible_at_build += infeasible
        if obs is not None:
            obs.inc("optimizer.enumerated", enumerated)
            obs.inc("optimizer.prefiltered", prefiltered)
            obs.inc("optimizer.built", built)
            obs.inc("optimizer.infeasible_at_build", infeasible)
    if stats is not None:
        stats.feasible += len(designs)
        if cache is not None:
            stats._absorb_eval_cache(cache)
    if obs is not None:
        obs.inc("optimizer.feasible", len(designs))
        if eval_before is not None:
            obs.inc(
                "eval_cache.subarray.hits",
                cache.subarray_hits - eval_before[0],
            )
            obs.inc(
                "eval_cache.subarray.misses",
                cache.subarray_misses - eval_before[1],
            )
            obs.inc(
                "eval_cache.htree.hits", cache.htree_hits - eval_before[2]
            )
            obs.inc(
                "eval_cache.htree.misses",
                cache.htree_misses - eval_before[3],
            )
    if not designs:
        raise NoFeasibleSolution(
            f"no feasible organization for {spec.capacity_bits} bits of "
            f"{spec.cell_tech.value} in {spec.nbanks} bank(s)"
        )
    return designs


def filter_constraints(
    designs: list[ArrayMetrics], target: OptimizationTarget
) -> list[ArrayMetrics]:
    """Apply the staged max-area then max-access-time filters."""
    if not designs:
        raise NoFeasibleSolution(
            "no designs to filter: the feasible set is empty"
        )
    best_area = min(d.area for d in designs)
    within_area = [
        d for d in designs
        if d.area <= best_area * (1.0 + target.max_area_fraction)
    ]
    best_time = min(d.t_access for d in within_area)
    return [
        d for d in within_area
        if d.t_access <= best_time * (1.0 + target.max_acctime_fraction)
    ]


def rank_floors(
    designs: list[ArrayMetrics],
) -> tuple[float, float, float, float]:
    """Normalization floors for :func:`rank`, in one pass over the set.

    Returns ``(min_dynamic, min_leakage, min_cycle, min_interleave)``
    with non-positive minima clamped to ``1e-30`` (the paper's guard
    against degenerate zero-energy normalizers).  :func:`rank` used to
    re-derive these with four separate scans on every call; computing
    them once here lets callers that rank the same constrained set
    repeatedly (or that already hold the metric arrays) reuse them.
    """
    if not designs:
        raise NoFeasibleSolution(
            "no designs to rank: the constrained set is empty"
        )
    min_dyn = min_leak = min_cycle = min_interleave = float("inf")
    for d in designs:
        if d.e_read_access < min_dyn:
            min_dyn = d.e_read_access
        leak = d.p_leakage + d.p_refresh
        if leak < min_leak:
            min_leak = leak
        if d.t_random_cycle < min_cycle:
            min_cycle = d.t_random_cycle
        if d.t_interleave < min_interleave:
            min_interleave = d.t_interleave

    def clamp(value: float) -> float:
        return value if value > 0.0 else 1e-30

    return (
        clamp(min_dyn),
        clamp(min_leak),
        clamp(min_cycle),
        clamp(min_interleave),
    )


def rank(
    designs: list[ArrayMetrics],
    target: OptimizationTarget,
    *,
    floors: tuple[float, float, float, float] | None = None,
) -> list[ArrayMetrics]:
    """Sort candidates by the normalized weighted objective, best first.

    ``floors`` optionally supplies precomputed :func:`rank_floors` for
    this design set, skipping the normalization pass.
    """
    if not designs:
        raise NoFeasibleSolution(
            "no designs to rank: the constrained set is empty"
        )
    if floors is None:
        floors = rank_floors(designs)
    min_dyn, min_leak, min_cycle, min_interleave = floors

    def score(d: ArrayMetrics) -> float:
        return (
            target.weight_dynamic * d.e_read_access / min_dyn
            + target.weight_leakage * (d.p_leakage + d.p_refresh) / min_leak
            + target.weight_cycle * d.t_random_cycle / min_cycle
            + target.weight_interleave * d.t_interleave / min_interleave
        )

    return sorted(designs, key=score)


def _rank_vectorized(
    tech: Technology,
    spec: ArraySpec,
    target: OptimizationTarget,
    batch,
    *,
    eval_cache: EvalCache,
    stats: SweepStats | None,
    obs: Obs | None,
    limit: int | None,
) -> list[ArrayMetrics]:
    """Array-kernel sweep: evaluate, constrain, rank, then materialize.

    Runs :func:`~repro.array.kernels.evaluate_batch` /
    :func:`~repro.array.kernels.rank_batch` over the whole survivor
    ``batch`` and constructs full :class:`ArrayMetrics` objects only
    for the top ``limit`` ranked candidates (all of them when ``limit``
    is None).  Counter accounting matches the scalar sweep: eval-cache
    deltas are absorbed *before* winner materialization, so
    ``subarray_hits + subarray_misses == built`` holds; H-tree cache
    counters advance only for the materialized winners (the batch path
    replaces per-candidate tree objects with closed-form arithmetic).
    """
    grid = org_grid_size(spec)
    if stats is not None:
        stats.enumerated += grid
        stats.prefiltered += grid - batch.size
        stats._mark_eval_cache(eval_cache)
    if obs is not None:
        obs.inc("optimizer.enumerated", grid)
        obs.inc("optimizer.prefiltered", grid - batch.size)
        eval_before = (
            eval_cache.subarray_hits,
            eval_cache.subarray_misses,
            eval_cache.htree_hits,
            eval_cache.htree_misses,
        )
    with obs_phase("build", obs, stats, candidates=batch.size):
        ev = kernels.evaluate_batch(tech, spec, batch, eval_cache)
    if stats is not None:
        stats.built += batch.size
        stats.infeasible_at_build += ev.n_infeasible
        stats.feasible += ev.size
        stats._absorb_eval_cache(eval_cache)
    if obs is not None:
        obs.inc("optimizer.built", batch.size)
        obs.inc("optimizer.infeasible_at_build", ev.n_infeasible)
        obs.inc("optimizer.feasible", ev.size)
        obs.inc(
            "eval_cache.subarray.hits",
            eval_cache.subarray_hits - eval_before[0],
        )
        obs.inc(
            "eval_cache.subarray.misses",
            eval_cache.subarray_misses - eval_before[1],
        )
        obs.inc(
            "eval_cache.htree.hits",
            eval_cache.htree_hits - eval_before[2],
        )
        obs.inc(
            "eval_cache.htree.misses",
            eval_cache.htree_misses - eval_before[3],
        )
    if ev.size == 0:
        raise NoFeasibleSolution(
            f"no feasible organization for {spec.capacity_bits} bits of "
            f"{spec.cell_tech.value} in {spec.nbanks} bank(s)"
        )
    with obs_phase("rank", obs, stats, designs=ev.size):
        order = kernels.rank_batch(ev, target)
        if limit is not None:
            order = order[:limit]
        ranked = []
        for i in order:
            org, geometry = ev.batch.org_at(int(i))
            ranked.append(
                build_organization(
                    tech, spec, org, cache=eval_cache, geometry=geometry
                )
            )
    return ranked


def _ranked_designs(
    tech: Technology,
    spec: ArraySpec,
    target: OptimizationTarget,
    *,
    eval_cache: EvalCache,
    stats: SweepStats | None,
    jobs: int | str,
    obs: Obs | None,
    resilience=None,
    limit: int | None = None,
) -> list[ArrayMetrics]:
    """Shared enumerate → filter → rank pipeline behind :func:`optimize`
    and :func:`pareto_solutions`.

    When the vectorized kernels are active and the sweep would run
    serially anyway (``jobs`` resolves to 1 for this survivor count),
    the whole per-candidate composition collapses into
    :func:`_rank_vectorized`.  Otherwise the scalar/parallel
    :func:`feasible_designs` path runs, reusing the batch's already
    pre-filtered candidate list so the grid is never scanned twice.
    ``limit`` bounds how many ranked designs are materialized on the
    vectorized path only; the scalar path always returns the full
    ranked list (the objects already exist).
    """
    candidates = None
    if kernels.enabled():
        with obs_phase("prefilter", obs, stats):
            batch = kernels.survivor_batch(spec)
        if batch is not None:
            if parallel.effective_jobs(jobs, batch.size) == 1:
                return _rank_vectorized(
                    tech, spec, target, batch,
                    eval_cache=eval_cache, stats=stats, obs=obs,
                    limit=limit,
                )
            candidates = batch.candidates()
    designs = feasible_designs(
        tech, spec, cache=eval_cache, stats=stats, jobs=jobs, obs=obs,
        resilience=resilience, candidates=candidates,
    )
    with obs_phase("rank", obs, stats, designs=len(designs)):
        return rank(filter_constraints(designs, target), target)


def optimize(
    tech: Technology,
    spec: ArraySpec,
    target: OptimizationTarget,
    *,
    eval_cache: EvalCache | None = None,
    solve_cache=None,
    stats: SweepStats | None = None,
    jobs: int | str = 1,
    obs: Obs | None = None,
    resilience=None,
) -> ArrayMetrics:
    """Full pipeline: enumerate, filter, rank; return the best design.

    ``eval_cache`` shares circuit designs across candidates (a fresh one
    is created per call when omitted); ``solve_cache`` is an optional
    :class:`~repro.core.solvecache.SolveCache` consulted before -- and
    flushed after -- the sweep; ``stats`` accumulates
    :class:`SweepStats` counters in place; ``jobs`` spreads candidate
    construction over worker processes (``1`` = serial, ``<= 0`` = all
    cores, ``"auto"`` = serial or all cores by machine and survivor
    count); ``obs`` records an ``optimize`` span with nested
    prefilter/build/rank children plus cache-hit metrics.  None of them
    changes any returned number.  ``resilience`` makes the parallel
    candidate build fault tolerant (see :func:`feasible_designs`).

    When the sweep runs serially and numpy is available, candidate
    evaluation goes through the vectorized kernels
    (:mod:`repro.array.kernels`) -- bit-identical, order-of-magnitude
    faster; ``REPRO_KERNELS=0`` forces the scalar object path.
    """
    t0 = time.perf_counter()
    with maybe_span(
        obs,
        "optimize",
        capacity_bits=spec.capacity_bits,
        cell_tech=spec.cell_tech.value,
        node_nm=tech.node_nm,
    ) as span:
        if solve_cache is not None:
            if obs is not None:
                # Touch both counters so the snapshot always derives a
                # solve_cache.hit_rate once a cache is in play, even on
                # an all-miss (or all-hit) run.
                obs.metrics.counter("solve_cache.hits")
                obs.metrics.counter("solve_cache.misses")
            hit = solve_cache.get(spec, target, tech.node_nm)
            if hit is not None:
                if stats is not None:
                    stats.solve_cache_hits += 1
                    stats.wall_time_s += time.perf_counter() - t0
                if obs is not None:
                    obs.inc("solve_cache.hits")
                if span is not None:
                    span.attrs["solve_cache"] = "hit"
                _account_store(solve_cache, stats, obs)
                return hit
            if stats is not None:
                stats.solve_cache_misses += 1
            if obs is not None:
                obs.inc("solve_cache.misses")
        if eval_cache is None:
            eval_cache = EvalCache()
        swept = _with_repeater_penalty(spec, target)
        best = _ranked_designs(
            tech, swept, target, eval_cache=eval_cache, stats=stats,
            jobs=jobs, obs=obs, resilience=resilience, limit=1,
        )[0]
        if solve_cache is not None:
            solve_cache.put(spec, target, tech.node_nm, best)
            # Solve-boundary flush: deferred (one write per batch) when
            # the caller holds the cache open as a context manager.
            solve_cache.flush()
            if obs is not None:
                obs.gauge("solve_cache.records", len(solve_cache))
            _account_store(solve_cache, stats, obs)
        if stats is not None:
            stats.wall_time_s += time.perf_counter() - t0
        return best


def pareto_solutions(
    tech: Technology,
    spec: ArraySpec,
    target: OptimizationTarget,
    *,
    eval_cache: EvalCache | None = None,
    stats: SweepStats | None = None,
    jobs: int | str = 1,
    obs: Obs | None = None,
) -> list[ArrayMetrics]:
    """All constraint-satisfying designs, ranked -- the solution cloud the
    paper plots in its Figure 1 validation bubbles."""
    t0 = time.perf_counter()
    with maybe_span(
        obs,
        "pareto",
        capacity_bits=spec.capacity_bits,
        cell_tech=spec.cell_tech.value,
        node_nm=tech.node_nm,
    ):
        if eval_cache is None:
            eval_cache = EvalCache()
        spec = _with_repeater_penalty(spec, target)
        ranked = _ranked_designs(
            tech, spec, target, eval_cache=eval_cache, stats=stats,
            jobs=jobs, obs=obs,
        )
        if stats is not None:
            stats.wall_time_s += time.perf_counter() - t0
        return ranked


def _with_repeater_penalty(
    spec: ArraySpec, target: OptimizationTarget
) -> ArraySpec:
    if target.max_repeater_delay_penalty == spec.max_repeater_delay_penalty:
        return spec
    from dataclasses import replace

    return replace(
        spec, max_repeater_delay_penalty=target.max_repeater_delay_penalty
    )
