"""On-grid cachedb lookup latency vs solving live.

Builds a small cachedb grid, then times the two ways of answering the
same on-grid queries: ``CacheDB.query`` (dictionary hit on the
precomputed artifact) and a fresh ``solve`` of the identical spec.  The
per-query wall-clock pair, the speedup, and the asserted >= 100x floor
land in ``BENCH_cachedb.json`` at the repo root.  Also asserts the
serving contract: the served metrics equal the live solve's exactly.

The live side deliberately gets no solve cache and a cold eval cache
per query -- the comparison is "answer from the precomputed database"
vs "compute the answer", which is precisely the serving-tier trade the
database exists for.
"""

import json
import os
import time

from repro.cachedb import CacheDB, GridSpec, build_cachedb
from repro.cachedb.schema import DB_METRICS, grid_spec_for
from repro.core.cacti import solve

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_cachedb.json"
)

#: Grid: every cell is also a timed query point.
CAPS = (64 << 10, 256 << 10, 1 << 20)
NODES = (32.0, 45.0)
TECHS = ("sram", "lp-dram")

#: Acceptance floor from the issue; real hardware lands orders of
#: magnitude above it (a dict hit vs a full optimizer sweep).
MIN_SPEEDUP = 100.0

#: Repeats per query point when timing the lookup side, so the
#: microsecond-scale hits aren't swamped by timer resolution.
LOOKUP_REPEATS = 200


def test_bench_cachedb_lookup_vs_live_solve(tmp_path):
    grid = GridSpec(
        capacities_bytes=CAPS, nodes_nm=NODES, technologies=TECHS
    )
    path = tmp_path / "bench-db.json"
    report = build_cachedb(path, grid, jobs="auto")
    assert report.holes == 0
    db = CacheDB(path)
    points = [
        (tech, node, cap)
        for tech in TECHS
        for node in NODES
        for cap in CAPS
    ]

    t0 = time.perf_counter()
    for _ in range(LOOKUP_REPEATS):
        for tech, node, cap in points:
            db.query(cap, cell_tech=tech, node_nm=node, fallback="error")
    wall_lookup = (time.perf_counter() - t0) / LOOKUP_REPEATS

    t0 = time.perf_counter()
    live = {
        (tech, node, cap): solve(grid_spec_for(tech, node, cap, 64, 8))
        for tech, node, cap in points
    }
    wall_solve = time.perf_counter() - t0

    # Serving contract: the database answers with the solver's numbers.
    for (tech, node, cap), solution in live.items():
        served = db.query(cap, cell_tech=tech, node_nm=node)
        assert not served.interpolated
        assert served.metrics == {
            name: extract(solution)
            for name, extract in DB_METRICS.items()
        }

    speedup = wall_solve / wall_lookup
    payload = {
        "description": (
            "wall-clock time to answer every on-grid query point: "
            "CacheDB.query exact hits on the precomputed artifact vs "
            "solving each spec live"
        ),
        "grid": grid.as_dict(),
        "query_points": len(points),
        "wall_time_s": {
            "cachedb_lookup": wall_lookup,
            "live_solve": wall_solve,
        },
        "per_query_us": {
            "cachedb_lookup": wall_lookup / len(points) * 1e6,
            "live_solve": wall_solve / len(points) * 1e6,
        },
        "speedup": speedup,
        "min_speedup_asserted": MIN_SPEEDUP,
        "bit_identical_metrics": True,
    }
    with open(BENCH_FILE, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(
        f"\nlookup: {wall_lookup / len(points) * 1e6:8.2f} us/query   "
        f"solve: {wall_solve / len(points) * 1e6:8.2f} us/query   "
        f"speedup: {speedup:.0f}x"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"cachedb lookups only {speedup:.1f}x over live solves "
        f"(floor {MIN_SPEEDUP}x)"
    )
