"""Core and thread model (paper section 3.3).

Each simulated core runs four hardware threads concurrently.  Following
the paper's timing recipe: a thread executes one floating-point arithmetic
instruction per cycle (modeling the 4-way SIMD FPU) and all other
instructions at four cycles each on average, with up to one memory request
per cycle issued to the L1.  Threads are in-order and block on memory.

Workloads drive threads through a small event protocol:

* ``("compute", instructions, cycles)`` -- retire instructions.
* ``("mem", address, is_write)`` -- one memory reference.
* ``("barrier",)`` -- global barrier across all threads.
* ``("lock", lock_id, hold_cycles)`` -- critical section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.sim.stats import CycleBreakdown

#: CPI of floating-point arithmetic (SIMD, one per cycle).
FP_CPI = 1.0

#: Average CPI of all other instructions.
OTHER_CPI = 4.0


def thread_cpi(fp_fraction: float) -> float:
    """Average cycles per instruction for a thread's instruction mix."""
    return fp_fraction * FP_CPI + (1.0 - fp_fraction) * OTHER_CPI


Event = tuple  # ("compute", n, cycles) | ("mem", addr, w) | ...


@dataclass
class ThreadContext:
    """One hardware thread's simulation state."""

    thread_id: int
    core_id: int
    events: Iterator[Event]
    time: float = 0.0  #: local clock, CPU cycles
    instructions: float = 0.0
    breakdown: CycleBreakdown = field(default_factory=CycleBreakdown)
    done: bool = False
    waiting_barrier: bool = False

    def retire(self, instructions: float, cycles: float) -> None:
        self.instructions += instructions
        self.time += cycles
        self.breakdown.instruction += cycles
