"""Paper Table 3: 32 nm projections of every level of the hierarchy.

Solves L1, L2, the five L3 design points, and the 8 Gb main-memory chip
with this reproduction's CACTI-D and prints them next to the paper's
published column values.
"""

from conftest import print_table

from repro.study.table3 import paper_table3, solve_table3


def test_table3(benchmark):
    solved = benchmark.pedantic(solve_table3, rounds=1, iterations=1)
    paper = paper_table3()

    header = ["Structure", "Capacity", "Acc cyc", "Cyc cyc", "Clk 1/n",
              "Area/bank mm2", "Eff %", "Leak W", "Refresh W", "E_rd nJ"]
    rows = []
    for name, row in solved.items():
        p = paper[name]

        def pair(model, published, fmt="{:.2f}"):
            return f"{fmt.format(model)} ({fmt.format(published)})"

        cap = row.capacity_bytes
        cap_str = f"{cap >> 20} MB" if cap >= (1 << 20) else f"{cap >> 10} KB"
        rows.append([
            name, cap_str,
            pair(row.access_cycles, p.access_cycles, "{:d}"),
            pair(row.cycle_cycles, p.cycle_cycles, "{:d}"),
            pair(row.clock_divider, p.clock_divider, "{:d}"),
            pair(row.area_mm2, p.area_mm2),
            pair(row.area_efficiency * 100, p.area_efficiency * 100,
                 "{:.0f}"),
            pair(row.leakage_w, p.leakage_w, "{:.3f}"),
            pair(row.refresh_w, p.refresh_w, "{:.4f}"),
            pair(row.e_read_nj, p.e_read_nj),
        ])
    print_table("Table 3: hierarchy projections at 32 nm -- model (paper)",
                header, rows)

    # Shape assertions: the orderings the study depends on.
    assert solved["sram"].leakage_w > solved["lp_dram_ed"].leakage_w
    assert solved["lp_dram_ed"].leakage_w > 10 * solved["cm_dram_ed"].leakage_w
    assert solved["lp_dram_ed"].refresh_w > solved["cm_dram_ed"].refresh_w
    assert solved["cm_dram_c"].access_cycles > solved["sram"].access_cycles
    assert solved["main"].access_cycles > solved["cm_dram_c"].access_cycles
    # Absolute bands vs the published table.
    for name in ("sram", "lp_dram_ed", "lp_dram_c"):
        assert solved[name].leakage_w / paper[name].leakage_w < 2.0
        assert paper[name].leakage_w / solved[name].leakage_w < 2.0
    assert abs(solved["main"].access_cycles - 61) <= 20
