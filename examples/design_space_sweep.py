#!/usr/bin/env python3
"""Design-space exploration: the optimizer's solution cloud.

Reproduces the paper's section 2.4 workflow on an 8 MB L3 bank: enumerate
every feasible organization, apply the staged max-area / max-access-time
filters, rank by the normalized weighted objective, and print the
area/delay/energy/leakage tradeoffs of the frontier -- including how the
``max_repeater_delay_constraint`` trades delay for interconnect energy.

Run:  python examples/design_space_sweep.py
"""

from repro import CellTech, MemorySpec, OptimizationTarget
from repro.core.cacti import data_array_spec
from repro.core.optimizer import feasible_designs, filter_constraints, rank
from repro.models import delay_breakdown, energy_breakdown
from repro.tech import technology


def main() -> None:
    spec = MemorySpec(
        capacity_bytes=8 << 20,
        block_bytes=64,
        associativity=8,
        node_nm=32.0,
        cell_tech=CellTech.LP_DRAM,
    )
    tech = technology(spec.node_nm)
    array_spec = data_array_spec(spec)

    designs = feasible_designs(tech, array_spec)
    print(f"feasible organizations: {len(designs)}")
    areas = sorted(d.area * 1e6 for d in designs)
    times = sorted(d.t_access * 1e9 for d in designs)
    print(f"area range  : {areas[0]:.2f} .. {areas[-1]:.2f} mm^2")
    print(f"access range: {times[0]:.2f} .. {times[-1]:.2f} ns")

    print("\nStaged filtering and ranking:")
    header = (f"{'constraints':<28}{'ndwl':>5}{'ndbl':>5}{'nspd':>6}"
              f"{'acc ns':>8}{'area mm2':>9}{'E_rd nJ':>8}{'leak W':>8}")
    print(header)
    for area_frac, time_frac in ((0.05, 0.05), (0.1, 0.3), (0.5, 0.5),
                                 (1.0, 1.0)):
        target = OptimizationTarget(
            max_area_fraction=area_frac, max_acctime_fraction=time_frac
        )
        best = rank(filter_constraints(designs, target), target)[0]
        label = f"area<={area_frac:.0%} time<={time_frac:.0%}"
        print(
            f"{label:<28}{best.org.ndwl:>5}{best.org.ndbl:>5}"
            f"{best.org.nspd:>6.2f}{best.t_access * 1e9:>8.2f}"
            f"{best.area * 1e6:>9.2f}{best.e_read_access * 1e9:>8.3f}"
            f"{best.p_leakage:>8.3f}"
        )

    target = OptimizationTarget(max_area_fraction=0.1,
                                max_acctime_fraction=0.3)
    best = rank(filter_constraints(designs, target), target)[0]
    print("\nChosen design, delay breakdown:")
    print(delay_breakdown(best).report())
    print("\nChosen design, read-energy breakdown:")
    print(energy_breakdown(best).report())


if __name__ == "__main__":
    main()
