"""Public CACTI-D solve API.

Entry points:

* :func:`solve` -- solve a cache or plain memory described by a
  :class:`~repro.core.config.MemorySpec`; caches get a tag array solved
  alongside the data array and composed per the access mode.
* :func:`solve_main_memory` -- solve a commodity main-memory DRAM chip
  described by a :class:`~repro.array.mainmem.MainMemorySpec`, returning
  the datasheet-style timing interface and per-command energies.
* :class:`CactiD` -- a small facade caching the technology object across
  solves at one node.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.array.mainmem import (
    MainMemoryEnergies,
    MainMemorySpec,
    MainMemoryTiming,
    derive_energies,
    derive_timing,
)
from repro.array.organization import ArrayMetrics, ArraySpec, EvalCache
from repro.core.config import (
    DENSITY_OPTIMIZED,
    MemorySpec,
    OptimizationTarget,
)
from repro.core.optimizer import SweepStats, optimize
from repro.core.results import Solution
from repro.core.solvecache import SolveCache
from repro.tech.nodes import Technology, technology


#: SEC-DED ECC width: 8 check bits per 64 data bits.
_ECC_FACTOR_NUM, _ECC_FACTOR_DEN = 9, 8


def data_array_spec(spec: MemorySpec) -> ArraySpec:
    """The low-level data-array specification of a memory spec.

    With ``ecc`` enabled the array stores and moves 72 bits per 64 data
    bits (SEC-DED); tags are assumed parity-protected and unchanged.
    """
    capacity_bits = spec.capacity_bytes * 8
    output_bits = spec.block_bytes * 8
    if spec.ecc:
        capacity_bits = capacity_bits * _ECC_FACTOR_NUM // _ECC_FACTOR_DEN
        output_bits = output_bits * _ECC_FACTOR_NUM // _ECC_FACTOR_DEN
    return ArraySpec(
        capacity_bits=capacity_bits,
        output_bits=output_bits,
        assoc=spec.associativity or 1,
        nbanks=spec.nbanks,
        cell_tech=spec.cell_tech,
        periph_device_type=spec.periphery,
        sleep_transistors=spec.sleep_transistors,
    )


def tag_array_spec(spec: MemorySpec) -> ArraySpec:
    """The low-level tag-array specification of a cache spec."""
    if not spec.is_cache:
        raise ValueError("plain memories have no tag array")
    ways = spec.associativity or 1
    tag_bits = spec.tag_bits
    return ArraySpec(
        capacity_bits=spec.sets * ways * tag_bits,
        output_bits=ways * tag_bits,
        assoc=1,
        nbanks=spec.nbanks,
        cell_tech=spec.tag_technology,
        periph_device_type=spec.periphery,
        sleep_transistors=spec.sleep_transistors,
    )


def solve(
    spec: MemorySpec,
    target: OptimizationTarget | None = None,
    *,
    eval_cache: EvalCache | None = None,
    solve_cache: SolveCache | None = None,
    stats: SweepStats | None = None,
) -> Solution:
    """Solve ``spec``, returning the optimizer's best design point.

    ``eval_cache`` shares circuit designs across candidates and solves
    (a fresh one spanning the data and tag sweeps is created when
    omitted); ``solve_cache`` short-circuits whole repeated solves from
    disk; ``stats`` accumulates :class:`~repro.core.optimizer.SweepStats`
    counters.  None of them changes the returned numbers.
    """
    target = target or OptimizationTarget()
    tech = technology(spec.node_nm)
    if eval_cache is None:
        eval_cache = EvalCache()
    data = optimize(
        tech,
        data_array_spec(spec),
        target,
        eval_cache=eval_cache,
        solve_cache=solve_cache,
        stats=stats,
    )
    tag = None
    if spec.is_cache:
        tag = optimize(
            tech,
            tag_array_spec(spec),
            target,
            eval_cache=eval_cache,
            solve_cache=solve_cache,
            stats=stats,
        )
    return Solution(spec=spec, data=data, tag=tag)


@dataclass(frozen=True)
class MainMemorySolution:
    """A solved main-memory DRAM chip: array + interface views."""

    spec: MainMemorySpec
    metrics: ArrayMetrics
    timing: MainMemoryTiming
    energies: MainMemoryEnergies

    @property
    def area_mm2(self) -> float:
        return self.metrics.area * 1e6

    @property
    def area_efficiency(self) -> float:
        return self.metrics.area_efficiency

    def summary(self) -> str:
        t, e = self.timing, self.energies
        gb = self.spec.capacity_bits / 2**30
        lines = [
            f"capacity        : {gb:.0f} Gb x{self.spec.data_pins}, "
            f"{self.spec.nbanks} banks, BL{self.spec.burst_length}",
            f"area efficiency : {self.area_efficiency * 100:.0f}%",
            f"tRCD            : {t.t_rcd * 1e9:.1f} ns",
            f"CAS latency     : {t.t_cas * 1e9:.1f} ns",
            f"tRP             : {t.t_rp * 1e9:.1f} ns",
            f"tRC             : {t.t_rc * 1e9:.1f} ns",
            f"tRRD            : {t.t_rrd * 1e9:.1f} ns",
            f"ACTIVATE energy : {e.e_activate * 1e9:.2f} nJ",
            f"READ energy     : {e.e_read * 1e9:.2f} nJ",
            f"WRITE energy    : {e.e_write * 1e9:.2f} nJ",
            f"refresh power   : {e.p_refresh * 1e3:.2f} mW",
            f"standby power   : {e.p_standby * 1e3:.2f} mW",
        ]
        return "\n".join(lines)


def solve_main_memory(
    spec: MainMemorySpec,
    node_nm: float,
    target: OptimizationTarget | None = None,
    clock_period: float = 0.0,
    *,
    eval_cache: EvalCache | None = None,
    solve_cache: SolveCache | None = None,
    stats: SweepStats | None = None,
) -> MainMemorySolution:
    """Solve a main-memory DRAM chip at ``node_nm``.

    Commodity parts default to the density-optimized preset because of the
    premium on price per bit (paper section 2.5).
    """
    target = target or DENSITY_OPTIMIZED
    tech = technology(node_nm)
    array_spec = spec.array_spec()
    metrics = optimize(
        tech,
        array_spec,
        target,
        eval_cache=eval_cache,
        solve_cache=solve_cache,
        stats=stats,
    )
    timing = derive_timing(spec, metrics, clock_period)
    vdd_cell = tech.cell(
        array_spec.cell_tech, array_spec.periph_device_type
    ).vdd_cell
    energies = derive_energies(spec, metrics, vdd_cell)
    return MainMemorySolution(
        spec=spec, metrics=metrics, timing=timing, energies=energies
    )


class CactiD:
    """Facade for repeated solves at one technology node.

    Holds an :class:`~repro.array.organization.EvalCache` so circuit
    designs (subarrays, H-trees, repeated wires) are shared across every
    solve issued through the facade, and -- when ``cache_path`` is given
    -- a persistent :class:`~repro.core.solvecache.SolveCache` so whole
    repeated solves are served from disk across processes.  ``stats``
    accumulates sweep observability counters over the facade's lifetime.
    """

    def __init__(self, node_nm: float = 32.0, cache_path=None):
        self.node_nm = node_nm
        self.eval_cache = EvalCache()
        self.solve_cache = (
            SolveCache(cache_path) if cache_path is not None else None
        )
        self.stats = SweepStats()

    @cached_property
    def technology(self) -> Technology:
        return technology(self.node_nm)

    def solve(
        self, spec: MemorySpec, target: OptimizationTarget | None = None
    ) -> Solution:
        if spec.node_nm != self.node_nm:
            raise ValueError(
                f"spec is at {spec.node_nm} nm, facade at {self.node_nm} nm"
            )
        return solve(
            spec,
            target,
            eval_cache=self.eval_cache,
            solve_cache=self.solve_cache,
            stats=self.stats,
        )

    def solve_main_memory(
        self,
        spec: MainMemorySpec,
        target: OptimizationTarget | None = None,
        clock_period: float = 0.0,
    ) -> MainMemorySolution:
        return solve_main_memory(
            spec,
            self.node_nm,
            target,
            clock_period,
            eval_cache=self.eval_cache,
            solve_cache=self.solve_cache,
            stats=self.stats,
        )
