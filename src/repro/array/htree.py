"""H-tree distribution networks for addresses and data within a bank.

CACTI routes addresses from the bank edge to the mats and data back out
over H-tree networks of repeated global wires.  The tree alternates
horizontal and vertical splits; the electrical path to the farthest mat is
half the bank width plus half the bank height.  Repeater stages double as
pipeline boundaries, so the tree's *occupancy* per access (which bounds the
multisubbank interleave cycle) is one segment delay, not the full traverse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.circuits.repeaters import RepeatedWireDesign, repeated_wire
from repro.tech.devices import DeviceParams
from repro.tech.nodes import Technology


#: Delay of one branch buffer, in FO4s of the driving device.  Public:
#: the vectorized kernels (:mod:`repro.array.kernels`) mirror the tree
#: arithmetic array-wise and must use the identical constant.
BRANCH_BUFFER_FO4 = 2.0
_BRANCH_BUFFER_FO4 = BRANCH_BUFFER_FO4


def htree_levels(num_mats: int) -> int:
    """Branch levels of an H-tree fanning out to ``num_mats`` mats."""
    return max(1, math.ceil(math.log2(max(num_mats, 2))))


@dataclass(frozen=True)
class HTree:
    """One direction of a bank's H-tree (address-in or data-out)."""

    design: RepeatedWireDesign
    path_length: float  #: edge-to-farthest-mat electrical length (m)
    num_wires: int  #: bus width in signals
    levels: int  #: number of branch levels (pipeline boundaries)
    device: DeviceParams | None = None  #: branch-buffer device

    # Trees are shared across many candidate organizations through the
    # optimizer's EvalCache, so the derived quantities are cached: each is
    # computed once per distinct tree instead of once per candidate.

    @cached_property
    def buffer_delay(self) -> float:
        """Per-traverse delay of the branch/gating buffers (s)."""
        if self.device is None:
            return 0.0
        return self.levels * _BRANCH_BUFFER_FO4 * self.device.fo4

    @cached_property
    def delay(self) -> float:
        """Edge-to-mat (or mat-to-edge) latency (s)."""
        return self.design.delay(self.path_length) + self.buffer_delay

    @cached_property
    def occupancy(self) -> float:
        """Time one access occupies a tree segment (s); the pipelined pitch."""
        stages = max(self.levels, 1)
        return self.delay / stages

    @cached_property
    def _energy_per_wire(self) -> float:
        return self.design.energy(self.path_length)

    def energy(self, bits_switched: int | None = None) -> float:
        """Dynamic energy of one transfer (J).

        Branch gating means only the path toward the active mats switches,
        so the switched length is the path length, not the total wire.
        """
        n = self.num_wires if bits_switched is None else bits_switched
        return n * self._energy_per_wire

    @cached_property
    def leakage(self) -> float:
        """Repeater leakage over the whole tree (W).

        Total wire in the tree is ~2x the critical path per doubling level;
        approximate with 2 * path_length per wire.
        """
        return self.num_wires * self.design.leakage(2.0 * self.path_length)

    @cached_property
    def wiring_area(self) -> float:
        """Metal footprint of the tree (m^2), for area overhead accounting."""
        return (
            self.num_wires
            * self.design.wire.pitch
            * 2.0
            * self.path_length
        )


def design_htree(
    tech: Technology,
    device: DeviceParams,
    bank_width: float,
    bank_height: float,
    num_wires: int,
    num_mats: int,
    max_repeater_delay_penalty: float = 0.0,
    wire=None,
) -> HTree:
    """Design an H-tree spanning a bank of the given dimensions.

    ``wire`` defaults to the fast top-level global plane; metal-poor
    processes (commodity DRAM) pass their best available plane instead.
    """
    design = repeated_wire(
        device, wire if wire is not None else tech.global_,
        tech.feature_size, max_repeater_delay_penalty
    )
    path = (bank_width + bank_height) / 2.0
    levels = htree_levels(num_mats)
    return HTree(
        design=design,
        path_length=path,
        num_wires=num_wires,
        levels=levels,
        device=device,
    )
