"""Ablation (paper section 2.3.4): embedded-DRAM operational models.

Compares operating the 48 MB LP-DRAM L3 bank with an SRAM-like interface
(multisubbank interleaving, invisible activate/precharge) against a
main-memory-like interface under open and closed page policies, and
quantifies the multisubbank interleaving throughput gain.
"""

from conftest import print_table

from repro.core.cacti import solve
from repro.core.config import ENERGY_DELAY_OPTIMIZED, MemorySpec
from repro.dram.interface import (
    interleaving_speedup,
    main_memory_like,
    page_hit_ratio,
    sram_like,
)
from repro.dram.interface import LineMapping
from repro.dram.page_policy import ClosedPagePolicy, OpenPagePolicy
from repro.tech.cells import CellTech


def solve_lp_l3():
    return solve(
        MemorySpec(
            capacity_bytes=48 << 20, block_bytes=64, associativity=12,
            nbanks=8, node_nm=32.0, cell_tech=CellTech.LP_DRAM,
        ),
        ENERGY_DELAY_OPTIMIZED,
    )


def test_interface_comparison(benchmark):
    solution = benchmark.pedantic(solve_lp_l3, rounds=1, iterations=1)
    metrics = solution.data
    subbanks = metrics.org.ndbl

    iface_sram = sram_like(metrics, num_subbanks=subbanks)
    iface_open = main_memory_like(metrics, OpenPagePolicy())
    iface_closed = main_memory_like(metrics, ClosedPagePolicy())

    # The realistic page-hit ratio of a DRAM *cache* (section 3.4).
    hit = page_hit_ratio(
        LineMapping.SET_PER_PAGE,
        page_bits=metrics.sensed_bits,
        line_bits=512,
        assoc=12,
        sequential_access=False,
        spatial_locality=0.2,  # interleaved multithreaded LLC traffic
    )

    rows = [
        ["SRAM-like", f"{iface_sram.access_time * 1e9:.2f}",
         f"{iface_sram.interleave_cycle * 1e9:.2f}"],
        ["MM-like, open page",
         f"{iface_open.expected_latency(hit) * 1e9:.2f}", "-"],
        ["MM-like, closed page",
         f"{iface_closed.expected_latency(hit) * 1e9:.2f}", "-"],
    ]
    print_table(
        "Embedded-DRAM interface options (48 MB LP-DRAM L3)",
        ["interface", "latency (ns)", "issue pitch (ns)"],
        rows,
    )
    print(f"LLC page-hit ratio: {hit:.3f}")

    # With a near-zero page-hit ratio, the open-page interface cannot beat
    # the closed-page one, and the SRAM-like interface matches closed-page
    # latency while adding multisubbank pipelining.
    assert hit < 0.25
    assert (
        iface_closed.expected_latency(hit)
        <= iface_open.expected_latency(hit) + 1e-12
    )


def test_multisubbank_interleaving(benchmark):
    solution = solve_lp_l3()
    metrics = solution.data
    subbanks = metrics.org.ndbl

    def speedups():
        return [
            (n, interleaving_speedup(metrics.t_random_cycle,
                                     metrics.t_interleave, n))
            for n in (1, 2, 4, 8, 16, subbanks)
        ]

    values = benchmark(speedups)
    print_table(
        "Multisubbank interleaving throughput gain",
        ["subbanks", "speedup"],
        [[str(n), f"{s:.1f}x"] for n, s in values],
    )
    by_n = dict(values)
    assert by_n[1] == 1.0
    assert by_n[subbanks] > 2.0  # the paper's motivation for the concept
    assert all(
        by_n[a] <= by_n[b] + 1e-9
        for a, b in zip(sorted(by_n), sorted(by_n)[1:])
    )
