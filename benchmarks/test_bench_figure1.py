"""Paper Figure 1: SRAM validation bubble chart vs published caches.

Sweeps the optimizer constraints within reasonable bounds (as the paper
does) and prints each resulting design as a bubble -- access time, dynamic
power, leakage, area -- next to the published target.  The paper reports
an average error of about 20 % across access time, area, and power for the
best-access-time solution.
"""

import pytest
from conftest import print_table

from repro.validation.compare import validate_sram_cache
from repro.validation.targets import SPARC_L2, XEON_L3


def _print_bubbles(validation):
    rows = []
    for bubble in validation.target_bubbles:
        rows.append([
            "TARGET", f"{bubble.access_time * 1e9:.2f}",
            f"{bubble.dynamic_power:.2f}", f"{bubble.leakage_power:.2f}",
            f"{bubble.area * 1e6:.1f}",
        ])
    for bubble in validation.solutions:
        rows.append([
            bubble.label, f"{bubble.access_time * 1e9:.2f}",
            f"{bubble.dynamic_power:.2f}", f"{bubble.leakage_power:.2f}",
            f"{bubble.area * 1e6:.1f}",
        ])
    print_table(
        f"Figure 1: {validation.target.name}",
        ["Solution", "Access (ns)", "Dyn (W)", "Leak (W)", "Area (mm2)"],
        rows,
    )
    print(f"best-access-time solution mean |error|: "
          f"{validation.mean_abs_error():.0%} (paper: ~20%)")


def test_figure1_sparc_l2(benchmark):
    validation = benchmark.pedantic(
        validate_sram_cache, args=(SPARC_L2,), rounds=1, iterations=1
    )
    _print_bubbles(validation)
    assert validation.mean_abs_error() < 0.45


@pytest.mark.slow
def test_figure1_xeon_l3(benchmark):
    validation = benchmark.pedantic(
        validate_sram_cache, args=(XEON_L3,), rounds=1, iterations=1
    )
    _print_bubbles(validation)
    # The Xeon targets are reconstructed from the cited JSSC paper's
    # headline figures (see EXPERIMENTS.md); the band is looser.
    assert validation.mean_abs_error() < 0.8
