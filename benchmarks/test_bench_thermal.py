"""Paper section 4.3: stacked-die thermal spread between L3 technologies.

The paper used HotSpot and found the maximum observed temperature
difference between the stacked SRAM, LP-DRAM, and COMM-DRAM L3 dies to be
under 1.5 K, because the worst case (SRAM with long-channel devices and
sleep transistors) dissipates only ~450 mW per bank.  This bench computes
per-bank power from the live Table 3 solves and applies the first-order
steady-state model.
"""

from conftest import print_table

from repro.power.thermal import ThermalEstimate, temperature_spread
from repro.study.table3 import solve_l3

BANK_AREA = 6.2e-6  # m^2, the per-bank stacking budget


def estimates():
    result = []
    for name in ("sram", "lp_dram_ed", "lp_dram_c", "cm_dram_ed",
                 "cm_dram_c"):
        row = solve_l3(name)
        # Per-bank: leakage + refresh share plus a dynamic allowance of
        # one access per 16 CPU cycles (a busy LLC bank), which lands the
        # SRAM bank near the paper's ~450 mW worst case.
        static = (row.leakage_w + row.refresh_w) / row.nbanks
        dynamic = row.e_read_nj * 1e-9 * (2e9 / 16)
        result.append(
            ThermalEstimate(name, power=static + dynamic, area=BANK_AREA)
        )
    return result


def test_thermal_spread(benchmark):
    ests = benchmark.pedantic(estimates, rounds=1, iterations=1)
    rows = [
        [e.name, f"{e.power * 1e3:.0f}",
         f"{e.power_density / 1e4:.2f}", f"{e.temperature_rise:.2f}"]
        for e in ests
    ]
    print_table(
        "Section 4.3: stacked L3 thermal estimates",
        ["technology", "bank power (mW)", "W/cm^2", "dT (K)"],
        rows,
    )
    spread = temperature_spread(ests)
    print(f"max temperature spread: {spread:.2f} K (paper: < 1.5 K)")
    assert spread < 1.5

    sram = next(e for e in ests if e.name == "sram")
    print(f"SRAM bank power: {sram.power * 1e3:.0f} mW (paper: ~450 mW)")
    assert sram.power < 1.0
