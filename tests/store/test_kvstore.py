"""Backend-agnostic KVStore contract tests.

Every test in ``TestContract`` runs against both backends through the
``store`` fixture: the protocol (put/get/scan/flush/stats, version
stamping, corrupt-record tombstoning, deferred flushes) must behave
identically whether the bytes land in a JSON file or a sqlite database.
Backend-specific behavior (LRU eviction, sharding, sibling redirects)
gets its own classes below.
"""

import json
import sqlite3

import pytest

from repro.store import (
    JsonFileStore,
    SqliteStore,
    StoreSpec,
    open_store,
    parse_store_url,
)

VERSION = "test-v2"
OLDER = ("test-v1",)

RECORD = {"spec": {"a": 1.5}, "org": {"b": 2}, "x": 0.1 + 0.2}

BACKENDS = ("json", "sqlite")


def make_store(backend, tmp_path, **kwargs):
    kwargs.setdefault("version", VERSION)
    kwargs.setdefault("older_versions", OLDER)
    if backend == "json":
        return JsonFileStore(tmp_path / "s.json", **kwargs)
    return SqliteStore(tmp_path / "s.db", **kwargs)


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def store(backend, tmp_path):
    s = make_store(backend, tmp_path)
    yield s
    s.close()


class TestContract:
    def test_get_missing_is_none(self, store):
        assert store.get("nope") is None

    def test_put_get_round_trip(self, store):
        store.put("k", RECORD)
        assert store.get("k") == RECORD

    def test_read_your_writes_before_flush(self, store):
        store.put("k", RECORD)
        # No flush yet: nothing (or only schema) on disk, record served.
        assert store.get("k") == RECORD

    def test_persists_across_instances(self, backend, tmp_path):
        s = make_store(backend, tmp_path)
        s.put("k", RECORD)
        s.flush()
        s.close()
        reopened = make_store(backend, tmp_path)
        assert reopened.get("k") == RECORD
        reopened.close()

    def test_float_bit_identity_round_trip(self, backend, tmp_path):
        """Floats survive the disk round trip bit-exactly."""
        record = {"f": 0.1 + 0.2, "tiny": 5e-324, "big": 1.7976931348623157e308}
        s = make_store(backend, tmp_path)
        s.put("k", record)
        s.flush()
        s.close()
        reopened = make_store(backend, tmp_path)
        got = reopened.get("k")
        assert got == record
        assert all(got[name] == record[name] for name in record)
        reopened.close()

    def test_len_counts_live_records(self, store):
        assert len(store) == 0
        store.put("a", RECORD)
        store.put("b", RECORD)
        assert len(store) == 2
        store.flush()
        store.put("b", RECORD)  # overwrite, not a new record
        assert len(store) == 2

    def test_scan_yields_sorted_live_records(self, store):
        store.put("b", {"n": 2})
        store.put("a", {"n": 1})
        store.flush()
        store.put("c", {"n": 3})  # staged, unflushed
        assert [k for k, _ in store.scan()] == ["a", "b", "c"]

    def test_flush_only_when_dirty(self, store):
        store.flush()
        assert store.flush_writes == 0
        store.put("k", RECORD)
        store.flush()
        store.flush()
        assert store.flush_writes == 1

    def test_context_manager_defers_flush(self, store):
        with store:
            store.put("k", RECORD)
            store.flush()
            assert store.flush_writes == 0
        assert store.flush_writes == 1

    def test_nested_contexts_flush_at_outermost_exit(self, store):
        with store:
            with store:
                store.put("k", RECORD)
                store.flush()
            assert store.flush_writes == 0
        assert store.flush_writes == 1

    def test_tombstone_hides_and_counts(self, store):
        store.put("k", RECORD)
        store.flush()
        store.tombstone("k")
        assert store.get("k") is None
        assert store.corrupt_records == 1
        assert "k" not in dict(store.scan())
        store.flush()
        store.close()

    def test_put_after_tombstone_revives(self, store):
        store.put("k", RECORD)
        store.tombstone("k")
        store.put("k", RECORD)
        assert store.get("k") == RECORD
        assert store.corrupt_records == 0

    def test_validate_hook_tombstones_bad_records(self, backend, tmp_path):
        s = make_store(
            backend, tmp_path, validate=lambda r: "spec" in r
        )
        s.put("good", RECORD)
        s.put("bad", {"not-a-spec": 1})
        assert s.get("good") == RECORD
        assert s.get("bad") is None
        assert s.corrupt_records == 1
        assert s.stats()["corrupt_records"] == 1
        s.close()

    def test_older_version_records_not_served(self, backend, tmp_path):
        s = make_store(backend, tmp_path, version=OLDER[0],
                       older_versions=())
        s.put("k", RECORD)
        s.flush()
        s.close()
        upgraded = make_store(backend, tmp_path)
        assert upgraded.get("k") is None
        assert len(upgraded) == 0
        upgraded.close()

    def test_stats_shape(self, backend, store):
        store.put("k", RECORD)
        store.flush()
        stats = store.stats()
        assert stats["backend"] == backend
        assert stats["records"] == 1
        assert stats["corrupt_records"] == 0
        assert stats["evictions"] == 0
        assert stats["flush_writes"] == 1
        assert stats["bytes_on_disk"] > 0

    def test_info_includes_identity(self, store):
        report = store.info()
        assert report["version"] == VERSION
        assert report["path"] == str(store.path)
        assert report["url"] == store.url

    def test_url_round_trip_opens_same_store(self, backend, tmp_path):
        s = make_store(backend, tmp_path)
        s.put("k", RECORD)
        s.flush()
        url = s.url
        s.close()
        reopened = open_store(url, version=VERSION, older_versions=OLDER)
        assert type(reopened).BACKEND == backend
        assert reopened.get("k") == RECORD
        reopened.close()

    def test_gc_purges_tombstones(self, backend, tmp_path):
        s = make_store(backend, tmp_path)
        s.put("keep", RECORD)
        s.put("drop", RECORD)
        s.flush()
        s.tombstone("drop")
        report = s.gc()
        assert report["backend"] == backend
        assert report["purged_tombstones"] == 1
        s.close()
        reopened = make_store(backend, tmp_path)
        assert reopened.get("keep") == RECORD
        assert len(reopened) == 1
        reopened.close()

    def test_close_flushes(self, backend, tmp_path):
        s = make_store(backend, tmp_path)
        s.put("k", RECORD)
        s.close()
        reopened = make_store(backend, tmp_path)
        assert reopened.get("k") == RECORD
        reopened.close()


class TestParseStoreUrl:
    def test_bare_path_is_json(self, tmp_path):
        spec = parse_store_url(tmp_path / "s.json")
        assert spec.backend == "json"

    def test_sqlite_scheme(self):
        assert parse_store_url("sqlite:s.db") == StoreSpec("sqlite", "s.db")

    def test_json_scheme(self):
        assert parse_store_url("json:s.json") == StoreSpec("json", "s.json")

    def test_sqlite_options(self):
        spec = parse_store_url("sqlite:s.db?max_records=100&shard_prefix=2")
        assert spec.options == {"max_records": 100, "shard_prefix": 2}

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown store option"):
            parse_store_url("sqlite:s.db?bogus=1")

    def test_bad_option_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_store_url("sqlite:s.db?max_records=ten")

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError, match="no path"):
            parse_store_url("sqlite:")

    def test_sqlite_magic_sniffed_on_bare_path(self, tmp_path):
        """A bare path to an existing database must NOT open as JSON --
        a JSON-backend flush would destroy the database."""
        path = tmp_path / "disguised.json"
        s = SqliteStore(path, version=VERSION)
        s.put("k", RECORD)
        s.flush()
        s.close()
        assert parse_store_url(path).backend == "sqlite"
        reopened = open_store(path, version=VERSION)
        assert isinstance(reopened, SqliteStore)
        assert reopened.get("k") == RECORD
        reopened.close()

    def test_max_records_keyword_rejected_for_json(self, tmp_path):
        with pytest.raises(ValueError, match="sqlite backend"):
            open_store(tmp_path / "s.json", version=VERSION, max_records=5)

    def test_url_options_win_over_keyword(self, tmp_path):
        s = open_store(
            f"sqlite:{tmp_path / 's.db'}?max_records=7",
            version=VERSION,
            max_records=99,
        )
        assert s.max_records == 7
        s.close()


class TestJsonFileFormat:
    """The JSON backend stays bit-compatible with pre-refactor files."""

    def test_file_payload_shape(self, tmp_path):
        s = JsonFileStore(tmp_path / "s.json", version=VERSION)
        s.put("k", RECORD)
        s.flush()
        payload = json.loads((tmp_path / "s.json").read_text())
        assert payload == {"version": VERSION, "records": {"k": RECORD}}
        # sort_keys: a deterministic byte stream for identical contents.
        assert (tmp_path / "s.json").read_text() == json.dumps(
            payload, sort_keys=True
        )
        s.close()

    def test_refresh_merges_concurrent_writer(self, tmp_path):
        a = JsonFileStore(tmp_path / "s.json", version=VERSION)
        b = JsonFileStore(tmp_path / "s.json", version=VERSION)
        a.put("from-a", {"n": 1})
        a.flush()
        b.put("from-b", {"n": 2})
        b.flush()  # merge-on-save: must not lose "from-a"
        b.refresh()
        assert b.get("from-a") == {"n": 1}
        reopened = JsonFileStore(tmp_path / "s.json", version=VERSION)
        assert len(reopened) == 2
        a.close(), b.close(), reopened.close()

    def test_foreign_version_redirects_writes(self, tmp_path):
        path = tmp_path / "s.json"
        foreign = {"version": "from-the-future", "records": {"f": RECORD}}
        path.write_text(json.dumps(foreign))
        with pytest.warns(UserWarning, match="unrecognized version"):
            s = JsonFileStore(path, version=VERSION)
        s.put("k", RECORD)
        s.flush()
        # The foreign file is untouched; our writes landed in a sibling.
        assert json.loads(path.read_text()) == foreign
        sibling = tmp_path / f"s.json.{VERSION}"
        assert sibling.exists()
        assert s.info()["redirected"] is True
        s.close()

    def test_gc_merges_current_version_sibling(self, tmp_path):
        """Once the main path is writable again, gc folds a leftover
        redirect sibling back in and removes it."""
        path = tmp_path / "s.json"
        sibling = tmp_path / f"s.json.{VERSION}"
        sibling.write_text(json.dumps(
            {"version": VERSION, "records": {"redirected": RECORD}}
        ))
        s = JsonFileStore(path, version=VERSION)
        s.put("direct", RECORD)
        s.flush()
        report = s.gc()
        assert report["removed_siblings"] == [sibling.name]
        assert report["merged_records"] == 1
        assert not sibling.exists()
        assert s.get("redirected") == RECORD
        s.close()

    def test_gc_removes_older_version_siblings(self, tmp_path):
        path = tmp_path / "s.json"
        stale = tmp_path / f"s.json.{OLDER[0]}"
        stale.write_text(json.dumps({"version": OLDER[0], "records": {}}))
        s = JsonFileStore(path, version=VERSION, older_versions=OLDER)
        report = s.gc()
        assert report["removed_siblings"] == [stale.name]
        assert not stale.exists()
        s.close()

    def test_gc_preserves_foreign_version_siblings(self, tmp_path):
        path = tmp_path / "s.json"
        foreign = tmp_path / "s.json.newer-v9"
        foreign.write_text(json.dumps({"version": "newer-v9", "records": {}}))
        s = JsonFileStore(path, version=VERSION, older_versions=OLDER)
        s.gc()
        assert foreign.exists()
        s.close()


class TestSqliteBackend:
    def test_lru_eviction_bounds_records(self, tmp_path):
        s = SqliteStore(tmp_path / "s.db", version=VERSION, max_records=3)
        for i in range(5):
            s.put(f"k{i}", {"n": i})
        s.flush()
        assert len(s) == 3
        assert s.evictions == 2
        assert s.stats()["evictions"] == 2
        s.close()

    def test_lru_evicts_least_recently_accessed(self, tmp_path):
        s = SqliteStore(tmp_path / "s.db", version=VERSION, max_records=2)
        s.put("a", {"n": 0})
        s.flush()
        s.put("b", {"n": 1})
        s.flush()
        # Touch "a" so "b" is now the LRU record.
        assert s.get("a") == {"n": 0}
        s.flush()
        s.put("c", {"n": 2})
        s.flush()
        assert s.get("b") is None
        assert s.get("a") == {"n": 0}
        assert s.get("c") == {"n": 2}
        s.close()

    def test_flush_is_o_dirty_not_o_total(self, tmp_path):
        """One staged put into a populated store writes one row."""
        s = SqliteStore(tmp_path / "s.db", version=VERSION)
        with s:
            for i in range(200):
                s.put(f"k{i}", {"n": i})
        s.put("one-more", {"n": -1})
        changes_before = s._conn.total_changes
        s.flush()
        assert s._conn.total_changes - changes_before <= 2
        s.close()

    def test_versions_coexist_per_record(self, tmp_path):
        old = SqliteStore(tmp_path / "s.db", version="other-v9")
        old.put("foreign", RECORD)
        old.flush()
        old.close()
        s = SqliteStore(tmp_path / "s.db", version=VERSION)
        s.put("ours", RECORD)
        s.flush()
        assert s.get("foreign") is None
        assert len(s) == 1
        assert s.version_counts() == {"other-v9": 1, VERSION: 1}
        s.close()
        # The foreign rows survived our writes and gc.
        other = SqliteStore(tmp_path / "s.db", version="other-v9")
        assert other.get("foreign") == RECORD
        other.close()

    def test_gc_drops_older_versions_keeps_foreign(self, tmp_path):
        for version in (OLDER[0], "newer-v9"):
            s = SqliteStore(tmp_path / "s.db", version=version)
            s.put(f"at-{version}", RECORD)
            s.flush()
            s.close()
        s = SqliteStore(
            tmp_path / "s.db", version=VERSION, older_versions=OLDER
        )
        report = s.gc()
        assert report["purged_stale_versions"] == 1
        assert report["foreign_version_records"] == 1
        assert s.version_counts() == {"newer-v9": 1}
        s.close()

    def test_shard_prefix_partitions_scan(self, tmp_path):
        s = SqliteStore(
            tmp_path / "s.db", version=VERSION, shard_prefix=1
        )
        for key in ("a1", "a2", "b1"):
            s.put(key, {"k": key})
        s.flush()
        assert [k for k, _ in s.scan(shard="a")] == ["a1", "a2"]
        assert s.shard_counts() == {"a": 2, "b": 1}
        assert "shard_prefix=1" in s.url
        s.close()

    def test_corrupt_row_tombstoned_on_read(self, tmp_path):
        s = SqliteStore(tmp_path / "s.db", version=VERSION)
        s.put("k", RECORD)
        s.flush()
        s._conn.execute(
            "UPDATE records SET value='{truncated' WHERE key='k'"
        )
        s._conn.commit()
        assert s.get("k") is None
        assert s.corrupt_records == 1
        s.close()

    def test_concurrent_instances_share_rows(self, tmp_path):
        a = SqliteStore(tmp_path / "s.db", version=VERSION)
        b = SqliteStore(tmp_path / "s.db", version=VERSION)
        a.put("from-a", {"n": 1})
        a.flush()
        assert b.get("from-a") == {"n": 1}
        b.put("from-b", {"n": 2})
        b.flush()
        assert a.get("from-b") == {"n": 2}
        a.close(), b.close()

    def test_max_records_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            SqliteStore(tmp_path / "s.db", version=VERSION, max_records=0)

    def test_unrecognized_schema_warns(self, tmp_path):
        path = tmp_path / "s.db"
        conn = sqlite3.connect(path)
        conn.execute("CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT "
                     "NOT NULL)")
        conn.execute("INSERT INTO meta VALUES ('schema', 'weird-v9')")
        conn.commit()
        conn.close()
        with pytest.warns(UserWarning, match="schema"):
            s = SqliteStore(path, version=VERSION)
        s.close()
