"""Microbenchmark workload presets.

Beyond the NPB application profiles, studies often want pure-behaviour
probes: a streaming kernel (long sequential runs, no reuse), a
pointer-chaser (no spatial locality, latency-bound), a cache-resident
kernel (pure compute ceiling), and a write-heavy kernel (writeback and
coherence pressure).  These exercise individual mechanisms of the
simulator and make clean inputs for ablations like the system-level page
policy comparison.
"""

from __future__ import annotations

from repro.workloads.synthetic import WorkloadProfile

MB = 1 << 20

#: Pure streaming: long sequential runs over a huge array.  Strong row
#: locality at the DRAM, no reuse at any cache level.
STREAM = WorkloadProfile(
    name="micro.stream",
    instructions_per_thread=50_000,
    fp_fraction=0.5,
    mem_per_instr=0.15,
    write_fraction=0.25,
    hot_bytes=4 << 10,
    warm_bytes=64 << 10,
    cold_bytes=512 * MB,
    p_hot=0.05,
    p_warm=0.05,
    p_cold=0.90,
    spatial_run=32.0,
    barriers=0,
)

#: Pointer chase: dependent, spatially random accesses over a set larger
#: than any cache -- pure latency exposure.
POINTER_CHASE = WorkloadProfile(
    name="micro.chase",
    instructions_per_thread=50_000,
    fp_fraction=0.0,
    mem_per_instr=0.25,
    write_fraction=0.0,
    hot_bytes=4 << 10,
    warm_bytes=512 * MB,
    cold_bytes=64 * MB,
    p_hot=0.02,
    p_warm=0.96,
    p_cold=0.02,
    warm_skew=1.0,
    spatial_run=1.0,
    barriers=0,
)

#: Cache-resident compute: everything fits the private caches; the
#: measured IPC is the core model's ceiling for the instruction mix.
RESIDENT = WorkloadProfile(
    name="micro.resident",
    instructions_per_thread=50_000,
    fp_fraction=0.6,
    mem_per_instr=0.05,
    write_fraction=0.3,
    hot_bytes=8 << 10,
    warm_bytes=64 << 10,
    cold_bytes=64 << 10,
    p_hot=0.99,
    p_warm=0.005,
    p_cold=0.005,
    spatial_run=4.0,
    barriers=0,
)

#: Write-heavy shared kernel: stores to a shared region, stressing MESI
#: invalidations and dirty writebacks.
WRITE_SHARED = WorkloadProfile(
    name="micro.write-shared",
    instructions_per_thread=50_000,
    fp_fraction=0.2,
    mem_per_instr=0.12,
    write_fraction=0.7,
    hot_bytes=16 << 10,
    warm_bytes=2 * MB,
    cold_bytes=64 * MB,
    p_hot=0.30,
    p_warm=0.65,
    p_cold=0.05,
    warm_skew=2.0,
    spatial_run=2.0,
    barriers=10,
    lock_rate_per_kinstr=2.0,
)

MICRO_PROFILES = (STREAM, POINTER_CHASE, RESIDENT, WRITE_SHARED)
