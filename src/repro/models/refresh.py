"""Refresh modeling (paper section 2.3.3).

DRAM cells leak charge and must be refreshed every retention period.  The
power cost is evaluated inside the array model; this module adds the
scheduling-side quantities a system study needs: how often refresh
commands must issue, what fraction of the array's time they steal
(bandwidth overhead), and the refresh-interval scaling with capacity.

The paper's Table 1 contrast is stark -- LP-DRAM retains for 0.12 ms while
COMM-DRAM retains for 64 ms -- so LP-DRAM refreshes ~500x more often,
which shows up both in refresh power (Table 3) and in availability.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RefreshSchedule:
    """Refresh requirements of one DRAM structure."""

    rows_to_refresh: int  #: independent row-refresh operations per period
    retention_time: float  #: s
    row_cycle_time: float  #: time one refresh op occupies a bank (s)
    nbanks: int  #: banks refreshing in parallel

    @property
    def refresh_interval(self) -> float:
        """Time between successive refresh operations (tREFI analogue, s)."""
        ops_per_bank = self.rows_to_refresh / self.nbanks
        return self.retention_time / ops_per_bank

    @property
    def bandwidth_overhead(self) -> float:
        """Fraction of array time consumed by refresh."""
        return min(1.0, self.row_cycle_time / self.refresh_interval)

    @property
    def refresh_rate(self) -> float:
        """Refresh operations per second, whole structure."""
        return self.rows_to_refresh / self.retention_time


def refresh_schedule(
    total_rows: int,
    rows_per_operation: int,
    retention_time: float,
    row_cycle_time: float,
    nbanks: int,
) -> RefreshSchedule:
    """Build the refresh schedule for an array.

    ``rows_per_operation`` counts physical subarray rows refreshed by one
    operation (the activation width, in subarrays).
    """
    ops = max(1, total_rows // max(rows_per_operation, 1))
    return RefreshSchedule(
        rows_to_refresh=ops,
        retention_time=retention_time,
        row_cycle_time=row_cycle_time,
        nbanks=nbanks,
    )


def refresh_power(
    ops_per_period: float, energy_per_op: float, retention_time: float
) -> float:
    """Average refresh power (W): the paper's refresh-power model."""
    return ops_per_period * energy_per_op / retention_time
