"""The sqlite backend: bounded, concurrently-writable, O(dirty) flushes.

A WAL-mode sqlite database holds one row per record::

    records(key PRIMARY KEY, shard, value, version,
            created_s, last_access_s, tombstone)

Differences from the JSON-file backend that matter at scale:

* **Flushes are O(dirty records), not O(total records).**  A flush
  upserts only the staged puts, touch-updates only the keys read since
  the last flush, and never rewrites unrelated rows.  A one-record put
  into a 10k-record store costs one row write, not a 10k-record file
  rewrite (``BENCH_store.json`` records the gap).
* **Concurrent writers need no whole-file merge.**  WAL mode lets
  readers proceed under a writer; write transactions (``BEGIN
  IMMEDIATE``) serialize on sqlite's own lock with a generous busy
  timeout.  Two processes upserting distinct keys can never lose each
  other's rows -- there is no read-modify-write of the whole store.
* **The record count is bounded.**  With ``max_records`` set, every
  flush evicts least-recently-used rows (by ``last_access_s``, ties by
  key) down to the bound.  Reads batch their LRU touches in memory and
  persist them at the next flush, so a get costs no write of its own.
* **Versions coexist per record.**  Each row carries the model version
  it was written at; only current-version rows are served.  A newer
  build's rows sit untouched next to ours (no sibling-file redirect
  needed) until ``gc`` reclaims known-older ones.

Key-prefix sharding is an option, not a default: ``shard_prefix=N``
stores the first N key characters in an indexed ``shard`` column, which
gives multi-host partitioning (ROADMAP item 5) an efficient
``scan(shard=...)`` without schema changes.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import warnings
from pathlib import Path
from typing import Iterator

from repro.store.base import KVStore, Validator

#: Schema version stamped into the ``meta`` table.  Bump on any schema
#: change; an unrecognized (newer) schema warns and opens best-effort.
SCHEMA_VERSION = "repro-store-sqlite-v1"

#: How long a writer waits on sqlite's lock before erroring (ms).
_BUSY_TIMEOUT_MS = 30_000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    key           TEXT PRIMARY KEY,
    shard         TEXT NOT NULL DEFAULT '',
    value         TEXT NOT NULL,
    version       TEXT NOT NULL,
    created_s     REAL NOT NULL,
    last_access_s REAL NOT NULL,
    tombstone     INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_records_lru
    ON records (version, tombstone, last_access_s, key);
CREATE INDEX IF NOT EXISTS idx_records_shard
    ON records (shard);
"""


class SqliteStore(KVStore):
    """WAL-mode sqlite record store with LRU-bounded capacity."""

    BACKEND = "sqlite"

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        version: str,
        older_versions: tuple[str, ...] = (),
        validate: Validator | None = None,
        max_records: int | None = None,
        shard_prefix: int = 0,
    ):
        super().__init__(
            version=version, older_versions=older_versions,
            validate=validate,
        )
        if max_records is not None and max_records <= 0:
            raise ValueError(
                f"max_records must be positive, got {max_records}"
            )
        self._path = Path(path)
        self.max_records = max_records
        self.shard_prefix = int(shard_prefix)
        #: Staged puts awaiting the next flush (served read-your-writes).
        self._pending: dict[str, dict] = {}
        #: Keys read since the last flush; their LRU stamps batch into it.
        self._touched: set[str] = set()
        #: Tombstones not yet persisted to the ``tombstone`` column.
        self._unsaved_tombstones: set[str] = set()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self._path, timeout=_BUSY_TIMEOUT_MS / 1000.0
        )
        self._conn.executescript(_SCHEMA)
        # WAL lets readers run under a writer; NORMAL sync is durable
        # against process crashes (the threat model here), and the busy
        # timeout makes lock contention wait instead of erroring.
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        self._init_meta()

    def _init_meta(self) -> None:
        with self._conn:
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) "
                    "VALUES ('schema', ?)",
                    (SCHEMA_VERSION,),
                )
            elif row[0] != SCHEMA_VERSION:
                warnings.warn(
                    f"store {self._path} has schema {row[0]!r} (this "
                    f"build expects {SCHEMA_VERSION!r}); opening "
                    "best-effort",
                    stacklevel=3,
                )

    # ------------------------------------------------------------------ #
    # Engine interface

    @property
    def path(self) -> Path:
        return self._path

    @property
    def url(self) -> str:
        options = []
        if self.max_records is not None:
            options.append(f"max_records={self.max_records}")
        if self.shard_prefix:
            options.append(f"shard_prefix={self.shard_prefix}")
        query = f"?{'&'.join(options)}" if options else ""
        return f"sqlite:{self._path}{query}"

    def _shard(self, key: str) -> str:
        return key[: self.shard_prefix] if self.shard_prefix else ""

    def get(self, key: str) -> dict | None:
        if key in self._tombstoned:
            return None
        pending = self._pending.get(key)
        if pending is not None:
            return self._screen_record(key, pending)
        row = self._conn.execute(
            "SELECT value, version FROM records "
            "WHERE key=? AND tombstone=0",
            (key,),
        ).fetchone()
        if row is None or row[1] != self.version:
            return None
        try:
            record = json.loads(row[0])
        except ValueError:
            self.tombstone(key)
            return None
        record = self._screen_record(key, record)
        if record is None:
            return None
        # Batched LRU touch: persisted at the next flush, so reads
        # between flushes cost no write of their own.
        self._touched.add(key)
        self._dirty = True
        return record

    def put(self, key: str, record: dict) -> None:
        self._pending[key] = record
        self._tombstoned.discard(key)
        self._unsaved_tombstones.discard(key)
        self._dirty = True

    def _drop(self, key: str) -> None:
        self._pending.pop(key, None)
        self._touched.discard(key)
        self._unsaved_tombstones.add(key)

    def scan(self, shard: str | None = None) -> Iterator[tuple[str, dict]]:
        """Live current-version records in key order.

        ``shard`` restricts the scan to one key-prefix shard (only
        meaningful with ``shard_prefix`` set) -- the partition hook for
        multi-host work splitting.
        """
        query = (
            "SELECT key, value FROM records "
            "WHERE tombstone=0 AND version=?"
        )
        params: tuple = (self.version,)
        if shard is not None:
            query += " AND shard=?"
            params += (shard,)
        for key, value in self._conn.execute(
            query + " ORDER BY key", params
        ):
            if key in self._pending or key in self._tombstoned:
                continue
            try:
                record = json.loads(value)
            except ValueError:
                self.tombstone(key)
                continue
            record = self._screen_record(key, record)
            if record is not None:
                yield key, record
        for key in sorted(self._pending):
            if shard is not None and self._shard(key) != shard:
                continue
            record = self._screen_record(key, self._pending[key])
            if record is not None:
                yield key, record

    def __len__(self) -> int:
        (count,) = self._conn.execute(
            "SELECT COUNT(*) FROM records WHERE tombstone=0 AND version=?",
            (self.version,),
        ).fetchone()
        for key in self._pending:
            if key in self._tombstoned:
                continue
            row = self._conn.execute(
                "SELECT 1 FROM records "
                "WHERE key=? AND tombstone=0 AND version=?",
                (key, self.version),
            ).fetchone()
            if row is None:
                count += 1
        return count

    def refresh(self) -> None:
        """No-op: every read already goes to the shared database."""

    # ------------------------------------------------------------------ #
    # Flush: one write transaction, O(staged mutations)

    def _save(self) -> None:
        now = time.time()
        # BEGIN IMMEDIATE takes the write lock up front so the count-
        # then-evict step below is atomic against concurrent writers.
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.executemany(
                "INSERT INTO records (key, shard, value, version, "
                "created_s, last_access_s, tombstone) "
                "VALUES (?, ?, ?, ?, ?, ?, 0) "
                "ON CONFLICT(key) DO UPDATE SET "
                "shard=excluded.shard, value=excluded.value, "
                "version=excluded.version, "
                "last_access_s=excluded.last_access_s, tombstone=0",
                [
                    (
                        key,
                        self._shard(key),
                        json.dumps(record, sort_keys=True),
                        self.version,
                        now,
                        now,
                    )
                    for key, record in self._pending.items()
                ],
            )
            self._conn.executemany(
                "UPDATE records SET last_access_s=? WHERE key=?",
                [
                    (now, key)
                    for key in self._touched
                    if key not in self._pending
                ],
            )
            self._conn.executemany(
                "UPDATE records SET tombstone=1 WHERE key=?",
                [(key,) for key in self._unsaved_tombstones],
            )
            self._evict_locked()
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._pending.clear()
        self._touched.clear()
        self._unsaved_tombstones.clear()

    def _evict_locked(self) -> None:
        """Enforce ``max_records`` inside the current write transaction."""
        if self.max_records is None:
            return
        (live,) = self._conn.execute(
            "SELECT COUNT(*) FROM records WHERE tombstone=0 AND version=?",
            (self.version,),
        ).fetchone()
        excess = live - self.max_records
        if excess <= 0:
            return
        self._conn.execute(
            "DELETE FROM records WHERE key IN ("
            "SELECT key FROM records WHERE tombstone=0 AND version=? "
            "ORDER BY last_access_s ASC, key ASC LIMIT ?)",
            (self.version, excess),
        )
        self.evictions += excess

    # ------------------------------------------------------------------ #
    # Inspection and maintenance

    def bytes_on_disk(self) -> int:
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.path.getsize(f"{self._path}{suffix}")
            except OSError:
                pass
        return total

    def shard_counts(self) -> dict[str, int]:
        """Live current-version record count per key-prefix shard."""
        return dict(
            self._conn.execute(
                "SELECT shard, COUNT(*) FROM records "
                "WHERE tombstone=0 AND version=? GROUP BY shard",
                (self.version,),
            )
        )

    def version_counts(self) -> dict[str, int]:
        """Record count per model version (tombstones excluded)."""
        return dict(
            self._conn.execute(
                "SELECT version, COUNT(*) FROM records "
                "WHERE tombstone=0 GROUP BY version"
            )
        )

    def gc(self) -> dict:
        """Purge tombstoned rows and known-older-version rows, then
        compact.  Rows at unrecognized versions (a newer build's) are
        counted but preserved."""
        before = self.bytes_on_disk()
        self.flush()
        with self._conn:
            purged = self._conn.execute(
                "DELETE FROM records WHERE tombstone=1"
            ).rowcount
            stale = 0
            if self.older_versions:
                placeholders = ",".join("?" * len(self.older_versions))
                stale = self._conn.execute(
                    f"DELETE FROM records WHERE version IN ({placeholders})",
                    self.older_versions,
                ).rowcount
            (foreign,) = self._conn.execute(
                "SELECT COUNT(*) FROM records WHERE version != ?",
                (self.version,),
            ).fetchone()
        self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        self._conn.execute("VACUUM")
        return {
            "backend": self.BACKEND,
            "purged_tombstones": purged,
            "purged_stale_versions": stale,
            "foreign_version_records": foreign,
            "bytes_before": before,
            "bytes_after": self.bytes_on_disk(),
        }

    def info(self) -> dict:
        report = super().info()
        report["max_records"] = self.max_records
        report["shard_prefix"] = self.shard_prefix
        report["versions"] = self.version_counts()
        if self.shard_prefix:
            report["shards"] = len(self.shard_counts())
        return report

    def close(self) -> None:
        self.flush()
        self._conn.close()
