"""Extension bench: DRAM power-down modes (the paper's conclusion).

"The high percentage of main memory system power we observed due to
standby power suggests that appropriate use of DRAM power-down modes,
combined with supporting operating system policies, may significantly
reduce main memory power."  This bench quantifies that suggestion using
the 32 nm main-memory chip and request rates spanning the study's
configurations: the nol3 system keeps the DIMMs busy, while the 192 MB
COMM-DRAM L3 starves them, opening large power-down windows.
"""

from conftest import print_table

from repro.power.powerdown import (
    PowerDownPolicy,
    evaluate_policy,
    idle_intervals_from_rate,
)
from repro.study.table3 import solve_main_memory_chip

#: Per-rank request rates (req/s) spanning the study: a nol3 system
#: hammers memory; the big COMM-DRAM L3 filters most traffic.
SCENARIOS = (
    ("nol3-class traffic", 20e6),
    ("SRAM-L3-class traffic", 6e6),
    ("COMM-L3-class traffic", 1e6),
    ("idle channel", 1e3),
)


def run_scenarios():
    chip = solve_main_memory_chip()
    standby = chip.energies.p_standby
    policy = PowerDownPolicy()
    results = []
    for name, rate in SCENARIOS:
        gaps = idle_intervals_from_rate(rate, duration=1.0)
        outcome = evaluate_policy(policy, standby, gaps)
        results.append((name, rate, outcome, standby))
    return results


def test_powerdown_modes(benchmark):
    results = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)
    rows = []
    for name, rate, outcome, standby in results:
        rows.append([
            name,
            f"{rate:.0e}",
            f"{standby * 1e3:.1f}",
            f"{outcome.average_standby_power * 1e3:.1f}",
            f"{outcome.savings_vs_active(standby):.0%}",
            f"{outcome.average_added_latency * 1e9:.0f}",
        ])
    print_table(
        "DRAM power-down modes (per chip)",
        ["scenario", "req/s", "always-on mW", "managed mW", "saving",
         "added ns/req"],
        rows,
    )

    by_name = {name: outcome for name, _, outcome, _ in results}
    # Quiet channels save most of their standby power...
    assert by_name["idle channel"].savings_vs_active(1.0) > 0.8
    # ...and the saving grows monotonically as the L3 filters more traffic.
    savings = [o.savings_vs_active(1.0) for _, _, o, _ in results]
    assert savings == sorted(savings)
    # Busy channels pay almost no latency penalty.
    assert by_name["nol3-class traffic"].average_added_latency < 20e-9
