"""Sensitivity analysis: how solved metrics respond to inputs.

A modeling tool earns trust by exposing its derivatives: which inputs
move which outputs, and by how much.  This module sweeps a one-dimensional
input of a :class:`~repro.core.config.MemorySpec` (capacity,
associativity, block size, technology node, banks) or an optimizer knob,
re-solves at each point, and reports the resulting metric trajectories
plus local elasticities (d log(metric) / d log(input)).
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.array.organization import EvalCache, InfeasibleOrganization
from repro.core import parallel
from repro.core.cacti import solve
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.optimizer import NoFeasibleSolution, SweepStats
from repro.core.resilience import (
    ResiliencePolicy,
    TaskFailure,
    task_key,
)
from repro.core.results import Solution
from repro.core.solvecache import SolveCache, account_store as _account_store
from repro.obs import Obs, maybe_span

#: Metrics extracted from each solved point.
METRICS: dict[str, Callable[[Solution], float]] = {
    "access_time": lambda s: s.access_time,
    "random_cycle": lambda s: s.random_cycle_time,
    "e_read": lambda s: s.e_read,
    "p_leakage": lambda s: s.p_leakage,
    "p_refresh": lambda s: s.p_refresh,
    "area": lambda s: s.area,
    "area_efficiency": lambda s: s.area_efficiency,
}

#: Spec fields sweepable by name.  ``cell_tech`` is categorical: values
#: are technology registry names (any registered technology), points
#: carry the name as their value, and elasticities skip it.
SWEEPABLE = (
    "capacity_bytes",
    "block_bytes",
    "associativity",
    "nbanks",
    "node_nm",
    "cell_tech",
)


def _point_value(value) -> float | str:
    """Numeric sweep values as floats; categorical ones as strings."""
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return str(value)


@dataclass(frozen=True)
class SweepPoint:
    """One solved point of a sweep.

    ``value`` is a float for numeric parameters and a string for
    categorical ones (e.g. a ``cell_tech`` registry name).
    """

    value: float | str
    solution: Solution | None  #: None if infeasible at this value

    def metric(self, name: str) -> float | None:
        if self.solution is None:
            return None
        return METRICS[name](self.solution)


@dataclass(frozen=True)
class SensitivityResult:
    """A full one-dimensional sweep.

    Under a skip/retry :class:`~repro.core.resilience.ResiliencePolicy`
    the sweep is allowed to finish partially: points whose tasks failed
    terminally come back with ``solution=None`` and the corresponding
    :class:`~repro.core.resilience.TaskFailure` records in ``failed``.
    """

    parameter: str
    points: tuple[SweepPoint, ...]
    failed: tuple[TaskFailure, ...] = ()

    def series(self, metric: str) -> list[tuple[float, float]]:
        """(input value, metric value) pairs for the feasible points."""
        return [
            (p.value, p.metric(metric))
            for p in self.points
            if p.solution is not None
        ]

    def elasticity(self, metric: str) -> float | None:
        """Log-log slope of the metric over the sweep (least squares).

        An elasticity of 1.0 means the metric scales proportionally with
        the input; 0.5 like its square root; 0 means insensitive.
        Returns None with fewer than two feasible points, and for
        categorical sweeps (e.g. ``cell_tech``), whose string-valued
        points have no log-log slope.
        """
        pairs = [
            (v, m)
            for v, m in self.series(metric)
            if isinstance(v, float) and v > 0 and m > 0
        ]
        if len(pairs) < 2:
            return None
        xs = [math.log(v) for v, _ in pairs]
        ys = [math.log(m) for _, m in pairs]
        n = len(xs)
        mean_x, mean_y = sum(xs) / n, sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        if sxx == 0:
            return None
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        return sxy / sxx

    def report(self) -> str:
        lines = [f"sensitivity sweep over {self.parameter}"]
        for metric in METRICS:
            e = self.elasticity(metric)
            if e is None:
                continue
            lines.append(f"  {metric:<16} elasticity {e:+.2f}")
        return "\n".join(lines)


def _sweep_point_task(payload: tuple) -> tuple[Solution | None, dict]:
    """Worker task: solve one sweep point, shipping stats home.

    Returns ``(None, stats)`` for an infeasible point, mirroring the
    serial path's treatment.  When the parent traces, the stats dict
    carries this worker's spans/metrics under ``"obs"``.  The
    persistent solve cache is worker-local and keyed by path, so the
    JSON records load once per worker, not once per point.  Only the
    *intended* infeasibilities are swallowed -- no feasible
    organization, or a spec whose geometry cannot divide
    (``InfeasibleOrganization``); any other error is a genuine model
    failure and propagates (to be captured as a ``TaskFailure`` when a
    resilience policy is active).
    """
    spec, target, cache_path, with_obs = payload
    stats = SweepStats()
    obs = Obs() if with_obs else None
    solve_cache = parallel.worker_solve_cache(cache_path)
    try:
        solution = solve(
            spec,
            target,
            eval_cache=parallel.worker_eval_cache(),
            solve_cache=solve_cache,
            stats=stats,
            obs=obs,
        )
    except (NoFeasibleSolution, InfeasibleOrganization):
        solution = None
    stats_dict = stats.as_dict()
    if obs is not None:
        stats_dict["obs"] = obs.export_payload()
    return solution, stats_dict


def sweep(
    base: MemorySpec,
    parameter: str,
    values: Sequence,
    target: OptimizationTarget | None = None,
    *,
    eval_cache: EvalCache | None = None,
    solve_cache: SolveCache | None = None,
    stats: SweepStats | None = None,
    jobs: int | str = 1,
    obs: Obs | None = None,
    resilience: ResiliencePolicy | None = None,
) -> SensitivityResult:
    """Re-solve ``base`` across ``values`` of ``parameter``.

    One shared ``eval_cache`` spans the whole serial sweep (created when
    omitted), so neighboring points reuse subarray and H-tree designs --
    the reuse shows up in ``stats``.  ``solve_cache`` persists whole
    point solves across sweeps (flushed once per sweep, not per point);
    ``jobs > 1`` solves points concurrently in worker processes (point
    order is preserved, numbers unchanged); ``obs`` traces the sweep
    with one ``sweep.point`` span per point.

    ``resilience`` makes the sweep fault tolerant: failed points are
    retried/skipped/raised per the policy, a journal checkpoints each
    completed point (resuming re-solves only the unfinished ones), and
    terminal failures land in the result's ``failed`` list with
    ``solution=None`` at the corresponding point.
    """
    if parameter not in SWEEPABLE:
        raise ValueError(
            f"cannot sweep {parameter!r}; choose one of {SWEEPABLE}"
        )
    # An invalid spec at some value (e.g. a capacity that does not
    # divide into sets) counts as an infeasible point in either mode.
    specs: list[MemorySpec | None] = []
    for value in values:
        try:
            specs.append(replace(base, **{parameter: value}))
        except ValueError:
            specs.append(None)
    # Point-level parallelism is coarse: ``auto`` only needs two live
    # points (and more than one core) to be worth a pool.
    jobs = parallel.effective_jobs(
        jobs, sum(s is not None for s in specs), min_tasks=2
    )
    solutions: list[Solution | None]
    failures: list[TaskFailure] = []
    with maybe_span(
        obs, "sweep", parameter=parameter, points=len(specs), jobs=jobs
    ):
        if resilience is None and (
            jobs == 1 or sum(s is not None for s in specs) <= 1
        ):
            if eval_cache is None:
                eval_cache = EvalCache()
            solutions = []
            with solve_cache if solve_cache is not None else nullcontext():
                for value, spec in zip(values, specs):
                    solution = None
                    if spec is not None:
                        with maybe_span(
                            obs, "sweep.point", value=_point_value(value)
                        ):
                            try:
                                solution = solve(
                                    spec,
                                    target,
                                    eval_cache=eval_cache,
                                    solve_cache=solve_cache,
                                    stats=stats,
                                    obs=obs,
                                )
                            except (
                                NoFeasibleSolution,
                                InfeasibleOrganization,
                            ):
                                solution = None
                    solutions.append(solution)
            # Drain the sweep-boundary flush the context exit above
            # just performed.
            _account_store(solve_cache, stats, obs)
        else:
            cache_path = (
                solve_cache.url if solve_cache is not None else None
            )
            live = [s for s in specs if s is not None]
            keys = None
            if resilience is not None and resilience.journal is not None:
                keys = [
                    task_key(
                        "sweep.point",
                        {
                            "spec": spec,
                            "target": target or OptimizationTarget(),
                        },
                    )
                    for spec in live
                ]
            results = parallel.parallel_map(
                _sweep_point_task,
                [
                    (spec, target, cache_path, obs is not None)
                    for spec in live
                ],
                jobs,
                span_name="sweep.point",
                resilience=resilience,
                keys=keys,
                stats=stats,
            )
            results_iter = iter(results)
            solutions = []
            for spec in specs:
                if spec is None:
                    solutions.append(None)
                    continue
                outcome = next(results_iter)
                if isinstance(outcome, TaskFailure):
                    failures.append(outcome)
                    solutions.append(None)
                    continue
                solution, worker_stats = outcome
                solutions.append(solution)
                if stats is not None:
                    stats.absorb_worker(worker_stats)
                if obs is not None:
                    obs.absorb_worker(worker_stats.get("obs"))
            if solve_cache is not None:
                solve_cache.refresh()
                _account_store(solve_cache, stats, obs)
    if obs is not None:
        obs.inc("sensitivity.points", len(specs))
        obs.inc(
            "sensitivity.feasible_points",
            sum(s is not None for s in solutions),
        )
    points = tuple(
        SweepPoint(value=_point_value(value), solution=solution)
        for value, solution in zip(values, solutions)
    )
    if not any(p.solution is not None for p in points):
        raise NoFeasibleSolution(
            f"no feasible point in the {parameter} sweep"
        )
    return SensitivityResult(
        parameter=parameter, points=points, failed=tuple(failures)
    )


def capacity_sweep(
    base: MemorySpec,
    factors: Sequence[int] = (1, 2, 4, 8, 16),
    **kwargs,
) -> SensitivityResult:
    """Convenience: sweep capacity by powers of two from the base.

    Keyword arguments (``jobs``, ``eval_cache``, ``solve_cache``,
    ``stats``, ``target``) pass through to :func:`sweep`.
    """
    return sweep(
        base,
        "capacity_bytes",
        [base.capacity_bytes * f for f in factors],
        **kwargs,
    )
