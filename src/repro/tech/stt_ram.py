"""STT-RAM (spin-transfer-torque MRAM): the registry extensibility proof.

A 1T1MTJ cell stores a bit in the parallel/anti-parallel state of a
magnetic tunnel junction.  Reads are non-destructive current sensing --
the access device drives a small read current through the MTJ and a
latch compares the resulting bitline differential -- so the technology
rides the same current-latch sensing path as SRAM.  Writes must push a
large spin-polarized current through the junction for roughly 10 ns to
flip the free layer, so writes are much slower than reads (the declared
write pulse extends the row cycle).  The cell is nonvolatile: no
refresh, and no static supply-leakage path through the storage element.

This module deliberately touches *nothing* outside ``repro/tech/``: the
array, circuit, and timing models pick all of the above up from the
declared :class:`~repro.tech.registry.CellTraits`.  It is the worked
example for docs/MODELING.md section 14 ("Adding a memory technology").

Cell data is representative of 1T1MTJ projections in the emerging-memory
modeling literature (e.g. the NVSim-class surveys): ~40 F^2 cell limited
by the write-current-sized access transistor, logic-compatible supply,
~10 ns switching pulse.
"""

from __future__ import annotations

from repro.tech.cells import CellParams, _loglin
from repro.tech.registry import (
    CellTech,
    CellTraits,
    MemoryTechnology,
    SensingScheme,
    register,
)

#: MTJ write-pulse duration (s): the spin-torque switching time at the
#: write current the access transistor can deliver.
STT_WRITE_PULSE = 10e-9

#: Access-device subthreshold leakage per width (A/m) -- an HP-class
#: device; with the wordline low it only leaks into a floating bitline,
#: not through the nonvolatile storage element, so the cell itself burns
#: no static power (cell_leak_paths = 0).
_STT_ACCESS_IOFF = {90: 0.012, 65: 0.018, 45: 0.024, 32: 0.030}

STT_RAM_TRAITS = CellTraits(
    sensing=SensingScheme.CURRENT_LATCH,
    destructive_read=False,
    folded_bitline=False,
    wordline_gates_per_cell=1.0,
    # Current-mode amps with reference columns: a wider strip than SRAM's
    # simple voltage latch, but nowhere near a DRAM restore strip.
    sense_strip_height_f=24.0,
    column_mux_allowed=True,
    supports_page_mode=False,
    # Small TMR ratios bound the usable bitline length before the
    # parallel/anti-parallel resistance difference drowns in wire drop.
    max_bitline_cells=1024,
    needs_refresh=False,
    cell_leak_paths=0.0,
    precharge_swing_fraction=0.10,
    precise_precharge=False,
    write_swing_fraction=1.0,
    write_pulse_time=STT_WRITE_PULSE,
    bitline_wire="local",
    htree_wire="global",
    default_periphery="hp-long-channel",
    sleep_transistors_effective=False,
)


def stt_ram_cell(node_nm: float, periph_vdd: float) -> CellParams:
    """1T1MTJ cell on the logic process, sharing the peripheral supply.

    The access transistor is sized for write current (~2 F wide), which
    sets the ~40 F^2 cell area; read current is the usual derated drive.
    """
    return CellParams(
        tech=CellTech("stt-ram"),
        feature_size=node_nm * 1e-9,
        area_f2=40.0,
        width_f=8.0,
        height_f=5.0,
        vdd_cell=periph_vdd,
        access_width_f=2.0,
        access_i_on=1100.0,  # A/m; HP-class logic access device
        access_i_off=_loglin(_STT_ACCESS_IOFF, node_nm),
        access_c_drain=0.4e-9,
        access_c_junction=0.08e-15,
        access_r_channel=2.5e-3,  # ohm*m
    )


register(MemoryTechnology(
    name="stt-ram",
    traits=STT_RAM_TRAITS,
    cell_builder=stt_ram_cell,
))
