"""Unit tests for the set-associative MESI cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import Cache, CacheConfig, MesiState


def make(capacity=8192, block=64, assoc=4):
    return Cache(CacheConfig(capacity_bytes=capacity, block_bytes=block,
                             associativity=assoc, access_cycles=2))


class TestBasics:
    def test_miss_then_hit(self):
        c = make()
        assert c.access(0x1000, False) is None
        c.fill(0x1000, MesiState.EXCLUSIVE)
        assert c.access(0x1000, False) is not None

    def test_block_granularity(self):
        c = make()
        c.fill(0x1000, MesiState.EXCLUSIVE)
        assert c.access(0x1000 + 63, False) is not None
        assert c.access(0x1000 + 64, False) is None

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_bytes=1000, block_bytes=64,
                        associativity=4, access_cycles=1)

    def test_write_promotes_exclusive_to_modified(self):
        c = make()
        c.fill(0x40, MesiState.EXCLUSIVE)
        line = c.access(0x40, True)
        assert line.state is MesiState.MODIFIED

    def test_write_does_not_silently_upgrade_shared(self):
        c = make()
        c.fill(0x40, MesiState.SHARED)
        line = c.access(0x40, True)
        assert line.state is MesiState.SHARED  # coherence must intervene


class TestLru:
    def test_lru_eviction(self):
        c = make(capacity=2 * 64, block=64, assoc=2)  # one set, 2 ways
        c.fill(0 * 64, MesiState.EXCLUSIVE)
        c.fill(1 * 64, MesiState.EXCLUSIVE)
        c.access(0 * 64, False)  # make way 0 MRU
        victim = c.fill(2 * 64, MesiState.EXCLUSIVE)
        assert victim is not None
        victim_addr, dirty = victim
        assert victim_addr == 1 * 64
        assert not dirty

    def test_dirty_eviction_flagged(self):
        c = make(capacity=2 * 64, block=64, assoc=2)
        c.fill(0, MesiState.MODIFIED)
        c.fill(64, MesiState.EXCLUSIVE)
        c.access(64, False)
        __, dirty = c.fill(128, MesiState.EXCLUSIVE)
        assert dirty

    def test_victim_address_reconstruction(self):
        c = make(capacity=64 * 64, block=64, assoc=2)
        addr = 0x12340
        c.fill(addr, MesiState.EXCLUSIVE)
        sets = c.config.num_sets
        conflicting = addr + sets * 64
        c.fill(conflicting, MesiState.EXCLUSIVE)
        victim = c.fill(conflicting + sets * 64, MesiState.EXCLUSIVE)
        block = addr // 64
        assert victim[0] // 64 in (block, conflicting // 64)


class TestInvalidation:
    def test_invalidate_returns_dirty(self):
        c = make()
        c.fill(0x80, MesiState.MODIFIED)
        assert c.invalidate(0x80) is True
        assert c.access(0x80, False) is None

    def test_invalidate_missing_is_noop(self):
        c = make()
        assert c.invalidate(0x80) is False


class TestCapacity:
    def test_occupancy_bounded(self):
        c = make(capacity=4096, block=64, assoc=4)
        for i in range(1000):
            c.fill(i * 64, MesiState.EXCLUSIVE)
        assert c.occupancy() <= 4096 // 64

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    @settings(max_examples=25, deadline=None)
    def test_occupancy_invariant_under_random_traffic(self, addresses):
        c = make(capacity=2048, block=64, assoc=2)
        for a in addresses:
            if c.access(a, False) is None:
                c.fill(a, MesiState.EXCLUSIVE)
        assert c.occupancy() <= 2048 // 64
        # Every filled line is findable.
        assert c.lookup(addresses[-1]) is not None

    def test_miss_rate_tracks(self):
        c = make()
        c.access(0, False)
        c.fill(0, MesiState.EXCLUSIVE)
        c.access(0, False)
        assert c.miss_rate == pytest.approx(0.5)

    def test_working_set_fit_gives_high_hit_rate(self):
        """A working set within capacity converges to ~100 % hits."""
        c = make(capacity=64 * 1024, block=64, assoc=8)
        lines = [(i * 64) for i in range(512)]  # 32 KB working set
        for _ in range(4):
            for a in lines:
                if c.access(a, False) is None:
                    c.fill(a, MesiState.EXCLUSIVE)
        c.hits = c.misses = 0
        for a in lines:
            c.access(a, False)
        assert c.miss_rate == 0.0
