"""Persistent solve-record cache (JSON on disk).

Design-space exploration workloads re-solve the same arrays over and
over -- across processes, sweeps, and sessions.  In the spirit of the
Accelergy CACTI wrapper's records file, :class:`SolveCache` keeps one
JSON file mapping a stable hash of ``(ArraySpec, OptimizationTarget,
node)`` to the winning :class:`~repro.array.organization.ArrayMetrics`,
so a repeated query costs a dictionary lookup instead of a sweep.

Round-trips are bit-identical: Python's ``json`` emits the shortest
``repr`` of each float, which parses back to the exact same IEEE-754
value, and the regression tests assert field-for-field equality.

The file is version-stamped.  ``CACHE_VERSION`` must be bumped whenever
the model changes numbers (any change to the circuit or array models).
A *known-older* version loads as empty and the next flush rewrites the
file at the current version (the migration path).  An *unrecognized*
version -- most likely a file written by a newer build -- is never
served from and never clobbered: the cache warns once and redirects its
own writes to a version-suffixed sibling path, leaving the foreign file
intact.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, fields
from pathlib import Path

from repro.array.organization import ArrayMetrics, ArraySpec, OrgParams
from repro.core.config import OptimizationTarget
from repro.tech.cells import CellTech

#: Bump on any model change that alters solved numbers, or any change
#: to the key scheme (v2: numeric key fields are normalized to float;
#: v3: the technology axis is registry-backed -- cell technologies are
#: identified by registry name in keys and records, and new
#: technologies such as stt-ram may appear).  Old v2 cache files are
#: *ignored*, never corrupted: a version mismatch loads as an empty
#: record set and the next flush rewrites the file at v3.
CACHE_VERSION = "repro-solve-cache-v3"

#: Versions this build recognizes as its own ancestors.  Files stamped
#: with one of these are safe to ignore-and-rewrite (their key scheme
#: or numbers are superseded).  Anything else that still parses as a
#: cache file is treated as foreign -- likely a newer build's -- and is
#: preserved, never overwritten.
_OLDER_VERSIONS = ("repro-solve-cache-v1", "repro-solve-cache-v2")

#: ArrayMetrics scalar fields (everything except the nested spec/org).
_METRIC_FIELDS = tuple(
    f.name for f in fields(ArrayMetrics) if f.name not in ("spec", "org")
)


def spec_to_dict(spec: ArraySpec) -> dict:
    d = asdict(spec)
    d["cell_tech"] = spec.cell_tech.value
    return d


def spec_from_dict(d: dict) -> ArraySpec:
    d = dict(d)
    d["cell_tech"] = CellTech(d["cell_tech"])
    return ArraySpec(**d)


def metrics_to_dict(metrics: ArrayMetrics) -> dict:
    d = {name: getattr(metrics, name) for name in _METRIC_FIELDS}
    d["spec"] = spec_to_dict(metrics.spec)
    d["org"] = asdict(metrics.org)
    return d


def metrics_from_dict(d: dict) -> ArrayMetrics:
    d = dict(d)
    spec = spec_from_dict(d.pop("spec"))
    org = OrgParams(**d.pop("org"))
    return ArrayMetrics(spec=spec, org=org, **d)


def _normalize_numbers(value):
    """Coerce every numeric leaf to float so equal values hash equally.

    ``json.dumps`` encodes ``32`` and ``32.0`` differently, so without
    normalization the same physical solve (``node_nm=32`` vs ``32.0``)
    would hash to two keys, silently missing the cache and duplicating
    records.  Bools are ints in Python but identity-relevant, so they
    pass through untouched.
    """
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, dict):
        return {k: _normalize_numbers(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize_numbers(v) for v in value]
    return value


def solve_key(
    spec: ArraySpec, target: OptimizationTarget, node_nm: float
) -> str:
    """Stable content hash of one solve request."""
    payload = _normalize_numbers({
        "version": CACHE_VERSION,
        "node_nm": node_nm,
        "spec": spec_to_dict(spec),
        "target": asdict(target),
    })
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SolveCache:
    """On-disk cache of optimizer results, keyed by the solve request.

    Opt-in: pass a path to :class:`~repro.core.cacti.CactiD` via
    ``cache_path`` or to the CLI via ``--cache``.  Unreadable, corrupt,
    or version-mismatched files are treated as empty, never as errors.

    Safe to share one path across processes (the batch-solve engine
    does): every save first re-reads the file and merges its records
    with the in-memory ones, then writes through a uniquely-named temp
    file in the same directory and ``os.replace``s it into place.  A
    killed process cannot corrupt the records, and two concurrent
    writers cannot truncate each other's entries -- the last replace
    wins with the union of both record sets.

    Writes are batched: :meth:`put` only marks the cache dirty, and
    :meth:`flush` performs the (merge-on-load, atomic-replace) save.
    The solve pipeline flushes at solve and batch boundaries, so a
    thousand-record sweep costs O(1) file rewrites instead of O(n^2)
    disk I/O.  Using the cache as a context manager defers flushes
    until the ``with`` block exits::

        with cache:            # flushes once on exit, however many puts
            for spec in specs:
                ...
                cache.put(...)
                cache.flush()  # deferred: records only a pending flush
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        #: Where flushes land.  Normally ``path``; redirected to a
        #: version-suffixed sibling when ``path`` holds a foreign
        #: (unrecognized-version) cache that must not be clobbered.
        self._write_path = self.path
        self.hits = 0
        self.misses = 0
        self._corrupt_keys: set[str] = set()
        self._dirty = False
        self._defer_depth = 0
        self._records: dict[str, dict] = self._load()

    def __len__(self) -> int:
        return len(self._records)

    @property
    def corrupt_records(self) -> int:
        """Distinct corrupt/truncated records dropped so far."""
        return len(self._corrupt_keys)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt_records": self.corrupt_records,
            "records": len(self._records),
        }

    def _load(self) -> dict[str, dict]:
        try:
            payload = json.loads(self._write_path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(payload, dict):
            return {}
        version = payload.get("version")
        if version != CACHE_VERSION:
            if (
                self._write_path == self.path
                and version not in _OLDER_VERSIONS
            ):
                # Unrecognized version -- most likely a newer build's
                # file.  Serving from it would be wrong and rewriting
                # it would destroy it, so redirect our writes to a
                # sibling and re-load from there (another process of
                # this version may already have written it).
                self._write_path = self.path.with_name(
                    f"{self.path.name}.{CACHE_VERSION}"
                )
                warnings.warn(
                    f"solve cache {self.path} has unrecognized version "
                    f"{version!r} (this build is {CACHE_VERSION!r}); "
                    f"preserving it and using {self._write_path} instead",
                    stacklevel=2,
                )
                return self._load()
            return {}
        records = payload.get("records")
        if not isinstance(records, dict):
            return {}
        return self._screen(records)

    def _screen(self, records: dict) -> dict[str, dict]:
        """Drop structurally corrupt records (and known-corrupt keys)
        so they are neither served, re-parsed, nor re-persisted."""
        kept: dict[str, dict] = {}
        for key, record in records.items():
            if key in self._corrupt_keys:
                continue
            if not (
                isinstance(record, dict)
                and "spec" in record
                and "org" in record
            ):
                self._corrupt_keys.add(key)
                self._dirty = True
                continue
            kept[key] = record
        return kept

    def get(
        self, spec: ArraySpec, target: OptimizationTarget, node_nm: float
    ) -> ArrayMetrics | None:
        key = solve_key(spec, target, node_nm)
        record = self._records.get(key)
        if record is None:
            self.misses += 1
            return None
        try:
            metrics = metrics_from_dict(record)
        except (KeyError, TypeError, ValueError):
            # A hand-edited or truncated record: a miss, and dropped so
            # it is never re-parsed or re-persisted.  Marking the cache
            # dirty lets the next flush purge it from disk too.
            del self._records[key]
            self._corrupt_keys.add(key)
            self._dirty = True
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def put(
        self,
        spec: ArraySpec,
        target: OptimizationTarget,
        node_nm: float,
        metrics: ArrayMetrics,
    ) -> None:
        self._records[solve_key(spec, target, node_nm)] = metrics_to_dict(
            metrics
        )
        self._dirty = True

    def flush(self) -> None:
        """Write pending records to disk (no-op when nothing changed).

        Inside a ``with cache:`` block the flush is deferred to the
        block exit, so nested solve/batch boundaries collapse to one
        file write per batch.
        """
        if self._dirty and self._defer_depth == 0:
            self._save()
            self._dirty = False

    def __enter__(self) -> "SolveCache":
        self._defer_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._defer_depth -= 1
        self.flush()

    def refresh(self) -> None:
        """Merge records another process has written since we loaded.

        In-memory records win key conflicts, which is harmless: solves
        are deterministic, so two processes writing the same key wrote
        the same record.
        """
        self._records = {**self._load(), **self._records}

    def _save(self) -> None:
        # Load-before-save: tolerate a concurrently-updated file by
        # taking the union of its records and ours.
        self.refresh()
        payload = {"version": CACHE_VERSION, "records": self._records}
        self._write_path.parent.mkdir(parents=True, exist_ok=True)
        # The temp name carries the pid so two processes sharing one
        # cache path never write the same temp file; os.replace is
        # atomic on POSIX and Windows.
        tmp = self._write_path.with_name(
            f"{self._write_path.name}.{os.getpid()}.tmp"
        )
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, self._write_path)
        finally:
            tmp.unlink(missing_ok=True)
