"""Artifact schema for the precomputed design-space database.

A cachedb is one versioned JSON artifact holding the optimizer's
winning design point for every cell of a (technology x node x capacity
x block x associativity) grid.  This module owns the schema: the
format version, the :class:`GridSpec` axes, the canonical per-point
keys, and the record encode/decode helpers (which reuse the
solve-cache's bit-exact :func:`~repro.core.solvecache.metrics_to_dict`
round trip, so an on-grid lookup reconstructs the *identical*
:class:`~repro.core.results.Solution` a live solve would return).

Two versions are stamped into every artifact:

* ``format`` -- the layout of the artifact itself
  (:data:`DB_FORMAT_VERSION`); a reader refuses other formats.
* ``model_version`` -- the solver's
  :data:`~repro.core.solvecache.CACHE_VERSION` at build time; a reader
  refuses to *serve* from an artifact built by a different model (the
  numbers would silently be stale), though ``cachedb info`` may still
  inspect one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.core.config import AccessMode, MemorySpec, OptimizationTarget
from repro.core.results import Solution
from repro.core.solvecache import (
    _normalize_numbers,
    metrics_from_dict,
    metrics_to_dict,
)
from repro.tech.cells import CellTech
from repro.tech.devices import NODES_NM
from repro.tech.registry import registered_names

#: Artifact layout version.  Bump on any change to the JSON structure.
DB_FORMAT_VERSION = "repro-cachedb-v1"

#: Headline metrics stored per grid point (SI units), extracted from
#: the composed :class:`~repro.core.results.Solution` at build time so
#: lookups and interpolation never pay the composition cost.
DB_METRICS = {
    "access_time_s": lambda s: s.access_time,
    "random_cycle_s": lambda s: s.random_cycle_time,
    "interleave_cycle_s": lambda s: s.interleave_cycle_time,
    "e_read_j": lambda s: s.e_read,
    "e_write_j": lambda s: s.e_write,
    "p_leakage_w": lambda s: s.p_leakage,
    "p_refresh_w": lambda s: s.p_refresh,
    "area_m2": lambda s: s.area,
    "area_efficiency": lambda s: s.area_efficiency,
}


@dataclass(frozen=True)
class GridSpec:
    """The axes of one precompute grid.

    ``associativities`` may include ``0``, meaning a plain RAM (no tag
    array), mirroring the CLI's ``--assoc 0`` convention.  An empty
    ``technologies`` tuple means "every registered technology at build
    time".  Axes are deduplicated and sorted so the artifact's bracket
    search can bisect them.
    """

    capacities_bytes: tuple[int, ...]
    associativities: tuple[int, ...] = (8,)
    block_bytes: tuple[int, ...] = (64,)
    nodes_nm: tuple[float, ...] = (32.0,)
    technologies: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        def canon(values, kind, allow_zero=False):
            cleaned = tuple(sorted(set(values)))
            if not cleaned:
                raise ValueError(f"grid needs at least one {kind}")
            floor = 0 if allow_zero else 1
            if any(v < floor for v in cleaned):
                raise ValueError(f"negative {kind} in grid: {cleaned}")
            return cleaned

        object.__setattr__(
            self,
            "capacities_bytes",
            canon(self.capacities_bytes, "capacity"),
        )
        object.__setattr__(
            self,
            "associativities",
            canon(self.associativities, "associativity", allow_zero=True),
        )
        object.__setattr__(
            self, "block_bytes", canon(self.block_bytes, "block size")
        )
        object.__setattr__(
            self,
            "nodes_nm",
            tuple(sorted({float(n) for n in self.nodes_nm})),
        )
        lo, hi = min(NODES_NM), max(NODES_NM)
        bad = [n for n in self.nodes_nm if not lo <= n <= hi]
        if bad:
            raise ValueError(
                f"grid nodes {bad} outside modeled ITRS range {lo}-{hi} nm"
            )
        # Resolve technology names now: an unknown name should fail the
        # build before any solving starts, with the registered list.
        object.__setattr__(
            self,
            "technologies",
            tuple(CellTech(t).value for t in self.technologies)
            or registered_names(),
        )

    def __len__(self) -> int:
        return (
            len(self.capacities_bytes)
            * len(self.associativities)
            * len(self.block_bytes)
            * len(self.nodes_nm)
            * len(self.technologies)
        )

    def points(self):
        """Yield ``(key, coords)`` for every grid cell, in key order."""
        for tech in self.technologies:
            for node in self.nodes_nm:
                for cap in self.capacities_bytes:
                    for block in self.block_bytes:
                        for assoc in self.associativities:
                            coords = (tech, node, cap, block, assoc)
                            yield grid_key(*coords), coords

    def as_dict(self) -> dict:
        return {
            "capacities_bytes": list(self.capacities_bytes),
            "associativities": list(self.associativities),
            "block_bytes": list(self.block_bytes),
            "nodes_nm": list(self.nodes_nm),
            "technologies": list(self.technologies),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "GridSpec":
        return cls(
            capacities_bytes=tuple(d["capacities_bytes"]),
            associativities=tuple(d["associativities"]),
            block_bytes=tuple(d["block_bytes"]),
            nodes_nm=tuple(d["nodes_nm"]),
            technologies=tuple(d["technologies"]),
        )


def grid_key(
    tech: str, node_nm: float, capacity: int, block: int, assoc: int
) -> str:
    """Canonical point key: one string per grid cell.

    Nodes format through ``%g`` so ``32`` and ``32.0`` key identically
    (the same normalization :func:`~repro.core.solvecache.solve_key`
    applies to its hash payload).
    """
    return f"{tech}/n{float(node_nm):g}/c{capacity}/b{block}/a{assoc}"


def grid_spec_for(
    tech: str, node_nm: float, capacity: int, block: int, assoc: int
) -> MemorySpec:
    """The :class:`MemorySpec` a grid cell solves.

    Grid points use the spec defaults everywhere off the grid axes
    (one bank, normal access mode, no ECC, no sleep transistors, the
    technology's default periphery), so a cachedb answer corresponds to
    a plain ``solve`` of the same coordinates.  Raises ``ValueError``
    for geometrically impossible cells (capacity not dividing into
    whole sets), which the builder records as holes.
    """
    return MemorySpec(
        capacity_bytes=capacity,
        block_bytes=block,
        associativity=assoc or None,
        node_nm=float(node_nm),
        cell_tech=CellTech(tech),
    )


def memory_spec_to_dict(spec: MemorySpec) -> dict:
    d = asdict(spec)
    d["cell_tech"] = spec.cell_tech.value
    d["tag_cell_tech"] = (
        spec.tag_cell_tech.value if spec.tag_cell_tech is not None else None
    )
    d["access_mode"] = spec.access_mode.value
    return d


def memory_spec_from_dict(d: dict) -> MemorySpec:
    d = dict(d)
    d["access_mode"] = AccessMode(d["access_mode"])
    return MemorySpec(**d)


def normalized_target(target: OptimizationTarget | None) -> dict:
    """The comparison form of an optimization target (numeric-normalized
    field dict), as stored in the artifact."""
    return _normalize_numbers(asdict(target or OptimizationTarget()))


def solution_to_record(solution: Solution) -> dict:
    """One grid point's stored record.

    ``data``/``tag`` round-trip bit-exactly through JSON (shortest-repr
    floats), so :func:`solution_from_record` rebuilds the identical
    Solution; ``metrics`` pre-computes the headline composed numbers so
    a metrics-only lookup never re-runs the composition.
    """
    return {
        "spec": memory_spec_to_dict(solution.spec),
        "data": metrics_to_dict(solution.data),
        "tag": (
            metrics_to_dict(solution.tag)
            if solution.tag is not None
            else None
        ),
        "metrics": {
            name: extract(solution) for name, extract in DB_METRICS.items()
        },
    }


def solution_from_record(record: dict) -> Solution:
    return Solution(
        spec=memory_spec_from_dict(record["spec"]),
        data=metrics_from_dict(record["data"]),
        tag=(
            metrics_from_dict(record["tag"])
            if record["tag"] is not None
            else None
        ),
    )
