"""Bank organization: partitioning parameters to complete array metrics.

A bank is an ``ndwl x ndbl`` grid of subarrays (grouped 2x2 into mats)
reached by address and data H-trees.  The partitioning parameters follow
CACTI:

* ``ndwl`` -- wordline divisions (subarray columns across the bank),
* ``ndbl`` -- bitline divisions (subarray rows down the bank),
* ``nspd`` -- sets mapped onto one wordline (relative row widening),
* ``ndcm`` -- column-mux degree before the sense amps (only where the
  cell traits allow it; charge-share DRAM senses every bitline -- that
  *is* the page),
* ``ndsam`` -- output mux degree after the sense amps.

From one tuple the module derives subarray geometry, how many subarrays
activate per access, and composes access time, random cycle time,
multisubbank interleave cycle time, per-access energies, leakage, refresh
power, and area.  The optimizer in :mod:`repro.core.optimizer` sweeps this
space exhaustively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

try:  # numpy powers the vectorized grid pre-filter; optional at runtime.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the scalar fallback
    _np = None

from repro.array.htree import HTree, design_htree
from repro.array.mat import mats_in_bank
from repro.array.subarray import InfeasibleSubarray, Subarray
from repro.tech.cells import CellTech
from repro.tech.nodes import Technology

#: Fraction of dynamic energy added for control logic and clocking.
_CONTROL_ENERGY_FRACTION = 0.05

#: Fraction of leakage added for control/IO circuitry.
_CONTROL_LEAKAGE_FRACTION = 0.05

#: Area overhead for bank-level control, redundancy, and pads.
_BANK_AREA_OVERHEAD = 0.05

#: Control wires accompanying the address on the in-tree.
_CONTROL_WIRES = 8

#: Delay of the post-sense column mux / way select, in FO4s.
_COLMUX_FO4 = 3.0

#: Structural limits on candidate subarrays.
MIN_ROWS, MAX_ROWS = 8, 16384
MIN_COLS, MAX_COLS = 16, 65536

#: The DRAM technologies declare ``max_bitline_cells = 512`` in their
#: traits: beyond that, charge-share signal margins against noise,
#: offset, and cell-capacitance variation make sensing unreliable, which
#: is why commodity parts stop there.  Kept as a named constant for
#: reference and tests; the model reads the trait.
MAX_DRAM_ROWS = 512


class InfeasibleOrganization(ValueError):
    """Raised when a partitioning tuple cannot realize the array spec."""


@dataclass(frozen=True)
class OrgGeometry:
    """Structural facts derivable from (spec, org) by arithmetic alone."""

    rows: int  #: rows per subarray
    cols: int  #: columns per subarray
    nact: int  #: subarrays activated per access
    sensed_bits: int  #: bitline pairs sensed per access
    sense_amps_per_sub: int  #: sense amplifiers per subarray


@dataclass(frozen=True)
class OrgParams:
    """One point in the partitioning space."""

    ndwl: int
    ndbl: int
    nspd: float
    ndcm: int = 1
    ndsam: int = 1

    def __post_init__(self) -> None:
        for name in ("ndwl", "ndbl", "ndcm", "ndsam"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise InfeasibleOrganization(
                    f"{name} must be a positive power of two, got {value}"
                )
        if self.nspd <= 0:
            raise InfeasibleOrganization("nspd must be positive")


@dataclass(frozen=True)
class ArraySpec:
    """Low-level specification of one physical array (data or tag).

    ``capacity_bits`` covers all banks.  ``output_bits`` is what one access
    delivers at the bank edge; ``assoc`` rows share a set (cache data/tag
    arrays) -- use 1 for plain memories.  ``page_bits``, when set,
    constrains the sensed bits per activation (main-memory page size).
    """

    capacity_bits: int
    output_bits: int
    assoc: int = 1
    nbanks: int = 1
    cell_tech: CellTech = CellTech.SRAM
    periph_device_type: str = "hp-long-channel"
    page_bits: int | None = None
    sleep_transistors: bool = False
    max_repeater_delay_penalty: float = 0.0

    def __post_init__(self) -> None:
        # Accept a registry name for cell_tech; unknown names raise a
        # ValueError listing the registered technologies.
        object.__setattr__(self, "cell_tech", CellTech(self.cell_tech))
        if self.capacity_bits % (self.nbanks * self.output_bits * self.assoc):
            raise InfeasibleOrganization(
                "capacity must divide evenly into banks x sets x output bits"
            )

    @property
    def bits_per_bank(self) -> int:
        return self.capacity_bits // self.nbanks

    @property
    def sets_per_bank(self) -> int:
        return self.bits_per_bank // (self.output_bits * self.assoc)

    @property
    def address_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(self.sets_per_bank, 2))))


@dataclass(frozen=True)
class ArrayMetrics:
    """Complete evaluated metrics of one (spec, org) design point."""

    spec: ArraySpec
    org: OrgParams
    rows: int  #: rows per subarray
    cols: int  #: columns per subarray
    nact: int  #: subarrays activated per access
    sensed_bits: int  #: bitline pairs sensed per access
    # timing (s)
    t_access: float
    t_random_cycle: float
    t_interleave: float
    t_decode: float
    t_wordline: float
    t_bitline: float
    t_sense: float
    t_writeback: float
    t_precharge: float
    t_htree_in: float
    t_htree_out: float
    # energy (J per access)
    e_activate: float  #: row open: decode + wordline + sense (+restore)
    e_read_column: float  #: column path + data out for a read
    e_write_column: float  #: column path + data in for a write
    e_precharge: float  #: bitline restore
    # power (W)
    p_leakage: float
    p_refresh: float
    # geometry
    area: float  #: total area, all banks (m^2)
    bank_width: float
    bank_height: float
    area_efficiency: float

    @property
    def e_read_access(self) -> float:
        """Total dynamic energy of one full read access (J)."""
        return self.e_activate + self.e_read_column + self.e_precharge

    @property
    def e_write_access(self) -> float:
        return self.e_activate + self.e_write_column + self.e_precharge


def derive_geometry(spec: ArraySpec, org: OrgParams) -> OrgGeometry:
    """Derive the subarray geometry of ``(spec, org)`` from arithmetic alone.

    Performs every structural feasibility check that does not require a
    technology object -- integral rows/cols, row/col ranges, the cell
    traits' bitline sensing limit, mux divisibility, active-subarray and
    way-select counts, and page-size matching -- and raises
    :class:`InfeasibleOrganization` on the first violation.  This is the
    optimizer's cheap pre-filter: the vast majority of candidate tuples
    are rejected here without building any circuit objects.
    """
    traits = spec.cell_tech.traits
    if org.ndcm != 1 and not traits.column_mux_allowed:
        raise InfeasibleOrganization(
            f"{spec.cell_tech} senses every bitline; column muxing before "
            "the sense amps (ndcm > 1) is not possible"
        )
    rows_f = spec.sets_per_bank / (org.ndbl * org.nspd)
    cols_f = spec.output_bits * spec.assoc * org.nspd / org.ndwl
    if rows_f != int(rows_f) or cols_f != int(cols_f):
        raise InfeasibleOrganization(
            f"non-integral subarray ({rows_f} x {cols_f})"
        )
    rows, cols = int(rows_f), int(cols_f)
    if not MIN_ROWS <= rows <= MAX_ROWS:
        raise InfeasibleOrganization(f"rows {rows} out of range")
    max_cells = traits.max_bitline_cells
    if max_cells is not None and rows > max_cells:
        raise InfeasibleOrganization(
            f"{rows} cells per bitline exceeds {spec.cell_tech}'s "
            f"{max_cells}-cell sensing limit"
        )
    if not MIN_COLS <= cols <= MAX_COLS:
        raise InfeasibleOrganization(f"cols {cols} out of range")
    if cols % (org.ndcm * org.ndsam):
        raise InfeasibleOrganization("mux degrees must divide columns")

    # Output bits produced by one activated subarray.  Non-power-of-two
    # associativities leave the last active subarray partially used, so
    # the count rounds up rather than requiring exact tiling.
    out_per_sub = cols // (org.ndcm * org.ndsam)
    if out_per_sub == 0:
        raise InfeasibleOrganization("mux degree consumes all columns")
    nact = math.ceil(spec.output_bits / out_per_sub)
    if nact > org.ndwl:
        raise InfeasibleOrganization(
            f"access needs {nact} active subarrays, bank has "
            f"{org.ndwl} per row"
        )
    # A set-associative array must be able to mux down to one way.
    if spec.assoc > 1 and org.ndcm * org.ndsam < spec.assoc:
        raise InfeasibleOrganization(
            "mux degree cannot select one way out of the set"
        )

    # Where column muxing is disallowed ndcm is already forced to 1, so
    # every bitline is sensed either way.
    sensed_per_sub = cols // org.ndcm
    sensed_bits = nact * sensed_per_sub

    if spec.page_bits is not None:
        if not traits.supports_page_mode:
            raise InfeasibleOrganization(
                f"page size applies to page-mode technologies only, "
                f"not {spec.cell_tech}"
            )
        if sensed_bits != spec.page_bits:
            raise InfeasibleOrganization(
                f"activation senses {sensed_bits} bits, page is "
                f"{spec.page_bits}"
            )

    return OrgGeometry(
        rows=rows,
        cols=cols,
        nact=nact,
        sensed_bits=sensed_bits,
        sense_amps_per_sub=sensed_per_sub,
    )


def prefilter_org(spec: ArraySpec, org: OrgParams) -> OrgGeometry | None:
    """Cheap structural feasibility check: geometry, or None if infeasible.

    Candidates rejected here would also be rejected by
    :func:`build_organization`; passing is necessary but not sufficient
    (electrical checks such as the DRAM sense-signal margin still run at
    build time).
    """
    try:
        return derive_geometry(spec, org)
    except InfeasibleOrganization:
        return None


class EvalCache:
    """Cross-candidate memoization for one technology node.

    Many partitioning tuples share the same ``(rows, cols)`` subarray and
    the same H-tree design inputs; caching those designs makes the sweep
    cost proportional to the number of *distinct* circuit problems rather
    than the number of candidates.  Safe to share across every solve at
    one node (keys carry cell technology, periphery, and node); results
    are bit-identical to uncached construction because the same frozen
    objects perform the same computations.
    """

    def __init__(self) -> None:
        self._subarrays: dict[tuple, Subarray] = {}
        self._htrees: dict[tuple, HTree] = {}
        self.subarray_hits = 0
        self.subarray_misses = 0
        self.htree_hits = 0
        self.htree_misses = 0

    def subarray(
        self, tech: Technology, spec: ArraySpec, rows: int, cols: int
    ) -> Subarray:
        key = (
            rows,
            cols,
            spec.cell_tech,
            spec.periph_device_type,
            tech.node_nm,
        )
        sub = self._subarrays.get(key)
        if sub is not None:
            self.subarray_hits += 1
            return sub
        self.subarray_misses += 1
        sub = Subarray(
            tech=tech,
            cell=tech.cell(spec.cell_tech, spec.periph_device_type),
            periph=tech.device(spec.periph_device_type),
            rows=rows,
            cols=cols,
        )
        self._subarrays[key] = sub
        return sub

    def htree(self, key: tuple, build) -> HTree:
        tree = self._htrees.get(key)
        if tree is not None:
            self.htree_hits += 1
            return tree
        self.htree_misses += 1
        tree = build()
        self._htrees[key] = tree
        return tree


def build_organization(
    tech: Technology,
    spec: ArraySpec,
    org: OrgParams,
    cache: EvalCache | None = None,
    geometry: OrgGeometry | None = None,
) -> ArrayMetrics:
    """Evaluate one partitioning tuple; raises InfeasibleOrganization.

    ``cache`` enables cross-candidate reuse of subarray and H-tree
    designs; ``geometry`` skips re-deriving a pre-filtered geometry.
    Both are optional and change nothing about the returned numbers.
    """
    return _Builder(tech, spec, org, cache=cache, geometry=geometry).metrics()


class _Builder:
    """Derives and composes all metrics for one design point."""

    def __init__(
        self,
        tech: Technology,
        spec: ArraySpec,
        org: OrgParams,
        cache: EvalCache | None = None,
        geometry: OrgGeometry | None = None,
    ):
        self.tech = tech
        self.spec = spec
        self.org = org
        self.cache = cache
        self.periph = tech.device(spec.periph_device_type)
        self.cell = tech.cell(spec.cell_tech, spec.periph_device_type)
        self.traits = spec.cell_tech.traits
        if geometry is None:
            geometry = derive_geometry(spec, org)
        self.rows = geometry.rows
        self.cols = geometry.cols
        self.nact = geometry.nact
        self.sensed_bits = geometry.sensed_bits
        self.sense_amps_per_sub = geometry.sense_amps_per_sub

        if cache is not None:
            self.subarray = cache.subarray(tech, spec, self.rows, self.cols)
        else:
            self.subarray = Subarray(
                tech=self.tech,
                cell=self.cell,
                periph=self.periph,
                rows=self.rows,
                cols=self.cols,
            )
        self.subarray.check_sense_feasible()

        self.num_mats = mats_in_bank(org.ndwl, org.ndbl)
        self.bank_width = org.ndwl * self.subarray.width
        self.bank_height = org.ndbl * self.subarray.height

    # ------------------------------------------------------------------ #

    @cached_property
    def _htree_wire(self):
        # The bank-routing wire plane is a trait: commodity DRAM
        # processes have few, slow metal layers (the cost structure that
        # makes them dense), so bank routing runs on the intermediate
        # plane; logic processes route on fast top metal.
        return self.tech.htree_wire(self.spec.cell_tech)

    def _design_htree(self, num_wires: int) -> HTree:
        build = lambda: design_htree(  # noqa: E731
            self.tech,
            self.periph,
            self.bank_width,
            self.bank_height,
            num_wires=num_wires,
            num_mats=self.num_mats,
            max_repeater_delay_penalty=self.spec.max_repeater_delay_penalty,
            wire=self._htree_wire,
        )
        if self.cache is None:
            return build()
        key = (
            num_wires,
            self.num_mats,
            self.bank_width,
            self.bank_height,
            self.spec.max_repeater_delay_penalty,
            self._htree_wire.name,
            self.spec.periph_device_type,
            self.tech.node_nm,
        )
        return self.cache.htree(key, build)

    @cached_property
    def htree_in(self) -> HTree:
        # Global circuitry uses the same device family as the periphery
        # (paper Table 1: long-channel HP for SRAM/LP-DRAM, LSTP for
        # COMM-DRAM).
        return self._design_htree(self.spec.address_bits + _CONTROL_WIRES)

    @cached_property
    def htree_out(self) -> HTree:
        return self._design_htree(self.spec.output_bits)

    # ------------------------------------------------------------------ #

    def metrics(self) -> ArrayMetrics:
        sub = self.subarray
        spec, org = self.spec, self.org

        t_colmux = _COLMUX_FO4 * self.periph.fo4
        t_access = (
            self.htree_in.delay
            + sub.decoder.delay
            + sub.t_bitline
            + sub.t_sense
            + t_colmux
            + self.htree_out.delay
        )
        t_random_cycle = (
            sub.decoder.wordline_delay
            + sub.t_bitline
            + sub.t_sense
            + sub.t_writeback
            + sub.t_precharge
        )
        t_interleave = max(
            self.htree_in.occupancy,
            self.htree_out.occupancy,
            t_colmux,
        )

        # --- energies ---------------------------------------------------
        e_wordlines = self.nact * sub.e_wordline
        e_sense = sub.e_read_bitlines(self.sensed_bits)
        e_activate = e_wordlines + e_sense + self.htree_in.energy()
        e_colmux = (
            spec.output_bits
            * self.periph.c_gate
            * 8.0
            * self.tech.feature_size
            * self.periph.vdd**2
        )
        e_read_column = e_colmux + self.htree_out.energy()
        e_write_column = (
            e_colmux
            + self.htree_out.energy()
            + sub.e_write_bitlines(spec.output_bits)
        )
        # Precharge dissipates roughly the sense-restore charge again for
        # half-VDD-equalized technologies; otherwise it restores only the
        # small read swing.  The fraction is a trait.
        swing_fraction = self.traits.precharge_swing_fraction
        e_precharge = (
            self.sensed_bits
            * sub.bitline_capacitance
            * self.cell.vdd_cell**2
            * swing_fraction
            * 0.5
        )
        scale = 1.0 + _CONTROL_ENERGY_FRACTION
        e_activate *= scale
        e_read_column *= scale
        e_write_column *= scale
        e_precharge *= scale

        # --- leakage ------------------------------------------------------
        num_subs = org.ndwl * org.ndbl
        leak_per_sub = sub.leakage(self.sense_amps_per_sub)
        if spec.sleep_transistors:
            active_fraction = self.nact / num_subs
            leak_array = leak_per_sub * num_subs * (
                active_fraction + 0.5 * (1.0 - active_fraction)
            )
        else:
            leak_array = leak_per_sub * num_subs
        leak_bank = (
            leak_array + self.htree_in.leakage + self.htree_out.leakage
        ) * (1.0 + _CONTROL_LEAKAGE_FRACTION)
        p_leakage = leak_bank * spec.nbanks

        # --- refresh ------------------------------------------------------
        p_refresh = 0.0
        if self.traits.needs_refresh:
            assert self.cell.retention_time is not None
            refresh_ops_per_bank = self.rows * org.ndbl * org.ndwl / self.nact
            e_refresh_op = (e_activate + e_precharge)
            p_refresh = (
                spec.nbanks
                * refresh_ops_per_bank
                * e_refresh_op
                / self.cell.retention_time
            )

        # --- area -----------------------------------------------------------
        subarrays_area = num_subs * sub.area * 1.02  # mat control strips
        wiring = self.htree_in.wiring_area + self.htree_out.wiring_area
        bank_area = (subarrays_area + 0.5 * wiring) * (1 + _BANK_AREA_OVERHEAD)
        total_area = bank_area * spec.nbanks
        cell_area = num_subs * sub.cell_area * spec.nbanks

        return ArrayMetrics(
            spec=spec,
            org=org,
            rows=self.rows,
            cols=self.cols,
            nact=self.nact,
            sensed_bits=self.sensed_bits,
            t_access=t_access,
            t_random_cycle=t_random_cycle,
            t_interleave=t_interleave,
            t_decode=sub.decoder.delay,
            t_wordline=sub.decoder.wordline_delay,
            t_bitline=sub.t_bitline,
            t_sense=sub.t_sense,
            t_writeback=sub.t_writeback,
            t_precharge=sub.t_precharge,
            t_htree_in=self.htree_in.delay,
            t_htree_out=self.htree_out.delay,
            e_activate=e_activate,
            e_read_column=e_read_column,
            e_write_column=e_write_column,
            e_precharge=e_precharge,
            p_leakage=p_leakage,
            p_refresh=p_refresh,
            area=total_area,
            bank_width=self.bank_width,
            bank_height=self.bank_height,
            area_efficiency=cell_area / total_area,
        )


def _org_grid(
    spec: ArraySpec,
    max_ndwl: int = 64,
    max_ndbl: int = 64,
    nspd_values: tuple[float, ...] | None = None,
    max_mux: int | None = None,
) -> tuple[tuple, tuple, tuple, tuple, tuple]:
    """The (ndwl, ndbl, nspd, ndcm, ndsam) axes of the candidate grid.

    Wide-page main-memory parts (page_bits set) need far more row
    widening (nspd) and output muxing than caches, because a whole page
    is sensed but only a few dozen bits leave the chip per column access.
    """
    traits = spec.cell_tech.traits
    if nspd_values is None:
        nspd_values = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)
        if spec.page_bits is not None:
            # Row widening must reach page/output (a whole page on one
            # subarray row) and beyond: large chips also need wide rows
            # just to keep bitlines under the bitline sensing limit.
            widening = max(2, spec.page_bits // spec.output_bits) * 16
            nspd_values += tuple(
                float(2**k) for k in range(4, widening.bit_length())
            )
    if max_mux is None:
        max_mux = 64
        if spec.page_bits is not None:
            max_mux = max(64, spec.page_bits // spec.output_bits * 2)
    ndcms = _powers_up_to(max_mux) if traits.column_mux_allowed else (1,)
    return (
        _powers_up_to(max_ndwl),
        _powers_up_to(max_ndbl),
        tuple(nspd_values),
        ndcms,
        _powers_up_to(max_mux),
    )


def org_grid_size(
    spec: ArraySpec,
    max_ndwl: int = 64,
    max_ndbl: int = 64,
    nspd_values: tuple[float, ...] | None = None,
    max_mux: int | None = None,
) -> int:
    """Number of candidate tuples :func:`enumerate_orgs` would produce."""
    size = 1
    for axis in _org_grid(spec, max_ndwl, max_ndbl, nspd_values, max_mux):
        size *= len(axis)
    return size


def enumerate_orgs(
    spec: ArraySpec,
    max_ndwl: int = 64,
    max_ndbl: int = 64,
    nspd_values: tuple[float, ...] | None = None,
    max_mux: int | None = None,
) -> list[OrgParams]:
    """All structurally plausible partitioning tuples for ``spec``.

    Infeasible tuples are cheap to reject later; this enumeration only
    enforces the power-of-two structure and mux applicability.  Prefer
    :func:`enumerate_feasible_orgs` for sweeps: it fuses the structural
    pre-filter into the loop nest.
    """
    ndwls, ndbls, nspds, ndcms, ndsams = _org_grid(
        spec, max_ndwl, max_ndbl, nspd_values, max_mux
    )
    candidates = []
    for ndwl in ndwls:
        for ndbl in ndbls:
            for nspd in nspds:
                for ndcm in ndcms:
                    for ndsam in ndsams:
                        candidates.append(
                            OrgParams(ndwl, ndbl, nspd, ndcm, ndsam)
                        )
    return candidates


def enumerate_feasible_orgs(
    spec: ArraySpec,
    max_ndwl: int = 64,
    max_ndbl: int = 64,
    nspd_values: tuple[float, ...] | None = None,
    max_mux: int | None = None,
):
    """Yield ``(OrgParams, OrgGeometry)`` for structurally feasible tuples.

    Exactly equivalent to filtering :func:`enumerate_orgs` through
    :func:`prefilter_org` -- same candidates, same order (which matters:
    ranking ties break by enumeration order) -- but the row/column checks
    are hoisted out of the mux loops and :class:`OrgParams` objects are
    only built for survivors, so the whole grid scan costs a few
    milliseconds.  The feasibility expressions mirror
    :func:`derive_geometry` line for line.
    """
    ndwls, ndbls, nspds, ndcms, ndsams = _org_grid(
        spec, max_ndwl, max_ndbl, nspd_values, max_mux
    )
    traits = spec.cell_tech.traits
    max_cells = traits.max_bitline_cells
    paged = traits.supports_page_mode
    sets_per_bank = spec.sets_per_bank
    row_bits = spec.output_bits * spec.assoc
    for ndwl in ndwls:
        for ndbl in ndbls:
            for nspd in nspds:
                rows_f = sets_per_bank / (ndbl * nspd)
                cols_f = row_bits * nspd / ndwl
                if rows_f != int(rows_f) or cols_f != int(cols_f):
                    continue
                rows, cols = int(rows_f), int(cols_f)
                if not MIN_ROWS <= rows <= MAX_ROWS:
                    continue
                if max_cells is not None and rows > max_cells:
                    continue
                if not MIN_COLS <= cols <= MAX_COLS:
                    continue
                for ndcm in ndcms:
                    for ndsam in ndsams:
                        mux = ndcm * ndsam
                        if cols % mux:
                            continue
                        out_per_sub = cols // mux
                        if out_per_sub == 0:
                            continue
                        nact = math.ceil(spec.output_bits / out_per_sub)
                        if nact > ndwl:
                            continue
                        if spec.assoc > 1 and mux < spec.assoc:
                            continue
                        sensed_per_sub = cols // ndcm
                        sensed_bits = nact * sensed_per_sub
                        if spec.page_bits is not None and (
                            not paged or sensed_bits != spec.page_bits
                        ):
                            continue
                        yield (
                            OrgParams(ndwl, ndbl, nspd, ndcm, ndsam),
                            OrgGeometry(
                                rows=rows,
                                cols=cols,
                                nact=nact,
                                sensed_bits=sensed_bits,
                                sense_amps_per_sub=sensed_per_sub,
                            ),
                        )


def survivor_arrays(
    spec: ArraySpec,
    max_ndwl: int = 64,
    max_ndbl: int = 64,
    nspd_values: tuple[float, ...] | None = None,
    max_mux: int | None = None,
):
    """Raw survivor arrays of the vectorized structural pre-filter.

    Evaluates every feasibility expression of :func:`derive_geometry` --
    integral rows/columns, row/column ranges, the 512-row DRAM bitline
    sensing limit, mux divisibility, active-subarray and way-select
    counts, page matching -- as one numpy batch over the full
    (ndwl, ndbl, nspd, ndcm, ndsam) grid, instead of per-candidate
    Python calls, and returns the surviving candidates as ten aligned
    arrays ``(ndwl, ndbl, nspd, ndcm, ndsam, rows, cols, nact,
    sensed_bits, sense_amps_per_sub)`` in enumeration order (the order
    ranking ties break by).  Returns ``None`` when numpy is unavailable;
    callers fall back to :func:`enumerate_feasible_orgs`.

    The arithmetic is float64/int64, the same IEEE-754 operations the
    scalar path performs, so the integrality tests agree bit for bit.
    """
    if _np is None:
        return None
    axes = _org_grid(spec, max_ndwl, max_ndbl, nspd_values, max_mux)
    ndwls, ndbls, nspds, ndcms, ndsams = axes
    traits = spec.cell_tech.traits
    # C-order ravel of an 'ij' meshgrid iterates the last axis fastest,
    # matching the nested loop order of enumerate_feasible_orgs.
    w, b, s, c, m = (
        g.ravel()
        for g in _np.meshgrid(
            _np.asarray(ndwls, dtype=_np.int64),
            _np.asarray(ndbls, dtype=_np.int64),
            _np.asarray(nspds, dtype=_np.float64),
            _np.asarray(ndcms, dtype=_np.int64),
            _np.asarray(ndsams, dtype=_np.int64),
            indexing="ij",
        )
    )
    rows_f = spec.sets_per_bank / (b * s)
    cols_f = spec.output_bits * spec.assoc * s / w
    ok = (rows_f == _np.floor(rows_f)) & (cols_f == _np.floor(cols_f))
    # Non-integral entries are already masked out; clamp them to an
    # in-range value so the integer conversion cannot overflow.
    rows = _np.where(ok, rows_f, MIN_ROWS).astype(_np.int64)
    cols = _np.where(ok, cols_f, MIN_COLS).astype(_np.int64)
    ok &= (rows >= MIN_ROWS) & (rows <= MAX_ROWS)
    if traits.max_bitline_cells is not None:
        ok &= rows <= traits.max_bitline_cells
    ok &= (cols >= MIN_COLS) & (cols <= MAX_COLS)
    mux = c * m
    ok &= cols % mux == 0
    out_per_sub = cols // mux
    ok &= out_per_sub > 0
    nact = -(-spec.output_bits // _np.maximum(out_per_sub, 1))
    ok &= nact <= w
    if spec.assoc > 1:
        ok &= mux >= spec.assoc
    sensed_per_sub = cols // c
    sensed_bits = nact * sensed_per_sub
    if spec.page_bits is not None:
        if not traits.supports_page_mode:
            ok &= False
        else:
            ok &= sensed_bits == spec.page_bits
    idx = _np.nonzero(ok)[0]
    return (
        w[idx],
        b[idx],
        s[idx],
        c[idx],
        m[idx],
        rows[idx],
        cols[idx],
        nact[idx],
        sensed_bits[idx],
        sensed_per_sub[idx],
    )


def prefilter_grid(
    spec: ArraySpec,
    max_ndwl: int = 64,
    max_ndbl: int = 64,
    nspd_values: tuple[float, ...] | None = None,
    max_mux: int | None = None,
) -> list[tuple[OrgParams, OrgGeometry]]:
    """Vectorized structural pre-filter over the entire candidate grid.

    Thin object-materializing wrapper over :func:`survivor_arrays`:
    returns exactly what ``list(enumerate_feasible_orgs(spec, ...))``
    returns -- the same survivors, in the same enumeration order, with
    the same geometries -- but computed as one numpy batch.  Falls back
    to the scalar enumeration when numpy is unavailable.
    """
    arrays = survivor_arrays(spec, max_ndwl, max_ndbl, nspd_values, max_mux)
    if arrays is None:
        return list(
            enumerate_feasible_orgs(
                spec, max_ndwl, max_ndbl, nspd_values, max_mux
            )
        )
    w, b, s, c, m, rows, cols, nact, sensed_bits, sensed_per_sub = arrays
    return [
        (
            OrgParams(int(w[i]), int(b[i]), float(s[i]), int(c[i]), int(m[i])),
            OrgGeometry(
                rows=int(rows[i]),
                cols=int(cols[i]),
                nact=int(nact[i]),
                sensed_bits=int(sensed_bits[i]),
                sense_amps_per_sub=int(sensed_per_sub[i]),
            ),
        )
        for i in range(len(w))
    ]


def _powers_up_to(limit: int) -> tuple[int, ...]:
    powers = []
    value = 1
    while value <= limit:
        powers.append(value)
        value *= 2
    return tuple(powers)
