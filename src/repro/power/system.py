"""System power and energy-delay product (paper Figure 5(b)).

Core power follows the paper's scaling recipe: the 90 nm Niagara's 63 W is
scaled to 32 nm assuming linear capacitance scaling, a 1.2 GHz to 2 GHz
clock increase, a 1.2 V to 0.9 V supply reduction, and a 40 % leakage
share, then adjusted for the eight 4-way SIMD FPUs (the 90 nm Niagara had
a single shared FPU).  The paper arrives at 22.3 W for the bottom die.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.hierarchy import PowerBreakdown

#: Published 90 nm Niagara chip power (W) and operating point.
NIAGARA_POWER_W = 63.0
NIAGARA_NODE_NM = 90.0
NIAGARA_CLOCK_HZ = 1.2e9
NIAGARA_VDD = 1.2

#: Fraction of Niagara power attributed to leakage (paper assumption).
NIAGARA_LEAKAGE_FRACTION = 0.40

#: Power of one 32 nm 4-way SIMD FPU under load (W); eight cores carry one
#: each versus the single shared FPU of the original chip.
FPU_POWER_32NM = 0.37
NUM_FPUS = 8


def scaled_core_power(
    node_nm: float = 32.0,
    clock_hz: float = 2e9,
    vdd: float = 0.9,
) -> float:
    """Bottom-die core power at the target node via the paper's recipe."""
    dynamic = NIAGARA_POWER_W * (1.0 - NIAGARA_LEAKAGE_FRACTION)
    leakage = NIAGARA_POWER_W * NIAGARA_LEAKAGE_FRACTION

    cap_scale = node_nm / NIAGARA_NODE_NM  # linear capacitance scaling
    dynamic_scaled = (
        dynamic
        * cap_scale
        * (clock_hz / NIAGARA_CLOCK_HZ)
        * (vdd / NIAGARA_VDD) ** 2
    )
    # Leakage: device count shrinks with capacitance scaling; leakage
    # power per device tracks the supply.
    leakage_scaled = leakage * cap_scale * (vdd / NIAGARA_VDD)
    return dynamic_scaled + leakage_scaled + NUM_FPUS * FPU_POWER_32NM


#: The paper's quoted bottom-die core power (W).
PAPER_CORE_POWER_W = 22.3


@dataclass(frozen=True)
class SystemPower:
    """Figure 5(b): core vs memory-hierarchy power and energy-delay."""

    core: float  #: W
    memory_hierarchy: PowerBreakdown
    execution_time: float  #: s

    @property
    def total(self) -> float:
        return self.core + self.memory_hierarchy.total

    @property
    def energy(self) -> float:
        return self.total * self.execution_time

    @property
    def energy_delay(self) -> float:
        """Energy-delay product (J*s)."""
        return self.energy * self.execution_time


def energy_delay_ratio(config: SystemPower, baseline: SystemPower) -> float:
    """Normalized system energy-delay (paper Figure 5(b), nol3 = 1.0)."""
    return config.energy_delay / baseline.energy_delay
