"""Capture the golden-equivalence baseline for the triad technologies.

Writes ``tests/data/golden_triad.json``: bit-exact solved numbers for
representative SRAM, LP-DRAM, and COMM-DRAM solves (including the
paper's Table-3 rows and the DDR3 validation part), recorded *before*
the technology-registry refactor.  The regression suite in
``tests/core/test_golden_triad.py`` re-solves the same inputs and
asserts field-for-field float equality against this file, at several
job counts -- proving a refactor changed no numbers.

JSON round-trips are exact: ``json`` emits the shortest repr of each
float, which parses back to the same IEEE-754 value.

Usage::

    PYTHONPATH=src python tools/capture_golden.py
"""

from __future__ import annotations

import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.cacti import solve  # noqa: E402
from repro.core.config import (  # noqa: E402
    DENSITY_OPTIMIZED,
    ENERGY_DELAY_OPTIMIZED,
    MemorySpec,
    OptimizationTarget,
)
from repro.core.solvecache import metrics_to_dict  # noqa: E402
from repro.study.table3 import solve_table3  # noqa: E402
from repro.tech.cells import CellTech  # noqa: E402
from repro.validation.compare import validate_ddr3  # noqa: E402

OUT = Path(__file__).resolve().parent.parent / "tests" / "data"

#: The recorded solve grid: (id, MemorySpec kwargs, target name).
#: ``cell_tech`` / ``tag_cell_tech`` are registry names, resolved at
#: solve time, so the capture script and the regression test build the
#: exact same specs whatever the CellTech representation is.
SOLVE_GRID = [
    (
        "sram-2m",
        dict(capacity_bytes=2 << 20, associativity=8, cell_tech="sram"),
        "balanced",
    ),
    (
        "lp-dram-4m",
        dict(capacity_bytes=4 << 20, associativity=8, cell_tech="lp-dram"),
        "balanced",
    ),
    (
        "comm-dram-16m",
        dict(
            capacity_bytes=16 << 20,
            associativity=16,
            nbanks=4,
            cell_tech="comm-dram",
        ),
        "density",
    ),
    (
        "mixed-comm-sram-tags",
        dict(
            capacity_bytes=8 << 20,
            associativity=8,
            cell_tech="comm-dram",
            tag_cell_tech="sram",
        ),
        "balanced",
    ),
    (
        "sram-78nm",
        dict(capacity_bytes=1 << 20, associativity=8, node_nm=78.0,
             cell_tech="sram"),
        "energy-delay",
    ),
]

TARGETS = {
    "balanced": OptimizationTarget(),
    "density": DENSITY_OPTIMIZED,
    "energy-delay": ENERGY_DELAY_OPTIMIZED,
}


def build_spec(kwargs: dict) -> MemorySpec:
    kwargs = dict(kwargs)
    kwargs["cell_tech"] = CellTech(kwargs["cell_tech"])
    if "tag_cell_tech" in kwargs:
        kwargs["tag_cell_tech"] = CellTech(kwargs["tag_cell_tech"])
    return MemorySpec(**kwargs)


def capture_solves() -> list[dict]:
    records = []
    for solve_id, spec_kwargs, target_name in SOLVE_GRID:
        solution = solve(build_spec(spec_kwargs), TARGETS[target_name])
        records.append({
            "id": solve_id,
            "spec": spec_kwargs,
            "target": target_name,
            "data": metrics_to_dict(solution.data),
            "tag": (
                metrics_to_dict(solution.tag)
                if solution.tag is not None else None
            ),
        })
    return records


def capture_table3() -> dict:
    return {
        name: dataclasses.asdict(row)
        for name, row in solve_table3().items()
    }


def capture_ddr3() -> dict:
    v = validate_ddr3()
    timing = dataclasses.asdict(v.solution.timing)
    energies = dataclasses.asdict(v.solution.energies)
    return {
        "errors": dict(v.errors),
        "timing": timing,
        "energies": energies,
        "area_efficiency": v.solution.area_efficiency,
    }


def main() -> None:
    OUT.mkdir(parents=True, exist_ok=True)
    payload = {
        "solves": capture_solves(),
        "table3": capture_table3(),
        "ddr3": capture_ddr3(),
    }
    path = OUT / "golden_triad.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
