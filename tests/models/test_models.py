"""Tests for the aggregate model views (breakdowns, leakage, DDR grades)."""

import pytest

from repro.array.organization import ArraySpec, OrgParams, build_organization
from repro.models.area import area_breakdown
from repro.models.delay import delay_breakdown
from repro.models.energy import dynamic_power, energy_breakdown
from repro.models.leakage import (
    rescale_leakage,
    sleep_transistor_leakage,
    temperature_factor,
)
from repro.models.refresh import refresh_power, refresh_schedule
from repro.models.timing_dram import (
    DDR3_1066,
    DDR4_3200,
    quantize,
    to_main_memory_timing,
)
from repro.array.mainmem import MainMemoryTiming
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)


@pytest.fixture(scope="module")
def metrics():
    spec = ArraySpec(
        capacity_bits=8 * (1 << 20),
        output_bits=512,
        assoc=8,
        cell_tech=CellTech.SRAM,
        periph_device_type="hp-long-channel",
    )
    return build_organization(
        TECH, spec, OrgParams(ndwl=4, ndbl=8, nspd=1.0, ndcm=8, ndsam=1)
    )


class TestBreakdowns:
    def test_area_components_sum_to_total(self, metrics):
        b = area_breakdown(TECH, metrics)
        parts = (b.cells + b.wordline_drivers_and_decode + b.sense_amps
                 + b.htree_wiring + b.overhead)
        assert parts == pytest.approx(b.total, rel=0.01)
        assert abs(sum(b.fractions().values()) - 1.0) < 0.02

    def test_area_report_renders(self, metrics):
        assert "mm^2" in area_breakdown(TECH, metrics).report()

    def test_delay_breakdown_consistent(self, metrics):
        d = delay_breakdown(metrics)
        assert d.access_time == metrics.t_access
        assert d.access_time >= d.htree_in + d.htree_out
        assert "ns" in d.report()

    def test_energy_breakdown_consistent(self, metrics):
        e = energy_breakdown(metrics)
        assert e.total_read == pytest.approx(
            e.activate + e.read_column + e.precharge
        )
        assert "pJ" in e.report()

    def test_dynamic_power_linear_in_rate(self, metrics):
        assert dynamic_power(metrics, 2e9) == pytest.approx(
            2 * dynamic_power(metrics, 1e9)
        )


class TestLeakageUtilities:
    def test_temperature_factor_anchors(self):
        assert temperature_factor(300.0) == pytest.approx(1.0)
        assert temperature_factor(360.0) == pytest.approx(4.0, rel=0.01)

    def test_rescale_round_trip(self):
        assert rescale_leakage(2.0, 360.0) == pytest.approx(2.0)
        assert rescale_leakage(2.0, 300.0) == pytest.approx(0.5)

    def test_sleep_transistors(self):
        # All mats awake: no savings; none awake: halved.
        assert sleep_transistor_leakage(1.0, 4.0) == pytest.approx(4.0)
        assert sleep_transistor_leakage(0.0, 4.0) == pytest.approx(2.0)


class TestRefreshUtilities:
    def test_schedule_interval(self):
        s = refresh_schedule(
            total_rows=8192, rows_per_operation=1, retention_time=64e-3,
            row_cycle_time=50e-9, nbanks=8,
        )
        assert s.refresh_interval == pytest.approx(64e-3 / 1024)
        assert 0 < s.bandwidth_overhead < 0.01

    def test_lp_dram_refresh_much_denser(self):
        lp = refresh_schedule(8192, 1, 0.12e-3, 20e-9, 8)
        comm = refresh_schedule(8192, 1, 64e-3, 50e-9, 8)
        assert lp.refresh_rate > 100 * comm.refresh_rate

    def test_refresh_power_formula(self):
        assert refresh_power(1000, 1e-9, 64e-3) == pytest.approx(
            1000 * 1e-9 / 64e-3
        )


class TestSpeedGrades:
    def test_grade_clocks(self):
        assert DDR3_1066.clock_period == pytest.approx(1.876e-9, rel=0.01)
        assert DDR4_3200.clock_period == pytest.approx(0.625e-9)

    def test_quantize_rounds_up(self):
        timing = MainMemoryTiming(
            t_rcd=13.1e-9, t_cas=13.1e-9, t_rp=13.1e-9, t_ras=36e-9,
            t_rc=49.1e-9, t_rrd=7.5e-9, t_burst=7.5e-9,
        )
        sheet = quantize(timing, DDR3_1066)
        assert sheet.cl == 7  # the DDR3-1066 CL7 grade
        assert sheet.t_cas >= timing.t_cas

    def test_round_trip(self):
        timing = MainMemoryTiming(
            t_rcd=13e-9, t_cas=13e-9, t_rp=13e-9, t_ras=36e-9, t_rc=49e-9,
            t_rrd=7.5e-9, t_burst=7.5e-9,
        )
        sheet = quantize(timing, DDR4_3200)
        back = to_main_memory_timing(sheet, burst_length=8)
        assert back.t_rcd >= timing.t_rcd
        assert back.t_burst == pytest.approx(8 / 3200e6)

    def test_label(self):
        timing = MainMemoryTiming(13e-9, 13e-9, 13e-9, 36e-9, 49e-9,
                                  7.5e-9, 7.5e-9)
        assert "DDR3-1066" in quantize(timing, DDR3_1066).label()
