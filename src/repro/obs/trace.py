"""Nested tracing spans for the solve pipeline.

A :class:`Tracer` records wall-clock spans as the pipeline runs:
``span("solve")`` > ``span("prefilter")`` > ``span("build")`` and so on,
each with a name, a duration, and free-form attributes (candidate
counts, spec sizes, pids).  Tracing is pure observation -- it reads the
clock around existing work and never touches a solved number.

Two export formats:

* :meth:`Tracer.to_dicts` / :meth:`Tracer.write_json` -- a flat list of
  span dicts with explicit ``id``/``parent`` links, easy to assert on in
  tests and to post-process;
* :meth:`Tracer.chrome_trace` / :meth:`Tracer.write_chrome` -- the
  Chrome trace-event format (``chrome://tracing``, Perfetto), one
  complete ``"ph": "X"`` event per span, nesting inferred from time
  containment per ``pid``/``tid`` track.

Worker processes cannot share a tracer object, so they record spans into
their *own* tracer and ship :meth:`Tracer.export_payload` home inside
the stats payload dicts the parallel engine already returns.  The parent
calls :meth:`Tracer.absorb_payload`, which re-bases the worker's span
timestamps onto the parent's clock (via the wall-clock epochs both sides
record) while keeping the worker's pid, so the merged trace shows each
process on its own track at the correct offset.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Span:
    """One completed (or still-open) span of work."""

    name: str
    start_s: float  #: seconds since the tracer's epoch
    duration_s: float = 0.0  #: filled when the span closes
    pid: int = 0
    tid: int = 1
    id: int = 0
    parent: int | None = None  #: id of the enclosing span, if any
    depth: int = 0  #: nesting depth (0 = top level)
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "id": self.id,
            "parent": self.parent,
            "depth": self.depth,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Records nested spans against one process-local clock.

    The span clock is ``time.perf_counter`` (monotonic, high
    resolution); ``epoch_wall`` (``time.time`` at construction) anchors
    it to wall-clock time so traces from different processes can be
    stitched onto one timeline.
    """

    def __init__(self):
        self.pid = os.getpid()
        self.epoch_wall = time.time()
        self._epoch = time.perf_counter()
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.spans)

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a nested span; yields the mutable :class:`Span` record.

        The record's ``duration_s`` is finalized when the context exits
        (exception or not), and attributes may be added to
        ``span.attrs`` while it is open.
        """
        parent = self._stack[-1] if self._stack else None
        record = Span(
            name=name,
            start_s=time.perf_counter() - self._epoch,
            pid=self.pid,
            id=self._next_id,
            parent=parent.id if parent is not None else None,
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        try:
            yield record
        finally:
            record.duration_s = (
                time.perf_counter() - self._epoch - record.start_s
            )
            self._stack.pop()
            self.spans.append(record)

    # ------------------------------------------------------------------ #
    # Worker stitching

    def export_payload(self) -> dict:
        """Picklable snapshot of this tracer for shipping to a parent."""
        return {
            "pid": self.pid,
            "epoch_wall": self.epoch_wall,
            "spans": [s.to_dict() for s in self.spans],
        }

    def absorb_payload(self, payload: dict | None) -> None:
        """Stitch a worker tracer's payload into this trace.

        Worker span ids are re-numbered into this tracer's id space
        (preserving their parent links), timestamps are shifted by the
        difference of the wall-clock epochs so the worker's work appears
        at the right offset on the parent timeline, and the worker's pid
        is kept so each process renders as its own track.
        """
        if not payload:
            return
        offset = payload.get("epoch_wall", self.epoch_wall) - self.epoch_wall
        id_map: dict[int, int] = {}
        for d in payload.get("spans", ()):
            id_map[d["id"]] = self._next_id
            self._next_id += 1
        for d in payload.get("spans", ()):
            self.spans.append(
                Span(
                    name=d["name"],
                    start_s=d["start_s"] + offset,
                    duration_s=d["duration_s"],
                    pid=d.get("pid", payload.get("pid", 0)),
                    tid=d.get("tid", 1),
                    id=id_map[d["id"]],
                    parent=id_map.get(d["parent"]),
                    depth=d.get("depth", 0),
                    attrs=dict(d.get("attrs") or {}),
                )
            )

    # ------------------------------------------------------------------ #
    # Export

    def to_dicts(self) -> list[dict]:
        """All recorded spans as plain dicts, sorted by start time."""
        return [s.to_dict() for s in sorted(self.spans, key=_sort_key)]

    def chrome_trace(self) -> dict:
        """The trace in Chrome trace-event ("Trace Event") format.

        Loadable directly in ``chrome://tracing`` or Perfetto: one
        complete event (``"ph": "X"``) per span with microsecond
        timestamps, grouped into per-process tracks by pid.
        """
        events = [
            {
                "name": s.name,
                "cat": "repro",
                "ph": "X",
                "ts": s.start_s * 1e6,
                "dur": s.duration_s * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": dict(s.attrs),
            }
            for s in sorted(self.spans, key=_sort_key)
        ]
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "tool": "repro (CACTI-D reproduction)",
                "root_pid": self.pid,
                "epoch_wall": self.epoch_wall,
            },
        }

    def write_chrome(self, path: str | os.PathLike) -> None:
        """Write the Chrome trace-event JSON file."""
        Path(path).write_text(json.dumps(self.chrome_trace(), indent=1))

    def write_json(self, path: str | os.PathLike) -> None:
        """Write the flat span-dict list as JSON."""
        Path(path).write_text(json.dumps(self.to_dicts(), indent=1))


def _sort_key(span: Span) -> tuple:
    # Start-time order with depth as tie-break: a parent sorts before a
    # child that starts on the same clock reading.
    return (span.start_s, span.depth, span.id)
