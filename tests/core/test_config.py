"""Unit tests for the user-facing specs and optimizer targets."""

import pytest

from repro.core.config import (
    DEFAULT_PERIPHERY,
    DENSITY_OPTIMIZED,
    ENERGY_DELAY_OPTIMIZED,
    AccessMode,
    MemorySpec,
    OptimizationTarget,
)
from repro.tech.cells import CellTech


class TestMemorySpec:
    def test_defaults(self):
        spec = MemorySpec(capacity_bytes=1 << 20)
        assert spec.is_cache
        assert spec.sets == (1 << 20) // (64 * 8)
        assert spec.periphery == "hp-long-channel"

    def test_comm_dram_uses_lstp_periphery(self):
        spec = MemorySpec(capacity_bytes=1 << 20,
                          cell_tech=CellTech.COMM_DRAM)
        assert spec.periphery == "lstp"

    def test_periphery_override(self):
        spec = MemorySpec(capacity_bytes=1 << 20, periph_device_type="lop")
        assert spec.periphery == "lop"

    def test_plain_ram(self):
        spec = MemorySpec(capacity_bytes=1 << 20, associativity=None)
        assert not spec.is_cache
        assert spec.sets == (1 << 20) // 64

    def test_tag_bits_reasonable(self):
        spec = MemorySpec(capacity_bytes=1 << 20, block_bytes=64,
                          associativity=8)
        # 40-bit PA, 2048 sets, 64B blocks: 40 - 11 - 6 + 2 = 25.
        assert spec.tag_bits == 25

    def test_tag_bits_shrink_with_capacity(self):
        small = MemorySpec(capacity_bytes=1 << 20)
        large = MemorySpec(capacity_bytes=1 << 26)
        assert large.tag_bits < small.tag_bits

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            MemorySpec(capacity_bytes=0)
        with pytest.raises(ValueError):
            MemorySpec(capacity_bytes=1 << 20, nbanks=3, block_bytes=64)
        with pytest.raises(ValueError):
            MemorySpec(capacity_bytes=1 << 20, associativity=0)

    def test_tag_technology_defaults_to_data(self):
        spec = MemorySpec(capacity_bytes=1 << 20,
                          cell_tech=CellTech.LP_DRAM)
        assert spec.tag_technology is CellTech.LP_DRAM

    def test_tag_technology_override(self):
        spec = MemorySpec(
            capacity_bytes=1 << 20,
            cell_tech=CellTech.COMM_DRAM,
            tag_cell_tech=CellTech.SRAM,
        )
        assert spec.tag_technology is CellTech.SRAM

    def test_all_cell_techs_have_default_periphery(self):
        assert set(DEFAULT_PERIPHERY) == set(CellTech)


class TestOptimizationTarget:
    def test_defaults_valid(self):
        OptimizationTarget()

    def test_negative_constraints_rejected(self):
        with pytest.raises(ValueError):
            OptimizationTarget(max_area_fraction=-0.1)

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            OptimizationTarget(
                weight_dynamic=0, weight_leakage=0, weight_cycle=0,
                weight_interleave=0,
            )

    def test_presets(self):
        assert DENSITY_OPTIMIZED.max_area_fraction < 0.1
        assert ENERGY_DELAY_OPTIMIZED.max_acctime_fraction <= 0.2


class TestAccessMode:
    def test_modes(self):
        assert AccessMode.NORMAL.value == "normal"
        assert AccessMode.SEQUENTIAL.value == "sequential"
