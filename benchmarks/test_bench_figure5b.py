"""Paper Figure 5(b): system power breakdown and energy-delay product."""

from conftest import print_table

from repro.report import grouped_bar_chart
from repro.study.table3 import CONFIG_NAMES


def test_figure5b(study_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for app in study_result.app_names:
        for config in CONFIG_NAMES:
            r = study_result.get(app, config)
            rows.append([
                app, config,
                f"{r.system.core:.1f}",
                f"{r.power.total:.2f}",
                f"{r.system.total:.2f}",
                f"{study_result.normalized_energy_delay(app, config):.2f}",
            ])
    print_table(
        "Figure 5(b): system power (W) and normalized energy-delay",
        ["app", "config", "core", "mem hier", "total", "EDP (norm)"],
        rows,
    )
    chart = {
        app: {
            config: study_result.normalized_energy_delay(app, config)
            for config in CONFIG_NAMES
        }
        for app in study_result.app_names
    }
    print()
    print(grouped_bar_chart(
        chart, title="Figure 5(b) as bars: normalized energy-delay"
    ))

    s = study_result
    improvements = {
        c: s.mean_energy_delay_improvement(c) for c in CONFIG_NAMES[1:]
    }
    paper = {"cm_dram_ed": 0.33, "cm_dram_c": 0.40}
    for config, value in improvements.items():
        note = f" (paper: {paper[config]:.0%})" if config in paper else ""
        print(f"mean EDP improvement {config}: {value:+.1%}{note}")

    # Headline result: the COMM-DRAM L3s deliver the best energy-delay.
    assert improvements["cm_dram_c"] > improvements["sram"]
    assert improvements["cm_dram_ed"] > improvements["sram"]
    # LP-DRAM beats SRAM on average (paper: "the LP-DRAM L3s performed
    # better than the SRAM L3 in all metrics").
    assert improvements["lp_dram_ed"] >= improvements["sram"] - 0.02
    # The COMM-DRAM improvements land in the paper's band.
    assert 0.15 < improvements["cm_dram_c"] < 0.60
    assert 0.10 < improvements["cm_dram_ed"] < 0.60

    # Memory hierarchy is a meaningful share of system power (paper: 23 %
    # for nol3 on average).
    shares = [
        s.get(app, "nol3").power.total / s.get(app, "nol3").system.total
        for app in s.app_names
    ]
    avg_share = sum(shares) / len(shares)
    print(f"average nol3 hierarchy share of system power: {avg_share:.0%} "
          f"(paper: 23%)")
    assert 0.10 < avg_share < 0.45
