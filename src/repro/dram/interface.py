"""Embedded/stacked DRAM operational models (paper sections 2.3.4 and 3.4).

An embedded or stacked DRAM can be operated two ways:

* **Main-memory-like**: explicit ACTIVATE/READ/WRITE/PRECHARGE with a page
  policy.  Wins when the access stream has page locality.
* **SRAM-like**: just READ and WRITE; each command carries row+column
  address, latches the row, reads out, and precharges immediately.  The
  row cycle is fully internal, and throughput comes from *multisubbank
  interleaving*: subbanks of a bank share the address/data bus, so
  accesses to different subbanks can be pitched at the interleave cycle
  time rather than the random cycle time.

This module also models the cache-line-to-page mapping choice of Figure 3
(a cache set per page vs sets striped across pages) in terms of the
expected page-hit ratio it yields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.array.organization import ArrayMetrics
from repro.dram.page_policy import PagePolicy, expected_access_latency


class InterfaceKind(Enum):
    SRAM_LIKE = "sram-like"
    MAIN_MEMORY_LIKE = "main-memory-like"


class LineMapping(Enum):
    """How cache lines map onto DRAM pages (paper Figure 3)."""

    SET_PER_PAGE = "set-per-page"  #: a whole set in one page
    STRIPED = "striped"  #: same way of sequential sets per page


@dataclass(frozen=True)
class SramLikeInterface:
    """Embedded DRAM behind a vanilla SRAM-like interface.

    Activate and precharge are invisible to the user; the random cycle
    time absorbs the writeback + restore of the destructive read, and the
    multisubbank interleave cycle governs back-to-back throughput to
    different subbanks.
    """

    access_time: float
    random_cycle: float
    interleave_cycle: float
    num_subbanks: int

    @property
    def peak_bandwidth_accesses(self) -> float:
        """Peak accesses/s with perfect subbank interleaving."""
        return 1.0 / max(self.interleave_cycle, self.random_cycle /
                         self.num_subbanks)

    def effective_cycle(self, conflict_ratio: float) -> float:
        """Mean issue pitch when ``conflict_ratio`` of consecutive accesses
        land in a busy subbank and must wait the full random cycle."""
        return (
            (1.0 - conflict_ratio) * self.interleave_cycle
            + conflict_ratio * self.random_cycle
        )


@dataclass(frozen=True)
class MainMemoryLikeInterface:
    """Embedded DRAM operated with explicit row commands and a policy."""

    t_rcd: float
    t_cas: float
    t_rp: float
    policy: PagePolicy

    def expected_latency(self, page_hit_ratio: float) -> float:
        return expected_access_latency(
            self.t_rcd, self.t_cas, self.t_rp, page_hit_ratio, self.policy
        )


def sram_like(metrics: ArrayMetrics, num_subbanks: int) -> SramLikeInterface:
    """Build the SRAM-like interface view of an embedded DRAM array."""
    return SramLikeInterface(
        access_time=metrics.t_access,
        random_cycle=metrics.t_random_cycle,
        interleave_cycle=metrics.t_interleave,
        num_subbanks=num_subbanks,
    )


def main_memory_like(
    metrics: ArrayMetrics, policy: PagePolicy, command_overhead: float = 0.0
) -> MainMemoryLikeInterface:
    """Build the main-memory-like interface view of an embedded array.

    Embedded operation skips the external-DIMM synchronization, so the
    command overhead defaults to zero.
    """
    t_rcd = (
        command_overhead
        + metrics.t_htree_in
        + metrics.t_decode
        + metrics.t_bitline
        + metrics.t_sense
    )
    t_cas = command_overhead + metrics.t_htree_in + metrics.t_htree_out
    t_rp = command_overhead + metrics.t_wordline + metrics.t_precharge
    return MainMemoryLikeInterface(
        t_rcd=t_rcd, t_cas=t_cas, t_rp=t_rp, policy=policy
    )


def page_hit_ratio(
    mapping: LineMapping,
    page_bits: int,
    line_bits: int,
    assoc: int,
    sequential_access: bool,
    spatial_locality: float = 0.0,
) -> float:
    """Expected page-hit ratio of a DRAM *cache* under a line mapping.

    The paper's section 3.4 argument: with a set mapped per page, a normal
    (parallel tag+data) access fetches the whole set and enjoys intra-page
    locality, but a *sequential* cache (tag first) touches one line per
    set, and the next request almost surely goes to another set -- so the
    hit ratio collapses.  Striping puts the same way of consecutive sets
    in a page, but set-associative placement randomizes which way a line
    lives in, so consecutive addresses rarely share a page either.
    ``spatial_locality`` is the probability that the next request falls in
    the same aligned page-sized address window.
    """
    lines_per_page = max(1, page_bits // line_bits)
    if mapping is LineMapping.SET_PER_PAGE:
        if sequential_access:
            return 0.0
        sets_per_page = max(1, lines_per_page // assoc)
        if sets_per_page > 1:
            # Multiple sets per page: spatially-adjacent lines share it.
            return spatial_locality * (1.0 - 1.0 / sets_per_page)
        return 0.0
    # Striped: a page holds one way of `lines_per_page` sequential sets,
    # but each line sits in a random way, diluting locality by 1/assoc.
    return spatial_locality * (1.0 - 1.0 / lines_per_page) / assoc


def interleaving_speedup(
    random_cycle: float, interleave_cycle: float, num_subbanks: int
) -> float:
    """Throughput gain of multisubbank interleaving over a single bank."""
    base = 1.0 / random_cycle
    pitched = 1.0 / max(interleave_cycle, random_cycle / num_subbanks)
    return pitched / base


def subbank_conflict_ratio(num_subbanks: int, outstanding: int) -> float:
    """Probability a random access hits a busy subbank (birthday bound)."""
    if num_subbanks <= 1:
        return 1.0
    busy = min(outstanding, num_subbanks)
    return busy / num_subbanks


def pages_per_bank(capacity_bits: int, nbanks: int, page_bits: int) -> int:
    return math.ceil(capacity_bits / (nbanks * page_bits))
