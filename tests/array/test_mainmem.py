"""Unit tests for the main-memory DRAM chip organization."""

import pytest

from repro.array.mainmem import MainMemorySpec, derive_energies, derive_timing
from repro.core.cacti import solve_main_memory
from repro.core.optimizer import optimize
from repro.core.config import DENSITY_OPTIMIZED
from repro.tech.nodes import technology


@pytest.fixture(scope="module")
def solved():
    return solve_main_memory(
        MainMemorySpec(capacity_bits=2**30), node_nm=78.0
    )


class TestSpec:
    def test_column_and_burst_bits(self):
        spec = MainMemorySpec(capacity_bits=2**30, data_pins=8, prefetch=8,
                              burst_length=4)
        assert spec.column_bits == 64
        assert spec.burst_bits == 32

    def test_burst_cannot_exceed_prefetch(self):
        with pytest.raises(ValueError, match="exceeds prefetch"):
            MainMemorySpec(capacity_bits=2**30, burst_length=16, prefetch=8)

    def test_array_spec_carries_page(self):
        spec = MainMemorySpec(capacity_bits=2**30, page_bits=8192)
        assert spec.array_spec().page_bits == 8192


class TestTiming:
    def test_trc_composition(self, solved):
        t = solved.timing
        assert t.t_rc == pytest.approx(t.t_ras + t.t_rp)
        assert t.t_ras > t.t_rcd

    def test_rrd_below_rc(self, solved):
        """Multibank interleaving: tRRD is far below tRC."""
        t = solved.timing
        assert t.t_rrd < t.t_rc / 4

    def test_random_access_is_rcd_plus_cas(self, solved):
        t = solved.timing
        assert t.random_access == pytest.approx(t.t_rcd + t.t_cas)

    def test_clock_quantization(self):
        spec = MainMemorySpec(capacity_bits=2**30)
        raw = solve_main_memory(spec, node_nm=78.0)
        period = 1.875e-9  # DDR3-1066 clock
        quant = derive_timing(spec, raw.metrics, clock_period=period)
        for name in ("t_rcd", "t_cas", "t_rp", "t_rc", "t_rrd"):
            value = getattr(quant, name)
            assert value / period == pytest.approx(round(value / period))
            assert value >= getattr(raw.timing, name) - 1e-12


class TestEnergies:
    def test_activate_dominates_read(self, solved):
        """Opening an 8 Kb page costs more than streaming one burst."""
        e = solved.energies
        assert e.e_activate > e.e_read

    def test_write_at_least_read(self, solved):
        e = solved.energies
        assert e.e_write >= e.e_read * 0.99

    def test_refresh_and_standby_positive(self, solved):
        assert solved.energies.p_refresh > 0
        assert solved.energies.p_standby > 0

    def test_io_energy_voltage_scaling(self, solved):
        """Explicit io_energy_per_bit overrides the V^2 default."""
        spec = MainMemorySpec(capacity_bits=2**30, io_energy_per_bit=0.0)
        e = derive_energies(spec, solved.metrics, vdd_cell=1.5)
        assert e.e_read < solved.energies.e_read


class TestDensityOptimization:
    def test_area_efficiency_premium(self, solved):
        """Commodity parts are density-optimized (paper section 2.5)."""
        assert solved.area_efficiency > 0.45

    def test_page_respected(self, solved):
        assert solved.metrics.sensed_bits == 8192

    def test_summary_renders(self, solved):
        text = solved.summary()
        assert "tRCD" in text and "ACTIVATE" in text
