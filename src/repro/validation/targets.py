"""Published validation targets (paper section 2.5).

Three targets anchor the model:

* a 78 nm Micron 1 Gb DDR3-1066 x8 part (timing from the datasheet, power
  from the Micron DDR3 power calculator) -- the paper's Table 2 lists the
  actual values verbatim, which we encode here;
* the 65 nm Intel Xeon 16 MB shared L3 (Chang et al., JSSC 2007) and the
  90 nm Sun SPARC 4 MB L2 (McIntyre et al., JSSC 2005) for SRAM -- the
  paper reports these as a bubble chart (Figure 1) without tabulating the
  numbers, so the SRAM targets below are reconstructed from the cited
  publications' headline figures and are documented as such in
  EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Ddr3Target:
    """Actual values of the Micron 1Gb DDR3-1066 x8 device (paper Table 2)."""

    node_nm: float = 78.0
    capacity_bits: int = 2**30
    nbanks: int = 8
    data_pins: int = 8
    burst_length: int = 8
    page_bits: int = 8192
    area_efficiency: float = 0.56  #: ITRS value for a 6F^2-cell DRAM
    t_rcd: float = 13.1e-9
    t_cas: float = 13.1e-9
    t_rc: float = 52.5e-9
    e_activate: float = 3.1e-9  #: includes activation and precharging
    e_read: float = 1.6e-9
    e_write: float = 1.8e-9
    p_refresh: float = 3.5e-3

    #: CACTI-D's published errors on each metric (paper Table 2), used to
    #: judge whether this reproduction lands in the same quality band.
    PAPER_ERRORS = {
        "area_efficiency": -0.062,
        "t_rcd": +0.045,
        "t_cas": -0.058,
        "t_rc": -0.082,
        "e_activate": -0.252,
        "e_read": -0.322,
        "e_write": -0.330,
        "p_refresh": +0.290,
    }


@dataclass(frozen=True)
class SramCacheTarget:
    """A published SRAM cache design point for Figure 1-style validation."""

    name: str
    node_nm: float
    capacity_bytes: int
    block_bytes: int
    associativity: int
    access_time: float  #: s
    area: float  #: m^2
    dynamic_power: tuple[float, ...]  #: W; multiple quoted activity points
    leakage_power: float  #: W
    clock_hz: float  #: frequency at which dynamic power was quoted


#: 65 nm dual-core Xeon 7100 shared 16 MB L3.  Two dynamic-power bubbles in
#: the paper correspond to two quoted numbers at different activity factors.
XEON_L3 = SramCacheTarget(
    name="65nm Intel Xeon 16MB L3",
    node_nm=65.0,
    capacity_bytes=16 << 20,
    block_bytes=64,
    associativity=16,
    access_time=3.9e-9,
    area=130e-6,
    dynamic_power=(2.8, 1.2),
    leakage_power=2.6,
    clock_hz=3.4e9,
)

#: 90 nm SPARC 4 MB on-chip L2 (1.6 GHz, 64-bit microprocessor).
SPARC_L2 = SramCacheTarget(
    name="90nm Sun SPARC 4MB L2",
    node_nm=90.0,
    capacity_bytes=4 << 20,
    block_bytes=64,
    associativity=4,
    access_time=3.1e-9,
    area=52e-6,
    dynamic_power=(3.0,),
    leakage_power=1.5,
    clock_hz=1.6e9,
)

DDR3_TARGET = Ddr3Target()
