"""NPB application profiles for the LLC study (paper section 3.2).

The paper runs eight OpenMP NAS Parallel Benchmarks -- bt.C, cg.C, ft.B,
is.C, lu.C, mg.B, sp.C, ua.C -- chosen because their class B/C data sets
actually exercise caches as large as 192 MB.  Section 4.2 groups them by
memory behaviour, and these profiles encode exactly those groups:

* **ft.B, lu.C** -- the working set that misses the 8 MB of private L2s
  fits within the larger L3s; the 24 MB SRAM L3 is too small (especially
  for lu.C), so DRAM L3s win on capacity.
* **bt.C, is.C, mg.B, sp.C** -- working sets exceed even 192 MB, but
  accesses have locality, so every doubling of L3 capacity filters more
  main-memory traffic.
* **ua.C** -- few L3 accesses per instruction: insensitive to the L3.
* **cg.C** -- working sets beyond the L2 have no locality: every L3 fails
  to filter memory requests.

Region sizes are full-scale (bytes); the study scales them together with
the cache capacities (see ``WorkloadProfile.scaled``).
"""

from __future__ import annotations

from repro.workloads.synthetic import WorkloadProfile

MB = 1 << 20

#: Default per-thread instruction budget for study runs.  The paper runs
#: 10 B instructions on real hardware; the synthetic streams are
#: statistically stationary, so far shorter runs converge.
DEFAULT_INSTRUCTIONS = 250_000


def _profile(**kwargs) -> WorkloadProfile:
    kwargs.setdefault("instructions_per_thread", DEFAULT_INSTRUCTIONS)
    return WorkloadProfile(**kwargs)


#: ft.B: 3-D FFT.  All-to-all transposes over ~30 MB of spectral data;
#: once the L3 holds the grids, misses nearly vanish.
FT_B = _profile(
    name="ft.B",
    fp_fraction=0.45,
    mem_per_instr=0.07,
    write_fraction=0.35,
    hot_bytes=256 << 10,
    warm_bytes=30 * MB,
    cold_bytes=64 * MB,
    p_hot=0.55,
    p_warm=0.42,
    p_cold=0.03,
    warm_skew=1.3,
    spatial_run=6.0,
    barriers=30,
)

#: lu.C: LU factorization.  ~46 MB of active panels; the 24 MB SRAM L3
#: thrashes while the 48+ MB DRAM L3s capture the panels.
LU_C = _profile(
    name="lu.C",
    fp_fraction=0.5,
    mem_per_instr=0.08,
    write_fraction=0.30,
    hot_bytes=192 << 10,
    warm_bytes=46 * MB,
    cold_bytes=64 * MB,
    p_hot=0.50,
    p_warm=0.46,
    p_cold=0.04,
    warm_skew=1.2,
    spatial_run=8.0,
    barriers=40,
)

#: bt.C: block-tridiagonal solver, ~400 MB with strong reuse skew.
BT_C = _profile(
    name="bt.C",
    fp_fraction=0.5,
    mem_per_instr=0.06,
    write_fraction=0.30,
    hot_bytes=256 << 10,
    warm_bytes=400 * MB,
    cold_bytes=256 * MB,
    p_hot=0.55,
    p_warm=0.40,
    p_cold=0.05,
    warm_skew=3.5,
    spatial_run=8.0,
    barriers=25,
)

#: is.C: integer bucket sort.  Low FP, heavy ranking over ~350 MB of keys
#: with skewed bucket reuse.
IS_C = _profile(
    name="is.C",
    fp_fraction=0.05,
    mem_per_instr=0.10,
    write_fraction=0.45,
    hot_bytes=128 << 10,
    warm_bytes=350 * MB,
    cold_bytes=256 * MB,
    p_hot=0.60,
    p_warm=0.35,
    p_cold=0.05,
    warm_skew=4.0,
    spatial_run=10.0,
    barriers=12,
)

#: mg.B: multigrid.  Grids at many resolutions: the fine grids stream,
#: the coarse grids re-fit as the cache grows.
MG_B = _profile(
    name="mg.B",
    fp_fraction=0.45,
    mem_per_instr=0.09,
    write_fraction=0.35,
    hot_bytes=128 << 10,
    warm_bytes=300 * MB,
    cold_bytes=200 * MB,
    p_hot=0.45,
    p_warm=0.44,
    p_cold=0.11,
    warm_skew=3.0,
    spatial_run=12.0,
    barriers=60,
)

#: sp.C: scalar pentadiagonal solver; like bt.C with less skew.
SP_C = _profile(
    name="sp.C",
    fp_fraction=0.5,
    mem_per_instr=0.075,
    write_fraction=0.30,
    hot_bytes=192 << 10,
    warm_bytes=450 * MB,
    cold_bytes=256 * MB,
    p_hot=0.50,
    p_warm=0.42,
    p_cold=0.08,
    warm_skew=3.0,
    spatial_run=8.0,
    barriers=30,
)

#: ua.C: unstructured adaptive mesh.  Pointer-chasing but a small active
#: set: the private L2s absorb most reuse, so L3 accesses are rare.
UA_C = _profile(
    name="ua.C",
    fp_fraction=0.4,
    mem_per_instr=0.03,
    write_fraction=0.30,
    hot_bytes=192 << 10,
    warm_bytes=120 * MB,
    cold_bytes=64 * MB,
    p_hot=0.955,
    p_warm=0.035,
    p_cold=0.01,
    warm_skew=1.5,
    spatial_run=2.0,
    barriers=25,
    lock_rate_per_kinstr=1.2,
    lock_hold_cycles=60,
)

#: cg.C: conjugate gradient over a huge sparse matrix.  Indirect accesses
#: with essentially no reuse outside the L2: no L3 helps.
CG_C = _profile(
    name="cg.C",
    fp_fraction=0.4,
    mem_per_instr=0.085,
    write_fraction=0.15,
    hot_bytes=96 << 10,
    warm_bytes=1400 * MB,
    cold_bytes=800 * MB,
    p_hot=0.52,
    p_warm=0.08,
    p_cold=0.40,
    warm_skew=1.0,
    spatial_run=1.5,
    barriers=40,
    lock_rate_per_kinstr=0.5,
)

#: The paper's eight applications, in its plotting order.
NPB_PROFILES = (BT_C, CG_C, FT_B, IS_C, LU_C, MG_B, SP_C, UA_C)

BY_NAME = {p.name: p for p in NPB_PROFILES}
