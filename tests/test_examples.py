"""Smoke tests: every shipped example must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST = [
    "quickstart.py",
    "ddr3_validation.py",
    "design_space_sweep.py",
]

SLOW = [
    "stacked_cache_explorer.py",
    "sensitivity_analysis.py",
    "powerdown_study.py",
    ("llc_study.py", ["--fast"]),
]


def run_example(name, args=()):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.parametrize("name", FAST)
def test_fast_examples(name):
    result = run_example(name)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


@pytest.mark.slow
@pytest.mark.parametrize("entry", SLOW, ids=lambda e: e[0] if isinstance(e, tuple) else e)
def test_slow_examples(entry):
    name, args = entry if isinstance(entry, tuple) else (entry, ())
    result = run_example(name, args)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_example_inventory():
    """Every example on disk is covered by this smoke test."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = set(FAST) | {
        e[0] if isinstance(e, tuple) else e for e in SLOW
    }
    assert on_disk == covered
