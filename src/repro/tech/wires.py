"""Interconnect models following Ron Ho's wire scaling projections.

CACTI-D uses wire data from Ho's scaling studies for two planes of on-chip
interconnect -- semi-global (intermediate metal, used inside banks for
wordline straps, bitline routing, and intra-mat wiring) and global (top
metal, used for H-tree address/data distribution across a bank).  Commodity
DRAM additionally uses tungsten for its array-local bitlines (paper Table 1),
which is markedly more resistive than copper.

Resistance and capacitance per unit length are derived from geometry:

* ``R' = rho_eff / (w * t)`` with ``w = pitch / 2`` and ``t = aspect * w``;
  ``rho_eff`` includes barrier and surface-scattering penalties that grow as
  wires shrink.
* ``C' = 2 e0 (k_horiz * t/s + k_vert * w/h) + c_fringe`` for a wire between
  two neighbours at spacing ``s = pitch / 2`` over/under dielectric of
  height ``h ~= t``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Vacuum permittivity (F/m).
EPS0 = 8.854e-12

#: Fringe capacitance contribution per unit length (F/m); roughly constant
#: across nodes per Ho's data.
_C_FRINGE = 40e-12

#: Bulk resistivity of copper and tungsten (ohm*m).
_RHO_CU_BULK = 1.8e-8
_RHO_W_BULK = 5.6e-8


@dataclass(frozen=True)
class WireParams:
    """Geometry and per-length electricals of one wire plane at one node."""

    name: str
    pitch: float  #: wire pitch (m)
    aspect_ratio: float  #: thickness / width
    resistivity: float  #: effective resistivity incl. size effects (ohm*m)
    k_ild: float  #: inter-layer dielectric constant

    @property
    def width(self) -> float:
        return self.pitch / 2.0

    @property
    def thickness(self) -> float:
        return self.aspect_ratio * self.width

    @property
    def r_per_m(self) -> float:
        """Resistance per unit length (ohm/m)."""
        return self.resistivity / (self.width * self.thickness)

    @property
    def c_per_m(self) -> float:
        """Capacitance per unit length (F/m), sidewall + plate + fringe."""
        spacing = self.pitch - self.width
        plate = self.width / self.thickness  # dielectric height ~ thickness
        sidewall = self.thickness / spacing
        return 2.0 * EPS0 * self.k_ild * (sidewall + plate) + _C_FRINGE

    def rc_per_m2(self) -> float:
        """Distributed RC product per metre squared (s/m^2)."""
        return self.r_per_m * self.c_per_m

    def elmore_delay(self, length: float) -> float:
        """Unrepeated distributed-RC delay of a wire of ``length`` (s)."""
        return 0.38 * self.r_per_m * self.c_per_m * length * length


#: Effective copper resistivity per node (ohm*m): bulk copper plus a growing
#: size-effect penalty as line widths approach the electron mean free path.
_RHO_CU_EFF = {90: 2.53e-8, 65: 2.73e-8, 45: 3.00e-8, 32: 3.40e-8}

#: ILD dielectric constant trend (low-k introduction).
_K_ILD = {90: 3.1, 65: 2.9, 45: 2.7, 32: 2.5}


def semi_global_wire(node_nm: int) -> WireParams:
    """Intermediate-level copper wiring at 4F pitch."""
    return WireParams(
        name="semi-global",
        pitch=4.0 * node_nm * 1e-9,
        aspect_ratio=1.8,
        resistivity=_rho_cu(node_nm),
        k_ild=_k_ild(node_nm),
    )


def global_wire(node_nm: int) -> WireParams:
    """Top-level copper wiring at 8F pitch."""
    return WireParams(
        name="global",
        pitch=8.0 * node_nm * 1e-9,
        aspect_ratio=2.2,
        resistivity=_rho_cu(node_nm),
        k_ild=_k_ild(node_nm),
    )


def local_wire(node_nm: int, tungsten: bool = False) -> WireParams:
    """Array-local wiring at 2F pitch (bitlines, wordline straps).

    COMM-DRAM processes route bitlines in tungsten (paper Table 1), which
    carries roughly twice the effective resistivity penalty of copper on top
    of its higher bulk resistivity.
    """
    rho_scale = _rho_cu(node_nm) / _RHO_CU_BULK
    resistivity = (_RHO_W_BULK if tungsten else _RHO_CU_BULK) * rho_scale
    return WireParams(
        name="local-tungsten" if tungsten else "local",
        pitch=2.0 * node_nm * 1e-9,
        aspect_ratio=1.6,
        resistivity=resistivity,
        k_ild=_k_ild(node_nm),
    )


@dataclass(frozen=True)
class LowSwingWire:
    """A low-swing differential interconnect alternative.

    CACTI 6.0 (developed concurrently with CACTI-D, see the paper's
    related work) explored interconnect alternatives for large caches;
    low-swing differential signaling is the canonical one: the wire is
    driven to a reduced swing and sensed differentially, trading a slower,
    unrepeated (or lightly repeated) link for a large energy saving
    proportional to ``swing / VDD``.
    """

    wire: WireParams
    swing: float  #: differential swing (V)
    vdd: float  #: driver supply (V)

    #: Differential receiver (sense-amp) delay and energy.
    RECEIVER_DELAY = 100e-12
    RECEIVER_ENERGY = 30e-15

    def delay(self, length: float) -> float:
        """Unrepeated distributed RC plus the receiver (s); quadratic in
        length, so only attractive below the repeated-wire crossover."""
        return self.wire.elmore_delay(length) + self.RECEIVER_DELAY

    def energy(self, length: float) -> float:
        """Per-transition energy: reduced-swing charge on both lines (J)."""
        c = self.wire.c_per_m * length
        return 2.0 * c * self.swing * self.vdd + self.RECEIVER_ENERGY

    def energy_saving_vs_full_swing(self, length: float) -> float:
        """Fractional energy saving against a full-swing wire of the same
        geometry (ignoring repeater overheads, so a lower bound)."""
        full = self.wire.c_per_m * length * self.vdd * self.vdd
        return 1.0 - self.energy(length) / full if full > 0 else 0.0


def low_swing_wire(node_nm: float, vdd: float, swing: float = 0.1
                   ) -> LowSwingWire:
    """Low-swing differential link on the global plane at ``node_nm``."""
    return LowSwingWire(wire=global_wire(node_nm), swing=swing, vdd=vdd)


def _loglin(table: dict[int, float], node_nm: float) -> float:
    """Log-linear interpolation of a per-node table in feature size."""
    nodes = sorted(table)
    if node_nm in table:
        return table[node_nm]
    if node_nm > nodes[-1] or node_nm < nodes[0]:
        raise ValueError(
            f"node {node_nm} nm outside modeled range {nodes[0]}-{nodes[-1]} nm"
        )
    for lo, hi in zip(nodes, nodes[1:]):
        if lo <= node_nm <= hi:
            frac = (math.log(node_nm) - math.log(lo)) / (
                math.log(hi) - math.log(lo)
            )
            return math.exp(
                (1 - frac) * math.log(table[lo]) + frac * math.log(table[hi])
            )
    raise AssertionError("unreachable")


def _rho_cu(node_nm: float) -> float:
    # Table is keyed largest-feature-first conceptually; interpolation is
    # symmetric so ordering does not matter.
    return _loglin(_RHO_CU_EFF, node_nm)


def _k_ild(node_nm: float) -> float:
    return _loglin(_K_ILD, node_nm)
