"""Array organization: subarrays, mats, H-trees, banks, main-memory chips."""

from repro.array.htree import HTree, design_htree
from repro.array.mainmem import (
    MainMemoryEnergies,
    MainMemorySpec,
    MainMemoryTiming,
    derive_energies,
    derive_timing,
)
from repro.array.mat import Mat, mats_in_bank
from repro.array.organization import (
    ArrayMetrics,
    ArraySpec,
    InfeasibleOrganization,
    OrgParams,
    build_organization,
    enumerate_orgs,
)
from repro.array.stacking import StackedBank, stacking_sweep
from repro.array.subarray import InfeasibleSubarray, Subarray

__all__ = [
    "ArrayMetrics",
    "ArraySpec",
    "HTree",
    "InfeasibleOrganization",
    "InfeasibleSubarray",
    "MainMemoryEnergies",
    "MainMemorySpec",
    "MainMemoryTiming",
    "Mat",
    "OrgParams",
    "StackedBank",
    "Subarray",
    "build_organization",
    "derive_energies",
    "derive_timing",
    "design_htree",
    "enumerate_orgs",
    "mats_in_bank",
    "stacking_sweep",
]
