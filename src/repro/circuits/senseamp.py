"""Sense amplifiers for the two sensing schemes.

Current-latch sensing (SRAM, STT-RAM) uses a latch-type amplifier fired
once the bitlines have developed a required differential; its latching
delay is a few gate delays and largely independent of the bitline because
the bitline is only partially swung.

Charge-share sensing (DRAM) is qualitatively different: the shared signal
``dV = (VDD/2) * Cs / (Cs + Cbl)`` seeds a regenerative latch that must
restore the *full bitline* (and thereby the cell -- this is the writeback
of the destructive readout) to full swing, so its time constant is set by
the bitline capacitance and its latching time by ``ln(VDD / dV)``.

The methods are named for the scheme (``latch_*`` / ``restore_*``); the
pre-registry technology-named spellings (``sram_*`` / ``dram_*``) remain
as aliases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.gates import folded_strip_area
from repro.tech.devices import DeviceParams

#: Total transistor width of one sense-amp latch, in feature sizes.
_SA_WIDTH_F = 24.0

#: Bitline-pitch multiple available to one sense amp (interleaved/shared
#: layout lets one amp occupy several bitline pitches).
SA_PITCH_MULT = 4.0

#: Required current-latch bitline differential as a fraction of VDD.
SRAM_SENSE_SWING = 0.10

#: Minimum usable charge-share sense signal (V): latch offset plus noise
#: margin.
DRAM_MIN_SENSE_SIGNAL = 0.06

#: Scheme-named alias for :data:`DRAM_MIN_SENSE_SIGNAL`.
MIN_CHARGE_SHARE_SIGNAL = DRAM_MIN_SENSE_SIGNAL

#: Multiplier on r_eff/width for the latch's regeneration resistance; the
#: cross-coupled pair is weaker than a full inverter drive.
_LATCH_R_FACTOR = 1.7


@dataclass(frozen=True)
class SenseAmp:
    """One differential sense amplifier in a given peripheral technology."""

    device: DeviceParams
    feature_size: float

    @property
    def width(self) -> float:
        return _SA_WIDTH_F * self.feature_size

    @property
    def c_internal(self) -> float:
        """Internal latch node capacitance (F)."""
        return self.width * (self.device.c_gate + self.device.c_drain) / 2.0

    @property
    def r_latch(self) -> float:
        """Effective regeneration resistance of the latch (ohm).

        The cross-coupled pair devotes ~1/4 of the amp's total width to
        each pull device, and regenerates more weakly than a driven gate.
        """
        return _LATCH_R_FACTOR * self.device.r_eff / (self.width / 4.0)

    def latch_delay(self) -> float:
        """Latching delay once the required differential exists (s)."""
        tau = self.r_latch * self.c_internal
        return tau * math.log(1.0 / SRAM_SENSE_SWING)

    def latch_energy(self, c_bitline: float) -> float:
        """Energy of one current-latch sense: limited bitline swing + latch
        flip (J)."""
        vdd = self.device.vdd
        bitline = c_bitline * vdd * (SRAM_SENSE_SWING * vdd)
        latch = self.c_internal * vdd * vdd
        return bitline + latch

    def restore_delay(
        self, c_bitline: float, signal: float, vdd_cell: float
    ) -> float:
        """Regeneration time from ``signal`` to full rail on the bitline (s).

        Raises ValueError if the available signal is below the usable
        minimum -- the candidate organization is infeasible (too many cells
        per bitline for the storage capacitor).
        """
        if signal < MIN_CHARGE_SHARE_SIGNAL:
            raise ValueError(
                f"charge-share sense signal {signal * 1e3:.1f} mV below the "
                f"{MIN_CHARGE_SHARE_SIGNAL * 1e3:.0f} mV sensing limit"
            )
        tau = self.r_latch * (c_bitline + self.c_internal)
        return tau * math.log(vdd_cell / signal)

    def restore_energy(self, c_bitline: float, vdd_cell: float) -> float:
        """Energy of one charge-share sense+restore: half-swing on both
        bitlines (J).

        Bitlines start precharged at VDD/2; sensing drives one rail up and
        one down, so each of the folded pair swings VDD/2.
        """
        pair = 2.0 * c_bitline * vdd_cell * (vdd_cell / 2.0)
        latch = self.c_internal * vdd_cell * vdd_cell
        return pair + latch

    # Pre-registry technology-named aliases.
    sram_delay = latch_delay
    sram_energy = latch_energy
    dram_delay = restore_delay
    dram_energy = restore_energy

    def area(self) -> float:
        """Layout area of one amp, folded to its share of bitline pitch (m^2)."""
        pitch = SA_PITCH_MULT * 2.0 * self.feature_size
        area, _ = folded_strip_area(self.width, pitch, self.feature_size)
        return area

    def leakage(self) -> float:
        """Static leakage of one amp (W); latches are cut off when idle."""
        return self.device.leakage_power(self.width / 2.0) * 0.25


def charge_share_signal(storage_cap: float, c_bitline: float, vdd_cell: float
                        ) -> float:
    """DRAM bitline signal from capacitive charge redistribution (V)."""
    return (vdd_cell / 2.0) * storage_cap / (storage_cap + c_bitline)
