"""Paper Table 1: key characteristics of the three memory technologies.

Regenerates the technology comparison at 32 nm straight from the encoded
models, so any drift between the code and the paper's table is visible.
"""

from conftest import print_table

from repro.tech.cells import comm_dram_cell, lp_dram_cell, sram_cell
from repro.tech.nodes import technology


def build_table1() -> list[list[str]]:
    tech = technology(32)
    sram = sram_cell(32, tech.device("hp-long-channel").vdd)
    lp = lp_dram_cell(32)
    comm = comm_dram_cell(32)

    def fmt_cap(c):
        return f"{c.storage_cap * 1e15:.0f} fF" if c.storage_cap else "N/A"

    def fmt_vpp(c):
        return f"{c.vpp:.1f} V" if c.vpp else "N/A"

    def fmt_ret(c):
        if c.retention_time is None:
            return "N/A"
        return f"{c.retention_time * 1e3:g} ms"

    return [
        ["Cell area (F^2)", f"{sram.area_f2:.0f}", f"{lp.area_f2:.0f}",
         f"{comm.area_f2:.0f}"],
        ["Periphery device", "hp-long-channel", "hp-long-channel", "lstp"],
        ["Bitline interconnect", "copper", "copper", "tungsten"],
        ["Cell VDD (V)", f"{sram.vdd_cell:.1f}", f"{lp.vdd_cell:.1f}",
         f"{comm.vdd_cell:.1f}"],
        ["Storage capacitance", fmt_cap(sram), fmt_cap(lp), fmt_cap(comm)],
        ["Boosted wordline VPP", fmt_vpp(sram), fmt_vpp(lp), fmt_vpp(comm)],
        ["Refresh period", fmt_ret(sram), fmt_ret(lp), fmt_ret(comm)],
    ]


def test_table1(benchmark):
    rows = benchmark(build_table1)
    print_table(
        "Table 1: technology characteristics at 32 nm",
        ["Characteristic", "SRAM", "LP-DRAM", "COMM-DRAM"],
        rows,
    )
    # The paper's values, verbatim.
    flat = {cell for row in rows for cell in row}
    assert {"146", "30", "6"} <= flat  # cell areas
    assert {"20 fF", "30 fF"} <= flat  # storage caps
    assert {"1.5 V", "2.6 V"} <= flat  # VPP
    assert {"0.12 ms", "64 ms"} <= flat  # retention
