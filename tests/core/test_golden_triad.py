"""Golden-equivalence gate for the technology-registry refactor.

``tests/data/golden_triad.json`` records bit-exact solved numbers for
the SRAM / LP-DRAM / COMM-DRAM triad -- representative cache solves,
the paper's Table-3 rows, and the DDR3 validation part -- captured
*before* the registry refactor (``tools/capture_golden.py``).  These
tests re-solve the same inputs through the current code and assert
field-for-field float equality, at several job counts: the registry is
a pure re-plumbing of the technology axis and must change no numbers.

JSON round-trips are exact (shortest-repr floats), so ``==`` on the
re-encoded dicts is bit-identity, not approximation.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.cacti import solve
from repro.core.config import (
    DENSITY_OPTIMIZED,
    ENERGY_DELAY_OPTIMIZED,
    MemorySpec,
    OptimizationTarget,
)
from repro.core.solvecache import metrics_to_dict

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "data" / "golden_triad.json"
)
GOLDEN = json.loads(GOLDEN_PATH.read_text())

TARGETS = {
    "balanced": OptimizationTarget(),
    "density": DENSITY_OPTIMIZED,
    "energy-delay": ENERGY_DELAY_OPTIMIZED,
}


def reencode(payload):
    """One JSON round trip: the same normalization the golden file had."""
    return json.loads(json.dumps(payload))


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize(
    "record", GOLDEN["solves"], ids=[r["id"] for r in GOLDEN["solves"]]
)
def test_solves_match_golden(record, jobs):
    """Every recorded solve reproduces bit-identically at any job count.

    The spec kwargs in the golden file use registry *names* for the
    technologies; MemorySpec resolves them, so this test exercises the
    full name -> handle -> traits path.
    """
    spec = MemorySpec(**record["spec"])
    solution = solve(spec, TARGETS[record["target"]], jobs=jobs)
    assert reencode(metrics_to_dict(solution.data)) == record["data"]
    tag = (
        reencode(metrics_to_dict(solution.tag))
        if solution.tag is not None else None
    )
    assert tag == record["tag"]


@pytest.mark.parametrize("jobs", [1, 2, 4])
@pytest.mark.parametrize("backend", ["json", "sqlite"])
def test_solves_match_golden_through_either_store(backend, jobs, tmp_path):
    """A persistent solve store must be numerically invisible: solving
    the golden triad through either backend (cold, then warm from the
    store) reproduces the recorded numbers bit-identically at any job
    count."""
    from repro.core.solvecache import SolveCache

    store = (
        str(tmp_path / "solves.json") if backend == "json"
        else f"sqlite:{tmp_path / 'solves.db'}"
    )
    for _round in ("cold", "warm"):
        cache = SolveCache(store)
        for record in GOLDEN["solves"]:
            spec = MemorySpec(**record["spec"])
            solution = solve(
                spec, TARGETS[record["target"]], solve_cache=cache,
                jobs=jobs,
            )
            assert reencode(metrics_to_dict(solution.data)) == record["data"]
            tag = (
                reencode(metrics_to_dict(solution.tag))
                if solution.tag is not None else None
            )
            assert tag == record["tag"]
        cache.close()


def test_table3_matches_golden():
    from repro.study.table3 import solve_table3

    rows = {
        name: reencode(dataclasses.asdict(row))
        for name, row in solve_table3().items()
    }
    assert rows == GOLDEN["table3"]


def test_ddr3_validation_matches_golden():
    from repro.validation.compare import validate_ddr3

    v = validate_ddr3()
    assert reencode(dict(v.errors)) == GOLDEN["ddr3"]["errors"]
    assert (
        reencode(dataclasses.asdict(v.solution.timing))
        == GOLDEN["ddr3"]["timing"]
    )
    assert (
        reencode(dataclasses.asdict(v.solution.energies))
        == GOLDEN["ddr3"]["energies"]
    )
    assert (
        reencode(v.solution.area_efficiency)
        == GOLDEN["ddr3"]["area_efficiency"]
    )
