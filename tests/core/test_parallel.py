"""Unit tests for the multi-process batch execution engine."""

import pytest

from repro.array import kernels
from repro.array.organization import ArraySpec, EvalCache
from repro.core import parallel
from repro.core.cacti import solve, solve_batch, CactiD
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.optimizer import SweepStats, feasible_designs
from repro.core.parallel import chunk_evenly, parallel_map, resolve_jobs
from repro.core.solvecache import SolveCache
from repro.study.sensitivity import capacity_sweep, sweep
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)

SPEC = ArraySpec(
    capacity_bits=8 * (64 << 10),
    output_bits=512,
    assoc=8,
    cell_tech=CellTech.SRAM,
    periph_device_type="hp-long-channel",
)

BATCH = [
    MemorySpec(capacity_bytes=512 << 10, cell_tech=CellTech.SRAM),
    MemorySpec(capacity_bytes=1 << 20, cell_tech=CellTech.SRAM),
    MemorySpec(capacity_bytes=1 << 20, cell_tech=CellTech.LP_DRAM),
]


class TestResolveJobs:
    def test_explicit_counts_pass_through(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7

    def test_auto_means_at_least_one_core(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1

    def test_auto_sentinel_resolves_to_all_cores(self):
        assert resolve_jobs("auto") == resolve_jobs(None)


class TestEffectiveJobs:
    def test_explicit_requests_bypass_the_heuristic(self):
        # A literal count is honored even for tiny workloads -- only
        # "auto" second-guesses the caller.
        assert parallel.effective_jobs(1, n_tasks=10_000_000) == 1
        assert parallel.effective_jobs(7, n_tasks=1) == 7
        assert parallel.effective_jobs(0, n_tasks=1) == resolve_jobs(None)

    def test_auto_goes_serial_below_min_tasks(self):
        assert parallel.effective_jobs("auto", n_tasks=10) == 1
        assert (
            parallel.effective_jobs("auto", n_tasks=10, min_tasks=5)
            == resolve_jobs(None)
        )

    def test_auto_goes_wide_at_or_above_min_tasks(self):
        assert (
            parallel.effective_jobs(
                "auto", n_tasks=parallel.AUTO_MIN_TASKS
            )
            == resolve_jobs(None)
        )

    def test_auto_without_task_count_goes_wide(self):
        assert parallel.effective_jobs("auto") == resolve_jobs(None)

    def test_auto_goes_serial_on_one_core(self, monkeypatch):
        monkeypatch.setattr(
            parallel.os, "sched_getaffinity", lambda pid: {0},
            raising=False,
        )
        assert parallel.effective_jobs("auto", n_tasks=10_000_000) == 1


class TestChunkEvenly:
    def test_concatenation_reproduces_input_order(self):
        items = list(range(103))
        chunks = chunk_evenly(items, jobs=4)
        assert [x for chunk in chunks for x in chunk] == items

    def test_no_empty_chunks(self):
        for n in (1, 2, 5, 16, 100):
            for chunk in chunk_evenly(list(range(n)), jobs=4):
                assert chunk

    def test_empty_input(self):
        assert chunk_evenly([], jobs=4) == []

    def test_chunk_count_bounded_by_items(self):
        assert len(chunk_evenly([1, 2], jobs=8)) <= 2


def _double(x):
    return 2 * x


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_process_pool_preserves_order(self):
        assert parallel_map(_double, list(range(20)), jobs=2) == [
            2 * x for x in range(20)
        ]


class TestParallelFeasibleDesigns:
    def test_matches_serial_including_order(self):
        serial = feasible_designs(TECH, SPEC, cache=EvalCache())
        sharded = feasible_designs(TECH, SPEC, jobs=2)
        assert serial == sharded

    def test_worker_stats_absorbed(self):
        stats = SweepStats()
        designs = feasible_designs(TECH, SPEC, stats=stats, jobs=2)
        assert stats.workers_absorbed > 0
        assert stats.worker_time_s > 0.0
        assert stats.enumerated == stats.prefiltered + stats.built
        assert stats.feasible == len(designs)
        assert stats.built == stats.feasible + stats.infeasible_at_build
        assert "build" in stats.phase_times


class TestSolveBatch:
    def test_serial_batch_matches_individual_solves(self):
        individual = [solve(spec) for spec in BATCH]
        batch = solve_batch(BATCH, jobs=1)
        for a, b in zip(individual, batch):
            assert a.data == b.data and a.tag == b.tag

    def test_parallel_batch_is_bit_identical(self):
        serial = solve_batch(BATCH, jobs=1)
        sharded = solve_batch(BATCH, jobs=2)
        for a, b in zip(serial, sharded):
            assert a.data == b.data and a.tag == b.tag

    def test_target_sequence_must_match_specs(self):
        with pytest.raises(ValueError):
            solve_batch(BATCH, [OptimizationTarget()])

    def test_workers_share_persistent_cache(self, tmp_path):
        cache = SolveCache(tmp_path / "solves.json")
        stats = SweepStats()
        solve_batch(BATCH, solve_cache=cache, stats=stats, jobs=2)
        # Each cache spec contributes a data and a tag array record,
        # written by the workers and visible to the parent after merge.
        assert len(cache) == 2 * len(BATCH)
        assert stats.workers_absorbed == len(BATCH)
        # A second batch is served from disk inside the workers.
        again = SweepStats()
        solve_batch(BATCH, solve_cache=cache, stats=again, jobs=2)
        assert again.solve_cache_hits == 2 * len(BATCH)
        assert again.built == 0

    def test_facade_batch(self, tmp_path):
        tool = CactiD(node_nm=32.0, cache_path=tmp_path / "c.json")
        batch = tool.solve_batch(BATCH, jobs=2)
        assert [s.spec for s in batch] == BATCH
        assert tool.stats.workers_absorbed == len(BATCH)
        assert len(tool.solve_cache) == 2 * len(BATCH)

    def test_facade_batch_rejects_wrong_node(self):
        tool = CactiD(node_nm=45.0)
        with pytest.raises(ValueError):
            tool.solve_batch(BATCH)


class TestParallelSensitivity:
    BASE = MemorySpec(capacity_bytes=256 << 10)

    def test_shared_eval_cache_reuses_designs_across_points(self):
        stats = SweepStats()
        capacity_sweep(self.BASE, factors=(1, 2, 4), stats=stats)
        # Neighboring points share subarray problems; the reuse must be
        # visible in the sweep stats.  (H-tree reuse is only observable
        # on the scalar path: the vectorized kernels fold tree delay
        # into closed-form arithmetic and touch the tree cache just for
        # materialized winners -- see the scalar-path check below.)
        assert stats.subarray_hits > 0

    def test_shared_eval_cache_reuses_htrees_on_scalar_path(self):
        stats = SweepStats()
        with kernels.disabled():
            capacity_sweep(self.BASE, factors=(1, 2, 4), stats=stats)
        assert stats.subarray_hits > 0
        assert stats.htree_hits > 0

    def test_parallel_sweep_matches_serial(self):
        serial = capacity_sweep(self.BASE, factors=(1, 2, 4))
        sharded = capacity_sweep(self.BASE, factors=(1, 2, 4), jobs=2)
        for a, b in zip(serial.points, sharded.points):
            assert a.value == b.value
            assert (a.solution is None) == (b.solution is None)
            if a.solution is not None:
                assert a.solution.data == b.solution.data
                assert a.solution.tag == b.solution.tag

    def test_parallel_sweep_tolerates_infeasible_points(self):
        # 3 banks cannot divide most capacities: the invalid points
        # must come back as None in order, not crash the pool.
        result = sweep(self.BASE, "nbanks", [1, 3, 2], jobs=2)
        values = [p.value for p in result.points]
        assert values == [1.0, 3.0, 2.0]
        assert result.points[0].solution is not None

    def test_parallel_sweep_absorbs_worker_stats(self):
        stats = SweepStats()
        capacity_sweep(self.BASE, factors=(1, 2), stats=stats, jobs=2)
        assert stats.workers_absorbed == 2
        assert stats.feasible > 0
