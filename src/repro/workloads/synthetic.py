"""Synthetic multithreaded memory-reference generators.

The paper drives its LLC study with NAS Parallel Benchmark traces captured
under COTSon; neither the simulator nor licensed benchmark binaries are
distributable, so this module substitutes parameterized generators whose
*memory behaviour class* is calibrated per application (see
:mod:`repro.workloads.npb`): working-set sizes relative to the L2/L3
capacities, locality skew, memory intensity, instruction mix, and
synchronization density.

Each thread's address stream draws from three regions:

* **hot** -- thread-private, sized to (mostly) fit the private L1/L2;
* **warm** -- shared, the L3-sensitive working set, with a power-law reuse
  skew so progressively larger caches capture progressively more of it;
* **cold** -- a large shared array streamed in OpenMP-style per-thread
  slices, which no realistic cache retains.

Spatial locality is modeled as sequential runs of cache lines.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Iterator

import numpy as np

from repro.sim.core import Event, thread_cpi

#: Cache line size assumed by the generators (bytes).
LINE_BYTES = 64

#: Batch size for vectorized event generation.
_BATCH = 4096

#: Virtual base addresses of the three regions (far apart).
_HOT_BASE = 1 << 40
_WARM_BASE = 1 << 41
_COLD_BASE = 1 << 42


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs defining one application's memory behaviour class."""

    name: str
    instructions_per_thread: int
    fp_fraction: float
    mem_per_instr: float
    write_fraction: float
    hot_bytes: int  #: per-thread private region
    warm_bytes: int  #: shared L3-sensitive working set
    cold_bytes: int  #: shared streaming region
    p_hot: float
    p_warm: float
    p_cold: float
    warm_skew: float = 1.0  #: >=1; larger concentrates warm reuse
    spatial_run: float = 4.0  #: mean sequential run length in lines
    barriers: int = 20  #: barriers over the whole run
    lock_rate_per_kinstr: float = 0.0
    lock_hold_cycles: int = 50
    num_locks: int = 16

    def __post_init__(self) -> None:
        total = self.p_hot + self.p_warm + self.p_cold
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"region probabilities sum to {total}, not 1")

    @property
    def cpi(self) -> float:
        return thread_cpi(self.fp_fraction)

    def scaled(self, factor: int) -> "WorkloadProfile":
        """Shrink region sizes by ``factor`` (cache-scaling simulation).

        Used together with equally scaled cache capacities so runs stay
        tractable while capacity/working-set relationships are preserved.
        """
        def shrink(nbytes: int) -> int:
            return max(LINE_BYTES * 8, nbytes // factor)

        return replace(
            self,
            hot_bytes=shrink(self.hot_bytes),
            warm_bytes=shrink(self.warm_bytes),
            cold_bytes=shrink(self.cold_bytes),
        )

    def with_instructions(self, count: int) -> "WorkloadProfile":
        return replace(self, instructions_per_thread=count)


def event_stream(
    profile: WorkloadProfile,
    thread_id: int,
    num_threads: int,
    seed: int = 1234,
) -> Iterator[Event]:
    """Yield the workload event stream for one hardware thread."""
    # crc32, not hash(): str hashes are salted by PYTHONHASHSEED, which
    # would make "fully seeded" runs differ across sessions and -- under
    # a spawn start method -- between parent and worker processes.
    rng = np.random.default_rng((seed, zlib.crc32(profile.name.encode())
                                 & 0xFFFF, thread_id))
    hot_lines = max(1, profile.hot_bytes // LINE_BYTES)
    warm_lines = max(1, profile.warm_bytes // LINE_BYTES)
    cold_lines = max(1, profile.cold_bytes // LINE_BYTES)
    hot_base = _HOT_BASE + thread_id * (profile.hot_bytes + (1 << 24))

    # Streaming slice: each thread walks its own contiguous chunk.
    slice_lines = max(1, cold_lines // num_threads)
    cold_ptr = thread_id * slice_lines

    total_instr = profile.instructions_per_thread
    barrier_every = (
        total_instr // profile.barriers if profile.barriers else None
    )
    lock_prob = profile.lock_rate_per_kinstr / 1000.0

    instr_done = 0
    next_barrier = barrier_every if barrier_every else None
    mean_gap = max(1.0, 1.0 / max(profile.mem_per_instr, 1e-9))
    run_continue = 1.0 - 1.0 / max(profile.spatial_run, 1.0)
    prev_line: int | None = None

    while instr_done < total_instr:
        gaps = rng.geometric(1.0 / mean_gap, _BATCH)
        regions = rng.random(_BATCH)
        writes = rng.random(_BATCH) < profile.write_fraction
        runs = rng.random(_BATCH)
        uniforms = rng.random(_BATCH)
        locks = rng.random(_BATCH)
        lock_ids = rng.integers(0, profile.num_locks, _BATCH)

        for i in range(_BATCH):
            if instr_done >= total_instr:
                return
            n = int(gaps[i])
            instr_done += n

            if prev_line is not None and runs[i] < run_continue:
                line = prev_line + 1
            else:
                r = regions[i]
                u = uniforms[i]
                if r < profile.p_hot:
                    line = hot_base // LINE_BYTES + int(u * hot_lines)
                elif r < profile.p_hot + profile.p_warm:
                    idx = int((u ** profile.warm_skew) * warm_lines)
                    line = _WARM_BASE // LINE_BYTES + idx
                else:
                    cold_ptr = (cold_ptr + 1) % cold_lines
                    line = _COLD_BASE // LINE_BYTES + cold_ptr
            prev_line = line
            yield ("step", n, n * profile.cpi, line * LINE_BYTES,
                   bool(writes[i]))

            if lock_prob and locks[i] < lock_prob * n:
                yield ("lock", int(lock_ids[i]), profile.lock_hold_cycles)
            if next_barrier is not None and instr_done >= next_barrier:
                next_barrier += barrier_every
                yield ("barrier",)
