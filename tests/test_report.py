"""Tests for the text/ASCII reporting helpers."""

import pytest

from repro.report import bar, comparison_line, grouped_bar_chart


class TestBar:
    def test_full_bar(self):
        assert bar(10, 10, width=8) == "█" * 8

    def test_empty(self):
        assert bar(0, 10, width=8) == ""

    def test_half(self):
        rendered = bar(5, 10, width=8)
        assert rendered.startswith("████")
        assert len(rendered) <= 5

    def test_clamps_overflow(self):
        assert bar(20, 10, width=4) == "████"

    def test_zero_max(self):
        assert bar(5, 0) == ""


class TestGroupedChart:
    def test_renders_all_groups_and_series(self):
        data = {
            "ft.B": {"nol3": 1.3, "sram": 2.3},
            "cg.C": {"nol3": 1.4, "sram": 1.2},
        }
        text = grouped_bar_chart(data, title="IPC")
        assert "IPC" in text
        for key in ("ft.B", "cg.C", "nol3", "sram"):
            assert key in text
        assert "2.30" in text

    def test_shared_scale(self):
        data = {"g": {"small": 1.0, "big": 4.0}}
        lines = grouped_bar_chart(data, width=8).splitlines()
        small_line = next(l for l in lines if "small" in l)
        big_line = next(l for l in lines if "big" in l)
        assert big_line.count("█") == 8
        assert small_line.count("█") == 2

    def test_empty_data(self):
        assert grouped_bar_chart({}) == ""


class TestComparisonLine:
    def test_format(self):
        line = comparison_line("EDP improvement", 0.52, 0.40)
        assert "+52.0%" in line and "+40.0%" in line
