"""Mixed-technology caches: tag and data arrays in different cells.

The registry makes the tag technology a first-class axis: any registered
technology can hold the tags of any other.  These tests solve every
ordered (data, tag) pair of registered technologies and check the
solution is internally consistent, that the solve-cache key separates
every technology (a cached sram solve must never answer an stt-ram
query), and that reports name both technologies.
"""

import itertools

import pytest

from repro.array.organization import ArraySpec
from repro.core.cacti import solve
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.solvecache import solve_key, spec_from_dict, spec_to_dict
from repro.tech.registry import CellTech, registered_names

MIXED_PAIRS = [
    pytest.param(data, tag, id=f"{data}-tags-{tag}")
    for data, tag in itertools.permutations(registered_names(), 2)
]


def mixed_spec(data: str, tag: str) -> MemorySpec:
    return MemorySpec(
        capacity_bytes=1 << 20,
        associativity=8,
        cell_tech=data,
        tag_cell_tech=tag,
    )


@pytest.mark.parametrize("data_tech,tag_tech", MIXED_PAIRS)
def test_every_pair_solves(data_tech, tag_tech):
    solution = solve(mixed_spec(data_tech, tag_tech))
    assert solution.data.spec.cell_tech is CellTech(data_tech)
    assert solution.tag.spec.cell_tech is CellTech(tag_tech)
    # Each array obeys its own technology's traits.
    tag_traits = CellTech(tag_tech).traits
    assert (solution.tag.p_refresh > 0) == tag_traits.needs_refresh
    report = solution.run_report()
    assert report["spec"]["cell_tech"] == data_tech
    assert report["tag"]["cell_tech"] == tag_tech
    assert report["tag"]["cell_traits"]["sensing"] == (
        tag_traits.sensing.value
    )


@pytest.mark.parametrize("data_tech,tag_tech", MIXED_PAIRS)
def test_mixed_pair_differs_from_uniform(data_tech, tag_tech):
    """A mixed cache is not the uniform cache of either technology."""
    mixed = solve(mixed_spec(data_tech, tag_tech))
    uniform = solve(mixed_spec(data_tech, data_tech))
    assert mixed.tag.spec.cell_tech is not uniform.tag.spec.cell_tech


def test_solve_keys_distinct_across_all_technologies():
    """The cache key separates every registered technology, for both a
    data-array spec and the same spec reused as a tag array."""
    target = OptimizationTarget()
    keys = {}
    for name in registered_names():
        spec = ArraySpec(
            capacity_bits=8 * (64 << 10),
            output_bits=512,
            assoc=8,
            cell_tech=CellTech(name),
            periph_device_type=CellTech(name).traits.default_periphery,
        )
        keys[name] = solve_key(spec, target, 32.0)
    assert len(set(keys.values())) == len(keys)


def test_spec_round_trips_by_registry_name():
    """ArraySpec -> dict -> ArraySpec preserves the interned handle."""
    for name in registered_names():
        spec = ArraySpec(
            capacity_bits=8 * (64 << 10),
            output_bits=512,
            assoc=8,
            cell_tech=CellTech(name),
            periph_device_type="hp-long-channel",
        )
        d = spec_to_dict(spec)
        assert d["cell_tech"] == name  # plain JSON string
        assert spec_from_dict(d) == spec
        assert spec_from_dict(d).cell_tech is CellTech(name)
