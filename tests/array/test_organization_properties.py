"""Property-based tests on the bank-organization invariants."""

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.array.organization import (
    ArraySpec,
    InfeasibleOrganization,
    InfeasibleSubarray,
    OrgParams,
    build_organization,
)
from repro.tech.cells import CellTech
from repro.tech.nodes import technology

TECH = technology(32)

power_of_two = st.sampled_from([1, 2, 4, 8, 16, 32, 64])
capacity_kb = st.sampled_from([64, 256, 1024, 4096, 16384])
cell_techs = st.sampled_from(list(CellTech))


def try_build(spec, org):
    try:
        return build_organization(TECH, spec, org)
    except (InfeasibleOrganization, InfeasibleSubarray):
        return None


@given(
    capacity_kb=capacity_kb,
    ndwl=power_of_two,
    ndbl=power_of_two,
    nspd=st.sampled_from([0.5, 1.0, 2.0, 4.0]),
    ndcm=st.sampled_from([1, 2, 4, 8, 16]),
    ndsam=st.sampled_from([1, 2, 4, 8, 16]),
    cell_tech=cell_techs,
)
@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much,
                                 HealthCheck.too_slow])
def test_feasible_design_invariants(capacity_kb, ndwl, ndbl, nspd, ndcm,
                                    ndsam, cell_tech):
    """Every design the builder accepts satisfies the core invariants."""
    traits = cell_tech.traits
    if not traits.column_mux_allowed:
        assume(ndcm == 1)
    spec = ArraySpec(
        capacity_bits=capacity_kb * 1024 * 8,
        output_bits=512,
        assoc=8,
        cell_tech=cell_tech,
        periph_device_type=traits.default_periphery,
    )
    m = try_build(spec, OrgParams(ndwl, ndbl, nspd, ndcm, ndsam))
    assume(m is not None)

    # Capacity conservation.
    assert m.rows * m.cols * ndwl * ndbl == spec.capacity_bits
    # Activation bounded by the bank.
    assert 1 <= m.nact <= ndwl
    # Sensed bits cover at least the output (rounded to subarrays).
    assert m.sensed_bits >= spec.output_bits // (ndcm * ndsam)
    # Timing sanity.
    assert m.t_access > 0
    assert m.t_random_cycle > 0
    assert m.t_interleave <= m.t_random_cycle * 1.0001
    assert m.t_access >= m.t_htree_in + m.t_htree_out
    # Writeback time: restore after a destructive read, or an explicit
    # write pulse (e.g. stt-ram); refresh only where the traits say so.
    assert (m.t_writeback > 0) == (
        traits.destructive_read or traits.write_pulse_time > 0
    )
    assert (m.p_refresh > 0) == traits.needs_refresh
    # Energy decomposition.
    assert m.e_read_access == pytest.approx(
        m.e_activate + m.e_read_column + m.e_precharge
    )
    assert m.e_write_access >= m.e_read_access * 0.5
    # Geometry.
    assert 0.0 < m.area_efficiency < 1.0
    assert m.area > m.bank_width * m.bank_height * 0.5


@given(
    ndwl=power_of_two,
    ndbl=power_of_two,
    nspd=st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.filter_too_much])
def test_dram_bitline_limit_always_enforced(ndwl, ndbl, nspd):
    spec = ArraySpec(
        capacity_bits=8 * (32 << 20),
        output_bits=512,
        assoc=8,
        cell_tech=CellTech.COMM_DRAM,
        periph_device_type="lstp",
    )
    m = try_build(spec, OrgParams(ndwl, ndbl, nspd, 1, 8))
    if m is not None:
        assert m.rows <= 512


@given(nbanks=st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=10, deadline=None)
def test_banks_scale_linearly(nbanks):
    """N identical banks: area, leakage, refresh all scale by N."""
    org = OrgParams(4, 8, 1.0, 1, 8)
    base_spec = ArraySpec(
        capacity_bits=8 * (1 << 20),
        output_bits=512,
        assoc=8,
        nbanks=1,
        cell_tech=CellTech.LP_DRAM,
        periph_device_type="hp-long-channel",
    )
    scaled_spec = ArraySpec(
        capacity_bits=8 * (1 << 20) * nbanks,
        output_bits=512,
        assoc=8,
        nbanks=nbanks,
        cell_tech=CellTech.LP_DRAM,
        periph_device_type="hp-long-channel",
    )
    base = try_build(base_spec, org)
    scaled = try_build(scaled_spec, org)
    assume(base is not None and scaled is not None)
    assert scaled.area == pytest.approx(nbanks * base.area, rel=1e-6)
    assert scaled.p_leakage == pytest.approx(nbanks * base.p_leakage,
                                             rel=1e-6)
    assert scaled.p_refresh == pytest.approx(nbanks * base.p_refresh,
                                             rel=1e-6)
    # Per-bank timing is unchanged.
    assert scaled.t_access == pytest.approx(base.t_access, rel=1e-9)
