"""MESI coherence across the private per-core L2 caches.

The paper's target system keeps L1/L2 private per core with a MESI
protocol (section 3.3); the shared L3 (when present) acts as the ordering
point.  This simplified directory tracks, per block, which cores may hold
it, and resolves reads and writes into the MESI actions and their latency
cost: cache-to-cache transfers for dirty data, invalidation rounds for
upgrades.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cache import Cache, MesiState


@dataclass
class CoherenceOutcome:
    """Result of a coherence resolution for one request."""

    source_core: int | None  #: core that supplied dirty data, if any
    invalidated: int  #: number of remote copies invalidated
    writeback: bool  #: a dirty copy was written back toward memory


class MesiDirectory:
    """Directory-style MESI over the private L2s.

    Tracks a sharer bitmask per block address.  The caches themselves hold
    the authoritative line states; the directory avoids snooping every L2
    on every access.
    """

    def __init__(self, l2s: list[Cache], block_bytes: int):
        self._l2s = l2s
        self._block = block_bytes
        self._sharers: dict[int, int] = {}

    def _key(self, address: int) -> int:
        return address // self._block

    def sharers(self, address: int, exclude: int | None = None) -> list[int]:
        mask = self._sharers.get(self._key(address), 0)
        cores = [i for i in range(len(self._l2s)) if mask >> i & 1]
        if exclude is not None:
            cores = [c for c in cores if c != exclude]
        return cores

    # ------------------------------------------------------------------ #

    def read(self, core: int, address: int) -> CoherenceOutcome:
        """Core ``core`` misses its L2 on a read; resolve against peers."""
        outcome = CoherenceOutcome(source_core=None, invalidated=0,
                                   writeback=False)
        for peer in self.sharers(address, exclude=core):
            line = self._l2s[peer].lookup(address)
            if line is None:
                self._clear(peer, address)
                continue
            if line.state is MesiState.MODIFIED:
                # Dirty data supplied cache-to-cache; both become SHARED.
                outcome.writeback = True
            if line.state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
                self._l2s[peer].set_state(address, MesiState.SHARED)
            if outcome.source_core is None:
                outcome.source_core = peer
        self._mark(core, address)
        return outcome

    def write(self, core: int, address: int) -> CoherenceOutcome:
        """Core ``core`` wants exclusive ownership; invalidate peers."""
        outcome = CoherenceOutcome(source_core=None, invalidated=0,
                                   writeback=False)
        for peer in self.sharers(address, exclude=core):
            line = self._l2s[peer].lookup(address)
            if line is None:
                self._clear(peer, address)
                continue
            if line.state is MesiState.MODIFIED:
                outcome.source_core = peer
                outcome.writeback = True
            self._l2s[peer].invalidate(address)
            self._clear(peer, address)
            outcome.invalidated += 1
        self._set_exclusive(core, address)
        return outcome

    def evicted(self, core: int, address: int) -> None:
        self._clear(core, address)

    def state_for_fill(self, core: int, address: int, is_write: bool
                       ) -> MesiState:
        """MESI state for a newly filled line."""
        if is_write:
            return MesiState.MODIFIED
        others = self.sharers(address, exclude=core)
        return MesiState.SHARED if others else MesiState.EXCLUSIVE

    # ------------------------------------------------------------------ #

    def _mark(self, core: int, address: int) -> None:
        key = self._key(address)
        self._sharers[key] = self._sharers.get(key, 0) | (1 << core)

    def _clear(self, core: int, address: int) -> None:
        key = self._key(address)
        mask = self._sharers.get(key, 0) & ~(1 << core)
        if mask:
            self._sharers[key] = mask
        else:
            self._sharers.pop(key, None)

    def _set_exclusive(self, core: int, address: int) -> None:
        self._sharers[self._key(address)] = 1 << core
