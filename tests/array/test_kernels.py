"""Vectorized-kernel equivalence: arrays vs. the scalar object path.

The kernels in :mod:`repro.array.kernels` promise bit-identity with the
per-candidate scalar composition in ``organization._Builder``.  These
tests enforce the promise property-style: for every registered memory
technology (SRAM, LP-DRAM, COMM-DRAM, STT-RAM), over data arrays, tag
arrays, and a paged commodity-DRAM part, randomized survivor samples
are rebuilt through ``build_organization`` and compared to the batch
arrays field for field with exact ``==`` -- no tolerances anywhere.
"""

import random

import pytest

from repro.array import kernels
from repro.array.organization import (
    ArraySpec,
    EvalCache,
    prefilter_grid,
)
from repro.core.cacti import data_array_spec, tag_array_spec
from repro.core.config import MemorySpec, OptimizationTarget
from repro.core.optimizer import (
    SweepStats,
    feasible_designs,
    filter_constraints,
    optimize,
    rank,
)
from repro.tech.cells import CellTech
from repro.tech.nodes import technology
from repro.tech.registry import registered_names

numpy = pytest.importorskip("numpy")

TECH = technology(32.0)

#: ArrayMetrics fields mirrored by EvaluatedBatch arrays.
METRIC_FIELDS = (
    "t_access",
    "t_random_cycle",
    "t_interleave",
    "e_activate",
    "e_read_column",
    "e_write_column",
    "e_precharge",
    "e_read_access",
    "p_leakage",
    "p_refresh",
    "area",
    "bank_width",
    "bank_height",
    "area_efficiency",
)


def specs_for(name: str) -> list[ArraySpec]:
    """Data and tag arrays of a 256 KB cache in the named technology,
    plus a paged multi-bank part for commodity DRAM."""
    mem = MemorySpec(
        capacity_bytes=256 << 10,
        associativity=8,
        node_nm=32.0,
        cell_tech=CellTech(name),
    )
    specs = [data_array_spec(mem), tag_array_spec(mem)]
    if name == "comm-dram":
        specs.append(
            ArraySpec(
                capacity_bits=64 << 20,
                output_bits=64,
                assoc=1,
                nbanks=8,
                cell_tech=CellTech.COMM_DRAM,
                periph_device_type="lstp",
                page_bits=8192,
            )
        )
    return specs


def evaluated(spec: ArraySpec):
    batch = kernels.survivor_batch(spec)
    assert batch is not None and batch.size > 0
    return kernels.evaluate_batch(TECH, spec, batch, EvalCache())


@pytest.mark.parametrize("name", registered_names())
class TestKernelScalarEquivalence:
    def test_batch_matches_prefilter_grid(self, name):
        for spec in specs_for(name):
            batch = kernels.survivor_batch(spec)
            assert batch.candidates() == prefilter_grid(spec)

    def test_random_survivors_match_scalar_build_exactly(self, name):
        from repro.array.organization import build_organization

        rng = random.Random(0xC0FFEE)
        for spec in specs_for(name):
            ev = evaluated(spec)
            sample = rng.sample(range(ev.size), k=min(25, ev.size))
            cache = EvalCache()
            for i in sample:
                org, geometry = ev.batch.org_at(i)
                scalar = build_organization(
                    TECH, spec, org, cache=cache, geometry=geometry
                )
                for field in METRIC_FIELDS:
                    assert float(getattr(ev, field)[i]) == getattr(
                        scalar, field
                    ), (name, spec.cell_tech, field, org)

    def test_feasibility_counts_match_scalar_sweep(self, name):
        for spec in specs_for(name):
            ev = evaluated(spec)
            stats = SweepStats()
            with kernels.disabled():
                designs = feasible_designs(
                    TECH, spec, cache=EvalCache(), stats=stats
                )
            assert stats.feasible == ev.size
            assert stats.infeasible_at_build == ev.n_infeasible
            assert len(designs) == ev.size

    def test_rank_batch_matches_scalar_rank_order(self, name):
        target = OptimizationTarget(weight_leakage=2.0)
        for spec in specs_for(name):
            ev = evaluated(spec)
            order = kernels.rank_batch(ev, target)
            with kernels.disabled():
                designs = feasible_designs(TECH, spec, cache=EvalCache())
            ranked = rank(filter_constraints(designs, target), target)
            assert [ev.batch.org_at(int(i))[0] for i in order] == [
                d.org for d in ranked
            ]

    def test_optimize_is_bit_identical_to_scalar_path(self, name):
        target = OptimizationTarget()
        for spec in specs_for(name):
            fast = optimize(TECH, spec, target)
            with kernels.disabled():
                slow = optimize(TECH, spec, target)
            assert fast == slow


class TestStatsInvariantsOnKernelPath:
    def test_counters_balance_through_optimize(self):
        spec = specs_for("sram")[0]
        stats = SweepStats()
        optimize(TECH, spec, OptimizationTarget(), stats=stats)
        assert stats.enumerated == stats.prefiltered + stats.built
        assert stats.built == stats.feasible + stats.infeasible_at_build
        assert stats.subarray_hits + stats.subarray_misses == stats.built

    def test_kernels_disabled_context_restores_state(self):
        before = kernels.enabled()
        with kernels.disabled():
            assert not kernels.enabled()
        assert kernels.enabled() == before
