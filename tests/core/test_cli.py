"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_size


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("32K") == 32 << 10
        assert parse_size("2M") == 2 << 20
        assert parse_size("1G") == 1 << 30
        assert parse_size("1.5M") == int(1.5 * (1 << 20))

    def test_raw_integers(self):
        assert parse_size("4096") == 4096

    def test_lowercase(self):
        assert parse_size("64k") == 64 << 10

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_size("M")
        with pytest.raises(ValueError):
            parse_size("abc")

    def test_non_positive_rejected(self):
        for bad in ("0", "-1", "-4K", "-2M", "-1G", "0K", "-0.5M"):
            with pytest.raises(ValueError, match="positive"):
                parse_size(bad)

    def test_positive_still_accepted(self):
        assert parse_size("1") == 1
        assert parse_size("0.5K") == 512


class TestCommands:
    def test_cache(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--assoc", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "access time" in out
        assert "leakage power" in out

    def test_plain_ram(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--assoc", "0"])
        assert rc == 0

    def test_cache_lp_dram_sequential(self, capsys):
        rc = main([
            "cache", "--capacity", "1M", "--tech", "lp-dram",
            "--sequential", "--optimize", "energy-delay",
        ])
        assert rc == 0
        assert "lp-dram" in capsys.readouterr().out

    def test_main_memory(self, capsys):
        rc = main(["main-memory", "--capacity", "1G", "--node", "78"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tRCD" in out and "refresh power" in out

    def test_invalid_spec_returns_error_code(self, capsys):
        rc = main(["cache", "--capacity", "5", "--assoc", "3"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_validate_ddr3(self, capsys):
        rc = main(["validate-ddr3"])
        assert rc == 0
        assert "mean |error|" in capsys.readouterr().out

    def test_infeasible_request_is_a_clean_error(self, capsys):
        """NoFeasibleSolution subclasses RuntimeError, not ValueError; it
        must still print `error: ...` and exit 2, not dump a traceback."""
        rc = main(["cache", "--capacity", "1K", "--assoc", "8"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "no feasible organization" in err

    def test_negative_capacity_is_a_clean_error(self, capsys):
        """argparse rejects the value at parse time with our message,
        not a generic 'invalid value' or a traceback from the solver."""
        with pytest.raises(SystemExit) as exc:
            main(["cache", "--capacity=-4K"])
        assert exc.value.code == 2
        assert "positive" in capsys.readouterr().err

    def test_stats_flag_prints_sweep_stats(self, capsys):
        rc = main(["cache", "--capacity", "256K", "--stats"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "candidates enumerated" in out
        assert "solve cache" in out

    def test_cache_flag_creates_and_reuses_cache(self, tmp_path, capsys):
        path = tmp_path / "solves.json"
        args = ["cache", "--capacity", "256K", "--cache", str(path),
                "--stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert "solve cache           : 0 hits" in first

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "solve cache           : 2 hits" in second
        # The cached run reports the same design.
        assert first.split("\n\n")[0] == second.split("\n\n")[0]

    def test_unwritable_cache_path_is_a_clean_error(self, tmp_path, capsys):
        """--cache pointing at a directory must not dump a traceback."""
        rc = main(["cache", "--capacity", "256K",
                   "--cache", str(tmp_path)])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_cache_flag_main_memory(self, tmp_path, capsys):
        path = tmp_path / "solves.json"
        args = ["main-memory", "--capacity", "1G", "--node", "78",
                "--cache", str(path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first


class TestObservabilityFlags:
    """--trace and --metrics on every subcommand."""

    def test_cache_writes_trace_and_metrics(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main([
            "cache", "--capacity", "256K",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert rc == 0
        doc = json.loads(trace.read_text())
        span_names = [e["name"] for e in doc["traceEvents"]]
        for expected in ("solve", "data_array", "tag_array", "optimize",
                         "prefilter", "build", "rank"):
            assert expected in span_names, expected
        assert all(e["ph"] == "X" for e in doc["traceEvents"])
        snap = json.loads(metrics.read_text())
        assert snap["counters"]["optimizer.feasible"] > 0
        assert "eval_cache.subarray.hit_rate" in snap["derived"]

    def test_metrics_report_solve_cache_hit_rate(self, tmp_path, capsys):
        import json

        metrics = tmp_path / "m.json"
        cache = tmp_path / "solves.json"
        args = ["cache", "--capacity", "256K",
                "--cache", str(cache), "--metrics", str(metrics)]
        assert main(args) == 0
        cold = json.loads(metrics.read_text())
        assert cold["derived"]["solve_cache.hit_rate"] == 0.0
        assert main(args) == 0
        warm = json.loads(metrics.read_text())
        assert warm["derived"]["solve_cache.hit_rate"] == 1.0

    def test_validate_ddr3_takes_solver_knobs(self, tmp_path, capsys):
        import json

        trace = tmp_path / "t.json"
        rc = main(["validate-ddr3", "--jobs", "2", "--stats",
                   "--trace", str(trace)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean |error|" in out
        assert "candidates enumerated" in out
        span_names = {
            e["name"]
            for e in json.loads(trace.read_text())["traceEvents"]
        }
        assert "solve_main_memory" in span_names
        assert "derive_interface" in span_names

    def test_table3_passes_knobs_through(self, tmp_path, capsys,
                                          monkeypatch):
        """table3 accepts the shared solver knobs and forwards them."""
        import json

        import repro.study.table3 as table3_module
        from repro.core.optimizer import SweepStats
        from repro.core.solvecache import SolveCache
        from repro.obs import Obs

        seen = {}

        def fake_solve_table3(**knobs):
            seen.update(knobs)
            return {"L1": table3_module.paper_table3()["L1"]}

        monkeypatch.setattr(
            table3_module, "solve_table3", fake_solve_table3
        )
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        rc = main([
            "table3", "--stats", "--jobs", "2",
            "--cache", str(tmp_path / "solves.json"),
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert rc == 0
        assert isinstance(seen["stats"], SweepStats)
        assert isinstance(seen["solve_cache"], SolveCache)
        assert isinstance(seen["obs"], Obs)
        assert seen["jobs"] == 2
        assert "L1" in capsys.readouterr().out
        json.loads(trace.read_text())
        json.loads(metrics.read_text())

    def test_validate_zero_target_is_a_clean_error(self, capsys,
                                                   monkeypatch):
        """A zero published target must exit 2 with a message, not dump
        a ZeroDivisionError traceback."""
        import dataclasses

        from repro.validation import compare, targets

        bad = dataclasses.replace(targets.DDR3_TARGET, e_read=0.0)
        monkeypatch.setattr(compare, "DDR3_TARGET", bad)
        rc = main(["validate-ddr3"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "zero target" in err


class TestResilienceFlags:
    def test_sweep_command(self, capsys):
        rc = main([
            "sweep", "--capacity", "256K", "--parameter", "capacity_bytes",
            "--values", "128K,256K",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "elasticity" in out
        assert "access=" in out

    def test_sweep_rejects_bad_parameter(self, capsys):
        rc = main([
            "sweep", "--capacity", "256K", "--parameter", "colour",
            "--values", "1,2",
        ])
        assert rc == 2
        assert "cannot sweep" in capsys.readouterr().err

    def test_study_command(self, capsys):
        rc = main([
            "study", "--apps", "ua.C", "--configs", "nol3,sram",
            "--instructions", "4000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "nol3" in out and "sram" in out
        assert "execution reduction" in out

    def test_study_rejects_unknown_app(self, capsys):
        rc = main(["study", "--apps", "nope", "--instructions", "1000"])
        assert rc == 2
        assert "unknown app" in capsys.readouterr().err

    def test_resume_flag_writes_and_restores_journal(
        self, tmp_path, capsys
    ):
        journal = tmp_path / "sweep.journal"
        argv = [
            "sweep", "--capacity", "256K", "--parameter", "capacity_bytes",
            "--values", "128K,256K", "--resume", str(journal),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert journal.exists()
        from repro.core.resilience import Journal

        assert len(Journal(journal)) == 2

        # Second run restores both points: same output, no growth.
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        assert len(Journal(journal)) == 2

    def test_on_error_skip_reports_failures(self, capsys):
        # An impossible per-task timeout is the simplest way to make
        # every parallel task fail from the CLI (two cells, so the map
        # actually goes parallel -- in-process tasks can't be preempted).
        rc = main([
            "study", "--apps", "ua.C", "--configs", "nol3,sram",
            "--instructions", "2000", "--jobs", "2",
            "--on-error", "skip", "--task-timeout", "0.001",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "task(s) failed" in err

    def test_bad_on_error_value_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "cache", "--capacity", "256K", "--on-error", "explode",
            ])


class TestCacheStoreCli:
    """--cache sqlite: URLs and the cache {info,gc,migrate} subcommands."""

    def _solve(self, store, tmp_path, extra=()):
        return ["cache", "--capacity", "64K", "--cache", store, *extra]

    def test_sqlite_cache_flag_creates_and_reuses(self, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 'solves.db'}"
        args = self._solve(url, tmp_path)
        assert main(args) == 0
        first = capsys.readouterr().out
        assert (tmp_path / "solves.db").exists()
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_cache_info_json(self, tmp_path, capsys):
        path = str(tmp_path / "solves.json")
        assert main(self._solve(path, tmp_path)) == 0
        capsys.readouterr()
        assert main(["cache", "info", path]) == 0
        out = capsys.readouterr().out
        assert "backend" in out and "json" in out
        assert "records" in out

    def test_cache_info_sqlite(self, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 'solves.db'}"
        assert main(self._solve(url, tmp_path)) == 0
        capsys.readouterr()
        assert main(["cache", "info", url]) == 0
        out = capsys.readouterr().out
        assert "sqlite" in out and "versions" in out

    def test_cache_gc_removes_stale_sibling(self, tmp_path, capsys):
        """Satellite bugfix: stale-version sibling redirect files are
        garbage-collectable from the CLI."""
        from repro.core.solvecache import _OLDER_VERSIONS

        path = tmp_path / "solves.json"
        stale = tmp_path / f"solves.json.{_OLDER_VERSIONS[0]}"
        stale.write_text('{"version": "%s", "records": {}}'
                         % _OLDER_VERSIONS[0])
        assert main(["cache", "gc", str(path)]) == 0
        out = capsys.readouterr().out
        assert stale.name in out
        assert not stale.exists()

    def test_cache_migrate_round_trip(self, tmp_path, capsys):
        """JSON -> sqlite -> query: the migrated store serves the solve
        (a hit, bit-identical output) without re-solving."""
        src = str(tmp_path / "solves.json")
        dst = f"sqlite:{tmp_path / 'solves.db'}"
        assert main(self._solve(src, tmp_path)) == 0
        first = capsys.readouterr().out
        assert main(["cache", "migrate", src, dst]) == 0
        report = capsys.readouterr().out
        assert "migrated" in report
        assert main(self._solve(dst, tmp_path)) == 0
        assert capsys.readouterr().out == first

    def test_cache_migrate_same_store_is_clean_error(self, tmp_path,
                                                     capsys):
        path = str(tmp_path / "solves.json")
        assert main(self._solve(path, tmp_path)) == 0
        capsys.readouterr()
        assert main(["cache", "migrate", path, path]) == 2
        assert "same store" in capsys.readouterr().err

    def test_solve_without_capacity_is_clean_error(self, capsys):
        assert main(["cache"]) == 2
        err = capsys.readouterr().err
        assert "--capacity" in err

    def test_bad_store_option_is_clean_error(self, tmp_path, capsys):
        url = f"sqlite:{tmp_path / 'solves.db'}?bogus=1"
        assert main(self._solve(url, tmp_path)) == 2
        assert "unknown store option" in capsys.readouterr().err
