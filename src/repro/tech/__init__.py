"""Technology modeling: ITRS devices, Ho wire projections, memory cells."""

from repro.tech.cells import CellParams, CellTech
from repro.tech.devices import DEVICE_TYPES, NODES_NM, DeviceParams, device
from repro.tech.nodes import Technology, technology
from repro.tech.wires import WireParams, global_wire, local_wire, semi_global_wire

__all__ = [
    "CellParams",
    "CellTech",
    "DEVICE_TYPES",
    "DeviceParams",
    "NODES_NM",
    "Technology",
    "WireParams",
    "device",
    "global_wire",
    "local_wire",
    "semi_global_wire",
    "technology",
]
