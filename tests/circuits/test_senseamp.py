"""Unit tests for sense amplifiers and DRAM charge sharing."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits.senseamp import (
    DRAM_MIN_SENSE_SIGNAL,
    SenseAmp,
    charge_share_signal,
)
from repro.tech.devices import device

LSTP32 = device("lstp", 32)
F32 = 32e-9


class TestChargeShare:
    def test_formula(self):
        """dV = (VDD/2) Cs/(Cs+Cbl)."""
        assert charge_share_signal(30e-15, 30e-15, 1.0) == pytest.approx(0.25)

    def test_more_bitline_cap_less_signal(self):
        a = charge_share_signal(30e-15, 20e-15, 1.0)
        b = charge_share_signal(30e-15, 80e-15, 1.0)
        assert a > b

    @given(
        cs=st.floats(min_value=5e-15, max_value=60e-15),
        cbl=st.floats(min_value=5e-15, max_value=500e-15),
        vdd=st.floats(min_value=0.8, max_value=2.0),
    )
    def test_signal_bounded_by_half_vdd(self, cs, cbl, vdd):
        sig = charge_share_signal(cs, cbl, vdd)
        assert 0 < sig < vdd / 2


class TestSenseAmp:
    def test_sram_delay_independent_of_bitline(self):
        sa = SenseAmp(LSTP32, F32)
        assert sa.sram_delay() > 0

    def test_dram_delay_grows_with_bitline_cap(self):
        sa = SenseAmp(LSTP32, F32)
        d1 = sa.dram_delay(20e-15, 0.2, 1.0)
        d2 = sa.dram_delay(80e-15, 0.2, 1.0)
        assert d2 > d1

    def test_dram_delay_grows_with_weaker_signal(self):
        sa = SenseAmp(LSTP32, F32)
        strong = sa.dram_delay(40e-15, 0.3, 1.0)
        weak = sa.dram_delay(40e-15, 0.1, 1.0)
        assert weak > strong

    def test_signal_below_limit_rejected(self):
        sa = SenseAmp(LSTP32, F32)
        with pytest.raises(ValueError, match="below the"):
            sa.dram_delay(40e-15, DRAM_MIN_SENSE_SIGNAL * 0.9, 1.0)

    def test_dram_energy_exceeds_sram_energy(self):
        """Full-rail restore of both bitlines costs far more than the
        limited-swing SRAM sense -- a core SRAM/DRAM asymmetry."""
        sa = SenseAmp(LSTP32, F32)
        cbl = 50e-15
        assert sa.dram_energy(cbl, 1.0) > 3 * sa.sram_energy(cbl)

    def test_energy_scales_with_bitline(self):
        sa = SenseAmp(LSTP32, F32)
        assert sa.dram_energy(80e-15, 1.0) > sa.dram_energy(20e-15, 1.0)

    def test_area_and_leakage_positive(self):
        sa = SenseAmp(LSTP32, F32)
        assert sa.area() > 0
        assert sa.leakage() > 0
