"""Bottom-die floorplan: deriving the 6.2 mm^2 per-bank budget (paper §3.1).

The paper computes the area of the bottom (core) die by scaling the
90 nm Niagara core components to 32 nm and using CACTI-D for the L1 and
L2 caches, then fixes the area available per stacked LLC bank to 1/8th of
the bottom die -- 6.2 mm^2.  This module reproduces that derivation from
this repository's own cache solves, so the budget is a computed quantity
rather than a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

#: Published 90 nm Niagara core area (logic + register files + local
#: structures, excluding L1/L2 which CACTI-D resolves) (m^2).
NIAGARA_CORE_AREA_90NM = 16.4e-6

#: Area of one 32 nm 4-way SIMD FPU (m^2); each scaled core carries one,
#: versus the original chip's single shared FPU.
FPU_AREA_32NM = 1.6e-6

#: Crossbar and miscellaneous glue on the bottom die, per core share (m^2).
GLUE_AREA_PER_CORE_32NM = 0.35e-6


@dataclass(frozen=True)
class Floorplan:
    """Bottom-die area accounting for the LLC study."""

    num_cores: int
    core_logic_area: float  #: scaled core logic, per core (m^2)
    fpu_area: float  #: per core
    l1_area: float  #: both I and D, per core
    l2_area: float  #: per core
    glue_area: float  #: per core

    @property
    def per_core(self) -> float:
        return (self.core_logic_area + self.fpu_area + self.l1_area
                + self.l2_area + self.glue_area)

    @property
    def bottom_die_area(self) -> float:
        return self.num_cores * self.per_core

    @property
    def llc_bank_budget(self) -> float:
        """Area available per stacked LLC bank: 1/8th of the bottom die."""
        return self.bottom_die_area / 8.0

    def report(self) -> str:
        rows = [
            ("core logic (scaled Niagara)", self.core_logic_area),
            ("4-way SIMD FPU", self.fpu_area),
            ("L1 I+D (CACTI-D)", self.l1_area),
            ("L2 (CACTI-D)", self.l2_area),
            ("crossbar/glue share", self.glue_area),
            ("per core", self.per_core),
        ]
        lines = [
            f"{name:<30}{area * 1e6:>8.2f} mm^2" for name, area in rows
        ]
        lines.append(
            f"{'bottom die (' + str(self.num_cores) + ' cores)':<30}"
            f"{self.bottom_die_area * 1e6:>8.2f} mm^2"
        )
        lines.append(
            f"{'LLC bank budget (1/8th)':<30}"
            f"{self.llc_bank_budget * 1e6:>8.2f} mm^2"
        )
        return "\n".join(lines)


@lru_cache(maxsize=None)
def derive_floorplan(node_nm: float = 32.0, num_cores: int = 8) -> Floorplan:
    """Reproduce the paper's bottom-die derivation at ``node_nm``."""
    from repro.study.table3 import solve_l1, solve_l2

    scale = (node_nm / 90.0) ** 2
    l1 = solve_l1().area_mm2 * 1e-6
    l2 = solve_l2().area_mm2 * 1e-6
    return Floorplan(
        num_cores=num_cores,
        core_logic_area=NIAGARA_CORE_AREA_90NM * scale,
        fpu_area=FPU_AREA_32NM,
        l1_area=2.0 * l1,  # instruction + data
        l2_area=l2,
        glue_area=GLUE_AREA_PER_CORE_32NM,
    )


#: The paper's quoted per-bank budget (m^2), for comparison.
PAPER_BANK_BUDGET = 6.2e-6
