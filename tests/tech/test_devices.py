"""Unit tests for the ITRS device models."""

import math

import pytest

from repro.tech.devices import (
    DEVICE_TYPES,
    NODES_NM,
    TEMPERATURE_LEAKAGE_FACTOR,
    device,
    interpolate_devices,
)


class TestDeviceData:
    @pytest.mark.parametrize("dtype", DEVICE_TYPES)
    @pytest.mark.parametrize("node", NODES_NM)
    def test_all_parameters_positive(self, dtype, node):
        d = device(dtype, node)
        for field in ("vdd", "vth", "l_phy", "t_ox", "c_gate", "c_drain",
                      "i_on", "i_off", "r_eff"):
            assert getattr(d, field) > 0.0, field

    def test_hp_fo4_matches_itrs_trend(self):
        """HP CV/I improves 17%/yr => ~0.69x per two-year node step."""
        fo4s = [device("hp", n).fo4 for n in sorted(NODES_NM, reverse=True)]
        for slower, faster in zip(fo4s, fo4s[1:]):
            ratio = faster / slower
            assert 0.6 < ratio < 0.8

    def test_hp_fo4_anchor_90nm(self):
        assert device("hp", 90).fo4 == pytest.approx(32e-12, rel=0.01)

    @pytest.mark.parametrize("node", NODES_NM)
    def test_device_speed_ordering(self, node):
        """HP fastest, then long-channel HP, then LOP, then LSTP."""
        hp = device("hp", node).fo4
        hpl = device("hp-long-channel", node).fo4
        lop = device("lop", node).fo4
        lstp = device("lstp", node).fo4
        assert hp < hpl < lop < lstp

    @pytest.mark.parametrize("node", NODES_NM)
    def test_leakage_ordering(self, node):
        """LSTP leaks orders of magnitude less than HP."""
        hp = device("hp", node)
        lstp = device("lstp", node)
        hpl = device("hp-long-channel", node)
        assert lstp.i_off < hp.i_off / 1000
        assert hpl.i_off == pytest.approx(hp.i_off * 0.1, rel=0.01)

    def test_lstp_leakage_constant_across_nodes(self):
        """The ITRS LSTP target holds leakage at 10 pA/um at every node."""
        values = {device("lstp", n).i_off for n in NODES_NM}
        assert len(values) == 1
        assert values.pop() == pytest.approx(1e-5)

    def test_lstp_gate_length_lags_hp(self):
        for node in NODES_NM:
            assert device("lstp", node).l_phy > device("hp", node).l_phy

    @pytest.mark.parametrize("node", NODES_NM)
    def test_vdd_ordering(self, node):
        """LOP uses the lowest supply; LSTP the highest (or ties HP)."""
        hp = device("hp", node)
        lop = device("lop", node)
        lstp = device("lstp", node)
        assert lop.vdd < hp.vdd
        assert lstp.vdd >= hp.vdd

    def test_vdd_at_32nm_matches_table1(self):
        """Paper Table 1: SRAM cell VDD 0.9 V (HP), DRAM periphery 1.0 V."""
        assert device("hp", 32).vdd == pytest.approx(0.9)
        assert device("lstp", 32).vdd == pytest.approx(1.0)

    def test_unknown_device_type_raises(self):
        with pytest.raises(ValueError, match="unknown device type"):
            device("fast", 32)

    def test_unknown_node_raises(self):
        with pytest.raises(ValueError, match="unknown ITRS node"):
            device("hp", 40)


class TestDerivedQuantities:
    def test_fo4_consistent_with_r_eff_calibration(self):
        d = device("hp", 32)
        expected = (
            math.log(2.0)
            * d.r_eff
            * (1 + d.n_to_p_ratio)
            * (d.c_drain + 4 * d.c_gate)
        )
        assert d.fo4 == pytest.approx(expected)

    def test_leakage_power_scales_with_width(self):
        d = device("hp", 32)
        assert d.leakage_power(2e-6) == pytest.approx(2 * d.leakage_power(1e-6))

    def test_leakage_power_includes_temperature_factor(self):
        d = device("hp", 32)
        cold = (d.i_off + d.i_gate / TEMPERATURE_LEAKAGE_FACTOR)
        assert d.leakage_power(1e-6) > d.i_off * 1e-6 * d.vdd

    def test_tau_positive_and_small(self):
        for node in NODES_NM:
            tau = device("hp", node).tau
            assert 0 < tau < 50e-12


class TestInterpolation:
    def test_midpoint_between_nodes(self):
        a, b = device("hp", 90), device("hp", 65)
        mid = interpolate_devices(a, b, 0.5)
        assert a.fo4 > mid.fo4 > b.fo4
        assert a.l_phy > mid.l_phy > b.l_phy

    def test_endpoints_exact(self):
        a, b = device("lstp", 65), device("lstp", 45)
        assert interpolate_devices(a, b, 0.0).r_eff == pytest.approx(a.r_eff)
        assert interpolate_devices(a, b, 1.0).r_eff == pytest.approx(b.r_eff)

    def test_mismatched_types_raise(self):
        with pytest.raises(ValueError, match="cannot interpolate"):
            interpolate_devices(device("hp", 90), device("lstp", 90), 0.5)

    def test_geometric_interpolation_of_fo4(self):
        """FO4 improves by a constant factor per node, so geometric
        interpolation should reproduce the trend exactly."""
        a, b = device("hp", 90), device("hp", 65)
        mid = interpolate_devices(a, b, 0.5)
        assert mid.fo4 == pytest.approx(math.sqrt(a.fo4 * b.fo4), rel=1e-6)
