"""Multi-process batch execution engine for design-space sweeps.

CACTI-D's value is sweeping *many* configurations: the full
(ndwl, ndbl, nspd, ndcm, ndsam) grid inside one solve, batches of
independent solves across a study matrix, and sensitivity sweeps around
a base point.  All three are embarrassingly parallel, and this module
gives them one engine:

* :func:`parallel_map` -- an order-preserving ``ProcessPoolExecutor``
  map with a worker initializer that installs a worker-local
  :class:`~repro.array.organization.EvalCache`;
* :func:`chunk_evenly` -- deterministic, contiguous, order-preserving
  sharding of a candidate list;
* :func:`build_designs_parallel` -- the optimizer's inner loop: shards
  surviving candidates into chunks, evaluates each chunk in a worker
  with that worker's cache, and merges results in candidate order.

Determinism is the contract.  Chunks are contiguous slices merged back
in submission order, so the concatenated design list is *identical* --
same designs, same order -- to the serial sweep, and ranking tie-breaks
(which resolve by enumeration order) are bit-identical.  Worker-local
eval caches cannot change numbers either: cached and uncached
construction produce the same frozen objects performing the same
computations.

Workers ship their counters home as plain dicts (picklable, no shared
state), which the parent absorbs into its
:class:`~repro.core.optimizer.SweepStats` via ``absorb_worker``.
``jobs=1`` everywhere falls back to the plain serial path with no
executor, no forks, and no pickling.

Fault tolerance is opt-in: pass a
:class:`~repro.core.resilience.ResiliencePolicy` to :func:`parallel_map`
and failed payloads come back as
:class:`~repro.core.resilience.TaskFailure` records instead of
poisoning the pool -- with bounded retries, per-task wall-clock
timeouts (cancelled by rebuilding the pool), automatic
``BrokenProcessPool`` recovery (rebuild + serial re-run of the
in-flight tasks in the parent), and checkpoint/resume through the
policy's journal.  Without a policy the engine behaves exactly as
before: the first worker exception propagates.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from typing import Callable, Sequence

from repro.core.resilience import (
    ResiliencePolicy,
    TaskFailure,
    TaskTimeout,
)
from repro.obs import maybe_span

#: Target chunks per worker: smaller chunks load-balance across workers,
#: larger chunks amortize task pickling overhead.
OVERSUBSCRIBE = 4

#: Worker-local cross-candidate cache, created by the pool initializer
#: (one per worker process, reused across every chunk that worker runs).
_WORKER_EVAL_CACHE = None

#: Worker-local persistent solve caches, keyed by cache-file path.  A
#: worker task that opened a fresh :class:`SolveCache` per task would
#: re-parse the whole JSON file from disk every time; memoizing by path
#: (mirroring the worker-local EvalCache) loads it once per worker.
_WORKER_SOLVE_CACHES: dict = {}


#: Sentinel worker-count request: let the engine decide (see
#: :func:`effective_jobs`).  The CLI default.
AUTO_JOBS = "auto"

#: Under ``jobs="auto"``, parallelize a candidate sweep only when at
#: least this many post-prefilter survivors are on the table.  Below
#: it, per-candidate work is too small to amortize worker forks and
#: payload pickling (BENCH_parallel.json: jobs=2 regressed to 0.68x on
#: a small grid), so auto falls back to the serial path.
AUTO_MIN_TASKS = 4096


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a worker-count request.

    ``None``, a non-positive count, or :data:`AUTO_JOBS` means "all
    available cores" (respecting CPU affinity where the platform
    exposes it); any positive count is taken literally.  Callers that
    know their task count should prefer :func:`effective_jobs`, which
    gives ``"auto"`` its serial-fallback heuristic.
    """
    if jobs == AUTO_JOBS:
        jobs = None
    if jobs is None or jobs <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return int(jobs)


def effective_jobs(
    jobs: int | str | None,
    n_tasks: int | None = None,
    *,
    min_tasks: int = AUTO_MIN_TASKS,
) -> int:
    """Resolve a jobs request, giving ``"auto"`` its heuristic.

    Explicit requests are honored as :func:`resolve_jobs` always has
    (``1`` serial, ``N`` literal, ``None``/``<= 0`` all cores).
    ``"auto"`` picks all cores only when that can plausibly win: it
    falls back to serial when the machine has a single usable core
    (workers would just add fork and pickling overhead) or when the
    workload -- ``n_tasks``, if the caller knows it -- is below
    ``min_tasks``.
    """
    if jobs != AUTO_JOBS:
        return resolve_jobs(jobs)
    cores = resolve_jobs(None)
    if cores <= 1:
        return 1
    if n_tasks is not None and n_tasks < min_tasks:
        return 1
    return cores


def chunk_evenly(
    items: Sequence, jobs: int, oversubscribe: int = OVERSUBSCRIBE
) -> list[list]:
    """Shard ``items`` into contiguous, order-preserving chunks.

    Produces about ``jobs * oversubscribe`` equal slices (never empty
    ones), so stragglers rebalance while concatenating the per-chunk
    results in chunk order reproduces the input order exactly.
    """
    items = list(items)
    if not items:
        return []
    nchunks = min(len(items), max(1, jobs * oversubscribe))
    size = -(-len(items) // nchunks)
    return [items[i : i + size] for i in range(0, len(items), size)]


def _init_worker() -> None:
    global _WORKER_EVAL_CACHE
    from repro.array.organization import EvalCache

    _WORKER_EVAL_CACHE = EvalCache()


def worker_eval_cache():
    """The calling process's worker-local EvalCache (created on demand,
    so worker task functions also run unchanged in the parent)."""
    if _WORKER_EVAL_CACHE is None:
        _init_worker()
    return _WORKER_EVAL_CACHE


def worker_solve_cache(spec):
    """The calling process's SolveCache for ``spec`` (one per store).

    ``spec`` is a store URL or path as produced by
    :attr:`~repro.core.solvecache.SolveCache.url` -- parents thread it
    to workers so every process opens the same backend with the same
    options.  Worker tasks share one persistent cache instance per
    store spec for the life of the process, so the backing records are
    loaded once per worker instead of once per task.  Concurrent
    writers stay safe on every backend: the JSON backend's saves are
    atomic merge-on-load replaces, and the sqlite backend serializes
    row upserts on the database write lock (see
    :class:`~repro.core.solvecache.SolveCache`).
    """
    if spec is None:
        return None
    from repro.core.solvecache import SolveCache

    key = os.fspath(spec)
    cache = _WORKER_SOLVE_CACHES.get(key)
    if cache is None:
        cache = _WORKER_SOLVE_CACHES[key] = SolveCache(key)
    return cache


def parallel_map(
    fn: Callable,
    payloads: Sequence,
    jobs: int,
    *,
    obs=None,
    span_name: str | None = None,
    resilience: ResiliencePolicy | None = None,
    keys: Sequence[str] | None = None,
    stats=None,
) -> list:
    """Order-preserving map over worker processes.

    ``jobs=1`` (or a single payload) runs ``fn`` serially in-process --
    no executor, no pickling.  Results always come back in payload
    order, never completion order, so downstream merges are
    deterministic.  Without a ``resilience`` policy a worker exception
    propagates to the caller.

    ``obs`` + ``span_name`` trace the map: the serial path records one
    ``span_name`` span per task, the parallel path one enclosing
    ``<span_name>.map`` span (per-task spans inside workers are the
    task function's job to ship home).

    With a :class:`~repro.core.resilience.ResiliencePolicy` the map is
    fault tolerant: per-task error capture (``on_error`` policy with
    bounded exponential-backoff retries), per-task wall-clock timeouts
    with cancellation, pool rebuild + parent-side serial re-run of
    in-flight tasks on ``BrokenProcessPool``, and -- when the policy
    carries a journal and ``keys`` names each task -- checkpointed
    results restored without re-execution.  Failed slots hold
    :class:`~repro.core.resilience.TaskFailure` records in skip/retry
    mode.  ``stats`` (a SweepStats) and ``obs`` account ``retries``,
    ``timeouts``, ``tasks_failed``, and ``pool_rebuilds``.
    """
    payloads = list(payloads)
    if resilience is not None:
        return _ResilientMap(
            fn,
            payloads,
            jobs,
            resilience,
            keys=keys,
            stage=span_name or "parallel_map",
            obs=obs,
            stats=stats,
        ).run()
    jobs = min(resolve_jobs(jobs), len(payloads))
    if jobs <= 1:
        if obs is None or span_name is None:
            return [fn(p) for p in payloads]
        results = []
        for i, p in enumerate(payloads):
            with obs.span(span_name, index=i):
                results.append(fn(p))
        return results
    with maybe_span(
        obs,
        f"{span_name}.map" if span_name else "parallel_map",
        jobs=jobs,
        tasks=len(payloads),
    ):
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker
        ) as pool:
            return list(pool.map(fn, payloads))


# --------------------------------------------------------------------- #
# The fault-tolerant execution engine.


def _policy_task(wrapped: tuple):
    """Worker-side task shim: fire any planned fault, then run the task.

    Ships ``(fn, payload, stage, index, attempt, fault_plan)`` instead
    of the bare payload so deterministic fault injection happens inside
    whichever process executes the task.
    """
    fn, payload, stage, index, attempt, fault_plan = wrapped
    if fault_plan is not None:
        fault_plan.fire(stage, index, attempt)
    return fn(payload)


class _ResilientMap:
    """One fault-tolerant map execution (see :func:`parallel_map`)."""

    def __init__(
        self, fn, payloads, jobs, policy, *, keys, stage, obs, stats
    ):
        if policy.journal is not None and keys is None:
            raise ValueError(
                "a journal-bearing policy needs per-task keys"
            )
        if keys is not None and len(keys) != len(payloads):
            raise ValueError(
                f"{len(payloads)} payloads but {len(keys)} keys"
            )
        self.fn = fn
        self.payloads = payloads
        self.policy = policy
        self.keys = keys
        self.stage = stage
        self.obs = obs
        self.stats = stats
        self.results: list = [None] * len(payloads)
        self.todo = self._restore_from_journal()
        self.jobs = min(resolve_jobs(jobs), max(1, len(self.todo)))

    # -- accounting ---------------------------------------------------- #

    def _count(self, what: str, n: int = 1) -> None:
        if self.stats is not None:
            setattr(self.stats, what, getattr(self.stats, what) + n)
        if self.obs is not None:
            self.obs.inc(f"resilience.{what}", n)

    # -- journal ------------------------------------------------------- #

    def _restore_from_journal(self) -> list[int]:
        journal = self.policy.journal
        if journal is None:
            return list(range(len(self.payloads)))
        todo = []
        for i in range(len(self.payloads)):
            if self.keys[i] in journal:
                self.results[i] = journal.result(self.keys[i])
            else:
                todo.append(i)
        if self.obs is not None and len(todo) < len(self.payloads):
            self.obs.inc(
                "resilience.journal_restored",
                len(self.payloads) - len(todo),
            )
        return todo

    def _success(self, index: int, value) -> None:
        self.results[index] = value
        journal = self.policy.journal
        if journal is not None:
            journal.record(self.keys[index], self.stage, value)

    # -- failure policy ------------------------------------------------ #

    def _handle_error(self, index: int, attempt: int, exc) -> bool:
        """Apply the policy to one failed attempt.

        Returns True when the task should be re-attempted (the caller
        re-queues it); records a TaskFailure or re-raises otherwise.
        """
        if attempt <= self.policy.retries_allowed:
            self._count("retries")
            time.sleep(self.policy.backoff(attempt))
            return True
        if self.policy.on_error == "raise":
            raise exc
        self._count("tasks_failed")
        self.results[index] = TaskFailure(
            index=index,
            stage=self.stage,
            error_type=type(exc).__name__,
            message=str(exc),
            attempts=attempt,
        )
        return False

    # -- execution ----------------------------------------------------- #

    def run(self) -> list:
        if not self.todo:
            return self.results
        with maybe_span(
            self.obs,
            f"{self.stage}.resilient_map",
            jobs=self.jobs,
            tasks=len(self.todo),
            skipped=len(self.payloads) - len(self.todo),
        ):
            if self.jobs <= 1:
                self._run_serial()
            else:
                self._run_parallel()
        return self.results

    def _attempt_serial(self, index: int, attempt: int):
        return _policy_task((
            self.fn,
            self.payloads[index],
            self.stage,
            index,
            attempt,
            self.policy.fault_plan,
        ))

    def _run_serial(self) -> None:
        # In-process execution cannot be preempted, so ``timeout_s`` is
        # not enforced here -- timeouts need a worker pool to cancel.
        for index in self.todo:
            self._run_one_serially(index, first_attempt=1)

    def _run_one_serially(self, index: int, first_attempt: int) -> None:
        attempt = first_attempt
        while True:
            try:
                value = self._attempt_serial(index, attempt)
            except Exception as exc:
                if self._handle_error(index, attempt, exc):
                    attempt += 1
                    continue
                return
            self._success(index, value)
            return

    def _run_parallel(self) -> None:
        pending: deque = deque((i, 1) for i in self.todo)
        inflight: dict = {}  # future -> (index, attempt, submitted_at)
        pool = None
        try:
            while pending or inflight:
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=self.jobs, initializer=_init_worker
                    )
                # Windowed submission: at most ``jobs`` tasks in flight,
                # so a submitted task starts (nearly) immediately and
                # submission-relative deadlines track execution time.
                while pending and len(inflight) < self.jobs:
                    index, attempt = pending.popleft()
                    wrapped = (
                        self.fn,
                        self.payloads[index],
                        self.stage,
                        index,
                        attempt,
                        self.policy.fault_plan,
                    )
                    try:
                        fut = pool.submit(_policy_task, wrapped)
                    except BrokenExecutor:
                        pending.appendleft((index, attempt))
                        pool = self._recover_broken_pool(
                            pool, inflight, pending
                        )
                        break
                    inflight[fut] = (index, attempt, time.monotonic())
                if not inflight:
                    continue
                timeout = self._next_deadline(inflight)
                done, _ = wait(
                    inflight, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    pool = self._expire_overdue(pool, inflight, pending)
                    continue
                broken = False
                for fut in done:
                    index, attempt, _ = inflight.pop(fut)
                    try:
                        value = fut.result()
                    except BrokenExecutor:
                        broken = True
                        # The parent re-runs this task itself: a task
                        # that kills every worker it lands on must not
                        # kill pool after pool.
                        self._run_one_serially(
                            index, first_attempt=attempt + 1
                        )
                    except Exception as exc:
                        if self._handle_error(index, attempt, exc):
                            pending.append((index, attempt + 1))
                    else:
                        self._success(index, value)
                if broken:
                    pool = self._recover_broken_pool(
                        pool, inflight, pending
                    )
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _next_deadline(self, inflight: dict) -> float | None:
        """Seconds until the earliest in-flight task goes overdue."""
        if self.policy.timeout_s is None:
            return None
        now = time.monotonic()
        return max(
            0.0,
            min(
                submitted + self.policy.timeout_s - now
                for _, _, submitted in inflight.values()
            ),
        )

    def _expire_overdue(self, pool, inflight: dict, pending: deque):
        """Cancel tasks past their wall-clock budget.

        A running task can only be cancelled by tearing its worker
        down, and the executor cannot kill one worker selectively --
        so the pool is rebuilt: overdue tasks go through the error
        policy, in-flight innocents are re-queued without being
        charged an attempt.
        """
        now = time.monotonic()
        overdue = [
            (fut, info)
            for fut, info in inflight.items()
            if now >= info[2] + self.policy.timeout_s
        ]
        if not overdue:
            return pool  # spurious wakeup; deadlines not reached yet
        for fut, (index, attempt, _) in overdue:
            del inflight[fut]
            self._count("timeouts")
            exc = TaskTimeout(
                f"{self.stage}[{index}] exceeded "
                f"{self.policy.timeout_s:g}s wall clock"
            )
            if self._handle_error(index, attempt, exc):
                pending.append((index, attempt + 1))
        for fut, (index, attempt, _) in list(inflight.items()):
            if fut.done() and fut.exception() is None:
                self._success(index, fut.result())
            else:
                pending.append((index, attempt))
        inflight.clear()
        self._count("pool_rebuilds")
        pool.shutdown(wait=False, cancel_futures=True)
        return None

    def _recover_broken_pool(self, pool, inflight: dict, pending: deque):
        """BrokenProcessPool: harvest survivors, re-run the rest serially.

        Futures that completed before the crash keep their results; the
        tasks that were in flight when the pool died are re-run in the
        parent (serially, charged one attempt -- one of them likely
        killed the worker, and the parent must survive running it).
        """
        self._count("pool_rebuilds")
        for fut, (index, attempt, _) in list(inflight.items()):
            if fut.done() and fut.exception() is None:
                self._success(index, fut.result())
            else:
                self._run_one_serially(index, first_attempt=attempt + 1)
        inflight.clear()
        pool.shutdown(wait=False, cancel_futures=True)
        return None


# --------------------------------------------------------------------- #
# The optimizer's parallel inner loop.


def _eval_chunk(payload: tuple) -> tuple[list, dict]:
    """Worker task: build every candidate of one chunk.

    Returns the feasible :class:`~repro.array.organization.ArrayMetrics`
    in candidate order plus a stats payload (counter deltas of this
    chunk only, so the parent can sum payloads without double counting).
    When the parent traces, the payload also carries an ``"obs"`` entry
    -- this worker's local spans and metrics, recorded against its own
    clock -- which the parent stitches into its trace with this
    worker's pid at the correct time offset.
    """
    from repro.array.organization import (
        InfeasibleOrganization,
        InfeasibleSubarray,
        build_organization,
    )
    from repro.tech.nodes import technology

    node_nm, spec, chunk, with_obs = payload
    t0 = time.perf_counter()
    obs = None
    if with_obs:
        from repro.obs import Obs

        obs = Obs()
    cache = worker_eval_cache()
    tech = technology(node_nm)
    before = (
        cache.subarray_hits,
        cache.subarray_misses,
        cache.htree_hits,
        cache.htree_misses,
    )
    designs = []
    infeasible = 0
    with maybe_span(obs, "chunk", candidates=len(chunk), pid=os.getpid()):
        for org, geometry in chunk:
            try:
                designs.append(
                    build_organization(
                        tech, spec, org, cache=cache, geometry=geometry
                    )
                )
            except (InfeasibleOrganization, InfeasibleSubarray):
                infeasible += 1
    after = (
        cache.subarray_hits,
        cache.subarray_misses,
        cache.htree_hits,
        cache.htree_misses,
    )
    deltas = [now - then for now, then in zip(after, before)]
    worker_wall = time.perf_counter() - t0
    stats = {
        "built": len(chunk),
        "infeasible_at_build": infeasible,
        "subarray_hits": deltas[0],
        "subarray_misses": deltas[1],
        "htree_hits": deltas[2],
        "htree_misses": deltas[3],
        "worker_wall_time_s": worker_wall,
        "pid": os.getpid(),
    }
    if obs is not None:
        obs.inc("optimizer.built", len(chunk))
        obs.inc("optimizer.infeasible_at_build", infeasible)
        obs.inc("eval_cache.subarray.hits", deltas[0])
        obs.inc("eval_cache.subarray.misses", deltas[1])
        obs.inc("eval_cache.htree.hits", deltas[2])
        obs.inc("eval_cache.htree.misses", deltas[3])
        obs.observe("parallel.chunk_s", worker_wall)
        stats["obs"] = obs.export_payload()
    return designs, stats


def build_designs_parallel(
    node_nm: float,
    spec,
    candidates: Sequence,
    jobs: int,
    *,
    with_obs: bool = False,
    resilience: ResiliencePolicy | None = None,
    stats=None,
    obs=None,
) -> tuple[list, list[dict]]:
    """Evaluate pre-filtered ``(OrgParams, OrgGeometry)`` candidates
    across worker processes.

    Returns the feasible designs *in candidate order* (chunks are
    contiguous and merged in submission order) and the per-chunk worker
    stats payloads.  Workers rebuild the (lru-cached) technology object
    from ``node_nm`` rather than unpickling it.  ``with_obs`` asks each
    worker to record local spans/metrics into its payload (under
    ``"obs"``) for the parent to stitch into its trace.

    ``resilience`` runs the chunks under the fault-tolerant engine
    (stage ``"optimizer.chunk"``): a retried chunk rebuilds the same
    designs from the same candidates, so the merged list is still
    bit-identical; in skip mode a terminally failed chunk's candidates
    are dropped from the output (accounted in ``stats``/``obs``, never
    silently mixed into the design list).
    """
    chunks = chunk_evenly(candidates, jobs)
    keys = None
    if resilience is not None and resilience.journal is not None:
        from repro.core.resilience import task_key

        keys = [
            task_key(
                "optimizer.chunk",
                {"node_nm": node_nm, "spec": spec, "chunk": chunk},
            )
            for chunk in chunks
        ]
    out = parallel_map(
        _eval_chunk,
        [(node_nm, spec, chunk, with_obs) for chunk in chunks],
        jobs,
        span_name="optimizer.chunk" if resilience is not None else None,
        resilience=resilience,
        keys=keys,
        stats=stats,
        obs=obs if resilience is not None else None,
    )
    designs: list = []
    stats_payloads: list[dict] = []
    for outcome in out:
        if isinstance(outcome, TaskFailure):
            continue  # terminally failed chunk: candidates dropped
        chunk_designs, chunk_stats = outcome
        designs.extend(chunk_designs)
        stats_payloads.append(chunk_stats)
    return designs, stats_payloads
