"""Tests for the DRAM power-down mode extension."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.power.powerdown import (
    STATE_EXIT_LATENCY,
    STATE_POWER_FRACTION,
    PowerDownPolicy,
    PowerState,
    evaluate_policy,
    idle_intervals_from_rate,
)

ACTIVE_W = 0.091  # the Table 3 main-memory chip standby power


class TestStates:
    def test_power_ordering(self):
        assert (
            STATE_POWER_FRACTION[PowerState.SELF_REFRESH]
            < STATE_POWER_FRACTION[PowerState.PRECHARGE_POWERDOWN]
            < STATE_POWER_FRACTION[PowerState.ACTIVE_STANDBY]
        )

    def test_latency_ordering(self):
        """Deeper states cost more to wake from."""
        assert (
            STATE_EXIT_LATENCY[PowerState.ACTIVE_STANDBY]
            < STATE_EXIT_LATENCY[PowerState.PRECHARGE_POWERDOWN]
            < STATE_EXIT_LATENCY[PowerState.SELF_REFRESH]
        )


class TestPolicy:
    def test_state_selection(self):
        policy = PowerDownPolicy(powerdown_timeout=100e-9,
                                 self_refresh_timeout=100e-6)
        assert policy.state_for_idle(10e-9) is PowerState.ACTIVE_STANDBY
        assert (policy.state_for_idle(1e-6)
                is PowerState.PRECHARGE_POWERDOWN)
        assert policy.state_for_idle(1e-3) is PowerState.SELF_REFRESH

    def test_disabled_transitions(self):
        policy = PowerDownPolicy(powerdown_timeout=None,
                                 self_refresh_timeout=None)
        assert policy.state_for_idle(1.0) is PowerState.ACTIVE_STANDBY


class TestEvaluate:
    def test_busy_rank_saves_nothing(self):
        policy = PowerDownPolicy()
        outcome = evaluate_policy(policy, ACTIVE_W, [10e-9] * 100)
        assert outcome.average_standby_power == pytest.approx(ACTIVE_W)
        assert outcome.average_added_latency == 0.0

    def test_idle_rank_drops_to_self_refresh(self):
        policy = PowerDownPolicy()
        outcome = evaluate_policy(policy, ACTIVE_W, [1.0])
        assert outcome.average_standby_power < 0.15 * ACTIVE_W
        assert outcome.savings_vs_active(ACTIVE_W) > 0.85

    def test_added_latency_tracks_depth(self):
        policy = PowerDownPolicy()
        shallow = evaluate_policy(policy, ACTIVE_W, [1e-6] * 10)
        deep = evaluate_policy(policy, ACTIVE_W, [1e-2] * 10)
        assert deep.average_added_latency > shallow.average_added_latency

    def test_no_intervals(self):
        outcome = evaluate_policy(PowerDownPolicy(), ACTIVE_W, [])
        assert outcome.average_standby_power == ACTIVE_W

    @given(st.lists(st.floats(min_value=1e-9, max_value=1.0), min_size=1,
                    max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_power_bounded_by_extremes(self, intervals):
        outcome = evaluate_policy(PowerDownPolicy(), ACTIVE_W, intervals)
        floor = STATE_POWER_FRACTION[PowerState.SELF_REFRESH] * ACTIVE_W
        assert floor - 1e-12 <= outcome.average_standby_power <= ACTIVE_W + 1e-12

    @given(st.lists(st.floats(min_value=1e-9, max_value=1.0), min_size=1,
                    max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_time_fractions_sum_to_one(self, intervals):
        outcome = evaluate_policy(PowerDownPolicy(), ACTIVE_W, intervals)
        assert sum(outcome.time_fractions.values()) == pytest.approx(1.0)

    def test_deeper_policy_saves_more(self):
        intervals = [5e-6] * 100
        shallow = evaluate_policy(
            PowerDownPolicy(powerdown_timeout=100e-9,
                            self_refresh_timeout=None),
            ACTIVE_W, intervals,
        )
        aggressive = evaluate_policy(
            PowerDownPolicy(powerdown_timeout=100e-9,
                            self_refresh_timeout=1e-6),
            ACTIVE_W, intervals,
        )
        assert (aggressive.average_standby_power
                < shallow.average_standby_power)


class TestIdleDistribution:
    def test_mean_gap_matches_rate(self):
        gaps = idle_intervals_from_rate(1e6, duration=1.0)
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(1e-6, rel=0.05)

    def test_zero_rate_is_fully_idle(self):
        assert idle_intervals_from_rate(0.0, 2.0) == [2.0]

    def test_higher_rate_shorter_gaps(self):
        busy = idle_intervals_from_rate(1e7, 1.0)
        quiet = idle_intervals_from_rate(1e3, 1.0)
        assert max(busy) < max(quiet)
