"""Vectorized-kernel speedup over the scalar per-candidate sweep.

Solves the BENCH_parallel spec batch twice on a single core -- once
with the numpy survivor-batch kernels active (the default) and once
with ``kernels.disabled()`` forcing the scalar object path -- and
records the wall-clock pair and speedup into ``BENCH_kernels.json`` at
the repo root.  Also asserts the kernels' correctness contract
(bit-identical solutions to the scalar path) and a conservative >= 2x
single-core speedup floor that holds even on noisy shared CI runners;
the real target, an order of magnitude, is what the recorded number
documents on quiet hardware.
"""

import json
import os
import time

from repro.array import kernels
from repro.core.cacti import solve_batch
from repro.core.config import MemorySpec
from repro.core.optimizer import SweepStats
from repro.tech.cells import CellTech

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_kernels.json"
)

#: The same design-space-exploration-shaped batch BENCH_parallel times:
#: LLC candidates across capacities and cell technologies.
BATCH = [
    MemorySpec(capacity_bytes=cap, cell_tech=tech, associativity=8)
    for cap in (1 << 20, 2 << 20, 4 << 20, 8 << 20)
    for tech in (CellTech.SRAM, CellTech.LP_DRAM)
]

#: Conservative CI floor; quiet hardware lands far above it.
MIN_SPEEDUP = 2.0


def test_bench_kernels_vs_scalar_sweep():
    if not kernels.enabled():
        import pytest

        pytest.skip("numpy kernels unavailable (no numpy or disabled)")

    stats_fast = SweepStats()
    t0 = time.perf_counter()
    fast = solve_batch(BATCH, stats=stats_fast, jobs=1)
    wall_fast = time.perf_counter() - t0

    stats_slow = SweepStats()
    with kernels.disabled():
        t0 = time.perf_counter()
        slow = solve_batch(BATCH, stats=stats_slow, jobs=1)
        wall_slow = time.perf_counter() - t0

    # Contract: the kernels change wall time only, never numbers.
    for a, b in zip(fast, slow):
        assert a.data == b.data
        assert a.tag == b.tag

    speedup = wall_slow / wall_fast
    payload = {
        "description": (
            "single-core wall-clock time of one solve_batch over the "
            "spec batch: vectorized survivor-batch kernels vs the "
            "scalar per-candidate object path"
        ),
        "batch": [
            f"{spec.capacity_bytes >> 20}MB {spec.cell_tech.value}"
            for spec in BATCH
        ],
        "wall_time_s": {
            "kernels": wall_fast,
            "scalar": wall_slow,
        },
        "speedup": speedup,
        "min_speedup_asserted": MIN_SPEEDUP,
        "sweep_stats": {
            "kernels": stats_fast.as_dict(),
            "scalar": stats_slow.as_dict(),
        },
        "bit_identical": True,
    }
    with open(BENCH_FILE, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(
        f"\nkernels: {wall_fast * 1e3:8.1f} ms   "
        f"scalar: {wall_slow * 1e3:8.1f} ms   "
        f"speedup: {speedup:.2f}x"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized kernels only {speedup:.2f}x over the scalar sweep "
        f"(floor {MIN_SPEEDUP}x)"
    )
