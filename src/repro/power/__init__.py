"""Power accounting: hierarchy breakdown, system power, energy-delay."""

from repro.power.hierarchy import (
    BUS_ENERGY_PER_BIT,
    HierarchyEnergyModel,
    LevelEnergy,
    MainMemoryEnergy,
    PowerBreakdown,
    hierarchy_power,
)
from repro.power.powerdown import (
    PowerDownOutcome,
    PowerDownPolicy,
    PowerState,
    evaluate_policy,
    idle_intervals_from_rate,
)
from repro.power.system import (
    PAPER_CORE_POWER_W,
    SystemPower,
    energy_delay_ratio,
    scaled_core_power,
)
from repro.power.thermal import ThermalEstimate, temperature_spread

__all__ = [
    "BUS_ENERGY_PER_BIT",
    "HierarchyEnergyModel",
    "LevelEnergy",
    "MainMemoryEnergy",
    "PAPER_CORE_POWER_W",
    "PowerBreakdown",
    "PowerDownOutcome",
    "PowerDownPolicy",
    "PowerState",
    "SystemPower",
    "ThermalEstimate",
    "energy_delay_ratio",
    "evaluate_policy",
    "hierarchy_power",
    "idle_intervals_from_rate",
    "scaled_core_power",
    "temperature_spread",
]
