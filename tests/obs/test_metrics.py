"""Unit tests for the metrics registry."""

import json

from repro.obs.metrics import MetricsRegistry


class TestInstruments:
    def test_counter_create_on_first_use(self):
        reg = MetricsRegistry()
        reg.counter("optimizer.built").inc()
        reg.counter("optimizer.built").inc(4)
        assert reg.snapshot()["counters"]["optimizer.built"] == 5

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("workers").set(2)
        reg.gauge("workers").set(8)
        assert reg.snapshot()["gauges"]["workers"] == 8

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.histogram("phase.build_s").observe(v)
        h = reg.snapshot()["histograms"]["phase.build_s"]
        assert h == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0,
                     "mean": 2.0}

    def test_empty_histogram_serializes_cleanly(self):
        reg = MetricsRegistry()
        reg.histogram("never.observed")
        h = reg.snapshot()["histograms"]["never.observed"]
        assert h["count"] == 0 and h["min"] is None and h["max"] is None


class TestDerivedRates:
    def test_hit_rate_from_counter_pair(self):
        reg = MetricsRegistry()
        reg.counter("solve_cache.hits").inc(3)
        reg.counter("solve_cache.misses").inc(1)
        assert reg.snapshot()["derived"]["solve_cache.hit_rate"] == 0.75

    def test_zero_lookups_rate_is_zero(self):
        reg = MetricsRegistry()
        reg.counter("solve_cache.hits")
        reg.counter("solve_cache.misses")
        assert reg.snapshot()["derived"]["solve_cache.hit_rate"] == 0.0

    def test_unpaired_hits_get_no_rate(self):
        reg = MetricsRegistry()
        reg.counter("lonely.hits").inc()
        assert "lonely.hit_rate" not in reg.snapshot()["derived"]


class TestMerging:
    def test_absorb_adds_counters_and_histograms(self):
        worker = MetricsRegistry()
        worker.counter("optimizer.built").inc(10)
        worker.histogram("parallel.chunk_s").observe(0.5)
        parent = MetricsRegistry()
        parent.counter("optimizer.built").inc(2)
        parent.histogram("parallel.chunk_s").observe(1.5)
        parent.absorb(worker.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["optimizer.built"] == 12
        h = snap["histograms"]["parallel.chunk_s"]
        assert h["count"] == 2 and h["min"] == 0.5 and h["max"] == 1.5

    def test_absorb_gauges_last_write_wins(self):
        worker = MetricsRegistry()
        worker.gauge("solve_cache.records").set(7)
        parent = MetricsRegistry()
        parent.gauge("solve_cache.records").set(3)
        parent.absorb(worker.snapshot())
        assert parent.snapshot()["gauges"]["solve_cache.records"] == 7

    def test_absorb_none_is_a_noop(self):
        parent = MetricsRegistry()
        parent.absorb(None)
        parent.absorb({})
        assert parent.snapshot()["counters"] == {}

    def test_derived_rates_recomputed_not_merged(self):
        worker = MetricsRegistry()
        worker.counter("c.hits").inc(1)
        worker.counter("c.misses").inc(1)
        parent = MetricsRegistry()
        parent.counter("c.hits").inc(3)
        parent.absorb(worker.snapshot())
        assert parent.snapshot()["derived"]["c.hit_rate"] == 4 / 5

    def test_write_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.gauge("b").set(1.5)
        path = tmp_path / "m.json"
        reg.write(path)
        snap = json.loads(path.read_text())
        assert snap["counters"] == {"a": 1}
        assert snap["gauges"] == {"b": 1.5}
