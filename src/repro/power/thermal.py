"""First-order stacked-die thermal estimate (paper section 4.3).

The paper checks with HotSpot that stacking any of the three L3
technologies raises temperature by less than 1.5 K between technologies,
because even the leakiest (SRAM with long-channel devices and sleep
transistors) dissipates only ~450 mW per 6.2 mm^2 bank.  HotSpot is not
reproducible here; a steady-state one-dimensional thermal resistance
model captures the same conclusion: dT = (P / A) * R_th.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Vertical thermal resistance from the stacked die through the heat
#: sink (K*m^2/W): silicon + TIM + spreader, per unit area.
DEFAULT_R_TH = 0.20e-4


@dataclass(frozen=True)
class ThermalEstimate:
    """Steady-state temperature rise of one stacked structure."""

    name: str
    power: float  #: W
    area: float  #: m^2
    r_th: float = DEFAULT_R_TH

    @property
    def power_density(self) -> float:
        """W/m^2."""
        return self.power / self.area

    @property
    def temperature_rise(self) -> float:
        """K above the die below."""
        return self.power_density * self.r_th


def temperature_spread(estimates: list[ThermalEstimate]) -> float:
    """Max temperature difference between candidate stacked dies (K).

    The paper's reported result: < 1.5 K between the SRAM, LP-DRAM, and
    COMM-DRAM L3 options.
    """
    rises = [e.temperature_rise for e in estimates]
    return max(rises) - min(rises)
