"""Unit tests for the MESI directory."""

from repro.sim.cache import Cache, CacheConfig, MesiState
from repro.sim.coherence import MesiDirectory


def setup():
    cfg = CacheConfig(capacity_bytes=8192, block_bytes=64, associativity=4,
                      access_cycles=3)
    l2s = [Cache(cfg) for _ in range(4)]
    return l2s, MesiDirectory(l2s, 64)


class TestRead:
    def test_first_reader_gets_exclusive(self):
        l2s, d = setup()
        outcome = d.read(0, 0x100)
        assert outcome.source_core is None
        assert d.state_for_fill(0, 0x100, False) is MesiState.EXCLUSIVE

    def test_second_reader_shares_and_demotes(self):
        l2s, d = setup()
        d.read(0, 0x100)
        l2s[0].fill(0x100, MesiState.EXCLUSIVE)
        outcome = d.read(1, 0x100)
        assert outcome.source_core == 0
        assert l2s[0].lookup(0x100).state is MesiState.SHARED
        assert not outcome.writeback

    def test_read_of_modified_forces_writeback(self):
        l2s, d = setup()
        d.write(0, 0x100)
        l2s[0].fill(0x100, MesiState.MODIFIED)
        outcome = d.read(1, 0x100)
        assert outcome.source_core == 0
        assert outcome.writeback
        assert l2s[0].lookup(0x100).state is MesiState.SHARED


class TestWrite:
    def test_write_invalidates_sharers(self):
        l2s, d = setup()
        for core in (0, 1, 2):
            d.read(core, 0x200)
            l2s[core].fill(0x200, MesiState.SHARED)
        outcome = d.write(3, 0x200)
        assert outcome.invalidated == 3
        for core in (0, 1, 2):
            assert l2s[core].lookup(0x200) is None
        assert d.sharers(0x200) == [3]

    def test_write_to_modified_peer_writes_back(self):
        l2s, d = setup()
        d.write(0, 0x200)
        l2s[0].fill(0x200, MesiState.MODIFIED)
        outcome = d.write(1, 0x200)
        assert outcome.writeback
        assert outcome.source_core == 0
        assert l2s[0].lookup(0x200) is None

    def test_fill_state_for_write_is_modified(self):
        __, d = setup()
        assert d.state_for_fill(0, 0x300, True) is MesiState.MODIFIED


class TestEviction:
    def test_eviction_clears_directory(self):
        l2s, d = setup()
        d.read(0, 0x400)
        l2s[0].fill(0x400, MesiState.EXCLUSIVE)
        d.evicted(0, 0x400)
        assert d.sharers(0x400) == []

    def test_stale_directory_entry_self_heals(self):
        """If an L2 silently lost a line, the directory cleans up on the
        next request instead of crashing."""
        l2s, d = setup()
        d.read(0, 0x500)  # marked, but never filled into the cache
        outcome = d.read(1, 0x500)
        assert outcome.source_core is None
        assert d.sharers(0x500, exclude=1) == []
