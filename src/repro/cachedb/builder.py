"""Precompute a design-space grid into a cachedb artifact.

The builder rides the existing batch-solve engine end to end: grid
cells become one :func:`~repro.core.cacti.solve_batch` call, so it
inherits parallel workers (``jobs``), the shared persistent
:class:`~repro.core.solvecache.SolveCache`, sweep statistics,
observability spans, and -- through a
:class:`~repro.core.resilience.ResiliencePolicy` -- skip/retry
semantics plus JSONL journal checkpoint/resume.  An interrupted build
re-run against the same journal re-solves only the unfinished cells.

Infeasible grid cells are expected (a dense grid always contains
geometrically impossible or electrically infeasible corners), so the
default policy is ``on_error="skip"``: failures become *holes* in the
artifact, recorded with their reason, and the reader treats a hole
like an off-grid miss (fallback applies).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.cacti import solve_batch
from repro.core.config import OptimizationTarget
from repro.core.resilience import Journal, ResiliencePolicy, task_key
from repro.core.solvecache import CACHE_VERSION
from repro.cachedb.schema import (
    DB_FORMAT_VERSION,
    GridSpec,
    grid_spec_for,
    normalized_target,
    solution_to_record,
)


@dataclass(frozen=True)
class BuildReport:
    """What one build run did, for the CLI and tests."""

    path: str
    grid_points: int  #: total cells in the grid
    solved: int  #: cells with a stored design point
    holes: int  #: infeasible/failed cells recorded as holes
    restored: int  #: cells restored from the resume journal
    wall_time_s: float

    def summary(self) -> str:
        lines = [
            f"cachedb         : {self.path}",
            f"format          : {DB_FORMAT_VERSION}",
            f"model version   : {CACHE_VERSION}",
            f"grid points     : {self.grid_points}",
            f"solved          : {self.solved}",
            f"holes           : {self.holes}",
            f"restored        : {self.restored} (from resume journal)",
            f"build wall time : {self.wall_time_s:.2f} s",
        ]
        return "\n".join(lines)


def _batch_key(spec, target) -> str:
    """The journal key :func:`~repro.core.cacti.solve_batch` uses for
    one spec, replicated so the builder can count restorable cells."""
    return task_key(
        "batch.solve",
        {"spec": spec, "target": target or OptimizationTarget()},
    )


def build_cachedb(
    path: str | os.PathLike,
    grid: GridSpec,
    *,
    target: OptimizationTarget | None = None,
    jobs: int | str = "auto",
    resilience: ResiliencePolicy | None = None,
    journal_path: str | os.PathLike | None = None,
    solve_cache=None,
    stats=None,
    obs=None,
) -> BuildReport:
    """Solve every cell of ``grid`` and write the artifact to ``path``.

    ``target`` steers every solve (one target per artifact -- a cachedb
    answers queries for exactly one optimization preset).  ``jobs``
    fans the grid out over worker processes.  ``resilience`` overrides
    the default skip-and-record policy; ``journal_path`` (ignored when
    an explicit policy already carries a journal) enables
    checkpoint/resume -- re-running an interrupted build against the
    same journal restores completed cells instead of re-solving them.

    The artifact is written atomically (unique temp file +
    ``os.replace``), so a killed build never leaves a torn cachedb.
    """
    t0 = time.perf_counter()
    target = target or OptimizationTarget()
    path = Path(path)

    if resilience is None:
        resilience = ResiliencePolicy(
            on_error="skip",
            journal=(
                Journal(journal_path) if journal_path is not None else None
            ),
        )
    elif resilience.journal is None and journal_path is not None:
        import dataclasses

        resilience = dataclasses.replace(
            resilience, journal=Journal(journal_path)
        )

    holes: dict[str, str] = {}
    keys: list[str] = []
    specs: list = []
    for key, coords in grid.points():
        try:
            spec = grid_spec_for(*coords)
        except ValueError as exc:
            holes[key] = f"invalid spec: {exc}"
            continue
        keys.append(key)
        specs.append(spec)

    restored = 0
    if resilience.journal is not None:
        restored = sum(
            1
            for spec in specs
            if _batch_key(spec, target) in resilience.journal
        )

    outcomes = solve_batch(
        specs,
        target,
        solve_cache=solve_cache,
        stats=stats,
        jobs=jobs,
        obs=obs,
        resilience=resilience,
    )

    points: dict[str, dict] = {}
    for key, solution in zip(keys, outcomes):
        if solution is None:
            continue
        points[key] = solution_to_record(solution)
    for failure in outcomes.failed:
        holes[keys[failure.index]] = (
            f"{failure.error_type}: {failure.message}"
        )

    payload = {
        "format": DB_FORMAT_VERSION,
        "model_version": CACHE_VERSION,
        "target": normalized_target(target),
        "grid": grid.as_dict(),
        "points": points,
        "holes": holes,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)

    if obs is not None:
        obs.inc("cachedb.points_built", len(points))
        obs.inc("cachedb.holes", len(holes))
    return BuildReport(
        path=os.fspath(path),
        grid_points=len(grid),
        solved=len(points),
        holes=len(holes),
        restored=restored,
        wall_time_s=time.perf_counter() - t0,
    )
