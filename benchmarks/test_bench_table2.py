"""Paper Table 2: DRAM model validation vs a 78 nm Micron DDR3-1066 x8.

Runs the full main-memory solve at the interpolated 78 nm node and prints
the actual-vs-model comparison with per-metric errors next to the errors
the paper reported for CACTI-D itself.
"""

from conftest import print_table

from repro.validation.compare import validate_ddr3
from repro.validation.targets import DDR3_TARGET


def test_table2(benchmark):
    validation = benchmark.pedantic(validate_ddr3, rounds=1, iterations=1)
    sol, errors = validation.solution, validation.errors
    target = DDR3_TARGET

    rows = [
        ["Area efficiency", f"{target.area_efficiency:.0%}",
         f"{sol.area_efficiency:.0%}", f"{errors['area_efficiency']:+.1%}",
         f"{target.PAPER_ERRORS['area_efficiency']:+.1%}"],
        ["tRCD (ns)", f"{target.t_rcd * 1e9:.1f}",
         f"{sol.timing.t_rcd * 1e9:.1f}", f"{errors['t_rcd']:+.1%}",
         f"{target.PAPER_ERRORS['t_rcd']:+.1%}"],
        ["CAS latency (ns)", f"{target.t_cas * 1e9:.1f}",
         f"{sol.timing.t_cas * 1e9:.1f}", f"{errors['t_cas']:+.1%}",
         f"{target.PAPER_ERRORS['t_cas']:+.1%}"],
        ["tRC (ns)", f"{target.t_rc * 1e9:.1f}",
         f"{sol.timing.t_rc * 1e9:.1f}", f"{errors['t_rc']:+.1%}",
         f"{target.PAPER_ERRORS['t_rc']:+.1%}"],
        ["ACTIVATE energy (nJ)", f"{target.e_activate * 1e9:.1f}",
         f"{sol.energies.e_activate * 1e9:.2f}",
         f"{errors['e_activate']:+.1%}",
         f"{target.PAPER_ERRORS['e_activate']:+.1%}"],
        ["READ energy (nJ)", f"{target.e_read * 1e9:.1f}",
         f"{sol.energies.e_read * 1e9:.2f}", f"{errors['e_read']:+.1%}",
         f"{target.PAPER_ERRORS['e_read']:+.1%}"],
        ["WRITE energy (nJ)", f"{target.e_write * 1e9:.1f}",
         f"{sol.energies.e_write * 1e9:.2f}", f"{errors['e_write']:+.1%}",
         f"{target.PAPER_ERRORS['e_write']:+.1%}"],
        ["Refresh power (mW)", f"{target.p_refresh * 1e3:.1f}",
         f"{sol.energies.p_refresh * 1e3:.2f}",
         f"{errors['p_refresh']:+.1%}",
         f"{target.PAPER_ERRORS['p_refresh']:+.1%}"],
    ]
    print_table(
        "Table 2: DDR3-1066 validation (78 nm Micron 1Gb x8)",
        ["Metric", "Actual", "Model", "Error", "Paper error"],
        rows,
    )
    print(f"mean |error|: {validation.mean_abs_error:.1%} "
          f"(paper: ~16%)")

    # Same quality band as the published tool.
    assert validation.mean_abs_error < 0.30
