"""Jobs-vs-speedup curves for the parallel batch-solve engine.

Solves one multi-spec batch at jobs = 1, 2, 4 and records the
wall-clock curve into ``BENCH_parallel.json`` at the repo root,
alongside per-jobs sweep statistics.  Also asserts the engine's
correctness contract -- bit-identical solutions at every job count --
and, when the machine actually has >= 4 cores, the >= 2x speedup
target at jobs=4.  On smaller machines the measured curve is still
recorded (with the cpu count, so the number can be read in context)
but the speedup assertion is skipped: a 1-core container cannot
physically run four CPU-bound workers faster than one.
"""

import json
import os
import time

from repro.core.cacti import solve_batch
from repro.core.config import MemorySpec
from repro.core.optimizer import SweepStats
from repro.core.parallel import resolve_jobs
from repro.tech.cells import CellTech

BENCH_FILE = os.path.join(
    os.path.dirname(__file__), os.pardir, "BENCH_parallel.json"
)

#: A design-space-exploration-shaped batch: LLC candidates across
#: capacities and cell technologies, the kind of matrix the paper's
#: Table 3 / Figure 4 study solves.
BATCH = [
    MemorySpec(capacity_bytes=cap, cell_tech=tech, associativity=8)
    for cap in (1 << 20, 2 << 20, 4 << 20, 8 << 20)
    for tech in (CellTech.SRAM, CellTech.LP_DRAM)
]

JOBS = (1, 2, 4)


def test_bench_parallel_batch_solve():
    available = resolve_jobs(0)
    wall: dict[int, float] = {}
    stats: dict[int, SweepStats] = {}
    solutions = {}
    for jobs in JOBS:
        stats[jobs] = SweepStats()
        t0 = time.perf_counter()
        solutions[jobs] = solve_batch(BATCH, stats=stats[jobs], jobs=jobs)
        wall[jobs] = time.perf_counter() - t0

    # Contract: parallelism changes wall time only, never numbers.
    for jobs in JOBS[1:]:
        for serial, sharded in zip(solutions[1], solutions[jobs]):
            assert serial.data == sharded.data
            assert serial.tag == sharded.tag

    speedup = {jobs: wall[1] / wall[jobs] for jobs in JOBS}
    payload = {
        "description": (
            "wall-clock time of one solve_batch over the spec batch, "
            "per worker count"
        ),
        "cpu_count": available,
        "batch": [
            f"{spec.capacity_bytes >> 20}MB {spec.cell_tech.value}"
            for spec in BATCH
        ],
        "wall_time_s": {str(j): wall[j] for j in JOBS},
        "speedup_vs_jobs1": {str(j): speedup[j] for j in JOBS},
        "sweep_stats": {str(j): stats[j].as_dict() for j in JOBS},
        "bit_identical_across_jobs": True,
    }
    with open(BENCH_FILE, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"\ncpu_count={available}")
    for jobs in JOBS:
        print(
            f"jobs={jobs}: {wall[jobs] * 1e3:8.1f} ms "
            f"({speedup[jobs]:.2f}x vs jobs=1)"
        )

    if available >= 4:
        assert speedup[4] >= 2.0, (
            f"jobs=4 speedup {speedup[4]:.2f}x < 2x on a "
            f"{available}-core machine"
        )
