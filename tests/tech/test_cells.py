"""Unit tests for the memory-cell technology data (paper Table 1)."""

import pytest

from repro.tech.cells import (
    CellTech,
    cell,
    comm_dram_cell,
    lp_dram_cell,
    sram_cell,
)


class TestTable1:
    """The paper's Table 1 values at 32 nm must hold exactly."""

    def test_cell_areas(self):
        assert sram_cell(32, 0.9).area_f2 == pytest.approx(146)
        assert lp_dram_cell(32).area_f2 == pytest.approx(30)
        assert comm_dram_cell(32).area_f2 == pytest.approx(6)

    def test_storage_capacitance(self):
        assert lp_dram_cell(32).storage_cap == pytest.approx(20e-15)
        assert comm_dram_cell(32).storage_cap == pytest.approx(30e-15)

    def test_cell_vdd_at_32nm(self):
        assert sram_cell(32, 0.9).vdd_cell == pytest.approx(0.9)
        assert lp_dram_cell(32).vdd_cell == pytest.approx(1.0)
        assert comm_dram_cell(32).vdd_cell == pytest.approx(1.0)

    def test_boosted_wordline_at_32nm(self):
        assert lp_dram_cell(32).vpp == pytest.approx(1.5)
        assert comm_dram_cell(32).vpp == pytest.approx(2.6)

    def test_retention_periods(self):
        assert lp_dram_cell(32).retention_time == pytest.approx(0.12e-3)
        assert comm_dram_cell(32).retention_time == pytest.approx(64e-3)


class TestGeometry:
    def test_width_height_consistent_with_area(self):
        for c in (sram_cell(32, 0.9), lp_dram_cell(32), comm_dram_cell(32)):
            assert c.width_f * c.height_f == pytest.approx(c.area_f2, rel=0.03)

    def test_physical_area_scales_with_f_squared(self):
        a90 = comm_dram_cell(90).area
        a45 = comm_dram_cell(45).area
        assert a90 == pytest.approx(4 * a45, rel=0.01)

    def test_density_ordering(self):
        """COMM-DRAM densest, SRAM least dense."""
        sizes = [
            comm_dram_cell(32).area,
            lp_dram_cell(32).area,
            sram_cell(32, 0.9).area,
        ]
        assert sizes == sorted(sizes)


class TestElectricals:
    def test_dram_flags(self):
        assert not sram_cell(32, 0.9).is_dram
        assert lp_dram_cell(32).is_dram
        assert comm_dram_cell(32).is_dram

    def test_comm_access_device_slowest_least_leaky(self):
        lp = lp_dram_cell(32)
        comm = comm_dram_cell(32)
        assert comm.access_i_on < lp.access_i_on
        assert comm.access_i_off < lp.access_i_off / 1e4

    def test_retention_budget_consistent_with_leakage(self):
        """Each DRAM cell's leakage must fit its retention budget; that is
        what distinguishes the 0.12 ms LP cell from the 64 ms COMM cell."""
        for maker in (lp_dram_cell, comm_dram_cell):
            c = maker(32)
            leak = c.access_i_off * c.access_width
            assert leak <= c.retention_leakage_budget()

    def test_sram_has_no_retention_budget(self):
        assert sram_cell(32, 0.9).retention_leakage_budget() is None

    def test_wordline_voltage_boosted_only_for_dram(self):
        assert sram_cell(32, 0.9).wordline_voltage == pytest.approx(0.9)
        assert comm_dram_cell(32).wordline_voltage == pytest.approx(2.6)

    def test_comm_vdd_higher_at_older_nodes(self):
        assert comm_dram_cell(90).vdd_cell > comm_dram_cell(32).vdd_cell
        assert comm_dram_cell(78).vdd_cell == pytest.approx(1.55, abs=0.1)


class TestFactory:
    def test_cell_factory_dispatch(self):
        assert cell(CellTech.SRAM, 32, 0.9).tech is CellTech.SRAM
        assert cell(CellTech.LP_DRAM, 32, 0.9).tech is CellTech.LP_DRAM
        assert cell(CellTech.COMM_DRAM, 32, 0.9).tech is CellTech.COMM_DRAM

    def test_sram_inherits_peripheral_vdd(self):
        assert cell(CellTech.SRAM, 32, 0.77).vdd_cell == pytest.approx(0.77)

    def test_dram_ignores_peripheral_vdd(self):
        assert cell(CellTech.COMM_DRAM, 32, 0.5).vdd_cell == pytest.approx(1.0)
